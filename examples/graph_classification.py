#!/usr/bin/env python
"""Graph classification with MixQ-GNN: the Table 8 pipeline in miniature.

A five-layer GIN with global max pooling is searched and quantized on a
TU-style graph-classification dataset (IMDB-B stand-in), with a 3-fold
cross-validation comparing FP32 against MixQ-GNN.

Run with:  python examples/graph_classification.py
"""

from __future__ import annotations

import numpy as np

from repro.core import MixQGraphClassifier
from repro.gnn.models import GraphClassifier
from repro.graphs.datasets import load_tu_dataset
from repro.graphs.datasets.tu import dataset_labels
from repro.graphs.splits import stratified_k_fold_indices
from repro.training import train_graph_classifier


def main() -> None:
    graphs = load_tu_dataset("imdb-b", num_graphs=60, seed=0)
    labels = dataset_labels(graphs)
    num_classes = int(labels.max()) + 1
    print(f"IMDB-B stand-in: {len(graphs)} graphs, {num_classes} classes, "
          f"{graphs[0].num_features} features")

    folds = stratified_k_fold_indices(labels, num_folds=3, rng=np.random.default_rng(0))
    fp32_scores, mixq_scores, mixq_bits = [], [], []
    for fold, (train_idx, test_idx) in enumerate(folds):
        train_graphs = [graphs[i] for i in train_idx]
        test_graphs = [graphs[i] for i in test_idx]

        fp32_model = GraphClassifier(graphs[0].num_features, 16, num_classes,
                                     num_layers=5, batch_norm=False,
                                     rng=np.random.default_rng(fold))
        fp32 = train_graph_classifier(fp32_model, train_graphs, test_graphs, epochs=10,
                                      rng=np.random.default_rng(fold))
        fp32_scores.append(fp32.test_accuracy)

        mixq = MixQGraphClassifier(graphs[0].num_features, 16, num_classes,
                                   num_layers=5, bit_choices=(4, 8),
                                   lambda_value=-1e-8, seed=fold)
        result = mixq.fit(train_graphs, test_graphs, search_epochs=4, train_epochs=10)
        mixq_scores.append(result.accuracy)
        mixq_bits.append(result.average_bits)
        print(f"fold {fold}: FP32={fp32.test_accuracy:.3f}  MixQ={result.accuracy:.3f} "
              f"(bits={result.average_bits:.2f})")

    print(f"\nFP32  accuracy: {np.mean(fp32_scores):.3f} ± {np.std(fp32_scores):.3f}")
    print(f"MixQ  accuracy: {np.mean(mixq_scores):.3f} ± {np.std(mixq_scores):.3f} "
          f"at {np.mean(mixq_bits):.2f} average bits (vs 32 for FP32)")


if __name__ == "__main__":
    main()
