#!/usr/bin/env python
"""Minibatch training: neighbor-sampled GraphSAGE on a large-graph stand-in.

Full-batch training holds every node's activations for every layer, so it
stops scaling with the node count.  This example trains on a 10k-node SBM
stand-in — a size the full-batch path should not attempt — by:

1. building a ``NeighborSampler`` that emits per-layer bipartite blocks
   (``fanout`` neighbours per node, ``batch_size`` seed nodes per step),
2. running ``MinibatchTrainer.fit`` (same API and result type as the
   full-batch trainer),
3. evaluating with exact layer-wise full-graph inference — accuracy is
   never estimated on samples,
4. doing the same for a quantization-aware (uniform INT8) model to show the
   paper's quantizers wrap the sampled blocks unchanged.

Run with:  python examples/minibatch_training.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.build import layer_dimensions
from repro.gnn import build_node_model
from repro.graphs.datasets.synthetic import SBMConfig, generate_sbm_graph
from repro.graphs.sampling import NeighborSampler
from repro.quant.qmodules import (
    QuantNodeClassifier,
    sage_component_names,
    uniform_assignment,
)
from repro.training import MinibatchTrainer


def main() -> None:
    config = SBMConfig(num_nodes=10_000, num_classes=8, num_features=64,
                       average_degree=8.0, train_per_class=300,
                       num_val=1_000, num_test=2_000, name="sbm-10k")
    graph = generate_sbm_graph(config, seed=0)
    print(f"Dataset: {graph}")

    # A quick look at what one sampled batch costs, independent of graph size.
    sampler = NeighborSampler(graph, fanouts=[10, 10], batch_size=256, seed=0)
    batch = next(iter(sampler))
    print(f"one batch: {batch} "
          f"(~{batch.input_nodes.size / graph.num_nodes:.1%} of the graph)")

    # ------------------------------------------------------- FP32 GraphSAGE
    model = build_node_model("sage", graph.num_features, 32, graph.num_classes,
                             num_layers=2, rng=np.random.default_rng(0))
    trainer = MinibatchTrainer(model, fanouts=10, batch_size=256, lr=0.01, seed=0)
    start = time.perf_counter()
    result = trainer.fit(graph, epochs=5)
    print(f"FP32 minibatch:    accuracy={result.test_accuracy:.3f}  "
          f"({time.perf_counter() - start:.1f}s for 5 epochs)")

    # ------------------------------------------------- INT8 QAT, same engine
    dims = layer_dimensions(graph.num_features, 32, graph.num_classes, 2)
    qat = QuantNodeClassifier.from_assignment(
        dims, "sage", uniform_assignment(sage_component_names(2), 8),
        rng=np.random.default_rng(0))
    qat_trainer = MinibatchTrainer(qat, fanouts=10, batch_size=256, lr=0.01, seed=0)
    start = time.perf_counter()
    qat_result = qat_trainer.fit(graph, epochs=5)
    print(f"INT8 QAT minibatch: accuracy={qat_result.test_accuracy:.3f}  "
          f"({time.perf_counter() - start:.1f}s for 5 epochs)")


if __name__ == "__main__":
    main()
