#!/usr/bin/env python
"""Quantized serving end to end: train -> export artifact -> predict from file.

The example quantization-aware-trains a small GCN node classifier, exports
it into a self-contained :class:`~repro.serving.QuantizedArtifact` (npz +
json sidecar), reloads the artifact *from disk*, and serves predictions two
ways:

* :class:`~repro.serving.FullGraphSession` — the classic Theorem-1 engine
  over the whole graph;
* :class:`~repro.serving.BlockSession` behind a
  :class:`~repro.serving.ServingEngine` — per-request, memory-bounded
  integer inference through neighbor-sampled blocks, with request
  coalescing and per-request latency / BitOPs accounting.

It verifies the serving guarantees as it goes (file-served logits match the
in-memory QAT model to float32 round-off; unlimited-fanout block serving
matches the full-graph engine), so it doubles as a CI smoke test.

Run with:  python examples/integer_serving.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.graphs.datasets import load_cora
from repro.quant.qmodules import (
    QuantNodeClassifier,
    gcn_component_names,
    uniform_assignment,
)
from repro.serving import (
    BlockSession,
    FullGraphSession,
    QuantizedArtifact,
    ServingEngine,
)
from repro.training.trainer import train_node_classifier


def main() -> None:
    # 1. Quantization-aware-train a 2-layer INT8/INT4 GCN -----------------
    graph = load_cora(scale=0.08, seed=0)
    assignment = uniform_assignment(gcn_component_names(2), 8)
    assignment["conv1.weight"] = 4  # mixed precision, as a MixQ search would pick
    model = QuantNodeClassifier.from_assignment(
        [(graph.num_features, 16), (16, graph.num_classes)], "gcn", assignment,
        dropout=0.0, rng=np.random.default_rng(0))
    train_node_classifier(model, graph, epochs=20, lr=0.02)
    model.eval()
    reference = model(graph).data
    print(f"Graph: {graph}")

    # 2. Export the deployment artifact and reload it from disk ----------
    with tempfile.TemporaryDirectory() as tmp:
        npz_path, json_path = QuantizedArtifact.from_model(
            model, metadata={"dataset": graph.name}).save(Path(tmp) / "artifact")
        print(f"exported {npz_path.stat().st_size} B of arrays + "
              f"{json_path.stat().st_size} B sidecar")
        artifact = QuantizedArtifact.load(npz_path)
    print(artifact.summary())

    # 3. Full-graph integer serving vs. the in-memory QAT model ----------
    full = FullGraphSession(artifact, graph)
    full_logits = full.predict()
    parity = float(np.abs(full_logits - reference).max())
    print(f"full-graph serving vs fake-quantized QAT: max |error| = {parity:.2e}")
    assert parity < 1e-2, "integer serving must match QAT to float round-off"

    # 4. Block serving: exact at unlimited fanout, bounded when capped ---
    seeds = np.flatnonzero(graph.test_mask)
    exact = BlockSession(artifact, graph, fanouts=None).predict(seeds)
    block_parity = float(np.abs(exact - full_logits[seeds]).max())
    print(f"block serving (fanout=inf) vs full-graph:  max |error| = "
          f"{block_parity:.2e}")
    assert block_parity < 1e-6

    engine = ServingEngine(
        BlockSession(artifact, graph, fanouts=5, batch_size=64, seed=1),
        max_batch_size=64)
    for chunk in np.array_split(seeds, 3):
        engine.submit(chunk)
    results = engine.flush()
    print("coalesced block serving (fanout=5):")
    for result in results:
        print(f"  request {result.request_id}: {result.nodes.shape[0]:>3} nodes  "
              f"{result.latency_seconds * 1e3:6.2f} ms  "
              f"{result.giga_bit_operations:.4f} GBitOPs")
    classes = np.concatenate([result.classes for result in results])
    accuracy = float((classes == graph.y[seeds]).mean())
    stats = engine.stats
    print(f"served {stats.nodes} nodes at {stats.throughput():.0f} nodes/s, "
          f"test accuracy {accuracy:.3f}")
    assert np.isfinite(accuracy)


if __name__ == "__main__":
    main()
