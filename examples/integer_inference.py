#!/usr/bin/env python
"""Theorem 1 in action: exact integer message passing.

The example quantizes the normalised adjacency and the node features of a
citation graph, performs the aggregation ``A @ X`` entirely with integer
sparse-dense arithmetic plus the rank-one corrections of Theorem 1, and
verifies that the result matches the fake-quantized floating-point product
to numerical precision — the guarantee the theorem provides.

Run with:  python examples/integer_inference.py
"""

from __future__ import annotations

import numpy as np

from repro.graphs.datasets import load_citeseer
from repro.quant import AffineQuantizer
from repro.quant.integer_mp import (
    fake_quantized_reference,
    integer_message_passing,
)


def main() -> None:
    graph = load_citeseer(scale=0.15, seed=0)
    adjacency = graph.normalized_adjacency()
    print(f"Graph: {graph}")
    print(f"Normalised adjacency: {adjacency}")

    for bits in (8, 4, 2):
        quantizer_a = AffineQuantizer(bits=bits, symmetric=True)
        quantizer_x = AffineQuantizer(bits=bits)
        result = integer_message_passing(adjacency, graph.x, quantizer_a, quantizer_x)
        reference = fake_quantized_reference(adjacency, graph.x, quantizer_a, quantizer_x)
        max_error = float(np.abs(result.dequantized_output - reference).max())
        quantization_error = float(
            np.abs(reference - adjacency.csr @ graph.x).mean())
        print(f"INT{bits}: theorem-vs-fake-quant max error = {max_error:.2e} "
              f"(exact), mean quantization error vs FP32 = {quantization_error:.4f}")
        print(f"      integer product dtype: {result.integer_product.dtype}, "
              f"scales: S_a={float(result.scale_a):.4f}, S_x={float(result.scale_x):.4f}")


if __name__ == "__main__":
    main()
