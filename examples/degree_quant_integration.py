#!/usr/bin/env python
"""Combining MixQ-GNN with Degree-Quant (the paper's Table 4 experiment).

MixQ-GNN chooses *which bit-width* each component uses; Degree-Quant decides
*how* node features are quantized (protecting high in-degree nodes during
training).  The two compose through the ``quantizer_factory`` hook: MixQ
searches over DQ quantizers, and the final quantized model trains with
degree-aware protection.

Run with:  python examples/degree_quant_integration.py
"""

from __future__ import annotations

import numpy as np

from repro.core import MixQNodeClassifier
from repro.graphs.datasets import load_cora
from repro.quant.degree_quant import degree_quant_factory, degree_protection_probabilities


def main() -> None:
    graph = load_cora(scale=0.2, seed=0)
    probabilities = degree_protection_probabilities(graph, p_min=0.0, p_max=0.1)
    degrees = graph.in_degrees()
    print(f"Graph: {graph}")
    print(f"Highest in-degree node: degree={degrees.max()}, "
          f"protection probability={probabilities[degrees.argmax()]:.3f}")
    print(f"Lowest in-degree node protection probability={probabilities.min():.3f}\n")

    for use_dq in (False, True):
        factory_kwargs = {}
        if use_dq:
            factory_kwargs["quantizer_factory"] = degree_quant_factory(
                rng=np.random.default_rng(0))
        mixq = MixQNodeClassifier("gcn", graph.num_features, 16, graph.num_classes,
                                  num_layers=2, bit_choices=(2, 4, 8), lambda_value=0.1,
                                  seed=0, **factory_kwargs)
        result = mixq.fit(graph, search_epochs=40, train_epochs=80, lr=0.02)
        name = "MixQ + DQ" if use_dq else "MixQ (native)"
        print(f"{name:<14} accuracy={result.accuracy:.3f}  bits={result.average_bits:.2f}  "
              f"GBitOPs={result.giga_bit_operations:.4f}")


if __name__ == "__main__":
    main()
