#!/usr/bin/env python
"""Repeat-traffic serving with the shared block cache and the async engine.

The example quantization-aware-trains a small GCN, exports it into a
:class:`~repro.serving.QuantizedArtifact`, and serves a repetitive request
trace (the same popular nodes over and over — what online traffic looks
like) three ways:

1. an *uncached* :class:`~repro.serving.BlockSession` — every request
   resamples its receptive field from scratch;
2. a *cached* session (``cache_size=...``) — the shared
   :class:`~repro.cache.BlockCache` reuses per-seed sampled rows across
   overlapping requests and whole sampled batches across repeats, with
   **bit-identical** logits (asserted);
3. the :class:`~repro.serving.AsyncServingEngine` — many client threads
   submit concurrently, flushes are triggered by a ``max_batch`` /
   ``max_wait_ms`` latency-deadline policy, micro-batches fan out over a
   worker pool.

It doubles as a CI smoke test: the parity assertions and the warm-cache
speedup must hold.

Run with:  python examples/cached_serving.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.graphs.datasets import load_cora
from repro.quant.qmodules import (
    QuantNodeClassifier,
    gcn_component_names,
    uniform_assignment,
)
from repro.serving import AsyncServingEngine, BlockSession, QuantizedArtifact
from repro.training.trainer import train_node_classifier


def main() -> None:
    # 1. QAT-train and export ---------------------------------------------
    graph = load_cora(scale=0.08, seed=0)
    model = QuantNodeClassifier.from_assignment(
        [(graph.num_features, 16), (16, graph.num_classes)], "gcn",
        uniform_assignment(gcn_component_names(2), 8),
        dropout=0.0, rng=np.random.default_rng(0))
    train_node_classifier(model, graph, epochs=20, lr=0.02)
    model.eval()
    artifact = QuantizedArtifact.from_model(model)
    print(f"Graph: {graph}")
    print(artifact.summary())

    # 2. A repetitive trace: 4 distinct requests, served 32 times ---------
    rng = np.random.default_rng(7)
    pool = rng.choice(graph.num_nodes, size=96, replace=False)
    distinct = [np.sort(rng.choice(pool, size=24, replace=False))
                for _ in range(4)]
    trace = [distinct[int(i)] for i in rng.integers(0, 4, size=32)]

    def serve_all(session) -> float:
        start = time.perf_counter()
        for nodes in trace:
            session.predict(nodes)
        return time.perf_counter() - start

    uncached = BlockSession(artifact, graph, fanouts=5, batch_size=32, seed=1)
    cached = BlockSession(artifact, graph, fanouts=5, batch_size=32, seed=1,
                          cache_size=65536)

    uncached_seconds = serve_all(uncached)
    serve_all(cached)                      # cold pass fills the cache
    cold_stats = cached.cache_stats()
    cached_seconds = serve_all(cached)     # steady state: warm cache
    warm_stats = cached.cache_stats()

    # 3. Bit-identical outputs, measurably lower latency ------------------
    for nodes in distinct:
        parity = np.array_equal(cached.predict(nodes), uncached.predict(nodes))
        assert parity, "cached serving must be bit-identical"
    stats = cached.cache_stats()
    speedup = uncached_seconds / cached_seconds
    print(f"uncached: {uncached_seconds * 1e3:7.1f} ms for {len(trace)} requests")
    print(f"cached  : {cached_seconds * 1e3:7.1f} ms warm "
          f"({speedup:.1f}x, hit rate {stats.hit_rate():.1%}, "
          f"{stats.entries} entries / {stats.bytes / 1e6:.2f} MB)")
    # Gate on counters, not wall clock (CI runners are noisy): the warm
    # pass must have been answered from the cache without a single miss.
    assert warm_stats.hits > cold_stats.hits
    assert warm_stats.misses == cold_stats.misses, \
        "warm repeat traffic must be served entirely from the cache"

    # 4. Async serving: concurrent clients, deadline batching -------------
    session = BlockSession(artifact, graph, fanouts=5, batch_size=32, seed=1,
                           cache_size=65536)
    with AsyncServingEngine(session, max_batch=64, max_wait_ms=5.0,
                            workers=4) as engine:
        futures = [engine.submit(nodes) for nodes in trace]
        results = [future.result(timeout=60) for future in futures]
    for nodes, result in zip(trace, results):
        assert np.array_equal(result.logits, uncached.predict(nodes)), \
            "async serving must match the synchronous session"
    stats = engine.stats
    print(f"async   : {stats.requests} requests / {stats.micro_batches} "
          f"micro-batches, {stats.throughput():.0f} nodes/s, "
          f"{stats.giga_bit_operations:.4f} GBitOPs")
    print("parity assertions passed — cached + async serving are exact")


if __name__ == "__main__":
    main()
