#!/usr/bin/env python
"""Attention serving end to end: train a GAT -> export -> serve score plans.

Attention layers cannot pre-materialise their aggregation operator — the
coefficients depend on the activations — so the serving executor runs them
as per-edge *score plans*: float scores + softmax on the canonical edge
list, then integer Theorem-1 aggregation of the quantized coefficients
(see ``docs/serving.md``).  This example:

1. quantization-aware-trains a small 2-layer INT8 GAT node classifier,
2. exports it into a :class:`~repro.serving.QuantizedArtifact` and reloads
   it from disk,
3. serves it through a cache-backed :class:`~repro.serving.BlockSession`,
4. asserts the serving guarantees: fanout=∞ block logits are
   **bit-identical** to the full-graph engine, cached and uncached serving
   are bit-identical, and the BitOPs report matches the full-graph numbers.

Run with:  python examples/attention_serving.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.graphs.datasets import load_cora
from repro.quant.qmodules import (
    QuantNodeClassifier,
    gat_component_names,
    uniform_assignment,
)
from repro.serving import BlockSession, FullGraphSession, QuantizedArtifact
from repro.training.trainer import train_node_classifier


def main() -> None:
    # 1. Quantization-aware-train a 2-layer INT8 GAT ----------------------
    graph = load_cora(scale=0.08, seed=0)
    model = QuantNodeClassifier.from_assignment(
        [(graph.num_features, 16), (16, graph.num_classes)], "gat",
        uniform_assignment(gat_component_names(2), 8),
        dropout=0.0, rng=np.random.default_rng(0))
    train_node_classifier(model, graph, epochs=20, lr=0.02)
    model.eval()
    reference = model(graph).data
    print(f"Graph: {graph}")

    # 2. Export the score-plan artifact and reload it from disk -----------
    with tempfile.TemporaryDirectory() as tmp:
        npz_path, json_path = QuantizedArtifact.from_model(
            model, metadata={"dataset": graph.name}).save(Path(tmp) / "gat")
        print(f"exported {npz_path.stat().st_size} B of arrays + "
              f"{json_path.stat().st_size} B sidecar")
        artifact = QuantizedArtifact.load(npz_path)
    print(artifact.summary())

    # 3. Full-graph integer serving vs. the in-memory QAT model -----------
    full = FullGraphSession(artifact, graph)
    full_run = full.run()
    parity = float(np.abs(full_run.logits - reference).max())
    print(f"full-graph serving vs fake-quantized QAT: max |error| = {parity:.2e}")
    assert parity < 5e-2, "integer score plans must track the QAT reference"

    # 4. Block serving with a cache: bit-identical, and warm repeats hit --
    session = BlockSession(artifact, graph, fanouts=None,
                           batch_size=graph.num_nodes, cache_size=65536)
    uncached = BlockSession(artifact, graph, fanouts=None,
                            batch_size=graph.num_nodes)
    block_run = session.run()
    assert np.array_equal(block_run.logits, full_run.logits), \
        "fanout=inf block serving must be bit-identical to full-graph"
    assert np.array_equal(uncached.predict(), block_run.logits), \
        "cached serving must be bit-identical to uncached serving"
    assert block_run.bit_operations.total_bit_operations \
        == full_run.bit_operations.total_bit_operations, \
        "fanout=inf BitOPs must equal the full-graph numbers"
    print("fanout=inf block serving: bit-identical logits, "
          f"{block_run.giga_bit_operations():.4f} GBitOPs (== full graph)")

    repeat = session.run()
    stats = session.cache_stats()
    assert np.array_equal(repeat.logits, block_run.logits)
    assert stats.hits > 0
    print(f"warm repeat served from cache: {stats.hits} hits / "
          f"{stats.misses} misses (hit rate {stats.hit_rate():.1%})")

    # 5. Fanout-capped serving bounds the per-request work ----------------
    seeds = np.flatnonzero(graph.test_mask)
    capped = BlockSession(artifact, graph, fanouts=4, batch_size=64, seed=1)
    capped_run = capped.run(seeds)
    accuracy = float((capped_run.logits.argmax(1) == graph.y[seeds]).mean())
    print(f"fanout=4 block serving: {capped_run.num_seeds} seeds touched "
          f"{capped_run.num_input_nodes} input nodes / {capped_run.num_edges} "
          f"edges, {capped_run.giga_bit_operations():.4f} GBitOPs, "
          f"test accuracy {accuracy:.3f}")
    assert capped_run.bit_operations.total_bit_operations \
        < full_run.bit_operations.total_bit_operations
    assert np.isfinite(capped_run.logits).all()


if __name__ == "__main__":
    main()
