#!/usr/bin/env python
"""Quickstart: mixed-precision quantization of a two-layer GCN with MixQ-GNN.

This is the paper's headline pipeline on the Cora stand-in:

1. load a node-classification graph,
2. train an FP32 GCN baseline,
3. run the MixQ-GNN differentiable bit-width search,
4. instantiate and train the quantized architecture,
5. compare accuracy, average bit-width and BitOPs against the baseline.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.core import MixQNodeClassifier
from repro.gnn import build_node_model
from repro.graphs.datasets import load_cora
from repro.quant.bitops import FP32_BITS
from repro.training import train_node_classifier


def main() -> None:
    graph = load_cora(scale=0.2, seed=0)
    print(f"Dataset: {graph}")
    hidden = 16

    # ---------------------------------------------------------------- FP32
    fp32_model = build_node_model("gcn", graph.num_features, hidden, graph.num_classes,
                                  num_layers=2, rng=np.random.default_rng(0))
    fp32 = train_node_classifier(fp32_model, graph, epochs=80, lr=0.02)
    fp32_gbitops = fp32_model.operation_count(graph) * FP32_BITS / 1e9
    print(f"FP32 baseline:     accuracy={fp32.test_accuracy:.3f}  "
          f"bits=32.00  GBitOPs={fp32_gbitops:.4f}")

    # ------------------------------------------------------------- MixQ-GNN
    for lambda_value in (-1e-8, 0.1, 1.0):
        mixq = MixQNodeClassifier("gcn", graph.num_features, hidden, graph.num_classes,
                                  num_layers=2, bit_choices=(2, 4, 8),
                                  lambda_value=lambda_value, seed=0)
        result = mixq.fit(graph, search_epochs=40, train_epochs=80, lr=0.02)
        label = "-1e-8" if lambda_value < 0 else f"{lambda_value:g}"
        speedup = fp32_gbitops / max(result.giga_bit_operations, 1e-12)
        print(f"MixQ(λ={label:>6}):  accuracy={result.accuracy:.3f}  "
              f"bits={result.average_bits:5.2f}  GBitOPs={result.giga_bit_operations:.4f}  "
              f"({speedup:.1f}x fewer BitOPs than FP32)")
        print(f"  selected bit-widths: {result.assignment}")


if __name__ == "__main__":
    main()
