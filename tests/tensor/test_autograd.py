"""Gradient correctness: analytic backward passes checked against finite differences."""

import numpy as np
import pytest

from repro.tensor import Tensor, no_grad, is_grad_enabled
from repro.tensor import functional as F


def numerical_gradient(fn, values: np.ndarray, eps: float = 1e-2) -> np.ndarray:
    """Central finite differences of a scalar-valued function of one array."""
    grad = np.zeros_like(values, dtype=np.float64)
    flat = values.reshape(-1)
    grad_flat = grad.reshape(-1)
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + eps
        upper = fn(values.copy())
        flat[index] = original - eps
        lower = fn(values.copy())
        flat[index] = original
        grad_flat[index] = (upper - lower) / (2 * eps)
    return grad


def check_gradient(build, values: np.ndarray, rtol: float = 2e-2, atol: float = 5e-3):
    """Compare the autograd gradient of ``build`` with finite differences."""
    tensor = Tensor(values.astype(np.float32), requires_grad=True)
    output = build(tensor)
    output.backward()
    analytic = tensor.grad.astype(np.float64)

    def scalar_fn(array):
        return float(build(Tensor(array.astype(np.float32))).data)

    numeric = numerical_gradient(scalar_fn, values.astype(np.float64))
    np.testing.assert_allclose(analytic, numeric, rtol=rtol, atol=atol)


RNG = np.random.default_rng(42)


class TestBasicGradients:
    def test_add_mul(self):
        check_gradient(lambda t: ((t * 3.0 + 1.0) * t).sum(), RNG.standard_normal((3, 2)))

    def test_sub_div(self):
        values = RNG.standard_normal((4,)) + 3.0
        check_gradient(lambda t: ((t - 1.0) / (t + 5.0)).sum(), values)

    def test_pow(self):
        check_gradient(lambda t: (t ** 3).sum(), RNG.standard_normal((5,)))

    def test_matmul_left(self):
        other = Tensor(RNG.standard_normal((3, 2)).astype(np.float32))
        check_gradient(lambda t: (t @ other).sum(), RNG.standard_normal((2, 3)))

    def test_matmul_right(self):
        other = Tensor(RNG.standard_normal((4, 3)).astype(np.float32))
        check_gradient(lambda t: (other @ t).sum(), RNG.standard_normal((3, 2)))

    def test_exp_log(self):
        values = np.abs(RNG.standard_normal((4,))) + 0.5
        check_gradient(lambda t: (t.exp() + t.log()).sum(), values)

    def test_sqrt(self):
        values = np.abs(RNG.standard_normal((4,))) + 0.5
        check_gradient(lambda t: t.sqrt().sum(), values)

    def test_sigmoid_tanh(self):
        check_gradient(lambda t: (t.sigmoid() * t.tanh()).sum(),
                       RNG.standard_normal((6,)))

    def test_relu(self):
        values = RNG.standard_normal((10,))
        values[np.abs(values) < 0.1] = 0.5  # keep away from the kink
        check_gradient(lambda t: (t.relu() * 2.0).sum(), values)

    def test_abs(self):
        values = RNG.standard_normal((6,))
        values[np.abs(values) < 0.1] = 0.7
        check_gradient(lambda t: t.abs().sum(), values)

    def test_broadcast_add_gradient_shapes(self):
        a = Tensor(np.ones((3, 4), dtype=np.float32), requires_grad=True)
        b = Tensor(np.ones((4,), dtype=np.float32), requires_grad=True)
        (a + b).sum().backward()
        assert a.grad.shape == (3, 4)
        assert b.grad.shape == (4,)
        np.testing.assert_allclose(b.grad, 3.0 * np.ones(4))


class TestReductionGradients:
    def test_sum_axis(self):
        check_gradient(lambda t: (t.sum(axis=0) ** 2).sum(), RNG.standard_normal((3, 4)))

    def test_mean(self):
        check_gradient(lambda t: (t.mean(axis=1) ** 2).sum(), RNG.standard_normal((3, 4)))

    def test_max(self):
        values = RNG.standard_normal((3, 4))
        check_gradient(lambda t: t.max(axis=1).sum(), values)

    def test_getitem(self):
        index = np.asarray([0, 2])
        check_gradient(lambda t: (t[index] ** 2).sum(), RNG.standard_normal((4, 3)))

    def test_reshape_transpose(self):
        check_gradient(lambda t: (t.reshape(6).T ** 2).sum(), RNG.standard_normal((2, 3)))

    def test_concatenate(self):
        other = Tensor(RNG.standard_normal((2, 3)).astype(np.float32))
        check_gradient(lambda t: Tensor.concatenate([t, other], axis=0).sum() * 2.0,
                       RNG.standard_normal((3, 3)))


class TestFunctionalGradients:
    def test_softmax_gradient(self):
        check_gradient(lambda t: (F.softmax(t, axis=-1) ** 2).sum(),
                       RNG.standard_normal((3, 4)))

    def test_log_softmax_gradient(self):
        check_gradient(lambda t: F.log_softmax(t, axis=-1).sum(),
                       RNG.standard_normal((2, 5)))

    def test_cross_entropy_gradient(self):
        targets = np.asarray([1, 0, 2])
        check_gradient(lambda t: F.cross_entropy(t, targets), RNG.standard_normal((3, 3)))

    def test_leaky_relu_gradient(self):
        values = RNG.standard_normal((8,))
        values[np.abs(values) < 0.1] = 0.5
        check_gradient(lambda t: F.leaky_relu(t, 0.1).sum(), values)

    def test_elu_gradient(self):
        values = RNG.standard_normal((8,))
        values[np.abs(values) < 0.1] = 0.5
        check_gradient(lambda t: F.elu(t).sum(), values)

    def test_bce_with_logits_gradient(self):
        targets = RNG.integers(0, 2, size=(4, 3)).astype(np.float32)
        check_gradient(lambda t: F.binary_cross_entropy_with_logits(t, targets),
                       RNG.standard_normal((4, 3)))

    def test_segment_sum_gradient(self):
        segments = np.asarray([0, 0, 1, 1, 2])
        check_gradient(lambda t: (F.segment_sum(t, segments, 3) ** 2).sum(),
                       RNG.standard_normal((5, 2)))

    def test_segment_mean_gradient(self):
        segments = np.asarray([0, 1, 1, 2, 2])
        check_gradient(lambda t: (F.segment_mean(t, segments, 3) ** 2).sum(),
                       RNG.standard_normal((5, 2)))

    def test_segment_max_gradient(self):
        segments = np.asarray([0, 0, 1, 1])
        values = np.asarray([[1.0, 5.0], [2.0, 1.0], [4.0, 0.0], [3.0, 2.0]])
        check_gradient(lambda t: F.segment_max(t, segments, 2).sum(), values)


class TestSTEGradients:
    def test_round_ste_passes_gradient(self):
        t = Tensor([0.3, 1.7], requires_grad=True)
        (t.round_ste() * 2.0).sum().backward()
        np.testing.assert_allclose(t.grad, [2.0, 2.0])

    def test_floor_ste_passes_gradient(self):
        t = Tensor([0.3, 1.7], requires_grad=True)
        t.floor_ste().sum().backward()
        np.testing.assert_allclose(t.grad, [1.0, 1.0])

    def test_clamp_blocks_gradient_outside_range(self):
        t = Tensor([-2.0, 0.0, 2.0], requires_grad=True)
        t.clamp(-1.0, 1.0).sum().backward()
        np.testing.assert_allclose(t.grad, [0.0, 1.0, 0.0])


class TestAutogradMechanics:
    def test_grad_accumulates_across_uses(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        (t * 2.0 + t * 3.0).sum().backward()
        np.testing.assert_allclose(t.grad, [5.0, 5.0])

    def test_backward_requires_scalar(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(ValueError):
            (t * 2.0).backward()

    def test_backward_with_explicit_gradient(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        (t * 2.0).backward(np.asarray([1.0, 10.0]))
        np.testing.assert_allclose(t.grad, [2.0, 20.0])

    def test_no_grad_disables_tracking(self):
        t = Tensor([1.0], requires_grad=True)
        with no_grad():
            assert not is_grad_enabled()
            out = t * 2.0
        assert out._backward is None
        assert not out.requires_grad
        assert is_grad_enabled()

    def test_zero_grad(self):
        t = Tensor([1.0], requires_grad=True)
        (t * 2.0).sum().backward()
        assert t.grad is not None
        t.zero_grad()
        assert t.grad is None

    def test_diamond_graph_gradient(self):
        t = Tensor([2.0], requires_grad=True)
        a = t * 3.0
        b = t * 4.0
        (a * b).sum().backward()
        # d/dt (12 t^2) = 24 t = 48
        np.testing.assert_allclose(t.grad, [48.0])

    def test_constant_operand_gets_no_grad(self):
        t = Tensor([1.0], requires_grad=True)
        constant = Tensor([5.0])
        (t * constant).sum().backward()
        assert constant.grad is None
