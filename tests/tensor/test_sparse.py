"""Tests for SparseTensor and the sparse-dense spmm autograd op."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.tensor import SparseTensor, Tensor, spmm


@pytest.fixture
def dense_matrix():
    rng = np.random.default_rng(1)
    matrix = rng.random((6, 6)) * (rng.random((6, 6)) < 0.5)
    return matrix.astype(np.float32)


class TestSparseTensor:
    def test_construct_from_dense(self, dense_matrix):
        sparse = SparseTensor(dense_matrix)
        np.testing.assert_allclose(sparse.to_dense(), dense_matrix, rtol=1e-6)

    def test_construct_from_scipy(self, dense_matrix):
        sparse = SparseTensor(sp.coo_matrix(dense_matrix))
        assert sparse.nnz == np.count_nonzero(dense_matrix)

    def test_from_edge_index(self):
        edge_index = np.asarray([[0, 1, 2], [1, 2, 0]])
        sparse = SparseTensor.from_edge_index(edge_index, num_nodes=3)
        dense = sparse.to_dense()
        assert dense[0, 1] == 1.0 and dense[1, 2] == 1.0 and dense[2, 0] == 1.0
        assert dense.sum() == 3.0

    def test_from_edge_index_with_weights(self):
        edge_index = np.asarray([[0, 1], [1, 0]])
        sparse = SparseTensor.from_edge_index(edge_index, 2, np.asarray([2.0, 3.0]))
        assert sparse.to_dense()[0, 1] == pytest.approx(2.0)
        assert sparse.to_dense()[1, 0] == pytest.approx(3.0)

    def test_from_edge_index_shape_validation(self):
        with pytest.raises(ValueError):
            SparseTensor.from_edge_index(np.asarray([[0, 1, 2]]), 3)

    def test_with_values_preserves_pattern(self, dense_matrix):
        sparse = SparseTensor(dense_matrix)
        new = sparse.with_values(np.ones(sparse.nnz, dtype=np.float32))
        assert new.nnz == sparse.nnz
        assert new.to_dense().sum() == pytest.approx(sparse.nnz)

    def test_with_values_wrong_length(self, dense_matrix):
        sparse = SparseTensor(dense_matrix)
        with pytest.raises(ValueError):
            sparse.with_values(np.ones(sparse.nnz + 1))

    def test_transpose(self, dense_matrix):
        sparse = SparseTensor(dense_matrix)
        np.testing.assert_allclose(sparse.T.to_dense(), dense_matrix.T, rtol=1e-6)

    def test_row_sum(self, dense_matrix):
        sparse = SparseTensor(dense_matrix)
        np.testing.assert_allclose(sparse.row_sum(), dense_matrix.sum(axis=1), rtol=1e-5)

    def test_identity(self):
        eye = SparseTensor.identity(4)
        np.testing.assert_allclose(eye.to_dense(), np.eye(4))

    def test_matmul_sparse_sparse(self):
        a = SparseTensor(np.eye(3, dtype=np.float32) * 2)
        b = SparseTensor(np.eye(3, dtype=np.float32) * 3)
        np.testing.assert_allclose((a @ b).to_dense(), np.eye(3) * 6)

    def test_repr(self, dense_matrix):
        assert "nnz" in repr(SparseTensor(dense_matrix))


class TestSpmm:
    def test_forward_matches_dense(self, dense_matrix):
        sparse = SparseTensor(dense_matrix)
        features = Tensor(np.random.default_rng(2).standard_normal((6, 4)).astype(np.float32))
        np.testing.assert_allclose(spmm(sparse, features).data,
                                   dense_matrix @ features.data, rtol=1e-5)

    def test_backward_is_transpose_product(self, dense_matrix):
        sparse = SparseTensor(dense_matrix)
        features = Tensor(np.random.default_rng(3).standard_normal((6, 3)).astype(np.float32),
                          requires_grad=True)
        spmm(sparse, features).sum().backward()
        expected = dense_matrix.T @ np.ones((6, 3), dtype=np.float32)
        np.testing.assert_allclose(features.grad, expected, rtol=1e-5)

    def test_gradient_flows_through_chain(self, dense_matrix):
        sparse = SparseTensor(dense_matrix)
        features = Tensor(np.ones((6, 2), dtype=np.float32), requires_grad=True)
        out = spmm(sparse, features * 2.0)
        (out * out).sum().backward()
        assert features.grad is not None
        assert features.grad.shape == (6, 2)

    def test_matmul_operator_dispatch(self, dense_matrix):
        sparse = SparseTensor(dense_matrix)
        features = Tensor(np.ones((6, 2), dtype=np.float32))
        np.testing.assert_allclose((sparse @ features).data,
                                   spmm(sparse, features).data)
