"""Unit tests for Tensor arithmetic, reductions and shape manipulation."""

import numpy as np
import pytest

from repro.tensor import Tensor


class TestArithmetic:
    def test_add(self):
        a = Tensor([1.0, 2.0, 3.0])
        b = Tensor([4.0, 5.0, 6.0])
        np.testing.assert_allclose((a + b).data, [5.0, 7.0, 9.0])

    def test_add_scalar(self):
        a = Tensor([1.0, 2.0])
        np.testing.assert_allclose((a + 1.5).data, [2.5, 3.5])
        np.testing.assert_allclose((1.5 + a).data, [2.5, 3.5])

    def test_sub(self):
        a = Tensor([3.0, 2.0])
        b = Tensor([1.0, 5.0])
        np.testing.assert_allclose((a - b).data, [2.0, -3.0])
        np.testing.assert_allclose((1.0 - a).data, [-2.0, -1.0])

    def test_mul_div(self):
        a = Tensor([2.0, 4.0])
        b = Tensor([3.0, 2.0])
        np.testing.assert_allclose((a * b).data, [6.0, 8.0])
        np.testing.assert_allclose((a / b).data, [2.0 / 3.0, 2.0], rtol=1e-6)

    def test_neg_pow(self):
        a = Tensor([2.0, -3.0])
        np.testing.assert_allclose((-a).data, [-2.0, 3.0])
        np.testing.assert_allclose((a ** 2).data, [4.0, 9.0])

    def test_matmul(self):
        a = Tensor(np.arange(6, dtype=np.float32).reshape(2, 3))
        b = Tensor(np.arange(12, dtype=np.float32).reshape(3, 4))
        np.testing.assert_allclose((a @ b).data, a.data @ b.data)

    def test_broadcasting_add(self):
        a = Tensor(np.ones((3, 4), dtype=np.float32))
        b = Tensor(np.arange(4, dtype=np.float32))
        assert (a + b).shape == (3, 4)

    def test_pow_requires_scalar(self):
        with pytest.raises(TypeError):
            Tensor([1.0]) ** Tensor([2.0])

    def test_comparison_returns_numpy(self):
        a = Tensor([1.0, 5.0])
        result = a > 2.0
        assert isinstance(result, np.ndarray)
        assert result.tolist() == [False, True]


class TestElementwiseFunctions:
    def test_exp_log_roundtrip(self):
        a = Tensor([0.5, 1.0, 2.0])
        np.testing.assert_allclose(a.exp().log().data, a.data, rtol=1e-5)

    def test_sqrt(self):
        a = Tensor([4.0, 9.0])
        np.testing.assert_allclose(a.sqrt().data, [2.0, 3.0])

    def test_abs(self):
        a = Tensor([-1.0, 2.0, -3.0])
        np.testing.assert_allclose(a.abs().data, [1.0, 2.0, 3.0])

    def test_relu(self):
        a = Tensor([-1.0, 0.0, 2.0])
        np.testing.assert_allclose(a.relu().data, [0.0, 0.0, 2.0])

    def test_sigmoid_range(self):
        a = Tensor(np.linspace(-10, 10, 21, dtype=np.float32))
        values = a.sigmoid().data
        assert values.min() > 0.0 and values.max() < 1.0

    def test_tanh(self):
        a = Tensor([0.0])
        assert a.tanh().data[0] == pytest.approx(0.0)

    def test_clamp(self):
        a = Tensor([-5.0, 0.5, 5.0])
        np.testing.assert_allclose(a.clamp(-1.0, 1.0).data, [-1.0, 0.5, 1.0])

    def test_round_ste_values(self):
        a = Tensor([0.4, 0.6, -1.5])
        np.testing.assert_allclose(a.round_ste().data, np.rint(a.data))

    def test_floor_ste_values(self):
        a = Tensor([0.4, 1.9, -0.1])
        np.testing.assert_allclose(a.floor_ste().data, [0.0, 1.0, -1.0])


class TestReductions:
    def test_sum_all(self):
        a = Tensor(np.arange(6, dtype=np.float32).reshape(2, 3))
        assert a.sum().data == pytest.approx(15.0)

    def test_sum_axis(self):
        a = Tensor(np.arange(6, dtype=np.float32).reshape(2, 3))
        np.testing.assert_allclose(a.sum(axis=0).data, [3.0, 5.0, 7.0])
        np.testing.assert_allclose(a.sum(axis=1, keepdims=True).data, [[3.0], [12.0]])

    def test_mean(self):
        a = Tensor([[1.0, 3.0], [5.0, 7.0]])
        assert a.mean().data == pytest.approx(4.0)
        np.testing.assert_allclose(a.mean(axis=0).data, [3.0, 5.0])

    def test_max_min(self):
        a = Tensor([[1.0, 9.0], [5.0, 2.0]])
        assert a.max().data == pytest.approx(9.0)
        np.testing.assert_allclose(a.max(axis=0).data, [5.0, 9.0])
        np.testing.assert_allclose(a.min(axis=1).data, [1.0, 2.0])


class TestShapeOps:
    def test_reshape(self):
        a = Tensor(np.arange(6, dtype=np.float32))
        assert a.reshape(2, 3).shape == (2, 3)
        assert a.reshape((3, 2)).shape == (3, 2)

    def test_flatten(self):
        a = Tensor(np.ones((2, 3), dtype=np.float32))
        assert a.flatten().shape == (6,)

    def test_transpose(self):
        a = Tensor(np.arange(6, dtype=np.float32).reshape(2, 3))
        np.testing.assert_allclose(a.T.data, a.data.T)

    def test_getitem_rows(self):
        a = Tensor(np.arange(12, dtype=np.float32).reshape(4, 3))
        np.testing.assert_allclose(a[np.asarray([0, 2])].data, a.data[[0, 2]])

    def test_getitem_fancy_pairs(self):
        a = Tensor(np.arange(12, dtype=np.float32).reshape(4, 3))
        picked = a[(np.asarray([0, 1]), np.asarray([2, 0]))]
        np.testing.assert_allclose(picked.data, [2.0, 3.0])

    def test_concatenate(self):
        a = Tensor(np.ones((2, 2), dtype=np.float32))
        b = Tensor(np.zeros((3, 2), dtype=np.float32))
        assert Tensor.concatenate([a, b], axis=0).shape == (5, 2)

    def test_stack(self):
        a = Tensor(np.ones(3, dtype=np.float32))
        b = Tensor(np.zeros(3, dtype=np.float32))
        assert Tensor.stack([a, b], axis=0).shape == (2, 3)


class TestConstructors:
    def test_zeros_ones_full(self):
        assert Tensor.zeros((2, 2)).data.sum() == 0
        assert Tensor.ones((2, 2)).data.sum() == 4
        assert Tensor.full((2,), 3.0).data.tolist() == [3.0, 3.0]

    def test_eye_arange(self):
        np.testing.assert_allclose(Tensor.eye(3).data, np.eye(3))
        np.testing.assert_allclose(Tensor.arange(4).data, [0, 1, 2, 3])

    def test_properties(self):
        a = Tensor(np.ones((3, 4), dtype=np.float32))
        assert a.ndim == 2
        assert a.size == 12
        assert a.numel() == 12
        assert len(a) == 3

    def test_detach_and_copy(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        d = a.detach()
        assert not d.requires_grad
        c = a.copy()
        c.data[0] = 99.0
        assert a.data[0] == pytest.approx(1.0)

    def test_item(self):
        assert Tensor([3.5]).item() == pytest.approx(3.5)

    def test_repr_mentions_shape(self):
        assert "shape=(2,)" in repr(Tensor([1.0, 2.0]))
