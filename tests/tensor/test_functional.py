"""Tests for the functional layer: activations, losses and segment reductions."""

import numpy as np
import pytest

from repro.tensor import Tensor
from repro.tensor import functional as F
from repro.tensor.random import RandomState, default_generator, seed_all


class TestActivations:
    def test_softmax_rows_sum_to_one(self):
        logits = Tensor(np.random.default_rng(0).standard_normal((5, 3)).astype(np.float32))
        np.testing.assert_allclose(F.softmax(logits).data.sum(axis=-1), np.ones(5), rtol=1e-5)

    def test_softmax_is_shift_invariant(self):
        logits = np.asarray([[1.0, 2.0, 3.0]], dtype=np.float32)
        a = F.softmax(Tensor(logits)).data
        b = F.softmax(Tensor(logits + 100.0)).data
        np.testing.assert_allclose(a, b, rtol=1e-5)

    def test_log_softmax_matches_log_of_softmax(self):
        logits = Tensor(np.random.default_rng(1).standard_normal((4, 6)).astype(np.float32))
        np.testing.assert_allclose(F.log_softmax(logits).data,
                                   np.log(F.softmax(logits).data), rtol=1e-4, atol=1e-5)

    def test_leaky_relu_negative_slope(self):
        x = Tensor([-2.0, 2.0])
        np.testing.assert_allclose(F.leaky_relu(x, 0.1).data, [-0.2, 2.0], rtol=1e-6)

    def test_elu_continuity_at_zero(self):
        x = Tensor([-1e-6, 1e-6])
        values = F.elu(x).data
        assert abs(values[0] - values[1]) < 1e-4

    def test_dropout_inactive_in_eval(self):
        x = Tensor(np.ones((10, 10), dtype=np.float32))
        out = F.dropout(x, 0.5, training=False, rng=np.random.default_rng(0))
        np.testing.assert_allclose(out.data, x.data)

    def test_dropout_preserves_expectation(self):
        x = Tensor(np.ones((200, 50), dtype=np.float32))
        out = F.dropout(x, 0.5, training=True, rng=np.random.default_rng(0))
        assert out.data.mean() == pytest.approx(1.0, abs=0.05)

    def test_dropout_zero_probability_is_identity(self):
        x = Tensor(np.ones((4, 4), dtype=np.float32))
        out = F.dropout(x, 0.0, training=True, rng=np.random.default_rng(0))
        assert out is x


class TestLosses:
    def test_cross_entropy_perfect_prediction_is_small(self):
        logits = Tensor(np.asarray([[10.0, -10.0], [-10.0, 10.0]], dtype=np.float32))
        loss = F.cross_entropy(logits, np.asarray([0, 1]))
        assert float(loss.data) < 1e-3

    def test_cross_entropy_uniform_prediction(self):
        logits = Tensor(np.zeros((4, 5), dtype=np.float32))
        loss = F.cross_entropy(logits, np.asarray([0, 1, 2, 3]))
        assert float(loss.data) == pytest.approx(np.log(5), rel=1e-4)

    def test_cross_entropy_respects_mask(self):
        logits = Tensor(np.asarray([[10.0, -10.0], [10.0, -10.0]], dtype=np.float32))
        targets = np.asarray([0, 1])  # second row is wrong but masked out
        mask = np.asarray([True, False])
        assert float(F.cross_entropy(logits, targets, mask=mask).data) < 1e-3

    def test_nll_empty_mask_raises(self):
        logits = Tensor(np.zeros((2, 2), dtype=np.float32))
        with pytest.raises(ValueError):
            F.nll_loss(F.log_softmax(logits), np.asarray([0, 1]),
                       mask=np.asarray([False, False]))

    def test_bce_with_logits_matches_manual(self):
        logits = np.asarray([[0.5, -0.3]], dtype=np.float32)
        targets = np.asarray([[1.0, 0.0]], dtype=np.float32)
        loss = F.binary_cross_entropy_with_logits(Tensor(logits), targets)
        probabilities = 1.0 / (1.0 + np.exp(-logits))
        manual = -(targets * np.log(probabilities)
                   + (1 - targets) * np.log(1 - probabilities)).mean()
        assert float(loss.data) == pytest.approx(manual, rel=1e-4)

    def test_bce_extreme_logits_is_finite(self):
        logits = Tensor(np.asarray([[60.0, -60.0]], dtype=np.float32))
        targets = np.asarray([[1.0, 0.0]], dtype=np.float32)
        assert np.isfinite(float(F.binary_cross_entropy_with_logits(Tensor(logits.data),
                                                                    targets).data))

    def test_mse_loss(self):
        prediction = Tensor([1.0, 2.0])
        assert float(F.mse_loss(prediction, np.asarray([1.0, 4.0])).data) == pytest.approx(2.0)


class TestSegmentOps:
    def test_segment_sum(self):
        x = Tensor(np.asarray([[1.0], [2.0], [3.0], [4.0]], dtype=np.float32))
        out = F.segment_sum(x, np.asarray([0, 0, 1, 1]), 2)
        np.testing.assert_allclose(out.data, [[3.0], [7.0]])

    def test_segment_mean(self):
        x = Tensor(np.asarray([[2.0], [4.0], [6.0]], dtype=np.float32))
        out = F.segment_mean(x, np.asarray([0, 0, 1]), 2)
        np.testing.assert_allclose(out.data, [[3.0], [6.0]])

    def test_segment_max(self):
        x = Tensor(np.asarray([[1.0, 9.0], [5.0, 2.0], [0.0, 3.0]], dtype=np.float32))
        out = F.segment_max(x, np.asarray([0, 0, 1]), 2)
        np.testing.assert_allclose(out.data, [[5.0, 9.0], [0.0, 3.0]])

    def test_segment_max_empty_segment_is_zero(self):
        x = Tensor(np.asarray([[1.0]], dtype=np.float32))
        out = F.segment_max(x, np.asarray([0]), 3)
        np.testing.assert_allclose(out.data[1:], np.zeros((2, 1)))

    def test_segment_mean_empty_segment_is_zero(self):
        x = Tensor(np.asarray([[4.0]], dtype=np.float32))
        out = F.segment_mean(x, np.asarray([1]), 2)
        np.testing.assert_allclose(out.data[0], [0.0])

    def test_scatter_softmax_normalises_per_segment(self):
        scores = Tensor(np.asarray([[1.0], [2.0], [0.5], [3.0]], dtype=np.float32))
        segments = np.asarray([0, 0, 1, 1])
        out = F.scatter_softmax(scores, segments, 2)
        first = out.data[segments == 0].sum()
        second = out.data[segments == 1].sum()
        assert first == pytest.approx(1.0, rel=1e-5)
        assert second == pytest.approx(1.0, rel=1e-5)


class TestRandomState:
    def test_seed_all_is_deterministic(self):
        a = seed_all(5).random(3)
        b = seed_all(5).random(3)
        np.testing.assert_allclose(a, b)

    def test_default_generator_follows_seed(self):
        seed_all(7)
        first = default_generator().random()
        seed_all(7)
        second = default_generator().random()
        assert first == pytest.approx(second)

    def test_spawn_is_independent_of_consumption(self):
        state = RandomState(3)
        spawned = state.spawn(offset=2)
        assert isinstance(spawned, np.random.Generator)
