"""Fault injection against the shard router.

The failure contract (PR 8's per-request isolation, extended to process
death): a worker that dies mid-flight or overruns the per-request deadline
fails only the requests that depended on it (``RequestResult.error`` set,
``stats.failures`` counted), the router restarts the worker, and the next
request on that shard succeeds — no deadlock, no poisoned fleet.

Faults are armed deterministically via ``ShardRouter.inject_fault``: the
worker's *next predict* dies (``os._exit``) or hangs.  Halo ``rows_query``
service never triggers an armed fault, so with a sequential flush the
fault hits exactly the chunk owned by the armed shard.
"""

import threading

import numpy as np
import pytest

from repro.serving import ServingEngine
from repro.sharding import (ShardTimeoutError, ShardWorkerDied,
                            ShardWorkerError, ShardedBlockSession)


class TestWorkerDeath:
    def test_death_fails_only_that_request(self, sharded_session,
                                           shard_requests):
        engine = ServingEngine(sharded_session, max_batch_size=32)
        engine.submit(shard_requests[0])  # chunk owned by shard 0
        engine.submit(shard_requests[1])  # chunk owned by shard 1
        baseline = engine.flush()
        assert all(result.ok for result in baseline)

        sharded_session.router.inject_fault(1, "die_next")
        engine.submit(shard_requests[0])
        engine.submit(shard_requests[1])
        results = engine.flush()
        assert results[0].ok
        np.testing.assert_array_equal(results[0].logits, baseline[0].logits)
        assert isinstance(results[1].error, ShardWorkerDied)
        assert results[1].logits.shape[0] == 0
        assert engine.stats.failures == 1

        # the router restarted the worker; the shard serves again, and the
        # replacement's answers are bit-identical to the pre-crash ones
        assert sharded_session.router.restarts(1) == 1
        engine.submit(shard_requests[1])
        recovered = engine.flush()[0]
        assert recovered.ok
        np.testing.assert_array_equal(recovered.logits, baseline[1].logits)
        assert sharded_session.router.restarts(1) == 1  # no extra restart

    def test_direct_run_raises_and_recovers(self, sharded_session,
                                            shard_requests):
        baseline = sharded_session.run(shard_requests[0])
        sharded_session.router.inject_fault(0, "die_next")
        with pytest.raises(ShardWorkerError):
            sharded_session.run(shard_requests[0])
        after = sharded_session.run(shard_requests[0])
        np.testing.assert_array_equal(after.logits, baseline.logits)


class TestDeadline:
    def test_hang_fails_only_that_request(self, shard_artifact, parity_graph,
                                          shard_requests):
        with ShardedBlockSession(shard_artifact, parity_graph, shards=2,
                                 partition="hash", fanouts=3, batch_size=32,
                                 seed=7, request_deadline_s=1.0) as session:
            engine = ServingEngine(session, max_batch_size=32)
            engine.submit(shard_requests[0])
            baseline = engine.flush()[0]
            assert baseline.ok

            session.router.inject_fault(0, "hang_next", 60.0)
            engine.submit(shard_requests[0])
            engine.submit(shard_requests[1])
            results = engine.flush()
            assert isinstance(results[0].error, ShardTimeoutError)
            assert results[1].ok
            assert engine.stats.failures == 1

            # the hung worker was killed and replaced
            assert session.router.restarts(0) == 1
            engine.submit(shard_requests[0])
            recovered = engine.flush()[0]
            assert recovered.ok
            np.testing.assert_array_equal(recovered.logits, baseline.logits)


class TestConcurrency:
    def test_no_deadlock_under_concurrent_submitters(self, sharded_session,
                                                     shard_requests):
        """Several threads submit while a worker dies: every call returns
        (success or a shard error), nothing hangs, and the fleet recovers."""
        baseline = [sharded_session.run(nodes) for nodes in shard_requests]
        sharded_session.router.inject_fault(1, "die_next")
        outcomes = []
        lock = threading.Lock()

        def client(nodes):
            try:
                run = sharded_session.run(nodes)
                outcome = ("ok", run.logits)
            except ShardWorkerError:
                outcome = ("failed", None)
            with lock:
                outcomes.append(outcome)

        threads = [threading.Thread(target=client, args=(nodes,), daemon=True)
                   for nodes in shard_requests * 3]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not any(thread.is_alive() for thread in threads), \
            "a submitter deadlocked"
        assert len(outcomes) == len(threads)
        assert any(status == "failed" for status, _ in outcomes)

        # full recovery: both shards serve bit-identical answers again
        for nodes, reference in zip(shard_requests, baseline):
            after = sharded_session.run(nodes)
            np.testing.assert_array_equal(after.logits, reference.logits)
