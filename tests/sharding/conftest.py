"""Shared fixtures of the sharded-serving test suite.

Model/graph builders come from the session-scoped parity fixtures in
``tests/conftest.py``; here we only add the sharded sessions themselves.
Sessions are function-scoped: fault tests kill workers, and every test
should start from a healthy fleet.
"""

import numpy as np
import pytest

from repro.graphs.partition import partition_graph


@pytest.fixture(scope="module")
def shard_artifact(parity_artifact):
    return parity_artifact("gcn", 1)


@pytest.fixture
def sharded_session(shard_artifact, parity_graph):
    from repro.sharding import ShardedBlockSession

    session = ShardedBlockSession(shard_artifact, parity_graph, shards=2,
                                  partition="hash", fanouts=3, batch_size=32,
                                  seed=7, request_deadline_s=15.0)
    yield session
    session.close()


@pytest.fixture(scope="module")
def shard_requests(parity_graph):
    """One 32-seed request per shard, each wholly owned by its shard.

    Sized exactly to the sessions' ``batch_size`` so every request is one
    chunk — request-level failure isolation then maps 1:1 onto the router's
    chunk-level isolation.
    """
    assignment = partition_graph(parity_graph, 2, strategy="hash")
    requests = []
    for shard in (0, 1):
        members = np.flatnonzero(assignment == shard)
        assert members.size >= 32
        requests.append(members[:32])
    return requests
