"""Behaviour of the sharded session beyond raw parity (which lives in
``tests/parity_matrix.py::TestShardParityMatrix``): restricted worker
views, cache aggregation, engine integration, argument validation."""

import numpy as np
import pytest

from repro.graphs.partition import partition_graph
from repro.serving import AsyncServingEngine, BlockSession, ServingEngine
from repro.sharding import ShardedBlockSession, restricted_graph


class TestRestrictedGraph:
    def test_foreign_rows_are_genuinely_empty(self, parity_graph):
        """Workers must not be able to answer for rows they do not own —
        otherwise the parity tests would never exercise the halo protocol."""
        assignment = partition_graph(parity_graph, 2, strategy="hash")
        view = restricted_graph(parity_graph, assignment, 0)
        assert view.num_nodes == parity_graph.num_nodes  # ids stay global
        assert (assignment[view.edge_index[0]] == 0).all()
        csr = view.adjacency(add_self_loops=False).csr
        foreign = np.flatnonzero(assignment != 0)
        assert (np.diff(csr.indptr)[foreign] == 0).all()
        # features stay shared: halo rows gather sources from local memory
        assert view.x is parity_graph.x

    def test_every_edge_owned_by_exactly_one_shard(self, parity_graph):
        assignment = partition_graph(parity_graph, 2, strategy="degree")
        views = [restricted_graph(parity_graph, assignment, shard)
                 for shard in (0, 1)]
        total = sum(view.edge_index.shape[1] for view in views)
        assert total == parity_graph.edge_index.shape[1]


class TestShardedBlockSession:
    def test_bitops_match_single_process(self, shard_artifact, parity_graph,
                                         sharded_session):
        seeds = np.arange(0, parity_graph.num_nodes, 2, dtype=np.int64)
        reference = BlockSession(shard_artifact, parity_graph, fanouts=3,
                                 batch_size=32, seed=7).run(seeds)
        run = sharded_session.run(seeds)
        assert run.bit_operations.total_bit_operations \
            == reference.bit_operations.total_bit_operations
        assert run.num_input_nodes == reference.num_input_nodes
        assert run.num_edges == reference.num_edges

    def test_empty_request(self, sharded_session, shard_artifact):
        run = sharded_session.run(np.empty(0, dtype=np.int64))
        assert run.logits.shape == (0, shard_artifact.num_classes)
        assert run.num_seeds == 0

    def test_cache_stats_aggregate_across_shards(self, shard_artifact,
                                                 parity_graph):
        seeds = np.arange(0, parity_graph.num_nodes, 3, dtype=np.int64)
        with ShardedBlockSession(shard_artifact, parity_graph, shards=2,
                                 fanouts=3, batch_size=32, seed=7,
                                 cache_size=4096) as session:
            assert session.run(seeds) is not None
            cold = session.cache_stats()
            session.run(seeds)
            warm = session.cache_stats()
        assert cold.misses > 0
        assert warm.hits > cold.hits and warm.misses == cold.misses

    def test_cache_stats_none_when_cache_off(self, sharded_session):
        assert sharded_session.cache_stats() is None

    def test_rejects_bad_arguments(self, shard_artifact, parity_graph):
        with pytest.raises(ValueError):
            ShardedBlockSession(shard_artifact, parity_graph, shards=0)
        with pytest.raises(ValueError):
            ShardedBlockSession(shard_artifact, parity_graph, shards=2,
                                partition="roulette")
        with pytest.raises(ValueError):
            ShardedBlockSession(shard_artifact, parity_graph, shards=2,
                                batch_size=0)

    def test_close_is_idempotent(self, shard_artifact, parity_graph):
        session = ShardedBlockSession(shard_artifact, parity_graph, shards=2,
                                      fanouts=3, batch_size=32)
        session.run(np.arange(8, dtype=np.int64))
        session.close()
        session.close()


class TestEngineIntegration:
    """The serving engines treat the sharded session like any other
    block session — same results, request for request."""

    def test_serving_engine_over_sharded_session(self, shard_artifact,
                                                 parity_graph,
                                                 sharded_session):
        requests = [np.arange(0, 24, dtype=np.int64),
                    np.arange(50, 70, dtype=np.int64),
                    np.asarray([3, 90, 17])]
        reference = BlockSession(shard_artifact, parity_graph, fanouts=3,
                                 batch_size=32, seed=7)
        single = ServingEngine(reference, max_batch_size=32)
        sharded = ServingEngine(sharded_session, max_batch_size=32)
        for nodes in requests:
            single.submit(nodes)
            sharded.submit(nodes)
        for ours, theirs in zip(sharded.flush(), single.flush()):
            assert ours.ok and theirs.ok
            np.testing.assert_array_equal(ours.logits, theirs.logits)

    def test_async_engine_over_sharded_session(self, shard_artifact,
                                               parity_graph, sharded_session):
        reference = BlockSession(shard_artifact, parity_graph, fanouts=3,
                                 batch_size=32, seed=7)
        nodes = np.arange(10, 42, dtype=np.int64)
        with AsyncServingEngine(sharded_session, max_batch=32,
                                max_wait_ms=1.0) as engine:
            result = engine.submit(nodes).result(timeout=60)
        assert result.ok
        np.testing.assert_array_equal(result.logits,
                                      reference.predict(nodes))
