"""Tests for the relaxed layers, Algorithm 1 (build + search) and the MixQ API."""

import numpy as np
import pytest

from repro.core.build import (
    build_relaxed_graph_classifier,
    build_relaxed_node_classifier,
    layer_dimensions,
)
from repro.core.mixq import MixQGraphClassifier, MixQNodeClassifier
from repro.core.relaxed_modules import (
    RelaxedGCNConv,
    RelaxedGINConv,
    RelaxedSAGEConv,
)
from repro.core.selection import search_graph_bitwidths, search_node_bitwidths
from repro.graphs.batch import GraphBatch
from repro.quant.degree_quant import DegreeQuantizer, degree_quant_factory
from repro.quant.qmodules import gcn_component_names
from repro.tensor import Tensor

BIT_CHOICES = (2, 4, 8)


class TestRelaxedConvs:
    @pytest.mark.parametrize("conv_class", [RelaxedGCNConv, RelaxedGINConv, RelaxedSAGEConv])
    def test_forward_shape(self, conv_class, tiny_graph):
        conv = conv_class(5, 6, BIT_CHOICES, quantize_input=True,
                          rng=np.random.default_rng(0))
        out = conv(Tensor(tiny_graph.x), tiny_graph)
        assert out.shape == (12, 6)
        assert np.isfinite(out.data).all()

    @pytest.mark.parametrize("conv_class", [RelaxedGCNConv, RelaxedGINConv, RelaxedSAGEConv])
    def test_export_bits_only_contains_valid_choices(self, conv_class, tiny_graph):
        conv = conv_class(5, 6, BIT_CHOICES, quantize_input=True,
                          rng=np.random.default_rng(0))
        conv(Tensor(tiny_graph.x), tiny_graph)
        exported = conv.export_bits("conv0")
        assert exported
        assert set(exported.values()) <= set(BIT_CHOICES)

    def test_alpha_gradients_flow_from_task_loss(self, tiny_graph):
        conv = RelaxedGCNConv(5, 3, BIT_CHOICES, quantize_input=True,
                              rng=np.random.default_rng(0))
        (conv(Tensor(tiny_graph.x), tiny_graph) ** 2).sum().backward()
        assert conv.weight_relaxed.alpha.grad is not None
        assert conv.adjacency_relaxed.alpha.grad is not None

    def test_adjacency_numel_is_nnz(self, tiny_graph):
        conv = RelaxedGCNConv(5, 3, BIT_CHOICES, rng=np.random.default_rng(0))
        conv(Tensor(tiny_graph.x), tiny_graph)
        assert conv.adjacency_relaxed.last_numel == \
            tiny_graph.normalized_adjacency().nnz


class TestBuilders:
    def test_layer_dimensions(self):
        assert layer_dimensions(10, 16, 3, 1) == [(10, 3)]
        assert layer_dimensions(10, 16, 3, 3) == [(10, 16), (16, 16), (16, 3)]
        with pytest.raises(ValueError):
            layer_dimensions(10, 16, 3, 0)

    def test_relaxed_gcn_has_nine_components_for_two_layers(self, tiny_graph):
        model = build_relaxed_node_classifier("gcn", [(5, 8), (8, 3)], BIT_CHOICES,
                                              rng=np.random.default_rng(0))
        model(tiny_graph)
        assignment = model.export_assignment()
        assert sorted(assignment) == sorted(gcn_component_names(2))

    def test_unknown_conv_type(self):
        with pytest.raises(KeyError):
            build_relaxed_node_classifier("chebnet", [(5, 3)], BIT_CHOICES)

    def test_graph_classifier_builder(self, tu_graphs):
        model = build_relaxed_graph_classifier(tu_graphs[0].num_features, 8, 2,
                                               BIT_CHOICES, num_layers=2,
                                               rng=np.random.default_rng(0))
        batch = GraphBatch(tu_graphs[:4])
        assert model(batch).shape == (4, 2)
        assignment = model.export_assignment()
        assert any(key.startswith("head0") for key in assignment)


class TestBitWidthSearch:
    def test_node_search_returns_valid_assignment(self, small_cora):
        model = build_relaxed_node_classifier(
            "gcn", [(small_cora.num_features, 8), (8, small_cora.num_classes)],
            BIT_CHOICES, rng=np.random.default_rng(0))
        result = search_node_bitwidths(model, small_cora, lambda_value=0.1, epochs=8)
        assert set(result.assignment.values()) <= set(BIT_CHOICES)
        assert len(result.loss_history) == 8
        assert 2.0 <= result.average_bits <= 8.0

    def test_large_lambda_compresses_more(self, small_cora):
        dims = [(small_cora.num_features, 8), (8, small_cora.num_classes)]
        results = {}
        for lam in (-1e-8, 5.0):
            model = build_relaxed_node_classifier("gcn", dims, BIT_CHOICES,
                                                  rng=np.random.default_rng(0))
            results[lam] = search_node_bitwidths(model, small_cora, lam, epochs=15)
        assert results[5.0].average_bits <= results[-1e-8].average_bits

    def test_positive_lambda_drives_expected_bits_down(self, small_cora):
        dims = [(small_cora.num_features, 8), (8, small_cora.num_classes)]
        model = build_relaxed_node_classifier("gcn", dims, BIT_CHOICES,
                                              rng=np.random.default_rng(0))
        result = search_node_bitwidths(model, small_cora, lambda_value=50.0, epochs=25)
        assert result.expected_bits_history[-1] < result.expected_bits_history[0]

    def test_decoupled_routing_runs(self, small_cora):
        dims = [(small_cora.num_features, 8), (8, small_cora.num_classes)]
        model = build_relaxed_node_classifier("gcn", dims, BIT_CHOICES,
                                              rng=np.random.default_rng(0))
        result = search_node_bitwidths(model, small_cora, lambda_value=1.0, epochs=5,
                                       penalty_only_alphas=True)
        assert set(result.assignment.values()) <= set(BIT_CHOICES)

    def test_graph_search(self, tu_graphs):
        model = build_relaxed_graph_classifier(tu_graphs[0].num_features, 8, 2,
                                               (4, 8), num_layers=2,
                                               rng=np.random.default_rng(0))
        result = search_graph_bitwidths(model, tu_graphs[:12], lambda_value=0.5,
                                        epochs=2, batch_size=6)
        assert set(result.assignment.values()) <= {4, 8}


class TestMixQAPI:
    def test_fit_pipeline(self, small_cora):
        mixq = MixQNodeClassifier("gcn", small_cora.num_features, 8,
                                  small_cora.num_classes, bit_choices=BIT_CHOICES,
                                  lambda_value=0.1, seed=0)
        result = mixq.fit(small_cora, search_epochs=8, train_epochs=15)
        assert 0.0 <= result.accuracy <= 1.0
        assert 2.0 <= result.average_bits <= 8.0
        assert result.giga_bit_operations > 0
        assert set(result.assignment.values()) <= set(BIT_CHOICES)

    def test_finalize_requires_search(self, small_cora):
        mixq = MixQNodeClassifier("gcn", small_cora.num_features, 8,
                                  small_cora.num_classes)
        with pytest.raises(RuntimeError):
            mixq.finalize()

    def test_evaluate_requires_model(self, small_cora):
        mixq = MixQNodeClassifier("gcn", small_cora.num_features, 8,
                                  small_cora.num_classes)
        with pytest.raises(RuntimeError):
            mixq.evaluate(small_cora)

    def test_explicit_assignment_bypasses_search(self, small_cora):
        from repro.quant.qmodules import uniform_assignment
        assignment = uniform_assignment(gcn_component_names(2), 4)
        mixq = MixQNodeClassifier("gcn", small_cora.num_features, 8,
                                  small_cora.num_classes, seed=0)
        result = mixq.fit(small_cora, train_epochs=10, assignment=assignment)
        assert result.average_bits == pytest.approx(4.0)
        assert result.search is None

    def test_degree_quant_factory_integration(self, small_cora):
        mixq = MixQNodeClassifier("gcn", small_cora.num_features, 8,
                                  small_cora.num_classes, bit_choices=BIT_CHOICES,
                                  lambda_value=0.1, seed=0,
                                  quantizer_factory=degree_quant_factory())
        result = mixq.fit(small_cora, search_epochs=5, train_epochs=10)
        assert any(isinstance(m, DegreeQuantizer)
                   for m in mixq.quantized_model.modules())
        assert 0.0 <= result.accuracy <= 1.0

    def test_graph_classifier_api(self, tu_graphs):
        mixq = MixQGraphClassifier(tu_graphs[0].num_features, 8, 2, num_layers=2,
                                   bit_choices=(4, 8), lambda_value=-1e-8, seed=0)
        result = mixq.fit(tu_graphs[:16], tu_graphs[16:], search_epochs=2,
                          train_epochs=4, batch_size=8)
        assert 0.0 <= result.accuracy <= 1.0
        assert 4.0 <= result.average_bits <= 8.0
