"""Tests for the relaxed quantizer (Equation 6) and the penalty C(T) (Equation 8)."""

import numpy as np
import pytest

from repro.core.penalty import (
    alpha_parameters,
    architecture_parameters,
    expected_average_bits,
    relaxed_quantizers,
    total_penalty,
)
from repro.core.relaxed_quantizer import RelaxedQuantizer
from repro.core.relaxed_modules import RelaxedLinear
from repro.nn.module import Module
from repro.tensor import Tensor


class TestRelaxedQuantizer:
    def test_requires_choices(self):
        with pytest.raises(ValueError):
            RelaxedQuantizer([])

    def test_initial_mixture_is_uniform(self):
        relaxed = RelaxedQuantizer([2, 4, 8])
        np.testing.assert_allclose(relaxed.probability_values(), np.ones(3) / 3, rtol=1e-6)

    def test_expected_bits_initial(self):
        relaxed = RelaxedQuantizer([2, 4, 8])
        assert relaxed.expected_bits_value() == pytest.approx((2 + 4 + 8) / 3)

    def test_selected_bits_follows_argmax(self):
        relaxed = RelaxedQuantizer([2, 4, 8])
        relaxed.alpha.data[:] = [0.0, 5.0, 0.0]
        assert relaxed.selected_bits() == 4

    def test_forward_is_convex_combination(self):
        relaxed = RelaxedQuantizer([2, 8])
        x = Tensor(np.random.default_rng(0).uniform(-1, 1, (20,)).astype(np.float32))
        out = relaxed(x)
        low = relaxed.quantizers[0](x).data
        high = relaxed.quantizers[1](x).data
        assert np.all(out.data >= np.minimum(low, high) - 1e-6)
        assert np.all(out.data <= np.maximum(low, high) + 1e-6)

    def test_forward_records_numel(self):
        relaxed = RelaxedQuantizer([2, 4])
        relaxed(Tensor(np.ones((7, 3), dtype=np.float32)))
        assert relaxed.last_numel == 21

    def test_alpha_receives_gradient_from_output(self):
        relaxed = RelaxedQuantizer([2, 8])
        x = Tensor(np.random.default_rng(1).uniform(-1, 1, (10,)).astype(np.float32))
        (relaxed(x) ** 2).sum().backward()
        assert relaxed.alpha.grad is not None
        assert np.abs(relaxed.alpha.grad).sum() > 0

    def test_penalty_proportional_to_numel(self):
        relaxed = RelaxedQuantizer([4])
        relaxed(Tensor(np.ones((10, 10), dtype=np.float32)))
        small = float(relaxed.penalty().data)
        relaxed(Tensor(np.ones((100, 10), dtype=np.float32)))
        large = float(relaxed.penalty().data)
        assert large == pytest.approx(small * 10, rel=1e-5)

    def test_penalty_gradient_favours_smaller_bits(self):
        """The penalty gradient pushes alpha towards the smaller bit-width."""
        relaxed = RelaxedQuantizer([2, 8])
        relaxed(Tensor(np.ones((50, 4), dtype=np.float32)))
        relaxed.penalty().backward()
        grad = relaxed.alpha.grad
        # Gradient descent decreases alpha for the 8-bit choice more than for 2-bit.
        assert grad[1] > grad[0]

    def test_mixture_terms_validation(self):
        relaxed = RelaxedQuantizer([2, 4])
        with pytest.raises(ValueError):
            relaxed.mixture_terms([Tensor([1.0])])

    def test_mixture_terms_blends_values(self):
        relaxed = RelaxedQuantizer([2, 4])
        relaxed.alpha.data[:] = [0.0, 100.0]
        out = relaxed.mixture_terms([Tensor([0.0]), Tensor([10.0])])
        assert out.data[0] == pytest.approx(10.0, abs=1e-3)


class _ToyRelaxed(Module):
    def __init__(self):
        super().__init__()
        self.layer = RelaxedLinear(4, 3, [2, 4, 8], rng=np.random.default_rng(0))

    def forward(self, x):
        return self.layer(x)


class TestPenaltyAggregation:
    def test_relaxed_quantizers_discovered(self):
        model = _ToyRelaxed()
        assert len(relaxed_quantizers(model)) == 2  # weight + output

    def test_total_penalty_requires_relaxed_modules(self):
        from repro.nn import Linear
        with pytest.raises(ValueError):
            total_penalty(Linear(2, 2))

    def test_total_penalty_positive_after_forward(self):
        model = _ToyRelaxed()
        model(Tensor(np.ones((5, 4), dtype=np.float32)))
        assert float(total_penalty(model).data) > 0

    def test_expected_average_bits_range(self):
        model = _ToyRelaxed()
        value = expected_average_bits(model)
        assert 2.0 <= value <= 8.0

    def test_parameter_partition(self):
        model = _ToyRelaxed()
        alphas = alpha_parameters(model)
        weights = architecture_parameters(model)
        assert len(alphas) == 2
        assert len(alphas) + len(weights) == len(model.parameters())
        assert not {id(a) for a in alphas} & {id(w) for w in weights}
