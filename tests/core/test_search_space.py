"""Tests for search-space enumeration, random baselines and Pareto fronts."""

import numpy as np
import pytest

from repro.core.search_space import (
    assignment_average_bits,
    bit_width_histogram,
    enumerate_assignments,
    pareto_front,
    random_assignment,
    sample_assignments,
)


NAMES = ["a", "b", "c"]


class TestEnumeration:
    def test_full_grid_size(self):
        assignments = list(enumerate_assignments(NAMES, [2, 4, 8]))
        assert len(assignments) == 27

    def test_limit(self):
        assert len(list(enumerate_assignments(NAMES, [2, 4, 8], limit=5))) == 5

    def test_paper_grid_size_for_two_layer_gcn(self):
        from repro.quant.qmodules import gcn_component_names
        names = gcn_component_names(2)
        # 3^9 = 19,683 combinations quoted in the paper; enumerate only a prefix.
        assert len(names) == 9
        assert len(list(enumerate_assignments(names, [2, 4, 8], limit=100))) == 100

    def test_assignments_cover_all_components(self):
        for assignment in enumerate_assignments(NAMES, [2, 4], limit=8):
            assert set(assignment) == set(NAMES)


class TestRandomAssignments:
    def test_values_in_choices(self):
        rng = np.random.default_rng(0)
        assignment = random_assignment(NAMES, [2, 4, 8], rng)
        assert set(assignment.values()) <= {2, 4, 8}

    def test_output_pinning(self):
        rng = np.random.default_rng(0)
        assignment = random_assignment(NAMES, [2, 4], rng, output_component="c",
                                       output_bits=8)
        assert assignment["c"] == 8

    def test_pinning_unknown_component(self):
        with pytest.raises(KeyError):
            random_assignment(NAMES, [2, 4], np.random.default_rng(0),
                              output_component="z", output_bits=8)

    def test_sampling_unique(self):
        samples = sample_assignments(NAMES, [2, 4, 8], 10, np.random.default_rng(0))
        keys = {tuple(sorted(s.items())) for s in samples}
        assert len(keys) == len(samples) == 10

    def test_average_bits(self):
        assert assignment_average_bits({"a": 2, "b": 4, "c": 8}) == pytest.approx(14 / 3)


class TestParetoFront:
    def test_dominated_points_excluded(self):
        points = [(2.0, 0.5), (4.0, 0.8), (8.0, 0.9), (4.0, 0.4), (8.0, 0.7)]
        front = pareto_front(points)
        assert 0 in front and 1 in front and 2 in front
        assert 3 not in front and 4 not in front

    def test_front_is_monotone(self):
        rng = np.random.default_rng(0)
        points = [(float(rng.uniform(2, 8)), float(rng.uniform(0, 1))) for _ in range(50)]
        front = pareto_front(points)
        ordered = sorted(front, key=lambda i: points[i][0])
        accuracies = [points[i][1] for i in ordered]
        assert all(a < b for a, b in zip(accuracies, accuracies[1:]))

    def test_single_point(self):
        assert pareto_front([(3.0, 0.5)]) == [0]


class TestHistogram:
    def test_counts_sum_to_number_of_assignments(self):
        assignments = [
            {"a": 2, "b": 4, "c": 8},
            {"a": 2, "b": 2, "c": 8},
            {"a": 4, "b": 4, "c": 4},
        ]
        histogram = bit_width_histogram(assignments, NAMES, [2, 4, 8])
        for name in NAMES:
            assert sum(histogram[name].values()) == 3
        assert histogram["a"][2] == 2
        assert histogram["c"][8] == 2
