"""Shared fixtures: tiny graphs, datasets, and the parity-matrix builders.

The ``parity_*`` factory fixtures back ``tests/parity_matrix.py`` — one
memoised builder per execution mode (float model, trained QAT model,
exported integer artifact), keyed by ``(conv family, heads)``, so every
matrix cell reuses the same trained weights and the whole matrix stays
cheap enough for tier-1.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs.datasets import load_cora, load_tu_dataset
from repro.graphs.datasets.synthetic import SBMConfig, generate_sbm_graph
from repro.graphs.graph import Graph

#: Hidden width of every parity-matrix model (divisible by every head count).
PARITY_HIDDEN = 16
#: TAG polynomial depth used by the parity matrix (kept small for speed).
PARITY_TAG_HOPS = 2


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(0)


@pytest.fixture(scope="session")
def tiny_graph() -> Graph:
    """A deterministic 12-node graph with features, labels and masks."""
    edges = np.asarray([
        [0, 1, 1, 2, 2, 3, 4, 5, 5, 6, 7, 8, 8, 9, 10, 11, 0, 4, 6, 10],
        [1, 0, 2, 1, 3, 2, 5, 4, 6, 5, 8, 7, 9, 8, 11, 10, 4, 0, 10, 6],
    ])
    generator = np.random.default_rng(7)
    x = generator.standard_normal((12, 5)).astype(np.float32)
    y = np.asarray([0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2])
    train = np.zeros(12, dtype=bool)
    train[[0, 4, 8]] = True
    val = np.zeros(12, dtype=bool)
    val[[1, 5, 9]] = True
    test = np.zeros(12, dtype=bool)
    test[[2, 3, 6, 7, 10, 11]] = True
    return Graph(x, edges, y=y, train_mask=train, val_mask=val, test_mask=test,
                 name="tiny")


@pytest.fixture(scope="session")
def small_cora() -> Graph:
    """A small but realistic citation-style graph (shared, read-only)."""
    return load_cora(scale=0.08, seed=0)


@pytest.fixture(scope="session")
def sbm_graph() -> Graph:
    config = SBMConfig(num_nodes=120, num_classes=4, num_features=32,
                       average_degree=4.0, name="sbm-test")
    return generate_sbm_graph(config, seed=3)


@pytest.fixture(scope="session")
def tu_graphs():
    """A small TU-style graph-classification dataset (shared, read-only)."""
    return load_tu_dataset("imdb-b", num_graphs=24, seed=0)


# --------------------------------------------------------------------------- #
# parity-matrix builders (see tests/parity_matrix.py)
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="session")
def parity_graph(sbm_graph) -> Graph:
    """The graph every parity-matrix cell runs against."""
    return sbm_graph


@pytest.fixture(scope="session")
def parity_float_model(parity_graph):
    """Memoised ``(family, heads) -> eval-mode float NodeClassifier``."""
    from repro.gnn.models import build_node_model

    cache = {}

    def build(family: str, heads: int):
        key = (family, heads)
        if key not in cache:
            model = build_node_model(family, parity_graph.num_features,
                                     PARITY_HIDDEN, parity_graph.num_classes,
                                     heads=heads, dropout=0.0,
                                     rng=np.random.default_rng(0))
            model.eval()
            cache[key] = model
        return cache[key]

    return build


@pytest.fixture(scope="session")
def parity_quant_model(parity_graph):
    """Memoised ``(family, heads) -> trained eval-mode QuantNodeClassifier``.

    A few QAT epochs initialise every observer on realistic activations;
    parity is an execution-path contract, so accuracy is irrelevant here.
    """
    from repro.core.search_space import conv_component_names
    from repro.quant.qmodules import QuantNodeClassifier, uniform_assignment
    from repro.training.trainer import train_node_classifier

    cache = {}

    def build(family: str, heads: int):
        key = (family, heads)
        if key not in cache:
            assignment = uniform_assignment(
                conv_component_names(family, 2, hops=PARITY_TAG_HOPS), 8)
            model = QuantNodeClassifier.from_assignment(
                [(parity_graph.num_features, PARITY_HIDDEN),
                 (PARITY_HIDDEN, parity_graph.num_classes)], family,
                assignment, dropout=0.0, hops=PARITY_TAG_HOPS, heads=heads,
                rng=np.random.default_rng(1))
            train_node_classifier(model, parity_graph, epochs=4, lr=0.02)
            model.eval()
            cache[key] = model
        return cache[key]

    return build


@pytest.fixture(scope="session")
def parity_float_artifact(parity_graph):
    """Memoised ``(family, heads) -> float-export QuantizedArtifact``.

    A 32-bit uniform assignment makes every quantizer an identity, so the
    exported artifact serves the float fallback path — the float-export
    axis of the shard-parity matrix.
    """
    from repro.core.search_space import conv_component_names
    from repro.quant.qmodules import QuantNodeClassifier, uniform_assignment
    from repro.serving import QuantizedArtifact
    from repro.training.trainer import train_node_classifier

    cache = {}

    def build(family: str, heads: int):
        key = (family, heads)
        if key not in cache:
            assignment = uniform_assignment(
                conv_component_names(family, 2, hops=PARITY_TAG_HOPS), 32)
            model = QuantNodeClassifier.from_assignment(
                [(parity_graph.num_features, PARITY_HIDDEN),
                 (PARITY_HIDDEN, parity_graph.num_classes)], family,
                assignment, dropout=0.0, hops=PARITY_TAG_HOPS, heads=heads,
                rng=np.random.default_rng(1))
            train_node_classifier(model, parity_graph, epochs=2, lr=0.02)
            model.eval()
            cache[key] = QuantizedArtifact.from_model(model)
        return cache[key]

    return build


@pytest.fixture(scope="session")
def parity_artifact(parity_quant_model):
    """Memoised ``(family, heads) -> QuantizedArtifact`` for integer serving."""
    from repro.serving import QuantizedArtifact

    cache = {}

    def build(family: str, heads: int):
        key = (family, heads)
        if key not in cache:
            cache[key] = QuantizedArtifact.from_model(
                parity_quant_model(family, heads))
        return cache[key]

    return build
