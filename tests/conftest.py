"""Shared fixtures: tiny graphs and datasets reused across the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs.datasets import load_cora, load_tu_dataset
from repro.graphs.datasets.synthetic import SBMConfig, generate_sbm_graph
from repro.graphs.graph import Graph


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(0)


@pytest.fixture(scope="session")
def tiny_graph() -> Graph:
    """A deterministic 12-node graph with features, labels and masks."""
    edges = np.asarray([
        [0, 1, 1, 2, 2, 3, 4, 5, 5, 6, 7, 8, 8, 9, 10, 11, 0, 4, 6, 10],
        [1, 0, 2, 1, 3, 2, 5, 4, 6, 5, 8, 7, 9, 8, 11, 10, 4, 0, 10, 6],
    ])
    generator = np.random.default_rng(7)
    x = generator.standard_normal((12, 5)).astype(np.float32)
    y = np.asarray([0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2])
    train = np.zeros(12, dtype=bool)
    train[[0, 4, 8]] = True
    val = np.zeros(12, dtype=bool)
    val[[1, 5, 9]] = True
    test = np.zeros(12, dtype=bool)
    test[[2, 3, 6, 7, 10, 11]] = True
    return Graph(x, edges, y=y, train_mask=train, val_mask=val, test_mask=test,
                 name="tiny")


@pytest.fixture(scope="session")
def small_cora() -> Graph:
    """A small but realistic citation-style graph (shared, read-only)."""
    return load_cora(scale=0.08, seed=0)


@pytest.fixture(scope="session")
def sbm_graph() -> Graph:
    config = SBMConfig(num_nodes=120, num_classes=4, num_features=32,
                       average_degree=4.0, name="sbm-test")
    return generate_sbm_graph(config, seed=3)


@pytest.fixture(scope="session")
def tu_graphs():
    """A small TU-style graph-classification dataset (shared, read-only)."""
    return load_tu_dataset("imdb-b", num_graphs=24, seed=0)
