"""Tests for the Module/Parameter system, Sequential and ModuleList containers."""

import numpy as np
import pytest

from repro.nn import Linear, MLP, Module, ModuleList, Parameter, ReLU, Sequential
from repro.tensor import Tensor


class Toy(Module):
    def __init__(self):
        super().__init__()
        self.linear = Linear(4, 3, rng=np.random.default_rng(0))
        self.scale = Parameter(np.ones(1, dtype=np.float32))
        self.register_buffer("counter", np.asarray(0.0))

    def forward(self, x):
        return self.linear(x) * self.scale


class TestModule:
    def test_parameter_registration(self):
        toy = Toy()
        names = dict(toy.named_parameters())
        assert "scale" in names
        assert "linear.weight" in names
        assert "linear.bias" in names

    def test_parameters_are_unique_objects(self):
        toy = Toy()
        parameters = toy.parameters()
        assert len(parameters) == len({id(p) for p in parameters}) == 3

    def test_module_traversal(self):
        toy = Toy()
        assert sum(1 for _ in toy.modules()) == 2
        assert [name for name, _ in toy.named_modules()] == ["", "linear"]

    def test_train_eval_propagates(self):
        toy = Toy()
        toy.eval()
        assert not toy.linear.training
        toy.train()
        assert toy.linear.training

    def test_zero_grad(self):
        toy = Toy()
        out = toy(Tensor(np.ones((2, 4), dtype=np.float32)))
        out.sum().backward()
        assert toy.linear.weight.grad is not None
        toy.zero_grad()
        assert toy.linear.weight.grad is None

    def test_num_parameters(self):
        toy = Toy()
        assert toy.num_parameters() == 4 * 3 + 3 + 1

    def test_state_dict_roundtrip(self):
        toy = Toy()
        state = toy.state_dict()
        assert "linear.weight" in state and "counter" in state
        toy.linear.weight.data[:] = 0.0
        toy.load_state_dict(state)
        assert np.abs(toy.linear.weight.data).sum() > 0

    def test_state_dict_is_a_copy(self):
        toy = Toy()
        state = toy.state_dict()
        state["scale"][:] = 55.0
        assert toy.scale.data[0] == pytest.approx(1.0)

    def test_buffer_update(self):
        toy = Toy()
        toy.update_buffer("counter", np.asarray(3.0))
        assert float(toy.counter) == 3.0
        with pytest.raises(KeyError):
            toy.update_buffer("missing", np.asarray(0.0))

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module()(1)


class TestContainers:
    def test_sequential_applies_in_order(self):
        model = Sequential(Linear(3, 5, rng=np.random.default_rng(0)), ReLU(),
                           Linear(5, 2, rng=np.random.default_rng(1)))
        out = model(Tensor(np.ones((4, 3), dtype=np.float32)))
        assert out.shape == (4, 2)
        assert len(model) == 3
        assert isinstance(model[1], ReLU)

    def test_sequential_registers_parameters(self):
        model = Sequential(Linear(3, 5), Linear(5, 2))
        assert len(model.parameters()) == 4

    def test_module_list(self):
        layers = ModuleList([Linear(2, 2) for _ in range(3)])
        assert len(layers) == 3
        assert len(layers.parameters()) == 6
        layers.append(Linear(2, 2))
        assert len(layers) == 4

    def test_module_list_not_callable(self):
        with pytest.raises(RuntimeError):
            ModuleList([Linear(2, 2)])(Tensor(np.ones((1, 2), dtype=np.float32)))


class TestLinear:
    def test_output_shape(self):
        layer = Linear(4, 7, rng=np.random.default_rng(0))
        assert layer(Tensor(np.ones((3, 4), dtype=np.float32))).shape == (3, 7)

    def test_no_bias(self):
        layer = Linear(4, 2, bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_linear_is_affine(self):
        layer = Linear(3, 2, rng=np.random.default_rng(0))
        x = np.random.default_rng(1).standard_normal((5, 3)).astype(np.float32)
        expected = x @ layer.weight.data + layer.bias.data
        np.testing.assert_allclose(layer(Tensor(x)).data, expected, rtol=1e-5)

    def test_operation_count(self):
        layer = Linear(10, 20)
        assert layer.operation_count(5) == 2 * 5 * 10 * 20 + 5 * 20
        assert Linear(10, 20, bias=False).operation_count(5) == 2 * 5 * 10 * 20

    def test_gradient_shapes(self):
        layer = Linear(4, 3, rng=np.random.default_rng(0))
        layer(Tensor(np.ones((6, 4), dtype=np.float32))).sum().backward()
        assert layer.weight.grad.shape == (4, 3)
        assert layer.bias.grad.shape == (3,)


class TestMLP:
    def test_dims_validation(self):
        with pytest.raises(ValueError):
            MLP([4])

    def test_forward_shape(self):
        mlp = MLP([4, 8, 3], rng=np.random.default_rng(0))
        assert mlp(Tensor(np.ones((5, 4), dtype=np.float32))).shape == (5, 3)

    def test_batch_norm_variant(self):
        mlp = MLP([4, 8, 3], batch_norm=True, rng=np.random.default_rng(0))
        out = mlp(Tensor(np.random.default_rng(1).standard_normal((10, 4)).astype(np.float32)))
        assert out.shape == (10, 3)

    def test_last_layer_not_activated_by_default(self):
        mlp = MLP([2, 4, 3], rng=np.random.default_rng(0))
        out = mlp(Tensor(np.random.default_rng(2).standard_normal((20, 2)).astype(np.float32)))
        assert (out.data < 0).any()  # negative logits survive (no final ReLU)

    def test_operation_count_sums_layers(self):
        mlp = MLP([4, 8, 3])
        expected = mlp.linears[0].operation_count(7) + mlp.linears[1].operation_count(7)
        assert mlp.operation_count(7) == expected
