"""Tests for BatchNorm1d, LayerNorm, activation modules and Dropout."""

import numpy as np
import pytest

from repro.nn import BatchNorm1d, Dropout, Identity, LayerNorm, ReLU, Sigmoid, Tanh
from repro.tensor import Tensor


class TestBatchNorm:
    def test_training_normalises_batch(self):
        norm = BatchNorm1d(4)
        x = Tensor(np.random.default_rng(0).standard_normal((64, 4)).astype(np.float32) * 5 + 3)
        out = norm(x)
        assert np.abs(out.data.mean(axis=0)).max() < 1e-4
        assert np.abs(out.data.std(axis=0) - 1).max() < 1e-2

    def test_running_statistics_update(self):
        norm = BatchNorm1d(2, momentum=0.5)
        x = Tensor(np.full((8, 2), 4.0, dtype=np.float32))
        norm(x)
        assert norm.running_mean[0] == pytest.approx(2.0)

    def test_eval_uses_running_statistics(self):
        norm = BatchNorm1d(2)
        rng = np.random.default_rng(0)
        for _ in range(20):
            norm(Tensor(rng.standard_normal((32, 2)).astype(np.float32) + 1.0))
        norm.eval()
        out = norm(Tensor(np.ones((4, 2), dtype=np.float32)))
        assert out.shape == (4, 2)

    def test_rejects_non_2d_input(self):
        with pytest.raises(ValueError):
            BatchNorm1d(2)(Tensor(np.ones((2, 2, 2), dtype=np.float32)))

    def test_gradients_flow_to_affine_parameters(self):
        norm = BatchNorm1d(3)
        x = Tensor(np.random.default_rng(1).standard_normal((16, 3)).astype(np.float32))
        norm(x).sum().backward()
        assert norm.weight.grad is not None
        assert norm.bias.grad is not None


class TestLayerNorm:
    def test_normalises_rows(self):
        norm = LayerNorm(8)
        x = Tensor(np.random.default_rng(0).standard_normal((5, 8)).astype(np.float32) * 3)
        out = norm(x)
        assert np.abs(out.data.mean(axis=-1)).max() < 1e-4

    def test_affine_parameters_used(self):
        norm = LayerNorm(4)
        norm.weight.data[:] = 2.0
        norm.bias.data[:] = 1.0
        x = Tensor(np.random.default_rng(0).standard_normal((3, 4)).astype(np.float32))
        out = norm(x)
        assert out.data.mean() == pytest.approx(1.0, abs=1e-4)


class TestActivationsAndDropout:
    def test_relu_module(self):
        assert ReLU()(Tensor([-1.0, 2.0])).data.tolist() == [0.0, 2.0]

    def test_sigmoid_module(self):
        assert Sigmoid()(Tensor([0.0])).data[0] == pytest.approx(0.5)

    def test_tanh_module(self):
        assert Tanh()(Tensor([0.0])).data[0] == pytest.approx(0.0)

    def test_identity_module(self):
        x = Tensor([1.0, 2.0])
        assert Identity()(x) is x

    def test_dropout_validation(self):
        with pytest.raises(ValueError):
            Dropout(1.5)

    def test_dropout_eval_mode_identity(self):
        dropout = Dropout(0.9, rng=np.random.default_rng(0))
        dropout.eval()
        x = Tensor(np.ones((5, 5), dtype=np.float32))
        np.testing.assert_allclose(dropout(x).data, x.data)

    def test_dropout_training_zeroes_entries(self):
        dropout = Dropout(0.5, rng=np.random.default_rng(0))
        out = dropout(Tensor(np.ones((50, 50), dtype=np.float32)))
        assert (out.data == 0).mean() == pytest.approx(0.5, abs=0.05)
