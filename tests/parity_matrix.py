"""The unified fanout=∞ parity matrix.

One parametrized engine for the invariant that underpins every serving
claim: **block execution at unlimited fanout is bit-identical to full-graph
execution** — across

* all six conv families (gcn / sage / gin / gat / tag / transformer),
* the three numeric modes (float forward, QAT fake-quantized forward,
  integer artifact serving),
* the three execution paths (direct model call, cached block serving,
  uncached block serving), and
* head counts 1 / 2 / 4 where the family has a head axis.

``TestShardParityMatrix`` extends the contract to the multi-process tier:
sharded serving (shards ∈ {2, 4} × both partition strategies) is bitwise
equal to the single-process block session for every family, on both the
integer and the float-export execution paths — with requests built to
contain seeds whose receptive fields provably cross shard boundaries, so
the halo protocol is exercised in every cell.

Before this matrix existed the same assert was re-implemented ad hoc in
``tests/gnn/test_attention_blocks.py``, ``tests/quant/test_attention_
qmodules.py``, ``tests/serving/test_attention_serving.py`` and
``tests/cache/test_parity.py`` — those suites now keep only their
mode-specific behaviour and point here for the parity contract, so a new
conv family adds matrix *rows*, not duplicated test code.

Model/artifact builders are the memoised ``parity_*`` fixtures in
``tests/conftest.py``.  The CI ``cache-serving`` job runs this file as its
own named step so a parity break is attributable at a glance.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.gnn.models import total_hops
from repro.graphs.sampling import NeighborSampler
from repro.kernels import available_backends
from repro.serving import BlockSession, FullGraphSession
from repro.tensor.tensor import no_grad

#: Families with a head axis get one row per head count; the matrix keeps
#: ``heads`` in every case id so failures name their cell exactly.
HEADED_FAMILIES = ("gat", "transformer")
MATRIX_HEADS = (1, 2, 4)
PARITY_CASES = [(family, heads)
                for family in ("gcn", "sage", "gin", "tag", "gat", "transformer")
                for heads in (MATRIX_HEADS if family in HEADED_FAMILIES
                              else (1,))]
CASE_IDS = [f"{family}-h{heads}" for family, heads in PARITY_CASES]


def _unlimited_batch(graph, num_hops: int):
    """One fanout=∞ batch covering every node, in natural order."""
    sampler = NeighborSampler(graph, None, batch_size=graph.num_nodes,
                              num_layers=num_hops,
                              seed_nodes=np.arange(graph.num_nodes),
                              shuffle=False, seed=0)
    return sampler.sample(np.arange(graph.num_nodes, dtype=np.int64))


@pytest.mark.parametrize("family,heads", PARITY_CASES, ids=CASE_IDS)
class TestParityMatrix:
    # ------------------------------------------------------------------ #
    # float × direct
    # ------------------------------------------------------------------ #
    def test_float_direct(self, parity_graph, parity_float_model, family,
                          heads):
        model = parity_float_model(family, heads)
        batch = _unlimited_batch(parity_graph, total_hops(model.convs))
        with no_grad():
            full = model(parity_graph).data
            block = model(batch).data
        np.testing.assert_array_equal(block, full)

    # ------------------------------------------------------------------ #
    # QAT × direct
    # ------------------------------------------------------------------ #
    def test_qat_direct(self, parity_graph, parity_quant_model, family, heads):
        model = parity_quant_model(family, heads)
        batch = _unlimited_batch(parity_graph, total_hops(model.convs))
        with no_grad():
            full = model(parity_graph).data
            block = model(batch).data
        np.testing.assert_array_equal(block, full)

    # ------------------------------------------------------------------ #
    # integer × served (and the BitOPs half of the contract)
    # ------------------------------------------------------------------ #
    def test_integer_served(self, parity_graph, parity_artifact, family,
                            heads):
        artifact = parity_artifact(family, heads)
        full_session = FullGraphSession(artifact, parity_graph)
        full = full_session.run()
        block = BlockSession(artifact, parity_graph, fanouts=None,
                             batch_size=parity_graph.num_nodes).run()
        np.testing.assert_array_equal(block.logits, full.logits)
        # fanout=∞ block BitOPs == full-graph BitOPs, executed and static
        assert block.bit_operations.total_bit_operations \
            == full.bit_operations.total_bit_operations
        assert full_session.bit_operations().total_bit_operations \
            == full.bit_operations.total_bit_operations

    # ------------------------------------------------------------------ #
    # integer × cached (cached == uncached, bounded and unlimited fanout)
    # ------------------------------------------------------------------ #
    def test_integer_cached(self, parity_graph, parity_artifact, family,
                            heads):
        artifact = parity_artifact(family, heads)
        seeds = np.arange(0, parity_graph.num_nodes, 2, dtype=np.int64)
        for fanout in (3, None):
            plain = BlockSession(artifact, parity_graph, fanouts=fanout,
                                 batch_size=32, seed=7)
            cached = BlockSession(artifact, parity_graph, fanouts=fanout,
                                  batch_size=32, seed=7, cache_size=65536)
            np.testing.assert_array_equal(cached.predict(seeds),
                                          plain.predict(seeds))
            cold = cached.cache_stats()
            assert cold.misses > 0
            # a warm repeat is answered from the cache, still bit-identical
            np.testing.assert_array_equal(cached.predict(seeds),
                                          plain.predict(seeds))
            warm = cached.cache_stats()
            assert warm.hits > cold.hits and warm.misses == cold.misses

    # ------------------------------------------------------------------ #
    # integer × kernel backend (every registered backend == reference)
    # ------------------------------------------------------------------ #
    def test_integer_backends(self, parity_graph, parity_artifact, family,
                              heads):
        """Every registered kernel backend serves bit-identical logits —
        full graph, unlimited-fanout blocks, and bounded-fanout blocks."""
        artifact = parity_artifact(family, heads)
        seeds = np.arange(0, parity_graph.num_nodes, 2, dtype=np.int64)
        reference_full = FullGraphSession(artifact, parity_graph,
                                          backend="numpy").run().logits
        reference_block = BlockSession(artifact, parity_graph, fanouts=3,
                                       batch_size=32, seed=7,
                                       backend="numpy").predict(seeds)
        for name in available_backends():
            full = FullGraphSession(artifact, parity_graph, backend=name)
            assert full.backend_name == name
            np.testing.assert_array_equal(
                full.run().logits, reference_full,
                err_msg=f"backend {name}: full-graph logits diverge")
            unlimited = BlockSession(artifact, parity_graph, fanouts=None,
                                     batch_size=parity_graph.num_nodes,
                                     backend=name)
            np.testing.assert_array_equal(
                unlimited.run().logits, reference_full,
                err_msg=f"backend {name}: fanout=∞ block logits diverge")
            bounded = BlockSession(artifact, parity_graph, fanouts=3,
                                   batch_size=32, seed=7, backend=name)
            np.testing.assert_array_equal(
                bounded.predict(seeds), reference_block,
                err_msg=f"backend {name}: bounded-fanout logits diverge")


# --------------------------------------------------------------------------- #
# sharded serving == single-process serving, bit for bit
# --------------------------------------------------------------------------- #
#: Every shard configuration of the matrix: counts × partition strategies.
SHARD_CONFIGS = [(2, "hash"), (2, "degree"), (4, "hash"), (4, "degree")]
SHARD_IDS = [f"s{shards}-{strategy}" for shards, strategy in SHARD_CONFIGS]
#: Head counts of the shard axis (4-head rows add little once 2 passes).
SHARD_PARITY_CASES = [(family, heads) for family, heads in PARITY_CASES
                      if heads <= 2]
SHARD_CASE_IDS = [f"{family}-h{heads}" for family, heads in SHARD_PARITY_CASES]


def _halo_request(graph, assignment) -> np.ndarray:
    """A request guaranteed to cross shard boundaries: every-third node
    plus the first few seeds whose receptive field provably spans shards."""
    from repro.graphs.partition import halo_seeds

    crossing = halo_seeds(graph, assignment)
    assert crossing.size > 0, "partition produced no halo seeds"
    return np.concatenate([crossing[:8],
                           np.arange(0, graph.num_nodes, 3, dtype=np.int64)])


@pytest.mark.parametrize("shards,strategy", SHARD_CONFIGS, ids=SHARD_IDS)
class TestShardParityMatrix:
    def _assert_sharded_parity(self, graph, artifact, shards, strategy):
        from repro.graphs.partition import partition_graph
        from repro.sharding import ShardedBlockSession

        assignment = partition_graph(graph, shards, strategy=strategy)
        request = _halo_request(graph, assignment)
        reference = BlockSession(artifact, graph, fanouts=3, batch_size=32,
                                 seed=7).run(request)
        with ShardedBlockSession(artifact, graph, shards=shards,
                                 partition=strategy, fanouts=3,
                                 batch_size=32, seed=7) as sharded:
            run = sharded.run(request)
        np.testing.assert_array_equal(run.logits, reference.logits)
        assert run.num_edges == reference.num_edges

    @pytest.mark.parametrize("family,heads", SHARD_PARITY_CASES,
                             ids=SHARD_CASE_IDS)
    def test_integer_sharded(self, parity_graph, parity_artifact, family,
                             heads, shards, strategy):
        self._assert_sharded_parity(parity_graph, parity_artifact(family, heads),
                                    shards, strategy)

    @pytest.mark.parametrize("family,heads", SHARD_PARITY_CASES,
                             ids=SHARD_CASE_IDS)
    def test_float_export_sharded(self, parity_graph, parity_float_artifact,
                                  family, heads, shards, strategy):
        self._assert_sharded_parity(parity_graph,
                                    parity_float_artifact(family, heads),
                                    shards, strategy)

    def test_unlimited_fanout_sharded(self, parity_graph, parity_artifact,
                                      shards, strategy):
        """fanout=∞ spot check: the sharded session also matches the
        full-receptive-field block session (gcn cell)."""
        from repro.sharding import ShardedBlockSession

        artifact = parity_artifact("gcn", 1)
        seeds = np.arange(parity_graph.num_nodes, dtype=np.int64)
        reference = BlockSession(artifact, parity_graph, fanouts=None,
                                 batch_size=48).run(seeds)
        with ShardedBlockSession(artifact, parity_graph, shards=shards,
                                 partition=strategy, fanouts=None,
                                 batch_size=48) as sharded:
            run = sharded.run(seeds)
        np.testing.assert_array_equal(run.logits, reference.logits)


# --------------------------------------------------------------------------- #
# streaming serving == fresh static serving, at every version, bit for bit
# --------------------------------------------------------------------------- #
def _scripted_deltas(graph, seed=11):
    """Three deltas — add, feature overwrite, remove — valid in sequence."""
    from repro.streaming import GraphDelta

    rng = np.random.default_rng(seed)
    added = rng.integers(0, graph.num_nodes, size=(2, 4))
    weights = rng.random(4).astype(np.float32) + np.float32(0.5)
    feature_nodes = rng.choice(graph.num_nodes, size=3,
                               replace=False).astype(np.int64)
    rows = rng.random((3, graph.num_features)).astype(np.float32)
    # remove two of the edges the first delta added (unique pairs only)
    pairs = {(int(u), int(v)) for u, v in zip(added[0], added[1])}
    removed = np.asarray(sorted(pairs)[:2], dtype=np.int64).T
    return [GraphDelta(added_edges=added, added_weights=weights),
            GraphDelta(feature_nodes=feature_nodes, features=rows),
            GraphDelta(removed_edges=removed)]


class TestStreamingParityMatrix:
    """The streaming tier of the house invariant: after any update
    sequence, served logits are bitwise identical to a fresh session on
    the equivalent static graph — cached and uncached, at every
    intermediate version.  Updates change *when* the graph mutates, never
    *what* is served."""

    @pytest.mark.parametrize("family,heads", PARITY_CASES, ids=CASE_IDS)
    def test_streamed_equals_fresh_static(self, parity_graph, parity_artifact,
                                          family, heads):
        artifact = parity_artifact(family, heads)
        seeds = np.arange(0, parity_graph.num_nodes, 2, dtype=np.int64)
        for fanout in (3, None):
            cached = BlockSession(artifact, parity_graph.copy(),
                                  fanouts=fanout, batch_size=32, seed=7,
                                  cache_size=65536)
            uncached = BlockSession(artifact, parity_graph.copy(),
                                    fanouts=fanout, batch_size=32, seed=7)
            cached.predict(seeds)  # warm the cache pre-update
            for version, delta in enumerate(_scripted_deltas(parity_graph),
                                            start=1):
                assert cached.apply_update(delta) == version
                assert uncached.apply_update(delta) == version
                fresh = BlockSession(artifact, cached.graph.copy(),
                                     fanouts=fanout, batch_size=32, seed=7)
                reference = fresh.predict(seeds)
                cell = f"{family}-h{heads} fanout={fanout} v{version}"
                np.testing.assert_array_equal(
                    uncached.predict(seeds), reference,
                    err_msg=f"{cell}: streamed uncached diverges")
                np.testing.assert_array_equal(
                    cached.predict(seeds), reference,
                    err_msg=f"{cell}: streamed cached (cold) diverges")
                np.testing.assert_array_equal(
                    cached.predict(seeds), reference,
                    err_msg=f"{cell}: streamed cached (warm) diverges")

    def test_full_graph_session_streams(self, parity_graph, parity_artifact):
        """The full-graph tier holds the same contract (gcn cell)."""
        artifact = parity_artifact("gcn", 1)
        streamed = FullGraphSession(artifact, parity_graph.copy())
        for version, delta in enumerate(_scripted_deltas(parity_graph),
                                        start=1):
            assert streamed.apply_update(delta) == version
            fresh = FullGraphSession(artifact, streamed.graph.copy())
            np.testing.assert_array_equal(streamed.run().logits,
                                          fresh.run().logits)

    def test_scoped_invalidation_keeps_cache_warm(self, parity_graph,
                                                  parity_artifact):
        """The perf contract behind scoped invalidation: an update far from
        most receptive fields must leave warm row entries in place, so a
        repeat of the pre-update working set still hits (gcn cell)."""
        from repro.streaming import GraphDelta

        artifact = parity_artifact("gcn", 1)
        session = BlockSession(artifact, parity_graph.copy(), fanouts=None,
                               batch_size=parity_graph.num_nodes,
                               cache_size=65536)
        seeds = np.arange(parity_graph.num_nodes, dtype=np.int64)
        session.predict(seeds)                        # fill
        session.predict(seeds)                        # prove it hits warm
        warm_before = session.cache_stats().hits
        assert warm_before > 0
        node = int(parity_graph.num_nodes - 1)
        session.apply_update(GraphDelta(
            feature_nodes=np.asarray([node]),
            features=np.zeros((1, parity_graph.num_features),
                              dtype=np.float32)))
        session.predict(seeds)
        delta_hits = session.cache_stats().hits - warm_before
        # a naive whole-cache flush would make this 0: every row outside
        # the touched region must still be answered from cache
        assert delta_hits > 0
