"""End-to-end integration tests: the full MixQ-GNN pipeline on every task type."""

import numpy as np
import pytest

from repro.core import MixQNodeClassifier
from repro.core.build import build_relaxed_node_classifier, layer_dimensions
from repro.core.selection import search_node_bitwidths
from repro.experiments.common import run_fp32, run_mixq, run_uniform_qat
from repro.graphs.datasets import load_cora
from repro.quant.integer_mp import fake_quantized_reference, integer_message_passing
from repro.quant.qmodules import QuantNodeClassifier
from repro.quant.quantizer import AffineQuantizer
from repro.training.trainer import evaluate_node_classifier, train_node_classifier


@pytest.fixture(scope="module")
def cora():
    return load_cora(scale=0.1, seed=1)


class TestEndToEndPipeline:
    def test_search_finalize_train_evaluate(self, cora):
        """The full Figure 7 pipeline: relax, search, select, quantize, train."""
        dims = layer_dimensions(cora.num_features, 16, cora.num_classes, 2)
        relaxed = build_relaxed_node_classifier("gcn", dims, (2, 4, 8),
                                                rng=np.random.default_rng(0))
        search = search_node_bitwidths(relaxed, cora, lambda_value=0.1, epochs=15)

        quantized = QuantNodeClassifier.from_assignment(dims, "gcn", search.assignment,
                                                        rng=np.random.default_rng(1))
        result = train_node_classifier(quantized, cora, epochs=40, lr=0.02)
        accuracy = evaluate_node_classifier(quantized, cora, cora.test_mask)

        assert accuracy == pytest.approx(result.test_accuracy)
        assert accuracy > 1.0 / cora.num_classes  # clearly better than chance
        assert quantized.average_bits() == pytest.approx(search.average_bits, abs=1e-6)

    def test_mixq_beats_chance_and_compresses(self, cora):
        mixq = MixQNodeClassifier("gcn", cora.num_features, 16, cora.num_classes,
                                  bit_choices=(2, 4, 8), lambda_value=0.1, seed=0)
        result = mixq.fit(cora, search_epochs=20, train_epochs=40, lr=0.02)
        fp32 = run_fp32(cora, "gcn", 16, epochs=40, seed=0)
        assert result.accuracy > 1.0 / cora.num_classes
        # Compression: quantized BitOPs strictly below the FP32 BitOPs.
        assert result.giga_bit_operations < fp32.giga_bit_operations
        assert result.average_bits < 32

    def test_quantized_training_then_integer_inference(self, cora):
        """QAT training followed by a Theorem-1 integer aggregation check."""
        adjacency = cora.normalized_adjacency()
        quantizer_a = AffineQuantizer(bits=8, symmetric=True)
        quantizer_x = AffineQuantizer(bits=8)
        result = integer_message_passing(adjacency, cora.x, quantizer_a, quantizer_x)
        reference = fake_quantized_reference(adjacency, cora.x, quantizer_a, quantizer_x)
        np.testing.assert_allclose(result.dequantized_output, reference,
                                   rtol=1e-5, atol=1e-5)

    def test_lambda_ordering_of_bits(self, cora):
        """Larger penalty weight never selects (meaningfully) wider bit-widths."""
        gentle = run_mixq(cora, -1e-8, (2, 4, 8), search_epochs=20, train_epochs=25, seed=0)
        aggressive = run_mixq(cora, 5.0, (2, 4, 8), search_epochs=20, train_epochs=25, seed=0)
        assert aggressive.bits <= gentle.bits + 1e-6

    def test_uniform_qat_bitops_scale_with_bits(self, cora):
        int8 = run_uniform_qat(cora, 8, epochs=10, seed=0)
        int2 = run_uniform_qat(cora, 2, epochs=10, seed=0)
        assert int2.giga_bit_operations < int8.giga_bit_operations

    def test_seeded_search_is_reproducible(self, cora):
        first = MixQNodeClassifier("gcn", cora.num_features, 16, cora.num_classes,
                                   bit_choices=(2, 4, 8), lambda_value=0.1, seed=3)
        second = MixQNodeClassifier("gcn", cora.num_features, 16, cora.num_classes,
                                    bit_choices=(2, 4, 8), lambda_value=0.1, seed=3)
        assignment_a = first.search(cora, epochs=10).assignment
        assignment_b = second.search(cora, epochs=10).assignment
        assert assignment_a == assignment_b
