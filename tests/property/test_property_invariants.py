"""Property-based tests (hypothesis) for core data structures and invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.relaxed_quantizer import RelaxedQuantizer
from repro.core.search_space import pareto_front
from repro.quant.bitops import BitOpsCounter, average_bits
from repro.quant.quantizer import AffineQuantizer
from repro.tensor import SparseTensor, Tensor, spmm
from repro.tensor import functional as F

finite_floats = st.floats(min_value=-100.0, max_value=100.0,
                          allow_nan=False, allow_infinity=False, width=32)


class TestTensorProperties:
    @settings(max_examples=40, deadline=None)
    @given(hnp.arrays(np.float32, hnp.array_shapes(min_dims=1, max_dims=2, max_side=6),
                      elements=finite_floats))
    def test_addition_commutes(self, values):
        a = Tensor(values)
        b = Tensor(values[::-1].copy())
        np.testing.assert_allclose((a + b).data, (b + a).data, rtol=1e-5, atol=1e-5)

    @settings(max_examples=40, deadline=None)
    @given(hnp.arrays(np.float32, st.tuples(st.integers(1, 6), st.integers(1, 6)),
                      elements=finite_floats))
    def test_sum_matches_numpy(self, values):
        np.testing.assert_allclose(Tensor(values).sum().data, values.sum(),
                                   rtol=1e-4, atol=1e-3)

    @settings(max_examples=40, deadline=None)
    @given(hnp.arrays(np.float32, st.tuples(st.integers(1, 5), st.integers(1, 5)),
                      elements=finite_floats))
    def test_relu_is_idempotent(self, values):
        once = Tensor(values).relu()
        twice = once.relu()
        np.testing.assert_allclose(once.data, twice.data)

    @settings(max_examples=40, deadline=None)
    @given(hnp.arrays(np.float32, st.tuples(st.integers(1, 5), st.integers(2, 6)),
                      elements=finite_floats))
    def test_softmax_is_probability_distribution(self, values):
        probabilities = F.softmax(Tensor(values), axis=-1).data
        assert (probabilities >= 0).all()
        np.testing.assert_allclose(probabilities.sum(axis=-1), 1.0, rtol=1e-4)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(2, 10), st.integers(1, 5), st.integers(0, 100))
    def test_spmm_matches_dense_product(self, num_nodes, num_features, seed):
        rng = np.random.default_rng(seed)
        dense = (rng.random((num_nodes, num_nodes)) *
                 (rng.random((num_nodes, num_nodes)) < 0.4)).astype(np.float32)
        features = rng.standard_normal((num_nodes, num_features)).astype(np.float32)
        result = spmm(SparseTensor(dense), Tensor(features))
        np.testing.assert_allclose(result.data, dense @ features, rtol=1e-4, atol=1e-4)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(1, 30), st.integers(1, 4), st.integers(1, 6), st.integers(0, 50))
    def test_segment_sum_conserves_mass(self, num_rows, num_cols, num_segments, seed):
        rng = np.random.default_rng(seed)
        values = rng.standard_normal((num_rows, num_cols)).astype(np.float32)
        segments = rng.integers(0, num_segments, size=num_rows)
        pooled = F.segment_sum(Tensor(values), segments, num_segments)
        np.testing.assert_allclose(pooled.data.sum(), values.sum(), rtol=1e-3, atol=1e-3)


class TestQuantizerProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.sampled_from([2, 3, 4, 6, 8, 16]),
           hnp.arrays(np.float64, st.integers(2, 40),
                      elements=st.floats(-50, 50, allow_nan=False)))
    def test_quantized_integers_stay_in_range(self, bits, values):
        quantizer = AffineQuantizer(bits=bits)
        integers, params = quantizer.quantize_array(values)
        assert integers.min() >= params.qmin
        assert integers.max() <= params.qmax

    @settings(max_examples=40, deadline=None)
    @given(st.sampled_from([4, 8, 16]),
           hnp.arrays(np.float64, st.integers(2, 40),
                      elements=st.floats(-10, 10, allow_nan=False)))
    def test_dequantization_error_bounded_by_scale(self, bits, values):
        quantizer = AffineQuantizer(bits=bits)
        integers, params = quantizer.quantize_array(values)
        recovered = quantizer.dequantize_array(integers, params)
        scale, _ = params.as_scalars()
        span = values.max() - values.min()
        # Errors are at most one grid step (plus clipping at the range edges).
        assert np.abs(recovered - values).max() <= scale + 1e-9 or span == 0

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.sampled_from([2, 4, 8, 16]), min_size=1, max_size=4, unique=True),
           st.integers(0, 100))
    def test_relaxed_quantizer_expected_bits_within_choices(self, choices, seed):
        relaxed = RelaxedQuantizer(sorted(choices))
        relaxed.alpha.data[:] = np.random.default_rng(seed).standard_normal(len(choices))
        expected = relaxed.expected_bits_value()
        assert min(choices) - 1e-6 <= expected <= max(choices) + 1e-6
        assert relaxed.selected_bits() in choices

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(st.integers(1, 10 ** 6), st.sampled_from([2, 4, 8, 32])),
                    min_size=1, max_size=10))
    def test_bitops_counter_total_is_sum(self, records):
        counter = BitOpsCounter()
        for operations, bits in records:
            counter.add("f", operations, bits)
        assert counter.total_bit_operations == sum(o * b for o, b in records)
        weighted = counter.operation_weighted_bits()
        assert min(b for _, b in records) <= weighted <= max(b for _, b in records)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.sampled_from([2, 4, 8, 16, 32]), min_size=1, max_size=12))
    def test_average_bits_bounded_by_extremes(self, bits):
        value = average_bits(bits)
        assert min(bits) <= value <= max(bits)


class TestParetoProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(st.floats(2, 8, allow_nan=False),
                              st.floats(0, 1, allow_nan=False)),
                    min_size=1, max_size=30))
    def test_pareto_points_are_mutually_non_dominated(self, points):
        front = pareto_front(points)
        assert front  # never empty
        for i in front:
            for j in front:
                if i == j:
                    continue
                dominates = (points[j][0] < points[i][0]) and (points[j][1] > points[i][1])
                assert not dominates

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(st.floats(2, 8, allow_nan=False),
                              st.floats(0, 1, allow_nan=False)),
                    min_size=1, max_size=30))
    def test_every_point_dominated_by_some_front_point(self, points):
        front = pareto_front(points)
        best_quality = max(points[i][1] for i in front)
        assert all(point[1] <= best_quality for point in points)
