"""Property-based tests (hypothesis) for core data structures and invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.relaxed_quantizer import RelaxedQuantizer
from repro.core.search_space import pareto_front
from repro.quant.bitops import BitOpsCounter, average_bits
from repro.quant.integer_mp import quantized_edge_spmm
from repro.quant.quantizer import AffineQuantizer
from repro.tensor import SparseTensor, Tensor, spmm
from repro.tensor import functional as F
from repro.tensor.tensor import no_grad

finite_floats = st.floats(min_value=-100.0, max_value=100.0,
                          allow_nan=False, allow_infinity=False, width=32)


class TestTensorProperties:
    @settings(max_examples=40, deadline=None)
    @given(hnp.arrays(np.float32, hnp.array_shapes(min_dims=1, max_dims=2, max_side=6),
                      elements=finite_floats))
    def test_addition_commutes(self, values):
        a = Tensor(values)
        b = Tensor(values[::-1].copy())
        np.testing.assert_allclose((a + b).data, (b + a).data, rtol=1e-5, atol=1e-5)

    @settings(max_examples=40, deadline=None)
    @given(hnp.arrays(np.float32, st.tuples(st.integers(1, 6), st.integers(1, 6)),
                      elements=finite_floats))
    def test_sum_matches_numpy(self, values):
        np.testing.assert_allclose(Tensor(values).sum().data, values.sum(),
                                   rtol=1e-4, atol=1e-3)

    @settings(max_examples=40, deadline=None)
    @given(hnp.arrays(np.float32, st.tuples(st.integers(1, 5), st.integers(1, 5)),
                      elements=finite_floats))
    def test_relu_is_idempotent(self, values):
        once = Tensor(values).relu()
        twice = once.relu()
        np.testing.assert_allclose(once.data, twice.data)

    @settings(max_examples=40, deadline=None)
    @given(hnp.arrays(np.float32, st.tuples(st.integers(1, 5), st.integers(2, 6)),
                      elements=finite_floats))
    def test_softmax_is_probability_distribution(self, values):
        probabilities = F.softmax(Tensor(values), axis=-1).data
        assert (probabilities >= 0).all()
        np.testing.assert_allclose(probabilities.sum(axis=-1), 1.0, rtol=1e-4)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(2, 10), st.integers(1, 5), st.integers(0, 100))
    def test_spmm_matches_dense_product(self, num_nodes, num_features, seed):
        rng = np.random.default_rng(seed)
        dense = (rng.random((num_nodes, num_nodes)) *
                 (rng.random((num_nodes, num_nodes)) < 0.4)).astype(np.float32)
        features = rng.standard_normal((num_nodes, num_features)).astype(np.float32)
        result = spmm(SparseTensor(dense), Tensor(features))
        np.testing.assert_allclose(result.data, dense @ features, rtol=1e-4, atol=1e-4)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(1, 30), st.integers(1, 4), st.integers(1, 6), st.integers(0, 50))
    def test_segment_sum_conserves_mass(self, num_rows, num_cols, num_segments, seed):
        rng = np.random.default_rng(seed)
        values = rng.standard_normal((num_rows, num_cols)).astype(np.float32)
        segments = rng.integers(0, num_segments, size=num_rows)
        pooled = F.segment_sum(Tensor(values), segments, num_segments)
        np.testing.assert_allclose(pooled.data.sum(), values.sum(), rtol=1e-3, atol=1e-3)


class TestQuantizerProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.sampled_from([2, 3, 4, 6, 8, 16]),
           hnp.arrays(np.float64, st.integers(2, 40),
                      elements=st.floats(-50, 50, allow_nan=False)))
    def test_quantized_integers_stay_in_range(self, bits, values):
        quantizer = AffineQuantizer(bits=bits)
        integers, params = quantizer.quantize_array(values)
        assert integers.min() >= params.qmin
        assert integers.max() <= params.qmax

    @settings(max_examples=40, deadline=None)
    @given(st.sampled_from([4, 8, 16]),
           hnp.arrays(np.float64, st.integers(2, 40),
                      elements=st.floats(-10, 10, allow_nan=False)))
    def test_dequantization_error_bounded_by_scale(self, bits, values):
        quantizer = AffineQuantizer(bits=bits)
        integers, params = quantizer.quantize_array(values)
        recovered = quantizer.dequantize_array(integers, params)
        scale, _ = params.as_scalars()
        span = values.max() - values.min()
        # Errors are at most one grid step (plus clipping at the range edges).
        assert np.abs(recovered - values).max() <= scale + 1e-9 or span == 0

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.sampled_from([2, 4, 8, 16]), min_size=1, max_size=4, unique=True),
           st.integers(0, 100))
    def test_relaxed_quantizer_expected_bits_within_choices(self, choices, seed):
        relaxed = RelaxedQuantizer(sorted(choices))
        relaxed.alpha.data[:] = np.random.default_rng(seed).standard_normal(len(choices))
        expected = relaxed.expected_bits_value()
        assert min(choices) - 1e-6 <= expected <= max(choices) + 1e-6
        assert relaxed.selected_bits() in choices

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(st.integers(1, 10 ** 6), st.sampled_from([2, 4, 8, 32])),
                    min_size=1, max_size=10))
    def test_bitops_counter_total_is_sum(self, records):
        counter = BitOpsCounter()
        for operations, bits in records:
            counter.add("f", operations, bits)
        assert counter.total_bit_operations == sum(o * b for o, b in records)
        weighted = counter.operation_weighted_bits()
        assert min(b for _, b in records) <= weighted <= max(b for _, b in records)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.sampled_from([2, 4, 8, 16, 32]), min_size=1, max_size=12))
    def test_average_bits_bounded_by_extremes(self, bits):
        value = average_bits(bits)
        assert min(bits) <= value <= max(bits)


def _edge_case(seed: int, num_edges: int, num_dst: int, heads: int):
    """A random per-head edge-score instance with every target covered.

    Self loops for every target come first so no softmax segment is empty —
    exactly the guarantee the canonical attention edge list provides.
    """
    rng = np.random.default_rng(seed)
    loops = np.arange(num_dst, dtype=np.int64)
    extra = rng.integers(0, num_dst, size=num_edges).astype(np.int64)
    dst = np.concatenate([loops, extra])
    scores = rng.standard_normal((dst.size, heads)).astype(np.float32)
    return scores, dst


class TestMultiHeadAttentionProperties:
    """The three invariants of the per-head attention stage."""

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 1000), st.integers(0, 40), st.integers(1, 8),
           st.sampled_from([1, 2, 4, 8]))
    def test_per_head_scatter_softmax_rows_sum_to_one(self, seed, num_edges,
                                                      num_dst, heads):
        scores, dst = _edge_case(seed, num_edges, num_dst, heads)
        attention = F.scatter_softmax(Tensor(scores), dst, num_dst).data
        sums = np.zeros((num_dst, heads))
        np.add.at(sums, dst, attention)
        np.testing.assert_allclose(sums, 1.0, rtol=1e-5, atol=1e-5)
        assert (attention >= 0).all()

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 1000), st.integers(0, 40), st.integers(1, 8),
           st.sampled_from([1, 2, 4]))
    def test_scatter_softmax_invariant_under_edge_permutation(self, seed,
                                                              num_edges,
                                                              num_dst, heads):
        scores, dst = _edge_case(seed, num_edges, num_dst, heads)
        permutation = np.random.default_rng(seed + 1).permutation(dst.size)
        canonical = F.scatter_softmax(Tensor(scores), dst, num_dst).data
        permuted = F.scatter_softmax(Tensor(scores[permutation]),
                                     dst[permutation], num_dst).data
        # float softmax is permutation-invariant to round-off (the shifted
        # max is exact; only the denominator accumulation order moves)
        np.testing.assert_allclose(permuted, canonical[permutation],
                                   rtol=1e-5, atol=1e-6)

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 1000), st.integers(0, 40), st.integers(1, 8),
           st.sampled_from([1, 2, 4]), st.integers(1, 6))
    def test_integer_edge_aggregation_exactly_permutation_invariant(
            self, seed, num_edges, num_dst, heads, head_dim):
        """int64 accumulation is associative — the head axis of
        ``quantized_edge_spmm`` must be *bit*-invariant under any edge-list
        reordering, unlike its float counterpart."""
        rng = np.random.default_rng(seed)
        _, dst = _edge_case(seed, num_edges, num_dst, heads)
        src = rng.integers(0, num_dst, size=dst.size).astype(np.int64)
        q_edge = rng.integers(-127, 128, size=(dst.size, heads))
        qx = rng.integers(-127, 128, size=(num_dst, heads, head_dim))
        permutation = rng.permutation(dst.size)
        canonical = quantized_edge_spmm(q_edge, 0.017, qx, 0.21, 3.0,
                                        src, dst, num_dst)
        permuted = quantized_edge_spmm(q_edge[permutation], 0.017, qx,
                                       0.21, 3.0, src[permutation],
                                       dst[permutation], num_dst)
        np.testing.assert_array_equal(permuted, canonical)
        assert canonical.shape == (num_dst, heads, head_dim)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 1000), st.sampled_from([2, 3, 4]),
           st.integers(2, 5), st.integers(3, 10))
    def test_concat_of_identical_heads_repeats_single_head(self, seed, heads,
                                                           head_dim,
                                                           num_nodes):
        """A concat-merge layer whose heads share one parameter set outputs
        the single-head layer's columns tiled ``heads`` times: the head
        blocks of one forward are *bit*-identical to each other (per-head
        pipelines are independent), and match the standalone single-head
        layer to float32 round-off (BLAS may tile the wider transform
        matmul differently)."""
        from repro.gnn.gat import GATConv
        from repro.graphs.graph import Graph

        rng = np.random.default_rng(seed)
        in_features = 5
        edges = np.stack([rng.integers(0, num_nodes, size=3 * num_nodes),
                          rng.integers(0, num_nodes, size=3 * num_nodes)])
        graph = Graph(rng.standard_normal((num_nodes, in_features))
                      .astype(np.float32), edges, name="prop")

        single = GATConv(in_features, head_dim, heads=1,
                         rng=np.random.default_rng(seed + 1))
        multi = GATConv(in_features, heads * head_dim, heads=heads,
                        head_merge="concat",
                        rng=np.random.default_rng(seed + 2))
        # tile the single head's parameters across every head
        multi.linear.weight.data[:] = np.tile(single.linear.weight.data,
                                              (1, heads))
        multi.attention_src.data[:] = np.tile(single.attention_src.data,
                                              (1, heads))
        multi.attention_dst.data[:] = np.tile(single.attention_dst.data,
                                              (1, heads))
        multi.bias.data[:] = np.tile(single.bias.data, heads)
        with no_grad():
            reference = single(Tensor(graph.x), graph).data
            tiled = multi(Tensor(graph.x), graph).data
        for head in range(1, heads):
            np.testing.assert_array_equal(
                tiled[:, head * head_dim:(head + 1) * head_dim],
                tiled[:, :head_dim])
        np.testing.assert_allclose(tiled, np.tile(reference, (1, heads)),
                                   rtol=1e-5, atol=1e-6)


class TestParetoProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(st.floats(2, 8, allow_nan=False),
                              st.floats(0, 1, allow_nan=False)),
                    min_size=1, max_size=30))
    def test_pareto_points_are_mutually_non_dominated(self, points):
        front = pareto_front(points)
        assert front  # never empty
        for i in front:
            for j in front:
                if i == j:
                    continue
                dominates = (points[j][0] < points[i][0]) and (points[j][1] > points[i][1])
                assert not dominates

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(st.floats(2, 8, allow_nan=False),
                              st.floats(0, 1, allow_nan=False)),
                    min_size=1, max_size=30))
    def test_every_point_dominated_by_some_front_point(self, points):
        front = pareto_front(points)
        best_quality = max(points[i][1] for i in front)
        assert all(point[1] <= best_quality for point in points)
