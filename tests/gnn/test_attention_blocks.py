"""Attention layers on bipartite blocks: fanout=∞ parity and hop plans.

The contract these tests pin down is the block-mode extension of the
attention families: with unlimited fanout and all nodes as seeds, block
execution must reproduce full-graph execution *bit-identically* (the
canonical edge list of ``repro.gnn.attention`` makes the per-target float
accumulation order identical on both paths), and TAG layers must consume
exactly one block per adjacency power (their hop plan).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.gnn.attention import attention_edges
from repro.gnn.models import build_node_model, hop_plan, total_hops
from repro.gnn.tag import TAGConv, hop_views
from repro.graphs.sampling import NeighborSampler
from repro.tensor.tensor import Tensor, no_grad
from repro.training.minibatch import MinibatchTrainer

ATTENTION_FAMILIES = ("gat", "transformer", "tag")


def _full_batch(graph, num_hops, seed=0):
    """One fanout=∞ batch covering every node, in natural order."""
    sampler = NeighborSampler(graph, None, batch_size=graph.num_nodes,
                              num_layers=num_hops,
                              seed_nodes=np.arange(graph.num_nodes),
                              shuffle=False, seed=seed)
    return sampler.sample(np.arange(graph.num_nodes, dtype=np.int64))


class TestAttentionEdges:
    def test_graph_edges_are_target_grouped_with_loops(self, tiny_graph):
        edges = attention_edges(tiny_graph)
        assert edges.num_src == edges.num_dst == tiny_graph.num_nodes
        assert edges.num_edges == tiny_graph.num_edges + tiny_graph.num_nodes
        # the trailing num_nodes entries are the self loops, in order
        np.testing.assert_array_equal(edges.src[-tiny_graph.num_nodes:],
                                      np.arange(tiny_graph.num_nodes))
        np.testing.assert_array_equal(edges.dst[-tiny_graph.num_nodes:],
                                      np.arange(tiny_graph.num_nodes))

    def test_block_edges_match_graph_at_unlimited_fanout(self, sbm_graph):
        batch = _full_batch(sbm_graph, 1)
        block_edges = attention_edges(batch.blocks[0])
        graph_edges = attention_edges(sbm_graph)
        # seeds are 0..n-1 in order, so local ids equal global ids and the
        # canonical edge lists coincide entirely
        np.testing.assert_array_equal(block_edges.src, graph_edges.src)
        np.testing.assert_array_equal(block_edges.dst, graph_edges.dst)

    def test_edges_are_memoised_per_graph(self, tiny_graph):
        assert attention_edges(tiny_graph) is attention_edges(tiny_graph)


class TestUnlimitedFanoutParity:
    @pytest.mark.parametrize("family", ATTENTION_FAMILIES)
    def test_block_logits_bit_identical_to_full_graph(self, sbm_graph, family):
        model = build_node_model(family, sbm_graph.num_features, 16,
                                 sbm_graph.num_classes,
                                 rng=np.random.default_rng(0), dropout=0.0)
        model.eval()
        batch = _full_batch(sbm_graph, total_hops(model.convs))
        with no_grad():
            full = model(sbm_graph).data
            block = model(batch).data
        np.testing.assert_array_equal(block, full)

    @pytest.mark.parametrize("family", ATTENTION_FAMILIES)
    def test_fanout_capped_forward_is_finite(self, sbm_graph, family):
        model = build_node_model(family, sbm_graph.num_features, 8,
                                 sbm_graph.num_classes,
                                 rng=np.random.default_rng(1), dropout=0.0)
        sampler = NeighborSampler(sbm_graph, 3, batch_size=16,
                                  num_layers=total_hops(model.convs),
                                  shuffle=False, seed=2)
        batch = sampler.sample(np.arange(16, dtype=np.int64))
        with no_grad():
            logits = model(batch).data
        assert logits.shape == (16, sbm_graph.num_classes)
        assert np.isfinite(logits).all()

    @pytest.mark.parametrize("family", ATTENTION_FAMILIES)
    def test_minibatch_training_learns(self, sbm_graph, family):
        model = build_node_model(family, sbm_graph.num_features, 16,
                                 sbm_graph.num_classes,
                                 rng=np.random.default_rng(3), dropout=0.0)
        trainer = MinibatchTrainer(model, fanouts=4, batch_size=32, seed=0)
        result = trainer.fit(sbm_graph, epochs=5)
        assert result.loss_history[-1] < result.loss_history[0]


class TestHopPlans:
    def test_hop_plan_counts_tag_hops(self, sbm_graph):
        model = build_node_model("tag", sbm_graph.num_features, 8,
                                 sbm_graph.num_classes,
                                 rng=np.random.default_rng(0))
        assert hop_plan(model.convs) == [3, 3]
        assert total_hops(model.convs) == 6

    def test_tag_rejects_wrong_block_count(self, sbm_graph):
        conv = TAGConv(sbm_graph.num_features, 4, hops=2,
                       rng=np.random.default_rng(0))
        batch = _full_batch(sbm_graph, 1)
        with pytest.raises(ValueError, match="hops=2"):
            conv(Tensor(batch.x), batch.blocks)

    def test_hop_views_accepts_single_block_for_one_hop(self, sbm_graph):
        batch = _full_batch(sbm_graph, 1)
        views = hop_views(batch.blocks[0], 1)
        assert views == [batch.blocks[0]]

    def test_forward_blocks_rejects_mismatched_stack(self, sbm_graph):
        model = build_node_model("tag", sbm_graph.num_features, 8,
                                 sbm_graph.num_classes,
                                 rng=np.random.default_rng(0))
        batch = _full_batch(sbm_graph, 2)  # needs 6 blocks, give 2
        with pytest.raises(ValueError, match="one entry per hop"):
            model(batch)

    def test_trainer_sizes_sampler_by_hops(self, sbm_graph):
        model = build_node_model("tag", sbm_graph.num_features, 8,
                                 sbm_graph.num_classes,
                                 rng=np.random.default_rng(0), dropout=0.0)
        trainer = MinibatchTrainer(model, fanouts=3, batch_size=16, seed=0)
        sampler = trainer.make_sampler(sbm_graph)
        assert len(sampler.fanouts) == 6
