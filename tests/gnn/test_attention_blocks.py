"""Attention layers on bipartite blocks: head axis, hop plans, block mode.

The fanout=∞ bit-identity contract itself (block execution == full-graph
execution for every conv family × float/QAT/integer × head count) lives in
the unified parity matrix, ``tests/parity_matrix.py`` — this file keeps the
float-layer behaviour around it: the canonical edge list, the multi-head
configuration (score columns ``(E, H)``, concat/mean merges, width
accounting), TAG hop plans and minibatch training.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.gnn.attention import attention_edges, attention_head_dim
from repro.gnn.gat import GATConv, TransformerConv
from repro.gnn.models import build_node_model, hop_plan, total_hops
from repro.gnn.tag import TAGConv, hop_views
from repro.graphs.sampling import NeighborSampler
from repro.tensor.tensor import Tensor, no_grad
from repro.training.minibatch import MinibatchTrainer

ATTENTION_FAMILIES = ("gat", "transformer", "tag")
HEADED_FAMILIES = ("gat", "transformer")


def _full_batch(graph, num_hops, seed=0):
    """One fanout=∞ batch covering every node, in natural order."""
    sampler = NeighborSampler(graph, None, batch_size=graph.num_nodes,
                              num_layers=num_hops,
                              seed_nodes=np.arange(graph.num_nodes),
                              shuffle=False, seed=seed)
    return sampler.sample(np.arange(graph.num_nodes, dtype=np.int64))


class TestAttentionEdges:
    def test_graph_edges_are_target_grouped_with_loops(self, tiny_graph):
        edges = attention_edges(tiny_graph)
        assert edges.num_src == edges.num_dst == tiny_graph.num_nodes
        assert edges.num_edges == tiny_graph.num_edges + tiny_graph.num_nodes
        # the trailing num_nodes entries are the self loops, in order
        np.testing.assert_array_equal(edges.src[-tiny_graph.num_nodes:],
                                      np.arange(tiny_graph.num_nodes))
        np.testing.assert_array_equal(edges.dst[-tiny_graph.num_nodes:],
                                      np.arange(tiny_graph.num_nodes))

    def test_block_edges_match_graph_at_unlimited_fanout(self, sbm_graph):
        batch = _full_batch(sbm_graph, 1)
        block_edges = attention_edges(batch.blocks[0])
        graph_edges = attention_edges(sbm_graph)
        # seeds are 0..n-1 in order, so local ids equal global ids and the
        # canonical edge lists coincide entirely
        np.testing.assert_array_equal(block_edges.src, graph_edges.src)
        np.testing.assert_array_equal(block_edges.dst, graph_edges.dst)

    def test_edges_are_memoised_per_graph(self, tiny_graph):
        assert attention_edges(tiny_graph) is attention_edges(tiny_graph)


class TestBlockExecution:
    # fanout=∞ bit-identity is a parity-matrix row (tests/parity_matrix.py,
    # float × direct) — here only the fanout-capped behaviours remain.

    @pytest.mark.parametrize("family", ATTENTION_FAMILIES)
    def test_fanout_capped_forward_is_finite(self, sbm_graph, family):
        model = build_node_model(family, sbm_graph.num_features, 8,
                                 sbm_graph.num_classes,
                                 rng=np.random.default_rng(1), dropout=0.0)
        sampler = NeighborSampler(sbm_graph, 3, batch_size=16,
                                  num_layers=total_hops(model.convs),
                                  shuffle=False, seed=2)
        batch = sampler.sample(np.arange(16, dtype=np.int64))
        with no_grad():
            logits = model(batch).data
        assert logits.shape == (16, sbm_graph.num_classes)
        assert np.isfinite(logits).all()

    @pytest.mark.parametrize("family", ATTENTION_FAMILIES)
    def test_minibatch_training_learns(self, sbm_graph, family):
        model = build_node_model(family, sbm_graph.num_features, 16,
                                 sbm_graph.num_classes,
                                 rng=np.random.default_rng(3), dropout=0.0)
        trainer = MinibatchTrainer(model, fanouts=4, batch_size=32, seed=0)
        result = trainer.fit(sbm_graph, epochs=5)
        assert result.loss_history[-1] < result.loss_history[0]


class TestMultiHeadConfiguration:
    def test_head_dim_concat_splits_width(self):
        assert attention_head_dim(16, 4, "concat") == 4
        assert attention_head_dim(16, 1, "concat") == 16
        assert attention_head_dim(7, 4, "mean") == 7

    def test_concat_rejects_indivisible_width(self):
        with pytest.raises(ValueError, match="divisible"):
            attention_head_dim(7, 4, "concat")
        with pytest.raises(ValueError, match="divisible"):
            GATConv(5, 7, heads=4, rng=np.random.default_rng(0))

    def test_rejects_unknown_merge_and_zero_heads(self):
        with pytest.raises(ValueError, match="head merge"):
            attention_head_dim(8, 2, "sum")
        with pytest.raises(ValueError, match="at least one head"):
            TransformerConv(5, 8, heads=0, rng=np.random.default_rng(0))

    @pytest.mark.parametrize("conv_class", [GATConv, TransformerConv])
    @pytest.mark.parametrize("heads,merge", [(2, "concat"), (4, "concat"),
                                             (3, "mean")])
    def test_merged_width_is_always_out_features(self, sbm_graph, conv_class,
                                                 heads, merge):
        conv = conv_class(sbm_graph.num_features, 8, heads=heads,
                          head_merge=merge, rng=np.random.default_rng(0))
        with no_grad():
            out = conv(Tensor(sbm_graph.x), sbm_graph)
        assert out.shape == (sbm_graph.num_nodes, 8)
        assert np.isfinite(out.data).all()

    @pytest.mark.parametrize("family", HEADED_FAMILIES)
    def test_builder_merges_hidden_concat_output_mean(self, sbm_graph, family):
        model = build_node_model(family, sbm_graph.num_features, 16,
                                 sbm_graph.num_classes, num_layers=3, heads=4,
                                 rng=np.random.default_rng(0), dropout=0.0)
        assert [conv.head_merge for conv in model.convs] \
            == ["concat", "concat", "mean"]
        assert [conv.head_dim for conv in model.convs] \
            == [4, 4, sbm_graph.num_classes]

    @pytest.mark.parametrize("family", HEADED_FAMILIES)
    def test_multi_head_minibatch_training_learns(self, sbm_graph, family):
        model = build_node_model(family, sbm_graph.num_features, 16,
                                 sbm_graph.num_classes, heads=2,
                                 rng=np.random.default_rng(3), dropout=0.0)
        trainer = MinibatchTrainer(model, fanouts=4, batch_size=32, seed=0)
        result = trainer.fit(sbm_graph, epochs=5)
        assert result.loss_history[-1] < result.loss_history[0]

    def test_operation_count_grows_with_heads_under_mean(self, sbm_graph):
        single = GATConv(sbm_graph.num_features, 8, heads=1,
                         rng=np.random.default_rng(0))
        multi = GATConv(sbm_graph.num_features, 8, heads=4, head_merge="mean",
                        rng=np.random.default_rng(0))
        assert multi.operation_count(sbm_graph) \
            > single.operation_count(sbm_graph)


class TestHopPlans:
    def test_hop_plan_counts_tag_hops(self, sbm_graph):
        model = build_node_model("tag", sbm_graph.num_features, 8,
                                 sbm_graph.num_classes,
                                 rng=np.random.default_rng(0))
        assert hop_plan(model.convs) == [3, 3]
        assert total_hops(model.convs) == 6

    def test_tag_rejects_wrong_block_count(self, sbm_graph):
        conv = TAGConv(sbm_graph.num_features, 4, hops=2,
                       rng=np.random.default_rng(0))
        batch = _full_batch(sbm_graph, 1)
        with pytest.raises(ValueError, match="hops=2"):
            conv(Tensor(batch.x), batch.blocks)

    def test_hop_views_accepts_single_block_for_one_hop(self, sbm_graph):
        batch = _full_batch(sbm_graph, 1)
        views = hop_views(batch.blocks[0], 1)
        assert views == [batch.blocks[0]]

    def test_forward_blocks_rejects_mismatched_stack(self, sbm_graph):
        model = build_node_model("tag", sbm_graph.num_features, 8,
                                 sbm_graph.num_classes,
                                 rng=np.random.default_rng(0))
        batch = _full_batch(sbm_graph, 2)  # needs 6 blocks, give 2
        with pytest.raises(ValueError, match="one entry per hop"):
            model(batch)

    def test_trainer_sizes_sampler_by_hops(self, sbm_graph):
        model = build_node_model("tag", sbm_graph.num_features, 8,
                                 sbm_graph.num_classes,
                                 rng=np.random.default_rng(0), dropout=0.0)
        trainer = MinibatchTrainer(model, fanouts=3, batch_size=16, seed=0)
        sampler = trainer.make_sampler(sbm_graph)
        assert len(sampler.fanouts) == 6
