"""Tests for the reference architectures (NodeClassifier, GraphClassifier, factory)."""

import numpy as np
import pytest

from repro.gnn import GCNConv, NodeClassifier, build_node_model
from repro.gnn.models import LAYER_FAMILIES, GraphClassifier
from repro.graphs.batch import GraphBatch
from repro.tensor import functional as F
from repro.optim import Adam


class TestNodeClassifier:
    def test_requires_at_least_one_conv(self):
        with pytest.raises(ValueError):
            NodeClassifier([])

    def test_logit_shape(self, tiny_graph):
        model = build_node_model("gcn", 5, 8, 3, num_layers=2,
                                 rng=np.random.default_rng(0))
        assert model(tiny_graph).shape == (12, 3)

    def test_single_layer_maps_directly_to_classes(self, tiny_graph):
        model = build_node_model("gcn", 5, 8, 3, num_layers=1)
        assert len(model.convs) == 1
        assert model(tiny_graph).shape == (12, 3)

    def test_deeper_models_have_more_layers(self, tiny_graph):
        model = build_node_model("gcn", 5, 8, 3, num_layers=4)
        assert len(model.convs) == 4
        assert model(tiny_graph).shape == (12, 3)

    def test_factory_rejects_unknown_family(self):
        with pytest.raises(KeyError):
            build_node_model("mlpconv", 5, 8, 3)

    @pytest.mark.parametrize("family", sorted(LAYER_FAMILIES))
    def test_every_family_runs(self, family, tiny_graph):
        model = build_node_model(family, 5, 8, 3, num_layers=2,
                                 rng=np.random.default_rng(0))
        out = model(tiny_graph)
        assert out.shape == (12, 3)
        assert np.isfinite(out.data).all()

    def test_operation_count_grows_with_depth(self, small_cora):
        shallow = build_node_model("gcn", small_cora.num_features, 16,
                                   small_cora.num_classes, num_layers=1)
        deep = build_node_model("gcn", small_cora.num_features, 16,
                                small_cora.num_classes, num_layers=3)
        assert deep.operation_count(small_cora) > shallow.operation_count(small_cora)

    def test_training_reduces_loss(self, small_cora):
        model = build_node_model("gcn", small_cora.num_features, 16,
                                 small_cora.num_classes, num_layers=2,
                                 rng=np.random.default_rng(0))
        optimizer = Adam(model.parameters(), lr=0.02)
        initial = None
        for step in range(25):
            model.zero_grad()
            loss = F.cross_entropy(model(small_cora), small_cora.y,
                                   mask=small_cora.train_mask)
            if step == 0:
                initial = float(loss.data)
            loss.backward()
            optimizer.step()
        assert float(loss.data) < initial * 0.7

    def test_dropout_only_in_training(self, tiny_graph):
        model = build_node_model("gcn", 5, 8, 3, num_layers=2, dropout=0.9,
                                 rng=np.random.default_rng(0))
        model.eval()
        out_a = model(tiny_graph).data
        out_b = model(tiny_graph).data
        np.testing.assert_allclose(out_a, out_b)


class TestGraphClassifier:
    def test_output_shape(self, tu_graphs):
        batch = GraphBatch(tu_graphs[:6])
        model = GraphClassifier(tu_graphs[0].num_features, 8, 2, num_layers=3,
                                batch_norm=False, rng=np.random.default_rng(0))
        assert model(batch).shape == (6, 2)

    def test_pooling_options(self, tu_graphs):
        batch = GraphBatch(tu_graphs[:4])
        for pooling in ("max", "mean", "sum"):
            model = GraphClassifier(tu_graphs[0].num_features, 8, 2, num_layers=2,
                                    pooling=pooling, batch_norm=False,
                                    rng=np.random.default_rng(0))
            assert model(batch).shape == (4, 2)

    def test_gradients_flow_through_pooling(self, tu_graphs):
        batch = GraphBatch(tu_graphs[:4])
        model = GraphClassifier(tu_graphs[0].num_features, 8, 2, num_layers=2,
                                batch_norm=False, rng=np.random.default_rng(0))
        loss = F.cross_entropy(model(batch), batch.y)
        loss.backward()
        grads = [p.grad for p in model.parameters() if p.grad is not None]
        assert len(grads) > 0

    def test_operation_count(self, tu_graphs):
        batch = GraphBatch(tu_graphs[:4])
        model = GraphClassifier(tu_graphs[0].num_features, 8, 2, num_layers=2,
                                batch_norm=False)
        assert model.operation_count(batch) > 0

    def test_per_graph_predictions_independent_of_batching(self, tu_graphs):
        """Predicting a graph alone or inside a batch gives the same logits."""
        model = GraphClassifier(tu_graphs[0].num_features, 8, 2, num_layers=2,
                                batch_norm=False, rng=np.random.default_rng(0))
        model.eval()
        single = model(GraphBatch([tu_graphs[0]])).data[0]
        batched = model(GraphBatch(tu_graphs[:3])).data[0]
        np.testing.assert_allclose(single, batched, rtol=1e-4, atol=1e-5)
