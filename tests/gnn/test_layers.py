"""Tests for the GNN convolution layers and the MessagePassing base class."""

import numpy as np
import pytest

from repro.gnn import GATConv, GCNConv, GINConv, SAGEConv, TAGConv
from repro.gnn.gat import TransformerConv
from repro.gnn.message_passing import MessagePassing
from repro.gnn.sage import mean_adjacency, sample_adjacency
from repro.tensor import Tensor


@pytest.fixture
def features(tiny_graph):
    return Tensor(tiny_graph.x)


class TestMessagePassingBase:
    def test_default_propagate_is_adjacency_product(self, tiny_graph, features):
        layer = MessagePassing()
        out = layer(features, tiny_graph)
        expected = tiny_graph.adjacency().csr @ tiny_graph.x
        np.testing.assert_allclose(out.data, expected, rtol=1e-5)

    def test_aggregation_operations_scale_with_nnz(self, tiny_graph):
        layer = MessagePassing()
        ops = layer.aggregation_operations(tiny_graph, 10)
        assert ops == 2 * tiny_graph.adjacency(add_self_loops=True).nnz * 10


class TestGCNConv:
    def test_output_shape(self, tiny_graph, features):
        conv = GCNConv(5, 8, rng=np.random.default_rng(0))
        assert conv(features, tiny_graph).shape == (12, 8)

    def test_matches_matrix_formula(self, tiny_graph, features):
        conv = GCNConv(5, 4, rng=np.random.default_rng(0))
        out = conv(features, tiny_graph)
        adjacency = tiny_graph.normalized_adjacency().to_dense()
        expected = adjacency @ (tiny_graph.x @ conv.linear.weight.data
                                + conv.linear.bias.data)
        np.testing.assert_allclose(out.data, expected, rtol=1e-4, atol=1e-5)

    def test_gradients_reach_parameters(self, tiny_graph, features):
        conv = GCNConv(5, 3, rng=np.random.default_rng(0))
        conv(features, tiny_graph).sum().backward()
        assert conv.linear.weight.grad is not None

    def test_isolated_node_keeps_self_information(self):
        """With self loops in the normalisation, isolated nodes keep features."""
        from repro.graphs.graph import Graph
        edges = np.asarray([[0, 1], [1, 0]])
        x = np.eye(3, dtype=np.float32)
        graph = Graph(x, edges)
        conv = GCNConv(3, 3, bias=False, rng=np.random.default_rng(0))
        out = conv(Tensor(x), graph)
        assert np.abs(out.data[2]).sum() > 0

    def test_operation_count_positive(self, tiny_graph):
        conv = GCNConv(5, 8)
        assert conv.operation_count(tiny_graph) > 0


class TestGINConv:
    def test_output_shape(self, tiny_graph, features):
        conv = GINConv(5, 6, rng=np.random.default_rng(0))
        assert conv(features, tiny_graph).shape == (12, 6)

    def test_uses_raw_adjacency(self, tiny_graph):
        conv = GINConv(5, 6)
        assert conv.adjacency_for(tiny_graph).nnz == tiny_graph.num_edges

    def test_eps_changes_output(self, tiny_graph, features):
        conv = GINConv(5, 6, eps=0.0, train_eps=False, batch_norm=False,
                       rng=np.random.default_rng(0))
        conv_eps = GINConv(5, 6, eps=2.0, train_eps=False, batch_norm=False,
                           rng=np.random.default_rng(0))
        out_a = conv(features, tiny_graph).data
        out_b = conv_eps(features, tiny_graph).data
        assert not np.allclose(out_a, out_b)

    def test_learnable_eps_receives_gradient(self, tiny_graph, features):
        conv = GINConv(5, 6, train_eps=True, batch_norm=False, rng=np.random.default_rng(0))
        conv(features, tiny_graph).sum().backward()
        assert conv.eps.grad is not None


class TestSAGEConv:
    def test_output_shape(self, tiny_graph, features):
        conv = SAGEConv(5, 7, rng=np.random.default_rng(0))
        assert conv(features, tiny_graph).shape == (12, 7)

    def test_mean_adjacency_rows_sum_to_one(self, tiny_graph):
        rows = mean_adjacency(tiny_graph).row_sum()
        connected = tiny_graph.in_degrees() > 0
        np.testing.assert_allclose(rows[connected], np.ones(connected.sum()), rtol=1e-5)

    def test_sample_adjacency_caps_neighbours(self, sbm_graph):
        sampled = sample_adjacency(sbm_graph, max_neighbours=3,
                                   rng=np.random.default_rng(0))
        per_row = np.diff(sampled.csr.indptr)
        assert per_row.max() <= 3

    def test_neighbour_sampling_only_in_training(self, tiny_graph, features):
        conv = SAGEConv(5, 4, max_neighbours=1, rng=np.random.default_rng(0))
        conv.eval()
        out_a = conv(features, tiny_graph).data
        out_b = conv(features, tiny_graph).data
        np.testing.assert_allclose(out_a, out_b)

    def test_matches_formula(self, tiny_graph, features):
        conv = SAGEConv(5, 4, rng=np.random.default_rng(0))
        conv.eval()
        out = conv(features, tiny_graph)
        aggregated = mean_adjacency(tiny_graph).to_dense() @ tiny_graph.x
        expected = (tiny_graph.x @ conv.linear_root.weight.data + conv.linear_root.bias.data
                    + aggregated @ conv.linear_neighbour.weight.data)
        np.testing.assert_allclose(out.data, expected, rtol=1e-4, atol=1e-5)


class TestAttentionLayers:
    def test_gat_output_shape(self, tiny_graph, features):
        conv = GATConv(5, 6, rng=np.random.default_rng(0))
        assert conv(features, tiny_graph).shape == (12, 6)

    def test_gat_gradients(self, tiny_graph, features):
        conv = GATConv(5, 4, rng=np.random.default_rng(0))
        conv(features, tiny_graph).sum().backward()
        assert conv.attention_src.grad is not None
        assert conv.linear.weight.grad is not None

    def test_transformer_output_shape(self, tiny_graph, features):
        conv = TransformerConv(5, 6, rng=np.random.default_rng(0))
        assert conv(features, tiny_graph).shape == (12, 6)

    def test_attention_layers_operation_counts(self, tiny_graph):
        assert GATConv(5, 6).operation_count(tiny_graph) > 0
        assert TransformerConv(5, 6).operation_count(tiny_graph) > 0


class TestTAGConv:
    def test_output_shape(self, tiny_graph, features):
        conv = TAGConv(5, 6, hops=2, rng=np.random.default_rng(0))
        assert conv(features, tiny_graph).shape == (12, 6)

    def test_hops_validation(self):
        with pytest.raises(ValueError):
            TAGConv(5, 6, hops=0)

    def test_more_hops_more_operations(self, tiny_graph):
        few = TAGConv(5, 6, hops=1).operation_count(tiny_graph)
        many = TAGConv(5, 6, hops=3).operation_count(tiny_graph)
        assert many > few
