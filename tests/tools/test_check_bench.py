"""Exit-code contract of the CI perf-regression gate (tools/check_bench.py)."""

import importlib.util
import json
from pathlib import Path

import pytest

from repro.loadgen import report

_TOOL = Path(__file__).resolve().parents[2] / "tools" / "check_bench.py"


@pytest.fixture(scope="module")
def check_bench():
    spec = importlib.util.spec_from_file_location("check_bench", _TOOL)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _write(path: Path, results: dict) -> Path:
    payload = report.new_payload()
    for name, metrics in results.items():
        report.merge_result(payload, name, metrics, kind="benchmark")
    report.save_payload(path, payload)
    return path


def _run(check_bench, baseline: Path, candidate: Path,
         tolerance: float = 0.5) -> int:
    return check_bench.main(["--baseline", str(baseline),
                             "--candidate", str(candidate),
                             "--tolerance", str(tolerance)])


class TestExitCodes:
    def test_identical_payloads_pass(self, check_bench, tmp_path):
        base = _write(tmp_path / "base.json",
                      {"serving.n1000": {"full_ms": 10.0, "block_ms": 3.0,
                                         "achieved_qps": 120.0}})
        cand = _write(tmp_path / "cand.json",
                      {"serving.n1000": {"full_ms": 10.0, "block_ms": 3.0,
                                         "achieved_qps": 120.0}})
        assert _run(check_bench, base, cand) == 0

    def test_synthetic_latency_regression_fails(self, check_bench, tmp_path):
        base = _write(tmp_path / "base.json",
                      {"loadtest.x": {"p95_ms": 8.0}})
        cand = _write(tmp_path / "cand.json",
                      {"loadtest.x": {"p95_ms": 80.0}})  # 10x the baseline
        assert _run(check_bench, base, cand, tolerance=0.5) == 1

    def test_synthetic_throughput_regression_fails(self, check_bench,
                                                   tmp_path):
        base = _write(tmp_path / "base.json",
                      {"loadtest.x": {"achieved_qps": 200.0}})
        cand = _write(tmp_path / "cand.json",
                      {"loadtest.x": {"achieved_qps": 20.0}})
        assert _run(check_bench, base, cand, tolerance=0.5) == 1

    def test_within_band_passes(self, check_bench, tmp_path):
        base = _write(tmp_path / "base.json",
                      {"loadtest.x": {"p95_ms": 8.0, "achieved_qps": 200.0}})
        cand = _write(tmp_path / "cand.json",
                      {"loadtest.x": {"p95_ms": 11.0, "achieved_qps": 150.0}})
        assert _run(check_bench, base, cand, tolerance=0.5) == 0

    def test_absolute_slack_absorbs_near_zero_baselines(self, check_bench,
                                                        tmp_path):
        # relative band alone would fail 0.0 -> 0.03; the slack absorbs it
        base = _write(tmp_path / "base.json",
                      {"loadtest.x": {"slo_violation_rate": 0.0}})
        cand = _write(tmp_path / "cand.json",
                      {"loadtest.x": {"slo_violation_rate": 0.03}})
        assert _run(check_bench, base, cand, tolerance=0.5) == 0

    def test_invalid_schema_is_exit_2(self, check_bench, tmp_path):
        base = _write(tmp_path / "base.json",
                      {"loadtest.x": {"p95_ms": 8.0}})
        bad = tmp_path / "cand.json"
        bad.write_text(json.dumps({"schema": "something-else"}))
        assert _run(check_bench, base, bad) == 2
        assert _run(check_bench, tmp_path / "missing.json", base) == 2
        assert check_bench.main(["--baseline", str(base), "--candidate",
                                 str(base), "--tolerance", "-1"]) == 2

    def test_vacuous_comparison_is_exit_3(self, check_bench, tmp_path):
        # disjoint result names: nothing to gate must not look like success
        base = _write(tmp_path / "base.json",
                      {"loadtest.a": {"p95_ms": 8.0}})
        cand = _write(tmp_path / "cand.json",
                      {"loadtest.b": {"p95_ms": 8.0}})
        assert _run(check_bench, base, cand) == 3
        # overlapping names but only informational metrics: still vacuous
        base = _write(tmp_path / "base2.json",
                      {"loadtest.a": {"requests": 32, "deadline_ms": 50.0}})
        cand = _write(tmp_path / "cand2.json",
                      {"loadtest.a": {"requests": 32, "deadline_ms": 50.0}})
        assert _run(check_bench, base, cand) == 3


class TestCompare:
    def test_only_shared_names_and_metrics_compared(self, check_bench):
        baseline = report.merge_result(
            report.new_payload(), "a", {"p95_ms": 8.0, "warm_ms": 1.0},
            kind="benchmark")
        report.merge_result(baseline, "only-base", {"p95_ms": 1.0},
                            kind="benchmark")
        candidate = report.merge_result(
            report.new_payload(), "a", {"p95_ms": 8.5, "full_ms": 2.0},
            kind="benchmark")
        regressions, checked = check_bench.compare(baseline, candidate, 0.5)
        assert checked == 1          # p95_ms only — the intersection
        assert regressions == []
