"""reprolint: every rule catches its seeded violation, and the tree is clean.

Three layers of coverage:

* **fixtures** — for each rule RL01–RL04, a minimal positive (the rule
  fires), a minimal negative (the blessed pattern passes) and a
  suppression (``# reprolint: disable=RLxx`` silences exactly that rule);
* **self-check** — the shipped ``src`` / ``tests`` / ``benchmarks`` /
  ``examples`` trees lint clean, so CI's lint step cannot rot silently;
* **static/dynamic agreement** — the RL03 lock-order graph is
  cross-checked against a runtime lock-sanitizer trace of the real cache
  stack under concurrency.
"""

import sys
import textwrap
import threading
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parents[2]
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from tools.reprolint import ALL_RULES, RULES_BY_ID, analyze_source  # noqa: E402
from tools.reprolint.cli import main as reprolint_main  # noqa: E402
from tools.reprolint.rules.rl03_locks import (  # noqa: E402
    build_lock_order_graph,
    find_cycle,
)
from tools.reprolint.sanitizer import LockSanitizer  # noqa: E402

from repro.cache import BlockCache  # noqa: E402


def lint(source, rules=None, path="fixture.py"):
    return analyze_source(textwrap.dedent(source), rules or ALL_RULES,
                          Path(path))


def rule_ids(violations):
    return [violation.rule for violation in violations]


# --------------------------------------------------------------------- #
# RL01 — determinism
# --------------------------------------------------------------------- #
class TestDeterminismRule:
    def test_global_numpy_rng_flagged(self):
        violations = lint("""
            import numpy as np
            x = np.random.rand(3)
        """)
        assert rule_ids(violations) == ["RL01"]

    def test_global_seed_call_flagged(self):
        violations = lint("""
            import numpy as np
            np.random.seed(0)
        """)
        assert rule_ids(violations) == ["RL01"]

    def test_stdlib_global_random_flagged(self):
        violations = lint("""
            import random
            choice = random.choice([1, 2, 3])
        """)
        assert rule_ids(violations) == ["RL01"]

    def test_wall_clock_seed_flagged(self):
        violations = lint("""
            import time
            import numpy as np
            rng = np.random.default_rng(int(time.time()))
        """)
        assert rule_ids(violations) == ["RL01"]

    def test_seeded_generator_passes(self):
        violations = lint("""
            import numpy as np
            rng = np.random.default_rng(7)
            x = rng.standard_normal(3)
        """)
        assert violations == []

    def test_suppression_silences_the_line(self):
        violations = lint("""
            import numpy as np
            x = np.random.rand(3)  # reprolint: disable=RL01
        """)
        assert violations == []


# --------------------------------------------------------------------- #
# RL02 — integer-path purity
# --------------------------------------------------------------------- #
class TestIntegerPurityRule:
    def test_true_division_on_integer_path_flagged(self):
        violations = lint("""
            import numpy as np

            def quantized_spmm(values, x):
                accumulator = x.astype(np.int64)
                return accumulator / 3
        """)
        assert rule_ids(violations) == ["RL02"]
        assert "true division" in violations[0].message

    def test_implicit_promotion_flagged(self):
        violations = lint("""
            import numpy as np

            def quantized_spmm(values, x):
                accumulator = x.astype(np.int64)
                return accumulator * 0.5
        """)
        assert rule_ids(violations) == ["RL02"]
        assert "promotion" in violations[0].message

    def test_narrowing_float_cast_flagged(self):
        violations = lint("""
            import numpy as np

            def quantized_edge_spmm(values, x):
                accumulator = x.astype(np.int64)
                return accumulator.astype(np.float32)
        """)
        assert rule_ids(violations) == ["RL02"]
        assert "narrowing" in violations[0].message

    def test_explicit_float64_exit_passes(self):
        violations = lint("""
            import numpy as np

            def quantized_spmm(values, x):
                accumulator = x.astype(np.int64)
                main = accumulator.sum(axis=0)
                return main.astype(np.float64) / 3
        """)
        assert violations == []

    def test_marker_opts_helper_into_the_walk(self):
        violations = lint("""
            import numpy as np

            # reprolint: integer-stage
            def _aggregate(x):
                counts = np.zeros(4, dtype=np.int64)
                return counts / 2
        """)
        assert rule_ids(violations) == ["RL02"]

    def test_unmarked_helper_is_not_a_stage(self):
        violations = lint("""
            import numpy as np

            def unrelated(x):
                counts = np.zeros(4, dtype=np.int64)
                return counts / 2
        """)
        assert violations == []

    def test_suppression(self):
        violations = lint("""
            import numpy as np

            def quantized_spmm(values, x):
                accumulator = x.astype(np.int64)
                return accumulator / 3  # reprolint: disable=RL02
        """)
        assert violations == []


# --------------------------------------------------------------------- #
# RL03 — lock discipline
# --------------------------------------------------------------------- #
class TestLockDisciplineRule:
    def test_unlocked_access_to_guarded_attribute_flagged(self):
        violations = lint("""
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._hits = 0  # guarded-by: self._lock

                def bump(self):
                    self._hits += 1
        """)
        assert rule_ids(violations) == ["RL03"]
        assert "_hits" in violations[0].message

    def test_locked_access_passes(self):
        violations = lint("""
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._hits = 0  # guarded-by: self._lock

                def bump(self):
                    with self._lock:
                        self._hits += 1
        """)
        assert violations == []

    def test_requires_lock_annotation_trusted(self):
        violations = lint("""
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._hits = 0  # guarded-by: self._lock

                def _bump_locked(self):  # requires-lock: self._lock
                    self._hits += 1

                def bump(self):
                    with self._lock:
                        self._bump_locked()
        """)
        assert violations == []

    def test_nested_callable_does_not_inherit_the_lock(self):
        violations = lint("""
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._hits = 0  # guarded-by: self._lock

                def deferred(self):
                    with self._lock:
                        def callback():
                            return self._hits
                        return callback
        """)
        assert rule_ids(violations) == ["RL03"]

    def test_acquisition_order_cycle_flagged(self):
        violations = lint("""
            class Worker:
                def one(self):
                    with self._lock_a:
                        with self._lock_b:
                            pass

                def two(self):
                    with self._lock_b:
                        with self._lock_a:
                            pass
        """)
        assert rule_ids(violations) == ["RL03"]
        assert "cycle" in violations[0].message

    def test_consistent_order_passes(self):
        violations = lint("""
            class Worker:
                def one(self):
                    with self._lock_a:
                        with self._lock_b:
                            pass

                def two(self):
                    with self._lock_a:
                        with self._lock_b:
                            pass
        """)
        assert violations == []


# --------------------------------------------------------------------- #
# RL04 — API hygiene
# --------------------------------------------------------------------- #
class TestApiHygieneRule:
    def test_deprecated_import_flagged(self):
        violations = lint("""
            from repro.quant.inference import IntegerGCNInference
        """)
        assert rule_ids(violations) == ["RL04"]

    def test_version_literal_outside_artifact_module_flagged(self):
        violations = lint("""
            payload["format_version"] = 3
        """)
        assert rule_ids(violations) == ["RL04"]

    def test_artifact_module_owns_its_version(self):
        violations = lint("""
            FORMAT_VERSION = 3
        """, path="src/repro/serving/artifact.py")
        assert violations == []

    def test_file_level_suppression(self):
        violations = lint("""
            # reprolint: disable-file=RL04
            from repro.quant.inference import IntegerGCNInference
        """)
        assert violations == []


# --------------------------------------------------------------------- #
# RL05 — cache-key versioning
# --------------------------------------------------------------------- #
class TestCacheKeyVersionRule:
    def test_versionless_key_flagged(self):
        violations = lint("""
            def key(node, fanout, hop, epoch):
                return ("blk", node, fanout, hop, epoch)
        """)
        assert rule_ids(violations) == ["RL05"]
        assert "graph-version" in violations[0].message

    def test_row_version_component_passes(self):
        violations = lint("""
            def key(node, version):
                return ("row", int(node), int(version))
        """)
        assert violations == []

    def test_region_tag_component_passes(self):
        violations = lint("""
            def key(seeds, fanouts, epoch, region_tag):
                return ("bat", seeds.tobytes(), tuple(fanouts), epoch,
                        region_tag)
        """)
        assert violations == []

    def test_membership_tuple_is_not_a_key(self):
        violations = lint("""
            def is_row_shaped(key):
                return key[0] in ("row", "blk")
        """)
        assert violations == []

    def test_line_suppression(self):
        violations = lint("""
            def key(node):
                return ("row", node)  # reprolint: disable=RL05
        """)
        assert violations == []


# --------------------------------------------------------------------- #
# suppression hygiene + CLI + self-check
# --------------------------------------------------------------------- #
class TestSuppressionsAndCli:
    def test_unknown_rule_id_in_suppression_is_reported(self):
        violations = lint("""
            x = 1  # reprolint: disable=RL99
        """)
        assert rule_ids(violations) == ["RL00"]

    def test_suppressing_one_rule_keeps_the_other(self):
        violations = lint("""
            import numpy as np
            from repro.quant.inference import IntegerGCNInference
            x = np.random.rand(3)  # reprolint: disable=RL01
        """)
        assert rule_ids(violations) == ["RL04"]

    def test_cli_exit_codes(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("import numpy as np\n"
                         "rng = np.random.default_rng(0)\n")
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import numpy as np\n"
                         "x = np.random.rand(3)\n")
        assert reprolint_main([str(clean)]) == 0
        assert reprolint_main([str(dirty)]) == 1
        output = capsys.readouterr()
        assert "RL01" in output.out
        assert "hint:" in output.out
        assert reprolint_main([str(tmp_path / "missing.py")]) == 2
        assert reprolint_main(["--rules", "RL99", str(clean)]) == 2

    def test_rules_filter(self, tmp_path):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import numpy as np\n"
                         "x = np.random.rand(3)\n")
        assert reprolint_main(["--rules", "RL04", str(dirty)]) == 0
        assert reprolint_main(["--rules", "RL01", str(dirty)]) == 1

    def test_rule_registry_is_complete(self):
        assert sorted(RULES_BY_ID) == ["RL01", "RL02", "RL03", "RL04",
                                       "RL05"]

    def test_shipped_tree_is_clean(self):
        targets = [str(REPO_ROOT / name)
                   for name in ("src", "tests", "benchmarks", "examples")
                   if (REPO_ROOT / name).exists()]
        assert reprolint_main(targets) == 0


# --------------------------------------------------------------------- #
# RL03 static graph vs. runtime lock-sanitizer trace
# --------------------------------------------------------------------- #
class TestLockSanitizerCrossCheck:
    def _instrumented_cache(self, sanitizer):
        cache = BlockCache(max_entries=512)
        cache._lock = sanitizer.wrap("BlockCache.self._lock", cache._lock)
        cache._lru._lock = sanitizer.wrap("LRUCache.self._lock",
                                          cache._lru._lock)
        return cache

    def _hammer(self, cache, worker_seed):
        rng = np.random.default_rng(worker_seed)
        rows = [(np.arange(3, dtype=np.int64),
                 np.ones(3, dtype=np.float64))] * 8
        for _ in range(40):
            nodes = rng.integers(0, 64, size=8)
            cache.put_raw_rows([int(node) for node in nodes], rows)
            cache.get_rows(nodes.astype(np.int64), fanout=2, hop=0, epoch=0)
            cache.get_batch(nodes.astype(np.int64), (2,), 0)
            cache.stats()

    def test_runtime_edges_agree_with_static_graph(self):
        static = build_lock_order_graph(
            [REPO_ROOT / "src" / "repro" / "cache",
             REPO_ROOT / "src" / "repro" / "serving"])
        static_edges = {(source, target)
                        for source, targets in static.items()
                        for target in targets}

        sanitizer = LockSanitizer()
        cache = self._instrumented_cache(sanitizer)
        workers = [threading.Thread(target=self._hammer,
                                    args=(cache, seed))
                   for seed in range(4)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()

        observed = sanitizer.edges()
        # The static analysis over-approximates the dynamic behaviour: any
        # runtime edge outside the static graph is a path RL03 missed.
        assert observed <= static_edges
        # ... and the nested acquisition in BlockCache.get_rows really runs.
        assert ("BlockCache.self._lock", "LRUCache.self._lock") in observed
        # Both views must be deadlock-free.
        assert find_cycle(static) is None
        assert sanitizer.find_cycle() is None
