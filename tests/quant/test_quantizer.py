"""Tests for the affine QAT quantizer (Equations 3-4) and its observers."""

import numpy as np
import pytest

from repro.quant.quantizer import AffineQuantizer, IdentityQuantizer, integer_range
from repro.tensor import Tensor


class TestIntegerRange:
    def test_signed_ranges(self):
        assert integer_range(8, signed=True) == (-128, 127)
        assert integer_range(4, signed=True) == (-8, 7)
        assert integer_range(2, signed=True) == (-2, 1)

    def test_unsigned_ranges(self):
        assert integer_range(8, signed=False) == (0, 255)
        assert integer_range(1, signed=False) == (0, 1)

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            integer_range(0, signed=True)


class TestQuantizationParameters:
    def test_scale_covers_observed_range(self):
        quantizer = AffineQuantizer(bits=8)
        quantizer.observe(np.asarray([-2.0, 2.0]))
        params = quantizer.quantization_parameters()
        scale, _ = params.as_scalars()
        assert scale == pytest.approx(4.0 / 255, rel=1e-3)

    def test_symmetric_zero_point_is_zero(self):
        quantizer = AffineQuantizer(bits=8, symmetric=True)
        quantizer.observe(np.asarray([-1.5, 3.0]))
        _, zero_point = quantizer.quantization_parameters().as_scalars()
        assert zero_point == 0.0

    def test_affine_range_includes_zero(self):
        quantizer = AffineQuantizer(bits=8)
        quantizer.observe(np.asarray([2.0, 6.0]))
        params = quantizer.quantization_parameters()
        scale, zero_point = params.as_scalars()
        # zero must be representable: dequant(zero_point) == 0
        assert (0.0 - 0.0) * scale == 0.0
        assert params.qmin <= zero_point <= params.qmax

    def test_uninitialised_defaults(self):
        params = AffineQuantizer(bits=4).quantization_parameters()
        scale, _ = params.as_scalars()
        assert scale > 0

    def test_unknown_observer_rejected(self):
        with pytest.raises(ValueError):
            AffineQuantizer(observer="histogram")


class TestObservers:
    def test_minmax_observer_expands_only(self):
        quantizer = AffineQuantizer(bits=8, observer="minmax")
        quantizer.observe(np.asarray([-1.0, 1.0]))
        quantizer.observe(np.asarray([-0.1, 0.1]))
        assert float(quantizer.running_min) == pytest.approx(-1.0)
        assert float(quantizer.running_max) == pytest.approx(1.0)

    def test_ema_observer_tracks_slowly(self):
        quantizer = AffineQuantizer(bits=8, observer="ema", momentum=0.1)
        quantizer.observe(np.asarray([-1.0, 1.0]))
        quantizer.observe(np.asarray([-10.0, 10.0]))
        assert float(quantizer.running_max) < 10.0

    def test_percentile_observer_clips_outliers(self):
        values = np.concatenate([np.random.default_rng(0).uniform(-1, 1, 1000),
                                 np.asarray([100.0])])
        quantizer = AffineQuantizer(bits=8, observer="percentile", percentile=0.01)
        quantizer.observe(values)
        assert float(quantizer.running_max) < 10.0

    def test_empty_observation_ignored(self):
        quantizer = AffineQuantizer(bits=8)
        quantizer.observe(np.asarray([]))
        assert not bool(quantizer.initialized)


class TestFakeQuantize:
    def test_roundtrip_error_bounded_by_scale(self):
        quantizer = AffineQuantizer(bits=8)
        values = np.random.default_rng(0).uniform(-1, 1, (50,)).astype(np.float32)
        out = quantizer.fake_quantize(Tensor(values))
        scale, _ = quantizer.quantization_parameters().as_scalars()
        assert np.abs(out.data - values).max() <= scale * 0.51 + 1e-6

    def test_lower_bits_higher_error(self):
        values = np.random.default_rng(1).uniform(-1, 1, (200,)).astype(np.float32)
        errors = {}
        for bits in (2, 4, 8):
            quantizer = AffineQuantizer(bits=bits)
            out = quantizer.fake_quantize(Tensor(values))
            errors[bits] = np.abs(out.data - values).mean()
        assert errors[2] > errors[4] > errors[8]

    def test_output_lies_on_quantization_grid(self):
        quantizer = AffineQuantizer(bits=4)
        values = np.random.default_rng(2).uniform(-1, 1, (30,)).astype(np.float32)
        out = quantizer.fake_quantize(Tensor(values))
        params = quantizer.quantization_parameters()
        scale, zero_point = params.as_scalars()
        grid_positions = out.data / scale + zero_point
        np.testing.assert_allclose(grid_positions, np.rint(grid_positions), atol=1e-3)

    def test_ste_gradient_inside_range(self):
        quantizer = AffineQuantizer(bits=8)
        values = Tensor(np.random.default_rng(3).uniform(-1, 1, (10,)).astype(np.float32),
                        requires_grad=True)
        quantizer.fake_quantize(values).sum().backward()
        np.testing.assert_allclose(values.grad, np.ones(10), atol=1e-6)

    def test_ste_gradient_clipped_outside_range(self):
        quantizer = AffineQuantizer(bits=8, observer="minmax")
        quantizer.observe(np.asarray([-1.0, 1.0]))
        quantizer.eval()
        values = Tensor(np.asarray([0.0, 100.0], dtype=np.float32), requires_grad=True)
        quantizer.fake_quantize(values).sum().backward()
        assert values.grad[0] == pytest.approx(1.0)
        assert values.grad[1] == pytest.approx(0.0)

    def test_eval_mode_does_not_update_ranges(self):
        quantizer = AffineQuantizer(bits=8)
        quantizer.fake_quantize(Tensor(np.asarray([-1.0, 1.0], dtype=np.float32)))
        quantizer.eval()
        before = float(quantizer.running_max)
        quantizer.fake_quantize(Tensor(np.asarray([-50.0, 50.0], dtype=np.float32)))
        assert float(quantizer.running_max) == pytest.approx(before)

    def test_training_mode_updates_ranges(self):
        quantizer = AffineQuantizer(bits=8, observer="minmax")
        quantizer.fake_quantize(Tensor(np.asarray([-1.0, 1.0], dtype=np.float32)))
        quantizer.fake_quantize(Tensor(np.asarray([-5.0, 5.0], dtype=np.float32)))
        assert float(quantizer.running_max) == pytest.approx(5.0)


class TestQuantizeArray:
    def test_integer_output_within_bounds(self):
        quantizer = AffineQuantizer(bits=4)
        integers, params = quantizer.quantize_array(
            np.random.default_rng(0).uniform(-2, 2, 100))
        assert integers.dtype == np.int64
        assert integers.min() >= params.qmin
        assert integers.max() <= params.qmax

    def test_dequantize_roundtrip(self):
        quantizer = AffineQuantizer(bits=8)
        values = np.random.default_rng(1).uniform(-3, 3, 50)
        integers, params = quantizer.quantize_array(values)
        recovered = quantizer.dequantize_array(integers, params)
        scale, _ = params.as_scalars()
        assert np.abs(recovered - values).max() <= scale

    def test_symmetric_preserves_zeros(self):
        quantizer = AffineQuantizer(bits=8, symmetric=True)
        values = np.asarray([0.0, 0.5, -0.5, 0.0])
        integers, params = quantizer.quantize_array(values)
        recovered = quantizer.dequantize_array(integers, params)
        assert recovered[0] == 0.0 and recovered[3] == 0.0


class TestIdentityQuantizer:
    def test_identity_passthrough(self):
        quantizer = IdentityQuantizer()
        x = Tensor([1.0, 2.0])
        assert quantizer(x) is x
        assert quantizer.bits == 32
