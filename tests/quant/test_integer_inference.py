"""Tests for the end-to-end integer inference engine (Figure 7, stage 5)."""
# reprolint: disable-file=RL04  (this module exists to pin the deprecated alias)

import numpy as np
import pytest

from repro.quant.inference import IntegerGCNInference
from repro.quant.qmodules import (
    QuantNodeClassifier,
    QuantSAGEConv,
    gcn_component_names,
    uniform_assignment,
)
from repro.training.trainer import evaluate_node_classifier, train_node_classifier


@pytest.fixture(scope="module")
def trained_int8_model(small_cora):
    assignment = uniform_assignment(gcn_component_names(2), 8)
    model = QuantNodeClassifier.from_assignment(
        [(small_cora.num_features, 16), (16, small_cora.num_classes)], "gcn",
        assignment, dropout=0.0, rng=np.random.default_rng(0))
    train_node_classifier(model, small_cora, epochs=30, lr=0.02)
    model.eval()
    return model


class TestIntegerInference:
    def test_matches_fake_quantized_model(self, trained_int8_model, small_cora):
        """Integer inference reproduces the QAT model's logits (Theorem 1 parity)."""
        engine = IntegerGCNInference.from_quantized_model(trained_int8_model)
        integer_logits = engine.predict(small_cora)
        fake_quant_logits = trained_int8_model(small_cora).data
        np.testing.assert_allclose(integer_logits, fake_quant_logits,
                                   rtol=1e-3, atol=1e-3)

    def test_predictions_match_model_accuracy(self, trained_int8_model, small_cora):
        engine = IntegerGCNInference.from_quantized_model(trained_int8_model)
        predictions = engine.predict_classes(small_cora)
        engine_accuracy = (predictions[small_cora.test_mask]
                           == small_cora.y[small_cora.test_mask]).mean()
        model_accuracy = evaluate_node_classifier(trained_int8_model, small_cora,
                                                  small_cora.test_mask)
        assert engine_accuracy == pytest.approx(model_accuracy, abs=1e-6)

    def test_parity_for_mixed_assignment(self, small_cora):
        """Parity also holds when components use different bit-widths."""
        assignment = uniform_assignment(gcn_component_names(2), 4)
        assignment["conv0.weight"] = 8
        assignment["conv1.adjacency"] = 8
        model = QuantNodeClassifier.from_assignment(
            [(small_cora.num_features, 8), (8, small_cora.num_classes)], "gcn",
            assignment, dropout=0.0, rng=np.random.default_rng(1))
        train_node_classifier(model, small_cora, epochs=15, lr=0.02)
        model.eval()
        engine = IntegerGCNInference.from_quantized_model(model)
        np.testing.assert_allclose(engine.predict(small_cora), model(small_cora).data,
                                   rtol=2e-3, atol=2e-3)

    def test_bit_operations_match_model_counter(self, trained_int8_model, small_cora):
        engine = IntegerGCNInference.from_quantized_model(trained_int8_model)
        engine_counter = engine.bit_operations(small_cora)
        model_counter = trained_int8_model.bit_operations(small_cora)
        assert engine_counter.total_bit_operations > 0
        # The engine counts the same transform/aggregate work as the QAT model
        # (the model additionally counts the FP32 input width on layer 0).
        ratio = engine_counter.total_bit_operations / model_counter.total_bit_operations
        assert 0.5 <= ratio <= 1.5

    def test_rejects_non_gcn_layers(self, small_cora):
        model = QuantNodeClassifier(
            [QuantSAGEConv(small_cora.num_features, small_cora.num_classes, {})])
        with pytest.raises(TypeError):
            IntegerGCNInference.from_quantized_model(model)

    def test_requires_at_least_one_layer(self):
        with pytest.raises(ValueError):
            IntegerGCNInference([])
