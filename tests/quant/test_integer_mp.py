"""Theorem 1 tests: integer message passing equals fake-quantized aggregation.

These are the reproduction's analogue of the paper's
``test_graph_conv_module.py`` / ``test_graph_iso_module.py`` checks, plus
property-based tests over random graphs, bit-widths and quantization
parameters.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.quant.integer_mp import (
    fake_quantized_reference,
    integer_message_passing,
    quantized_matmul_dense,
    quantized_spmm,
)
from repro.quant.quantizer import AffineQuantizer
from repro.tensor.sparse import SparseTensor


def random_sparse(num_nodes, density, seed):
    rng = np.random.default_rng(seed)
    mask = rng.random((num_nodes, num_nodes)) < density
    values = rng.random((num_nodes, num_nodes)) * mask
    return SparseTensor(values.astype(np.float32))


class TestDenseTheorem:
    @pytest.mark.parametrize("bits", [2, 4, 8])
    def test_scalar_parameters_exact(self, bits):
        rng = np.random.default_rng(bits)
        a = rng.random((7, 7)) * (rng.random((7, 7)) < 0.5)
        x = rng.standard_normal((7, 3))
        quantizer_a = AffineQuantizer(bits=bits, symmetric=True)
        quantizer_x = AffineQuantizer(bits=bits)
        qa, params_a = quantizer_a.quantize_array(a)
        qx, params_x = quantizer_x.quantize_array(x)
        sa, za = params_a.as_scalars()
        sx, zx = params_x.as_scalars()
        output = quantized_matmul_dense(qa, sa, za, qx, sx, zx)
        reference = quantizer_a.dequantize_array(qa, params_a) @ \
            quantizer_x.dequantize_array(qx, params_x)
        np.testing.assert_allclose(output, reference, rtol=1e-6, atol=1e-6)

    def test_vector_parameters_exact(self):
        """Per-row scales for A and per-column scales/zero-points for X."""
        rng = np.random.default_rng(0)
        qa = rng.integers(-8, 8, size=(5, 5)).astype(np.float64)
        qx = rng.integers(-8, 8, size=(5, 4)).astype(np.float64)
        sa = rng.uniform(0.01, 0.2, size=5)
        za = rng.integers(-2, 3, size=5).astype(np.float64)
        sx = rng.uniform(0.01, 0.2, size=4)
        zx = rng.integers(-2, 3, size=4).astype(np.float64)
        fake_a = (qa - za.reshape(-1, 1)) * sa.reshape(-1, 1)
        fake_x = (qx - zx.reshape(1, -1)) * sx.reshape(1, -1)
        reference = fake_a @ fake_x
        output = quantized_matmul_dense(qa, sa, za, qx, sx, zx)
        np.testing.assert_allclose(output, reference, rtol=1e-9, atol=1e-9)

    def test_output_quantizer_parameters_applied(self):
        rng = np.random.default_rng(1)
        qa = rng.integers(-4, 4, size=(3, 3)).astype(np.float64)
        qx = rng.integers(-4, 4, size=(3, 2)).astype(np.float64)
        output = quantized_matmul_dense(qa, 0.1, 0.0, qx, 0.2, 0.0, sy=0.5, zy=3.0)
        reference = (0.1 * qa) @ (0.2 * qx) / 0.5 + 3.0
        np.testing.assert_allclose(output, reference, rtol=1e-9)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            quantized_matmul_dense(np.ones((3, 3)), np.ones(2), 0.0,
                                   np.ones((3, 2)), 1.0, 0.0)


class TestSparseTheorem:
    @pytest.mark.parametrize("bits", [4, 8])
    def test_matches_fake_quantized_reference(self, bits):
        adjacency = random_sparse(30, 0.2, seed=bits)
        features = np.random.default_rng(bits + 1).standard_normal((30, 6)).astype(np.float32)
        quantizer_a = AffineQuantizer(bits=bits, symmetric=True)
        quantizer_x = AffineQuantizer(bits=bits)
        result = integer_message_passing(adjacency, features, quantizer_a, quantizer_x)
        reference = fake_quantized_reference(adjacency, features, quantizer_a, quantizer_x)
        np.testing.assert_allclose(result.dequantized_output, reference,
                                   rtol=1e-5, atol=1e-5)

    def test_gcn_normalized_adjacency(self, small_cora):
        """The paper's GCN verification: works on a real normalised adjacency."""
        adjacency = small_cora.normalized_adjacency()
        quantizer_a = AffineQuantizer(bits=8, symmetric=True)
        quantizer_x = AffineQuantizer(bits=8)
        result = integer_message_passing(adjacency, small_cora.x, quantizer_a, quantizer_x)
        reference = fake_quantized_reference(adjacency, small_cora.x,
                                             quantizer_a, quantizer_x)
        np.testing.assert_allclose(result.dequantized_output, reference,
                                   rtol=1e-5, atol=1e-5)

    def test_gin_unweighted_adjacency(self, small_cora):
        """The paper's GIN verification: unweighted adjacency, INT4."""
        adjacency = small_cora.adjacency(add_self_loops=False)
        quantizer_a = AffineQuantizer(bits=4, symmetric=True)
        quantizer_x = AffineQuantizer(bits=4)
        result = integer_message_passing(adjacency, small_cora.x, quantizer_a, quantizer_x)
        reference = fake_quantized_reference(adjacency, small_cora.x,
                                             quantizer_a, quantizer_x)
        np.testing.assert_allclose(result.dequantized_output, reference,
                                   rtol=1e-5, atol=1e-5)

    def test_integer_product_is_integral(self):
        adjacency = random_sparse(20, 0.3, seed=3)
        features = np.random.default_rng(4).standard_normal((20, 5)).astype(np.float32)
        result = integer_message_passing(adjacency, features,
                                         AffineQuantizer(bits=8, symmetric=True),
                                         AffineQuantizer(bits=8))
        assert result.integer_product.dtype == np.int64

    def test_requires_symmetric_adjacency_quantizer(self):
        adjacency = random_sparse(10, 0.3, seed=5)
        features = np.zeros((10, 2), dtype=np.float32)
        with pytest.raises(ValueError):
            integer_message_passing(adjacency, features,
                                    AffineQuantizer(bits=8, symmetric=False),
                                    AffineQuantizer(bits=8))

    def test_with_output_quantizer(self):
        adjacency = random_sparse(15, 0.3, seed=6)
        features = np.random.default_rng(7).standard_normal((15, 4)).astype(np.float32)
        quantizer_y = AffineQuantizer(bits=8)
        result = integer_message_passing(adjacency, features,
                                         AffineQuantizer(bits=8, symmetric=True),
                                         AffineQuantizer(bits=8), quantizer_y)
        reference = fake_quantized_reference(adjacency, features,
                                             AffineQuantizer(bits=8, symmetric=True),
                                             AffineQuantizer(bits=8))
        scale = float(result.scale_y)
        # Dequantized output matches the reference up to the output grid resolution.
        assert np.abs(result.dequantized_output - reference).max() <= scale + 1e-6

    def test_spmm_requires_sparse_input(self):
        with pytest.raises(TypeError):
            quantized_spmm(np.ones((3, 3)), 1.0, np.ones((3, 2)), 1.0, 0.0)


class TestTheoremProperty:
    """Property-based check: the identity holds for arbitrary graphs and widths."""

    @settings(max_examples=25, deadline=None)
    @given(
        num_nodes=st.integers(min_value=2, max_value=25),
        num_features=st.integers(min_value=1, max_value=8),
        bits_a=st.sampled_from([2, 4, 8]),
        bits_x=st.sampled_from([2, 4, 8]),
        density=st.floats(min_value=0.05, max_value=0.6),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_integer_equals_fake_quantized(self, num_nodes, num_features, bits_a,
                                           bits_x, density, seed):
        rng = np.random.default_rng(seed)
        mask = rng.random((num_nodes, num_nodes)) < density
        adjacency = SparseTensor((rng.random((num_nodes, num_nodes)) * mask
                                  ).astype(np.float32))
        features = rng.standard_normal((num_nodes, num_features)).astype(np.float32)
        quantizer_a = AffineQuantizer(bits=bits_a, symmetric=True)
        quantizer_x = AffineQuantizer(bits=bits_x)
        result = integer_message_passing(adjacency, features, quantizer_a, quantizer_x)
        reference = fake_quantized_reference(adjacency, features, quantizer_a, quantizer_x)
        np.testing.assert_allclose(result.dequantized_output, reference,
                                   rtol=1e-4, atol=1e-4)

    @settings(max_examples=25, deadline=None)
    @given(
        rows=st.integers(min_value=1, max_value=10),
        inner=st.integers(min_value=1, max_value=10),
        cols=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=500),
    )
    def test_dense_identity_with_vector_parameters(self, rows, inner, cols, seed):
        rng = np.random.default_rng(seed)
        qa = rng.integers(-8, 8, size=(rows, inner)).astype(np.float64)
        qx = rng.integers(-8, 8, size=(inner, cols)).astype(np.float64)
        sa = rng.uniform(0.01, 1.0, size=rows)
        za = rng.integers(-3, 4, size=rows).astype(np.float64)
        sx = rng.uniform(0.01, 1.0, size=cols)
        zx = rng.integers(-3, 4, size=cols).astype(np.float64)
        fake_a = (qa - za.reshape(-1, 1)) * sa.reshape(-1, 1)
        fake_x = (qx - zx.reshape(1, -1)) * sx.reshape(1, -1)
        np.testing.assert_allclose(
            quantized_matmul_dense(qa, sa, za, qx, sx, zx), fake_a @ fake_x,
            rtol=1e-8, atol=1e-8)
