"""Quantized attention convolutions: components, QAT behaviour, head axis.

The fanout=∞ block-vs-full bit-identity contract for the QAT models lives
in the unified parity matrix (``tests/parity_matrix.py``, QAT × direct
rows) — this file keeps the quantization-specific behaviour: component
sets, head-axis plumbing, Degree-Quant alignment and relaxed mirrors.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.build import build_relaxed_node_classifier
from repro.quant.qmodules import (
    QuantGATConv,
    QuantNodeClassifier,
    QuantTAGConv,
    QuantTransformerConv,
    gat_component_names,
    tag_component_names,
    transformer_component_names,
    uniform_assignment,
)
from repro.graphs.sampling import NeighborSampler

FAMILIES = ("gat", "tag", "transformer")
HEADED_FAMILIES = ("gat", "transformer")

_NAMES = {
    "gat": lambda layers: gat_component_names(layers),
    "tag": lambda layers: tag_component_names(layers, hops=2),
    "transformer": lambda layers: transformer_component_names(layers),
}


def _build(conv_type, graph, bits=8, hidden=12, seed=0, heads=1):
    assignment = uniform_assignment(_NAMES[conv_type](2), bits)
    extra = {"hops": 2} if conv_type == "tag" else {"heads": heads}
    return QuantNodeClassifier.from_assignment(
        [(graph.num_features, hidden), (hidden, graph.num_classes)], conv_type,
        assignment, dropout=0.0, rng=np.random.default_rng(seed), **extra)


class TestComponentNames:
    def test_gat_components(self):
        names = gat_component_names(2)
        assert "conv0.input" in names and "conv1.input" not in names
        assert "conv0.attention" in names and "conv1.attention" in names
        assert "conv1.linear_out" in names

    def test_transformer_components(self):
        names = transformer_component_names(1)
        assert set(names) == {f"conv0.{c}" for c in QuantTransformerConv.COMPONENTS}

    def test_tag_components_scale_with_hops(self):
        names = tag_component_names(1, hops=2)
        assert "conv0.weight_2" in names and "conv0.weight_3" not in names
        assert "conv0.hop_out" in names and "conv0.adjacency" in names

    def test_component_bits_round_trip(self, sbm_graph):
        for family in FAMILIES:
            model = _build(family, sbm_graph, bits=4)
            bits = model.component_bits()
            assert set(bits) == set(_NAMES[family](2))
            assert all(value == 4 for value in bits.values())
            assert model.average_bits() == pytest.approx(4.0)


class TestQuantForward:
    @pytest.mark.parametrize("family", FAMILIES)
    def test_forward_shapes_and_finiteness(self, sbm_graph, family):
        model = _build(family, sbm_graph)
        logits = model(sbm_graph)
        assert logits.shape == (sbm_graph.num_nodes, sbm_graph.num_classes)
        assert np.isfinite(logits.data).all()

    # fanout=∞ block-vs-full bit-identity: parity-matrix rows (QAT × direct).

    @pytest.mark.parametrize("family", FAMILIES)
    def test_lower_bits_fewer_bitops(self, sbm_graph, family):
        low = _build(family, sbm_graph, bits=4).bit_operations(sbm_graph)
        high = _build(family, sbm_graph, bits=8).bit_operations(sbm_graph)
        assert low.total_bit_operations < high.total_bit_operations

    def test_tag_needs_at_least_one_hop(self):
        with pytest.raises(ValueError):
            QuantTAGConv(4, 4, {}, hops=0)

    def test_gat_attention_quantizer_is_symmetric(self, sbm_graph):
        conv = _build("gat", sbm_graph).convs[0]
        assert isinstance(conv, QuantGATConv)
        assert conv.attention_quantizer.symmetric


class TestMultiHeadQuant:
    @pytest.mark.parametrize("family", HEADED_FAMILIES)
    def test_heads_never_change_the_component_set(self, sbm_graph, family):
        single = _build(family, sbm_graph, bits=4, heads=1)
        multi = _build(family, sbm_graph, bits=4, heads=4, hidden=12)
        assert set(single.component_bits()) == set(multi.component_bits())
        assert multi.average_bits() == pytest.approx(4.0)

    @pytest.mark.parametrize("family", HEADED_FAMILIES)
    def test_multi_head_forward_and_merge_policy(self, sbm_graph, family):
        model = _build(family, sbm_graph, heads=4, hidden=12)
        assert [conv.head_merge for conv in model.convs] == ["concat", "mean"]
        assert model.convs[0].head_dim == 3
        logits = model(sbm_graph)
        assert logits.shape == (sbm_graph.num_nodes, sbm_graph.num_classes)
        assert np.isfinite(logits.data).all()

    @pytest.mark.parametrize("family", HEADED_FAMILIES)
    def test_more_heads_more_bitops(self, sbm_graph, family):
        single = _build(family, sbm_graph, heads=1).bit_operations(sbm_graph)
        multi = _build(family, sbm_graph, heads=4, hidden=12) \
            .bit_operations(sbm_graph)
        assert multi.total_bit_operations > single.total_bit_operations

    def test_from_float_copies_heads_and_merge(self, sbm_graph):
        from repro.gnn.models import build_node_model

        model = build_node_model("gat", sbm_graph.num_features, 16,
                                 sbm_graph.num_classes, heads=2,
                                 rng=np.random.default_rng(0))
        mirrored = QuantNodeClassifier.from_float(model, {})
        assert [conv.heads for conv in mirrored.convs] == [2, 2]
        assert [conv.head_merge for conv in mirrored.convs] \
            == ["concat", "mean"]

    def test_from_float_rejects_mixed_heads(self, sbm_graph):
        from repro.gnn.gat import GATConv
        from repro.gnn.models import NodeClassifier

        rng = np.random.default_rng(0)
        model = NodeClassifier([
            GATConv(sbm_graph.num_features, 8, heads=2, rng=rng),
            GATConv(8, sbm_graph.num_classes, heads=1, rng=rng)])
        with pytest.raises(TypeError, match="uniform head count"):
            QuantNodeClassifier.from_float(model, {})

    def test_from_float_rejects_concat_merged_output_layer(self, sbm_graph):
        """A concat-merged multi-head *output* layer is a legal float stack
        but from_assignment rebuilds the last layer with mean merge — the
        mirror must refuse rather than silently change the architecture."""
        from repro.gnn.gat import GATConv
        from repro.gnn.models import NodeClassifier

        rng = np.random.default_rng(0)
        model = NodeClassifier([
            GATConv(sbm_graph.num_features, 8, heads=2, rng=rng),
            GATConv(8, 8, heads=2, head_merge="concat", rng=rng)])
        with pytest.raises(TypeError, match="cannot mirror layer 1"):
            QuantNodeClassifier.from_float(model, {})


class TestDegreeQuantAlignment:
    def test_tag_hop_quantizers_see_per_hop_blocks(self, sbm_graph,
                                                   monkeypatch):
        """Hop outputs are row-indexed by each hop view's target side, so
        Degree-Quant protection must be re-aligned per hop — not left on the
        layer's input block."""
        from repro.quant.degree_quant import (
            attach_degree_probabilities,
            degree_quant_factory,
        )

        model = QuantNodeClassifier.from_assignment(
            [(sbm_graph.num_features, 8), (8, sbm_graph.num_classes)], "tag",
            uniform_assignment(tag_component_names(2, hops=2), 8),
            quantizer_factory=degree_quant_factory(), hops=2, dropout=0.0,
            rng=np.random.default_rng(0))
        attach_degree_probabilities(model, sbm_graph)
        sampler = NeighborSampler(sbm_graph, 3, batch_size=16, num_layers=4,
                                  shuffle=False, seed=0)
        batch = sampler.sample(np.arange(16, dtype=np.int64))

        seen = []
        quantizer = model.convs[0].hop_out_quantizer
        original = quantizer.set_active_block
        monkeypatch.setattr(quantizer, "set_active_block",
                            lambda block: (seen.append(block),
                                           original(block)))
        model(batch)
        # forward_blocks announces the layer's input block, then the conv
        # re-aligns to each of its two hop views, then everything clears
        assert batch.blocks[0] in seen and batch.blocks[1] in seen
        assert seen[-1] is None

    def test_from_float_rejects_mixed_tag_hops(self, sbm_graph):
        from repro.gnn.models import NodeClassifier
        from repro.gnn.tag import TAGConv

        rng = np.random.default_rng(0)
        model = NodeClassifier([
            TAGConv(sbm_graph.num_features, 8, hops=2, rng=rng),
            TAGConv(8, sbm_graph.num_classes, hops=3, rng=rng)])
        with pytest.raises(TypeError, match="uniform TAG hops"):
            QuantNodeClassifier.from_float(model, {})

    def test_from_float_copies_tag_hops(self, sbm_graph):
        from repro.gnn.models import NodeClassifier
        from repro.gnn.tag import TAGConv

        rng = np.random.default_rng(0)
        model = NodeClassifier([
            TAGConv(sbm_graph.num_features, 8, hops=2, rng=rng),
            TAGConv(8, sbm_graph.num_classes, hops=2, rng=rng)])
        mirrored = QuantNodeClassifier.from_float(model, {})
        assert [conv.hops for conv in mirrored.convs] == [2, 2]


class TestRelaxedFamilies:
    @pytest.mark.parametrize("family", FAMILIES)
    def test_export_matches_quant_component_names(self, sbm_graph, family):
        hops = 2 if family == "tag" else 3
        relaxed = build_relaxed_node_classifier(
            family, [(sbm_graph.num_features, 8), (8, sbm_graph.num_classes)],
            [4, 8], hops=hops, rng=np.random.default_rng(0))
        assignment = relaxed.export_assignment()
        expected = _NAMES[family](2) if family != "tag" \
            else tag_component_names(2, hops=hops)
        assert set(assignment) == set(expected)
        # the exported assignment instantiates the quantized model directly
        extra = {"hops": hops} if family == "tag" else {}
        model = QuantNodeClassifier.from_assignment(
            [(sbm_graph.num_features, 8), (8, sbm_graph.num_classes)], family,
            assignment, rng=np.random.default_rng(0), **extra)
        assert set(model.component_bits()) == set(expected)
