"""Tests for the Degree-Quant and A²Q baselines and the complexity table."""

import numpy as np
import pytest

from repro.quant.a2q import A2QNodeClassifier, A2QQuantizer
from repro.quant.complexity import complexity_table
from repro.quant.degree_quant import (
    DegreeQuantizer,
    attach_degree_probabilities,
    degree_protection_probabilities,
    degree_quant_factory,
)
from repro.quant.qmodules import QuantNodeClassifier, gcn_component_names, uniform_assignment
from repro.tensor import Tensor
from repro.tensor import functional as F


class TestDegreeProtection:
    def test_probabilities_monotone_in_degree(self, small_cora):
        probabilities = degree_protection_probabilities(small_cora, 0.0, 0.2)
        degrees = small_cora.in_degrees()
        assert probabilities[degrees.argmax()] >= probabilities[degrees.argmin()]

    def test_probability_bounds(self, small_cora):
        probabilities = degree_protection_probabilities(small_cora, 0.05, 0.3)
        assert probabilities.min() >= 0.05 - 1e-9
        assert probabilities.max() <= 0.3 + 1e-9

    def test_invalid_bounds_rejected(self, small_cora):
        with pytest.raises(ValueError):
            degree_protection_probabilities(small_cora, 0.5, 0.1)

    def test_protected_rows_keep_full_precision(self):
        quantizer = DegreeQuantizer(bits=2, rng=np.random.default_rng(0))
        quantizer.set_probabilities(np.asarray([1.0, 0.0]))
        values = np.asarray([[0.731], [0.522]], dtype=np.float32)
        out = quantizer.fake_quantize(Tensor(values))
        assert out.data[0, 0] == pytest.approx(0.731, abs=1e-6)   # protected row
        assert out.data[1, 0] != pytest.approx(0.522, abs=1e-6)   # quantized row

    def test_no_protection_at_inference(self):
        quantizer = DegreeQuantizer(bits=2, rng=np.random.default_rng(0))
        quantizer.set_probabilities(np.asarray([1.0, 1.0]))
        values = np.asarray([[0.731], [0.522]], dtype=np.float32)
        quantizer.fake_quantize(Tensor(values))
        quantizer.eval()
        out = quantizer.fake_quantize(Tensor(values))
        assert out.data[0, 0] != pytest.approx(0.731, abs=1e-6)

    def test_mismatched_tensor_shape_falls_back_to_plain_quantization(self):
        quantizer = DegreeQuantizer(bits=4, rng=np.random.default_rng(0))
        quantizer.set_probabilities(np.ones(10))
        weight = Tensor(np.random.default_rng(1).standard_normal((3, 3)).astype(np.float32))
        out = quantizer.fake_quantize(weight)
        assert out.shape == (3, 3)

    def test_factory_builds_degree_quantizers_for_activations(self):
        factory = degree_quant_factory()
        assert isinstance(factory(8, "activation"), DegreeQuantizer)
        assert not isinstance(factory(8, "weight"), DegreeQuantizer)
        assert factory(32, "activation").bits == 32

    def test_attach_probabilities_configures_model(self, small_cora):
        assignment = uniform_assignment(gcn_component_names(2), 4)
        model = QuantNodeClassifier.from_assignment(
            [(small_cora.num_features, 8), (8, small_cora.num_classes)], "gcn",
            assignment, quantizer_factory=degree_quant_factory())
        configured = attach_degree_probabilities(model, small_cora)
        assert configured > 0
        out = model(small_cora)
        assert np.isfinite(out.data).all()


class TestA2Q:
    def test_quantizer_output_shape(self):
        quantizer = A2QQuantizer(num_nodes=6)
        x = Tensor(np.random.default_rng(0).standard_normal((6, 4)).astype(np.float32))
        assert quantizer(x).shape == (6, 4)

    def test_non_node_tensor_passthrough(self):
        quantizer = A2QQuantizer(num_nodes=6)
        x = Tensor(np.ones((3, 4), dtype=np.float32))
        assert quantizer(x) is x

    def test_effective_bits_clipped(self):
        quantizer = A2QQuantizer(num_nodes=4, init_bits=4.0, min_bits=2, max_bits=8)
        quantizer.bit_width.data[:] = 100.0
        assert quantizer.effective_bits().max() == 8

    def test_memory_penalty_scales_with_bits(self):
        low = A2QQuantizer(num_nodes=10, init_bits=2.0)
        high = A2QQuantizer(num_nodes=10, init_bits=8.0)
        assert float(high.memory_penalty(16).data) > float(low.memory_penalty(16).data)

    def test_penalty_gradient_reaches_bit_widths(self):
        quantizer = A2QQuantizer(num_nodes=5)
        quantizer.memory_penalty(8).backward()
        assert quantizer.bit_width.grad is not None

    def test_classifier_forward_and_parameters(self, small_cora):
        model = A2QNodeClassifier(
            [(small_cora.num_features, 8), (8, small_cora.num_classes)],
            small_cora.num_nodes, rng=np.random.default_rng(0))
        out = model(small_cora)
        assert out.shape == (small_cora.num_nodes, small_cora.num_classes)
        # Quantization parameters grow with the graph size (paper Table 1 point).
        assert model.num_quantization_parameters() == 2 * 2 * small_cora.num_nodes

    def test_classifier_trains_one_step(self, small_cora):
        model = A2QNodeClassifier(
            [(small_cora.num_features, 8), (8, small_cora.num_classes)],
            small_cora.num_nodes, rng=np.random.default_rng(0))
        loss = F.cross_entropy(model(small_cora), small_cora.y, mask=small_cora.train_mask)
        total = loss + model.memory_penalty(small_cora) * 0.1
        total.backward()
        grads = [p.grad for p in model.parameters() if p.grad is not None]
        assert grads

    def test_bit_operations_reflect_average_bits(self, small_cora):
        model = A2QNodeClassifier(
            [(small_cora.num_features, 8), (8, small_cora.num_classes)],
            small_cora.num_nodes)
        counter = model.bit_operations(small_cora)
        assert counter.total_bit_operations > 0
        assert model.average_bits() == pytest.approx(4.0)


class TestComplexityTable:
    def test_three_methods_present(self):
        table = complexity_table()
        assert set(table) == {"DQ", "A2Q", "MixQ-GNN"}

    def test_a2q_space_grows_with_nodes(self):
        table = complexity_table()
        small = table["A2Q"].space_count(100, 64, 2, 8)
        large = table["A2Q"].space_count(10000, 64, 2, 8)
        mixq_small = table["MixQ-GNN"].space_count(100, 64, 2, 8)
        mixq_large = table["MixQ-GNN"].space_count(10000, 64, 2, 8)
        # A2Q's overhead above MixQ grows linearly in n (the per-node parameters).
        assert (large - mixq_large) > (small - mixq_small)

    def test_a2q_fp32_time_grows_with_nodes(self):
        table = complexity_table()
        assert table["A2Q"].time_fp32_count(1000, 64, 2) > \
            table["DQ"].time_fp32_count(1000, 64, 2)

    def test_integer_time_identical_across_methods(self):
        table = complexity_table()
        counts = {row.time_int_count(500, 32, 2) for row in table.values()}
        assert len(counts) == 1
