"""Tests for the fixed-bit-width quantized GNN modules and BitOPs accounting."""

import numpy as np
import pytest

from repro.quant.bitops import FP32_BITS, BitOpsCounter, OperationRecord, average_bits
from repro.quant.qmodules import (
    QuantGCNConv,
    QuantGINConv,
    QuantGraphClassifier,
    QuantLinear,
    QuantNodeClassifier,
    QuantSAGEConv,
    gcn_component_names,
    gin_component_names,
    sage_component_names,
    uniform_assignment,
)
from repro.graphs.batch import GraphBatch
from repro.gnn.models import NodeClassifier
from repro.gnn import GCNConv
from repro.tensor import Tensor


LAYER_DIMS = [(5, 8), (8, 3)]


class TestComponentNames:
    def test_two_layer_gcn_has_nine_components(self):
        assert len(gcn_component_names(2)) == 9  # the paper's example

    def test_first_layer_has_input_component(self):
        names = gcn_component_names(2)
        assert "conv0.input" in names
        assert "conv1.input" not in names

    def test_sage_and_gin_names(self):
        assert len(sage_component_names(2)) == 6 + 5
        assert "head1.weight" in gin_component_names(3)

    def test_uniform_assignment(self):
        assignment = uniform_assignment(gcn_component_names(2), 4)
        assert set(assignment.values()) == {4}
        assert len(assignment) == 9


class TestQuantLinear:
    def test_forward_shape(self):
        layer = QuantLinear(6, 4, weight_bits=4, output_bits=8,
                            rng=np.random.default_rng(0))
        assert layer(Tensor(np.ones((3, 6), dtype=np.float32))).shape == (3, 4)

    def test_component_bits(self):
        layer = QuantLinear(6, 4, weight_bits=4, output_bits=8)
        bits = layer.component_bits("head")
        assert bits == {"head.weight": 4, "head.output": 8}

    def test_bit_operations_use_max_operand_width(self):
        layer = QuantLinear(6, 4, weight_bits=4, output_bits=8)
        counter, outgoing = layer.bit_operations(10, incoming_bits=8, prefix="head")
        assert outgoing == 8
        assert counter.records[0].bits == 8  # max(incoming 8, weight 4)


@pytest.mark.parametrize("conv_class,components", [
    (QuantGCNConv, QuantGCNConv.COMPONENTS),
    (QuantGINConv, QuantGINConv.COMPONENTS),
    (QuantSAGEConv, QuantSAGEConv.COMPONENTS),
])
class TestQuantConvs:
    def test_forward_shape(self, conv_class, components, tiny_graph):
        bits = {name: 4 for name in components}
        conv = conv_class(5, 6, bits, quantize_input=True, rng=np.random.default_rng(0))
        out = conv(Tensor(tiny_graph.x), tiny_graph)
        assert out.shape == (12, 6)
        assert np.isfinite(out.data).all()

    def test_component_bits_reporting(self, conv_class, components, tiny_graph):
        bits = {name: 8 for name in components}
        conv = conv_class(5, 6, bits, quantize_input=True)
        reported = conv.component_bits("conv0")
        assert all(value == 8 for value in reported.values())
        assert all(key.startswith("conv0.") for key in reported)

    def test_missing_bits_default_to_fp32(self, conv_class, components, tiny_graph):
        conv = conv_class(5, 6, {}, quantize_input=True)
        reported = conv.component_bits("conv0")
        assert all(value == FP32_BITS for value in reported.values())

    def test_gradients_flow(self, conv_class, components, tiny_graph):
        bits = {name: 4 for name in components}
        conv = conv_class(5, 6, bits, quantize_input=True, rng=np.random.default_rng(0))
        conv(Tensor(tiny_graph.x), tiny_graph).sum().backward()
        grads = [p.grad for p in conv.parameters() if p.grad is not None]
        assert grads

    def test_bit_operations_counter(self, conv_class, components, tiny_graph):
        bits = {name: 4 for name in components}
        conv = conv_class(5, 6, bits, quantize_input=True)
        counter, outgoing = conv.bit_operations(tiny_graph, FP32_BITS, "conv0")
        assert counter.total_bit_operations > 0
        assert outgoing <= FP32_BITS


class TestQuantNodeClassifier:
    def test_from_assignment_gcn(self, small_cora):
        assignment = uniform_assignment(gcn_component_names(2), 4)
        model = QuantNodeClassifier.from_assignment(
            [(small_cora.num_features, 8), (8, small_cora.num_classes)], "gcn",
            assignment, rng=np.random.default_rng(0))
        assert model(small_cora).shape == (small_cora.num_nodes, small_cora.num_classes)
        assert model.average_bits() == pytest.approx(4.0)

    def test_from_float_mirrors_architecture(self, small_cora):
        float_model = NodeClassifier([
            GCNConv(small_cora.num_features, 8, rng=np.random.default_rng(0)),
            GCNConv(8, small_cora.num_classes, rng=np.random.default_rng(1)),
        ])
        assignment = uniform_assignment(gcn_component_names(2), 8)
        model = QuantNodeClassifier.from_float(float_model, assignment)
        assert len(model.convs) == 2
        assert model.convs[0].in_features == small_cora.num_features

    def test_unknown_conv_type_rejected(self):
        with pytest.raises(KeyError):
            QuantNodeClassifier.from_assignment(LAYER_DIMS, "chebnet", {})

    def test_lower_bits_fewer_bitops(self, small_cora):
        dims = [(small_cora.num_features, 8), (8, small_cora.num_classes)]
        low = QuantNodeClassifier.from_assignment(
            dims, "gcn", uniform_assignment(gcn_component_names(2), 2))
        high = QuantNodeClassifier.from_assignment(
            dims, "gcn", uniform_assignment(gcn_component_names(2), 8))
        assert low.bit_operations(small_cora).total_bit_operations < \
            high.bit_operations(small_cora).total_bit_operations

    def test_quantized_bitops_below_fp32(self, small_cora):
        dims = [(small_cora.num_features, 8), (8, small_cora.num_classes)]
        model = QuantNodeClassifier.from_assignment(
            dims, "gcn", uniform_assignment(gcn_component_names(2), 8))
        float_model = NodeClassifier([
            GCNConv(small_cora.num_features, 8), GCNConv(8, small_cora.num_classes)])
        fp32_bitops = float_model.operation_count(small_cora) * FP32_BITS
        assert model.bit_operations(small_cora).total_bit_operations < fp32_bitops

    def test_mixed_assignment_average(self, small_cora):
        assignment = uniform_assignment(gcn_component_names(2), 2)
        assignment["conv0.weight"] = 8
        dims = [(small_cora.num_features, 8), (8, small_cora.num_classes)]
        model = QuantNodeClassifier.from_assignment(dims, "gcn", assignment)
        assert 2.0 < model.average_bits() < 8.0


class TestQuantGraphClassifier:
    def test_forward_and_bits(self, tu_graphs):
        assignment = uniform_assignment(gin_component_names(3), 4)
        model = QuantGraphClassifier(tu_graphs[0].num_features, 8, 2, assignment,
                                     num_layers=3, rng=np.random.default_rng(0))
        batch = GraphBatch(tu_graphs[:5])
        assert model(batch).shape == (5, 2)
        assert model.average_bits() == pytest.approx(4.0)
        assert model.bit_operations(batch).total_bit_operations > 0


class TestBitOps:
    def test_operation_record(self):
        record = OperationRecord("f", 100, 8)
        assert record.bit_operations == 800

    def test_counter_totals(self):
        counter = BitOpsCounter()
        counter.add("a", 10, 8)
        counter.add("b", 10, 4)
        assert counter.total_operations == 20
        assert counter.total_bit_operations == 120
        assert counter.operation_weighted_bits() == pytest.approx(6.0)

    def test_counter_validation(self):
        counter = BitOpsCounter()
        with pytest.raises(ValueError):
            counter.add("bad", -1, 8)
        with pytest.raises(ValueError):
            counter.add("bad", 1, 0)

    def test_per_function_breakdown(self):
        counter = BitOpsCounter()
        counter.add("transform", 10, 8)
        counter.add("transform", 5, 8)
        counter.add("aggregate", 3, 4)
        breakdown = counter.per_function()
        assert breakdown["transform"] == 120
        assert breakdown["aggregate"] == 12

    def test_giga_conversion(self):
        counter = BitOpsCounter()
        counter.add("x", 10 ** 9, 8)
        assert counter.giga_bit_operations() == pytest.approx(8.0)

    def test_average_bits_helpers(self):
        assert average_bits([2, 4, 8]) == pytest.approx(14 / 3)
        assert average_bits([]) == FP32_BITS
        assert average_bits([2, 8], weights=[3, 1]) == pytest.approx(3.5)
