"""Determinism, popularity shape and schedule math of the traffic generator."""

import numpy as np
import pytest

from repro.loadgen import LoadTrace, TrafficConfig, generate_trace
from repro.loadgen.traffic import popularity_probabilities


def _request_matrix(trace: LoadTrace) -> np.ndarray:
    return np.stack(trace.requests)


class TestDeterminism:
    def test_same_seed_same_trace_bitwise(self):
        config = TrafficConfig(num_nodes=1000, skew=1.2, qps=500.0,
                               duration_seconds=0.5, seeds_per_request=6,
                               seed=11)
        first, second = generate_trace(config), generate_trace(config)
        np.testing.assert_array_equal(first.arrivals, second.arrivals)
        np.testing.assert_array_equal(_request_matrix(first),
                                      _request_matrix(second))

    def test_different_seed_different_trace(self):
        base = TrafficConfig(num_nodes=1000, qps=500.0, duration_seconds=0.5,
                             seed=0)
        other = TrafficConfig(num_nodes=1000, qps=500.0, duration_seconds=0.5,
                              seed=1)
        assert not np.array_equal(_request_matrix(generate_trace(base)),
                                  _request_matrix(generate_trace(other)))

    def test_poisson_arrivals_deterministic_per_seed(self):
        config = TrafficConfig(num_nodes=100, arrival="poisson", qps=200.0,
                               num_requests=64, seed=5)
        np.testing.assert_array_equal(generate_trace(config).arrivals,
                                      generate_trace(config).arrivals)


class TestPopularity:
    def test_zipfian_concentrates_with_skew(self):
        """Higher skew -> the most popular node owns a larger traffic share."""
        def top_share(skew):
            config = TrafficConfig(num_nodes=200, skew=skew,
                                   seeds_per_request=4, qps=100.0,
                                   num_requests=300, seed=3)
            drawn = _request_matrix(generate_trace(config)).ravel()
            return np.bincount(drawn, minlength=200).max() / drawn.size

        assert top_share(1.5) > top_share(0.8) > top_share(0.0)

    def test_uniform_pattern_has_no_probability_table(self):
        assert popularity_probabilities(100, "uniform", 1.1) is None
        assert popularity_probabilities(100, "zipfian", 0.0) is None
        table = popularity_probabilities(100, "zipfian", 1.1)
        assert table.shape == (100,)
        assert table[0] == table.max()          # rank 1 is the hottest
        assert table.sum() == pytest.approx(1.0)

    def test_requests_are_distinct_in_range(self):
        config = TrafficConfig(num_nodes=50, seeds_per_request=8, qps=100.0,
                               num_requests=40, seed=2)
        for nodes in generate_trace(config).requests:
            assert nodes.dtype == np.int64
            assert len(np.unique(nodes)) == 8   # replace=False within a request
            assert nodes.min() >= 0 and nodes.max() < 50


class TestSchedule:
    def test_fixed_rate_spacing_is_exact(self):
        config = TrafficConfig(num_nodes=100, arrival="fixed", qps=250.0,
                               num_requests=20)
        np.testing.assert_allclose(generate_trace(config).arrivals,
                                   np.arange(20) / 250.0)

    def test_poisson_mean_gap_matches_offered_rate(self):
        config = TrafficConfig(num_nodes=100, arrival="poisson", qps=1000.0,
                               num_requests=5000, seed=9)
        arrivals = generate_trace(config).arrivals
        assert arrivals[0] == 0.0               # re-based to the first arrival
        gaps = np.diff(arrivals)
        assert (gaps >= 0).all()
        assert np.mean(gaps) == pytest.approx(1e-3, rel=0.1)

    def test_request_count_derivation(self):
        derived = TrafficConfig(num_nodes=10, qps=40.0, duration_seconds=0.5)
        assert derived.request_count == 20
        pinned = TrafficConfig(num_nodes=10, qps=40.0, duration_seconds=0.5,
                               num_requests=7)
        assert pinned.request_count == 7
        assert generate_trace(pinned).num_requests == 7

    def test_tail_rebases_arrivals(self):
        config = TrafficConfig(num_nodes=100, arrival="fixed", qps=100.0,
                               num_requests=10)
        tail = generate_trace(config).tail(4)
        assert tail.num_requests == 6
        assert tail.arrivals[0] == 0.0
        np.testing.assert_allclose(tail.arrivals, np.arange(6) / 100.0)


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"num_nodes": 0},
        {"num_nodes": 10, "pattern": "bursty"},
        {"num_nodes": 10, "arrival": "uniform"},
        {"num_nodes": 10, "skew": -1.0},
        {"num_nodes": 10, "seeds_per_request": 11},
        {"num_nodes": 10, "qps": 0.0},
        {"num_nodes": 10, "duration_seconds": 0.0},
        {"num_nodes": 10, "num_requests": 0},
    ])
    def test_bad_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            TrafficConfig(**kwargs)
