"""Temporal traces: determinism, applicability, and live stream replay."""

import threading
from types import SimpleNamespace

import numpy as np
import pytest

from repro.loadgen import (
    LOADTEST_REQUIRED_METRICS,
    UPDATE_KINDS,
    TemporalConfig,
    TrafficConfig,
    generate_temporal_trace,
    metrics_from_stream,
    run_stream,
)
from repro.serving import AsyncServingEngine, BlockSession

NUM_NODES = 64
NUM_CLASSES = 3
NUM_FEATURES = 8


def _config(num_requests=24, update_every=6, seed=0, **overrides):
    traffic = TrafficConfig(
        num_nodes=NUM_NODES, seeds_per_request=4, arrival="fixed",
        qps=500.0, num_requests=num_requests, seed=3)
    return TemporalConfig(traffic=traffic, update_every=update_every,
                          num_features=NUM_FEATURES, seed=seed, **overrides)


class TestTraceGeneration:
    def test_same_config_same_trace_bit_for_bit(self):
        one = generate_temporal_trace(_config())
        two = generate_temporal_trace(_config())
        assert len(one.events) == len(two.events)
        for a, b in zip(one.events, two.events):
            assert a.kind == b.kind
            assert a.arrival == b.arrival
            if a.is_query:
                np.testing.assert_array_equal(a.nodes, b.nodes)
            else:
                for field in ("added_edges", "added_weights",
                              "removed_edges", "feature_nodes", "features"):
                    left = getattr(a.delta, field)
                    right = getattr(b.delta, field)
                    assert (left is None) == (right is None)
                    if left is not None:
                        np.testing.assert_array_equal(left, right)

    def test_update_placement_and_kind_cycle(self):
        trace = generate_temporal_trace(_config(num_requests=24,
                                                update_every=6))
        assert trace.num_queries == 24
        updates = [event for event in trace.events if not event.is_query]
        assert trace.num_updates == len(updates) == 3
        assert [event.kind for event in updates] == list(UPDATE_KINDS)
        # update events inherit the arrival of the query they precede
        for position, event in enumerate(trace.events[:-1]):
            if not event.is_query:
                follower = trace.events[position + 1]
                assert follower.is_query
                assert follower.arrival == event.arrival
        # arrivals are globally non-decreasing
        arrivals = [event.arrival for event in trace.events]
        assert arrivals == sorted(arrivals)

    def test_zero_update_every_degenerates_to_plain_traffic(self):
        trace = generate_temporal_trace(_config(update_every=0))
        assert trace.num_updates == 0
        assert trace.num_queries == 24

    def test_removals_draw_only_from_added_edges(self):
        """Every delta of a long trace applies cleanly to a base graph the
        generator has never seen — removals can't name absent edges."""
        from repro.graphs.graph import Graph

        config = _config(num_requests=120, update_every=4)
        trace = generate_temporal_trace(config)
        kinds = [event.kind for event in trace.events if not event.is_query]
        assert "remove_edges" in kinds
        rng = np.random.default_rng(9)
        graph = Graph(
            rng.random((NUM_NODES, NUM_FEATURES)).astype(np.float32),
            rng.integers(0, NUM_NODES, size=(2, 128)))
        for event in trace.events:
            if not event.is_query:
                graph.apply_delta(event.delta)
        assert graph.version == trace.num_updates

    def test_config_validation(self):
        with pytest.raises(ValueError):
            _config(update_every=-1)
        with pytest.raises(ValueError):
            _config(edges_per_update=0)
        with pytest.raises(ValueError):
            _config(feature_nodes_per_update=NUM_NODES + 1)


class UpdatableStubSession:
    """Serving stub with version counting, mirroring the harness stubs."""

    supports_updates = True
    request_invariant_cost = False

    def __init__(self):
        self.graph = SimpleNamespace(num_nodes=NUM_NODES, version=0)
        self.applied = []
        self._lock = threading.Lock()

    def run(self, nodes):
        nodes = np.asarray(nodes)
        return SimpleNamespace(
            logits=np.zeros((nodes.size, NUM_CLASSES)),
            giga_bit_operations=lambda: 1e-3 * nodes.size)

    def apply_update(self, delta):
        with self._lock:
            self.graph.version += 1
            self.applied.append(delta)
            return self.graph.version


class TestRunStream:
    def test_counts_updates_and_final_version(self):
        session = UpdatableStubSession()
        trace = generate_temporal_trace(_config(num_requests=24,
                                                update_every=6))
        with AsyncServingEngine(session, max_batch=32,
                                max_wait_ms=1.0) as engine:
            result = run_stream(engine, trace)
        assert result.updates == trace.num_updates == 3
        assert result.final_version == 3
        assert len(session.applied) == 3
        run = result.load
        assert run.requests == trace.num_queries
        assert run.failures == 0
        assert (run.latencies_seconds > 0).all()

    def test_warmup_events_excluded_from_window(self):
        session = UpdatableStubSession()
        trace = generate_temporal_trace(_config(num_requests=24,
                                                update_every=6))
        # 8 warm-up events = 7 queries + the position-6 update
        with AsyncServingEngine(session, max_batch=32,
                                max_wait_ms=1.0) as engine:
            result = run_stream(engine, trace, warmup_events=8)
        assert result.load.requests == trace.num_queries - 7
        # warm-up updates still advanced the graph and are counted
        assert result.updates == trace.num_updates
        assert result.final_version == trace.num_updates

    def test_metrics_cover_loadtest_schema(self):
        session = UpdatableStubSession()
        trace = generate_temporal_trace(_config())
        with AsyncServingEngine(session, max_batch=32,
                                max_wait_ms=1.0) as engine:
            result = run_stream(engine, trace)
        metrics = metrics_from_stream(result, deadline_ms=50.0)
        assert LOADTEST_REQUIRED_METRICS <= metrics.keys()
        assert metrics["updates"] == result.updates
        assert metrics["final_version"] == result.final_version

    def test_rejects_sessions_without_update_support(self):
        static = UpdatableStubSession()
        static.supports_updates = False
        with AsyncServingEngine(static, max_batch=32,
                                max_wait_ms=1.0) as engine:
            with pytest.raises(TypeError, match="does not support"):
                run_stream(engine,
                           generate_temporal_trace(_config(update_every=6)))

    def test_needs_a_measured_query(self):
        from repro.loadgen import TemporalEvent, TemporalTrace
        from repro.streaming import GraphDelta

        session = UpdatableStubSession()
        # an updates-only stream has nothing to measure
        events = (TemporalEvent(arrival=0.0, kind="add_edges",
                                delta=GraphDelta()),)
        trace = TemporalTrace(events=events, config=_config())
        with AsyncServingEngine(session, max_batch=32,
                                max_wait_ms=1.0) as engine:
            with pytest.raises(ValueError, match="at least one query"):
                run_stream(engine, trace)


class TestStreamingWarmupBoundary:
    def test_hit_rate_delta_stays_non_negative_under_updates(
            self, parity_graph, parity_artifact):
        """Satellite contract: invalidation during the measured window must
        never drive the windowed cache delta negative — eviction keeps the
        logical hit/miss counters untouched."""
        artifact = parity_artifact("gcn", 1)
        session = BlockSession(artifact, parity_graph.copy(), fanouts=None,
                               batch_size=parity_graph.num_nodes,
                               cache_size=65536)
        traffic = TrafficConfig(
            num_nodes=parity_graph.num_nodes, seeds_per_request=4,
            arrival="fixed", qps=500.0, num_requests=30, seed=3)
        config = TemporalConfig(traffic=traffic, update_every=4,
                                edges_per_update=2,
                                feature_nodes_per_update=1,
                                num_features=parity_graph.num_features,
                                seed=1)
        trace = generate_temporal_trace(config)
        assert trace.num_updates >= 3
        with AsyncServingEngine(session, max_batch=64,
                                max_wait_ms=1.0) as engine:
            result = run_stream(engine, trace, warmup_events=10)
        run = result.load
        assert run.cache_hits is not None and run.cache_hits >= 0
        assert run.cache_lookups is not None and run.cache_lookups >= 0
        assert 0.0 <= run.cache_hit_rate <= 1.0
        assert run.failures == 0
        assert result.updates >= 1
