"""Replay harness accounting against a stub inference session."""

import threading
from types import SimpleNamespace

import numpy as np
import pytest

from repro.loadgen import (
    LOADTEST_REQUIRED_METRICS,
    TrafficConfig,
    generate_trace,
    metrics_from_run,
    run_load,
)
from repro.loadgen.traffic import LoadTrace
from repro.serving import AsyncServingEngine

NUM_NODES = 64
NUM_CLASSES = 3


class StubSession:
    """Counts every served row; optionally exposes block-cache counters."""

    request_invariant_cost = False

    def __init__(self, with_cache: bool = False):
        self.graph = SimpleNamespace(num_nodes=NUM_NODES)
        self.rows_served = 0
        self.runs = 0
        self._lock = threading.Lock()
        self._with_cache = with_cache
        self._hits = 0
        self._lookups = 0

    def run(self, nodes):
        nodes = np.asarray(nodes)
        with self._lock:
            self.rows_served += int(nodes.size)
            self.runs += 1
            if self._with_cache:
                # every row is a lookup; every second one a hit
                self._lookups += int(nodes.size)
                self._hits += int(nodes.size) // 2
        return SimpleNamespace(
            logits=np.zeros((nodes.size, NUM_CLASSES)),
            giga_bit_operations=lambda: 1e-3 * nodes.size)

    def cache_stats(self):
        if not self._with_cache:
            return None
        return SimpleNamespace(hits=self._hits, lookups=self._lookups)


def _trace(num_requests=24, seeds_per_request=4, qps=400.0, arrival="fixed"):
    return generate_trace(TrafficConfig(
        num_nodes=NUM_NODES, seeds_per_request=seeds_per_request,
        arrival=arrival, qps=qps, num_requests=num_requests, seed=3))


def _engine(session, **kwargs):
    return AsyncServingEngine(session, max_batch=32, max_wait_ms=1.0,
                              workers=1, **kwargs)


class TestReplayModes:
    @pytest.mark.parametrize("mode", ["open", "closed"])
    def test_every_request_served_exactly_once(self, mode):
        session = StubSession()
        trace = _trace()
        with _engine(session) as engine:
            run = run_load(engine, trace, mode=mode, clients=3)
        assert run.requests == trace.num_requests
        assert run.nodes == trace.num_requests * 4
        # flush-level seed dedup may collapse zipfian seeds shared across
        # coalesced requests, but never drops or duplicates a request's rows
        assert 0 < session.rows_served <= trace.num_requests * 4
        assert run.latencies_seconds.shape == (trace.num_requests,)
        assert (run.latencies_seconds > 0).all()
        assert run.measured_seconds > 0
        assert run.achieved_qps > 0

    @pytest.mark.parametrize("mode", ["open", "closed"])
    def test_dedup_off_executes_every_requested_row(self, mode):
        session = StubSession()
        trace = _trace()
        with _engine(session, dedup_seeds=False) as engine:
            run = run_load(engine, trace, mode=mode, clients=3)
        assert run.requests == trace.num_requests
        assert session.rows_served == trace.num_requests * 4

    def test_open_loop_reports_configured_offered_rate(self):
        trace = _trace(qps=400.0)
        with _engine(StubSession()) as engine:
            run = run_load(engine, trace, mode="open")
        assert run.offered_qps == 400.0

    def test_closed_loop_offered_equals_achieved(self):
        trace = _trace()
        with _engine(StubSession()) as engine:
            run = run_load(engine, trace, mode="closed", clients=2)
        assert run.offered_qps == pytest.approx(run.achieved_qps)

    def test_bad_mode_rejected(self):
        trace = _trace(num_requests=2)
        with _engine(StubSession()) as engine:
            with pytest.raises(ValueError, match="mode"):
                run_load(engine, trace, mode="sideways")


class TestMeasuredWindow:
    def test_offset_first_arrival_excluded_from_window(self):
        """The window opens at the first *submit*, not the replay clock's
        zero — an idle lead-in before the first arrival is not load time."""
        lead_in = 0.3
        base = _trace(num_requests=8, qps=400.0)
        trace = LoadTrace(arrivals=base.arrivals + lead_in,
                          requests=base.requests, config=base.config)
        with _engine(StubSession()) as engine:
            run = run_load(engine, trace, mode="open")
        # 8 requests at 400 qps span ~17.5 ms after the first submit; a
        # window anchored at the replay start would measure >= 0.3 s.
        assert run.measured_seconds < lead_in
        assert run.measured_seconds > 0
        assert run.achieved_qps > 8 / lead_in
        # latencies stay anchored at the scheduled arrivals
        assert (run.latencies_seconds > 0).all()
        assert (run.latencies_seconds < lead_in).all()


class TestWarmup:
    def test_warmup_excluded_from_measured_window(self):
        session = StubSession()
        trace = _trace(num_requests=20)
        with _engine(session) as engine:
            run = run_load(engine, trace, mode="open", warmup_requests=8)
        # the stub saw every row, the measured window only the tail
        assert session.rows_served == 20 * 4
        assert run.requests == 12
        assert run.nodes == 12 * 4
        assert run.latencies_seconds.shape == (12,)

    def test_warmup_capped_below_trace_length(self):
        session = StubSession()
        trace = _trace(num_requests=5)
        with _engine(session) as engine:
            run = run_load(engine, trace, mode="closed", clients=1,
                           warmup_requests=100)
        # at least one measured request always remains
        assert run.requests == 1
        assert session.rows_served == 5 * 4


class TestCacheDelta:
    def test_hit_rate_is_window_delta_not_lifetime(self):
        session = StubSession(with_cache=True)
        trace = _trace(num_requests=16)
        with _engine(session) as engine:
            run = run_load(engine, trace, mode="closed", clients=1,
                           warmup_requests=6)
        # stub hits exactly half its lookups in every window, so a correct
        # delta matches 0.5 even though warm-up traffic also moved counters
        assert run.cache_lookups == 10 * 4
        assert run.cache_hit_rate == pytest.approx(0.5)

    def test_no_cache_reports_zero(self):
        with _engine(StubSession(with_cache=False)) as engine:
            run = run_load(engine, _trace(num_requests=4), mode="closed",
                           clients=1)
        assert run.cache_hits is None
        assert run.cache_lookups is None
        assert run.cache_hit_rate == 0.0


class TestMetrics:
    def test_metrics_from_run_covers_loadtest_schema(self):
        with _engine(StubSession()) as engine:
            run = run_load(engine, _trace(), mode="open", warmup_requests=4)
        metrics = metrics_from_run(run, deadline_ms=50.0)
        assert LOADTEST_REQUIRED_METRICS <= metrics.keys()
        assert metrics["requests"] == run.requests
        assert metrics["p50_ms"] <= metrics["p95_ms"] <= metrics["p99_ms"] \
            <= metrics["max_ms"]
        assert 0.0 <= metrics["slo_violation_rate"] <= 1.0


class FailingSession(StubSession):
    """Raises for any batch containing the poisoned node ``NUM_NODES - 1``."""

    POISON = NUM_NODES - 1

    def run(self, nodes):
        nodes = np.asarray(nodes)
        if (nodes == self.POISON).any():
            raise RuntimeError("poisoned row")
        return super().run(nodes)


def _poisoned_trace(num_requests=12, poison_every=3):
    """A fixed-rate trace where every ``poison_every``-th request fails."""
    base = _trace(num_requests=num_requests, seeds_per_request=1)
    requests = []
    for index, nodes in enumerate(base.requests):
        if index % poison_every == 0:
            requests.append(np.asarray([FailingSession.POISON],
                                       dtype=np.int64))
        else:
            requests.append(np.asarray([index % (NUM_NODES - 1)],
                                       dtype=np.int64))
    return LoadTrace(arrivals=base.arrivals, requests=tuple(requests),
                     config=base.config)


class TestFailureAccounting:
    """A failed request is a counted outcome, never an aborted run."""

    @pytest.mark.parametrize("mode", ["open", "closed"])
    def test_failures_counted_not_fatal(self, mode):
        trace = _poisoned_trace(num_requests=12, poison_every=3)
        session = FailingSession()
        # max_batch=1: every request is its own micro-batch, so exactly
        # the poisoned requests fail
        with AsyncServingEngine(session, max_batch=1, max_wait_ms=1.0,
                                workers=1) as engine:
            run = run_load(engine, trace, mode=mode, clients=2)
        assert run.requests == 12
        assert run.failures == 4
        assert run.failure_rate == pytest.approx(4 / 12)
        # percentiles cover only the successes
        assert run.latencies_seconds.shape == (8,)
        assert (run.latencies_seconds > 0).all()
        metrics = metrics_from_run(run, deadline_ms=50.0)
        assert metrics["failure_rate"] == pytest.approx(4 / 12)
        assert LOADTEST_REQUIRED_METRICS <= metrics.keys()
        # achieved_qps counts successes only
        assert run.achieved_qps == pytest.approx(
            8 / run.measured_seconds)

    @pytest.mark.parametrize("mode", ["open", "closed"])
    def test_all_failed_run_raises(self, mode):
        trace = _poisoned_trace(num_requests=4, poison_every=1)
        with AsyncServingEngine(FailingSession(), max_batch=1,
                                max_wait_ms=1.0) as engine:
            with pytest.raises(RuntimeError, match="every measured request"):
                run_load(engine, trace, mode=mode, clients=2)

    def test_failed_warmup_requests_are_swallowed(self):
        # warm-up head is entirely poisoned; the measured tail is clean
        base = _poisoned_trace(num_requests=10, poison_every=1)
        clean = _trace(num_requests=10, seeds_per_request=1)
        requests = tuple(base.requests[:4]) + tuple(clean.requests[4:])
        trace = LoadTrace(arrivals=base.arrivals, requests=requests,
                          config=base.config)
        with AsyncServingEngine(FailingSession(), max_batch=1,
                                max_wait_ms=1.0) as engine:
            run = run_load(engine, trace, mode="open", warmup_requests=4)
        assert run.requests == 6
        assert run.failures == 0


class _SlowCallbackFuture:
    """A resolved future whose done callbacks land visibly *after* result().

    Reproduces the race the completion tracker exists for: the waiter in
    ``Future.result()`` wakes as soon as the result is set, but done
    callbacks run afterwards on the resolving thread.
    """

    def __init__(self, delay: float):
        self._delay = delay
        self._callbacks = []
        self._result = SimpleNamespace(latency_seconds=1e-3, error=None)
        self._thread = None

    def add_done_callback(self, fn):
        def delayed():
            import time
            time.sleep(self._delay)
            fn(self)
        self._thread = threading.Thread(target=delayed)
        self._thread.start()

    def exception(self):
        return None


class _SlowCallbackEngine:
    """Stub engine: results are 'ready' long before callbacks have run."""

    def __init__(self, delay: float = 0.05):
        self.session = SimpleNamespace(graph=SimpleNamespace(
            num_nodes=NUM_NODES))
        self.delay = delay

    def submit(self, nodes):
        return _SlowCallbackFuture(self.delay)

    def flush_now(self):
        pass


class TestCompletionCallbackRace:
    def test_open_loop_waits_for_callbacks_not_results(self):
        """Regression: reading completions right after the last result()
        observed unwritten slots (zero timestamps -> hugely negative
        latencies).  The tracker must block until every callback ran."""
        from repro.loadgen.harness import _replay_open

        trace = _trace(num_requests=6, seeds_per_request=1, qps=2000.0)
        latencies, measured, failures = _replay_open(
            _SlowCallbackEngine(delay=0.05), trace)
        assert failures == 0
        assert latencies.shape == (6,)
        # every slot was written: no zero-timestamp completions survive
        assert (latencies > 0).all()
        assert measured > 0


class TestPerRequestError:
    def test_clones_are_independent_same_type_and_args(self):
        from repro.serving.engine import per_request_error

        original = ValueError("bad batch", 42)
        first = per_request_error(original)
        second = per_request_error(original)
        assert first is not original and second is not original
        assert first is not second
        assert type(first) is ValueError and first.args == original.args
        assert first.__cause__ is original

    def test_uncopyable_error_falls_back_to_original(self):
        from repro.serving.engine import per_request_error

        class Uncopyable(RuntimeError):
            def __copy__(self):
                raise TypeError("no copies")

        original = Uncopyable("x")
        assert per_request_error(original) is original

    def test_flush_failure_carries_distinct_exceptions(self):
        """Two requests failed by one micro-batch must not share one
        exception instance (shared tracebacks / mutated args bleed
        between callers)."""
        session = FailingSession()
        with AsyncServingEngine(session, max_batch=32,
                                max_wait_ms=50.0) as engine:
            first = engine.submit([FailingSession.POISON, 0])
            second = engine.submit([FailingSession.POISON, 1])
            engine.flush_now()
            error_one = first.exception(timeout=10.0)
            error_two = second.exception(timeout=10.0)
        assert error_one is not None and error_two is not None
        assert error_one is not error_two
        assert type(error_one) is type(error_two)
        assert error_one.args == error_two.args
