"""Percentile/SLO accounting and the BENCH_*.json schema round trip."""

import json

import numpy as np
import pytest

from repro.loadgen import report


class TestLatencySummary:
    def test_known_synthetic_trace(self):
        """1..100 ms ramp: every statistic is checkable by hand."""
        latencies = np.arange(1, 101) / 1e3     # 1ms ... 100ms
        metrics = report.summarize_latencies(latencies, deadline_ms=90.0)
        assert metrics["max_ms"] == pytest.approx(100.0)
        assert metrics["mean_ms"] == pytest.approx(50.5)
        # 10 of 100 samples exceed the 90 ms deadline
        assert metrics["slo_violation_rate"] == pytest.approx(0.10)
        assert metrics["deadline_ms"] == 90.0
        for key, q in (("p50_ms", 50.0), ("p95_ms", 95.0), ("p99_ms", 99.0)):
            expected = np.percentile(np.arange(1.0, 101.0), q)
            assert metrics[key] == pytest.approx(expected)
        assert metrics["p50_ms"] <= metrics["p95_ms"] <= metrics["p99_ms"] \
            <= metrics["max_ms"]

    def test_all_within_deadline(self):
        metrics = report.summarize_latencies(np.full(10, 1e-3), deadline_ms=5.0)
        assert metrics["slo_violation_rate"] == 0.0
        assert metrics["p99_ms"] == pytest.approx(1.0)

    def test_rejects_empty_or_bad_deadline(self):
        with pytest.raises(ValueError):
            report.summarize_latencies(np.array([]), deadline_ms=10.0)
        with pytest.raises(ValueError):
            report.summarize_latencies(np.array([1e-3]), deadline_ms=0.0)


def _loadtest_metrics(**overrides):
    metrics = {"requests": 10, "offered_qps": 100.0, "achieved_qps": 99.0,
               "p50_ms": 2.0, "p95_ms": 4.0, "p99_ms": 6.0, "max_ms": 8.0,
               "mean_ms": 2.5, "deadline_ms": 50.0,
               "slo_violation_rate": 0.0, "cache_hit_rate": 0.8,
               "failure_rate": 0.0}
    metrics.update(overrides)
    return metrics


class TestPayload:
    def test_merge_validate_round_trip(self, tmp_path):
        path = tmp_path / "BENCH_TEST.json"
        report.emit(path, "loadtest.zipfian.poisson.open", _loadtest_metrics(),
                    meta={"dataset": "cora"})
        report.emit(path, "serving.n3000", {"full_ms": 12.0, "block_ms": 3.0},
                    kind="benchmark")
        payload = json.loads(path.read_text())
        assert report.validate_payload(payload) == []
        assert sorted(payload["results"]) == ["loadtest.zipfian.poisson.open",
                                              "serving.n3000"]
        # re-emitting the same name replaces, never duplicates
        report.emit(path, "serving.n3000", {"full_ms": 11.0}, kind="benchmark")
        payload = report.load_payload(path)
        assert payload["results"]["serving.n3000"]["metrics"] == {"full_ms": 11}

    def test_loadtest_kind_requires_full_metric_set(self):
        payload = report.new_payload()
        with pytest.raises(ValueError, match="missing metrics"):
            report.merge_result(payload, "loadtest.x", {"p50_ms": 1.0})
        # the same partial set is fine as a plain benchmark result
        report.merge_result(payload, "bench.x", {"p50_ms": 1.0},
                            kind="benchmark")

    def test_rejects_non_finite_and_non_numeric_metrics(self):
        payload = report.new_payload()
        with pytest.raises(ValueError):
            report.merge_result(payload, "bench.x", {"bad": float("nan")},
                                kind="benchmark")
        with pytest.raises(ValueError):
            report.merge_result(payload, "bench.x", {"bad": "fast"},
                                kind="benchmark")
        with pytest.raises(ValueError):
            report.merge_result(payload, "bench.x", {"bad": True},
                                kind="benchmark")

    def test_validate_flags_schema_drift(self):
        good = report.merge_result(report.new_payload(), "bench.x",
                                   {"full_ms": 1.0}, kind="benchmark")
        assert report.validate_payload(good) == []
        assert report.validate_payload({"schema": "other"})
        wrong_version = json.loads(json.dumps(good))
        wrong_version["schema_version"] = 99
        assert any("schema_version" in e
                   for e in report.validate_payload(wrong_version))
        bad_kind = json.loads(json.dumps(good))
        bad_kind["results"]["bench.x"]["kind"] = "mystery"
        assert any(".kind" in e for e in report.validate_payload(bad_kind))
        missing = json.loads(json.dumps(good))
        missing["results"]["bench.x"]["kind"] = "loadtest"
        assert any("missing loadtest metrics" in e
                   for e in report.validate_payload(missing))

    def test_emit_refuses_corrupt_existing_file(self, tmp_path):
        path = tmp_path / "BENCH_TEST.json"
        path.write_text('{"schema": "something-else"}')
        with pytest.raises(ValueError):
            report.emit(path, "bench.x", {"full_ms": 1.0}, kind="benchmark")


class TestMetricDirections:
    def test_directions_follow_naming_convention(self):
        assert report.metric_direction("p99_ms") == "lower"
        assert report.metric_direction("warm_ms") == "lower"
        assert report.metric_direction("block_peak_mb") == "lower"
        assert report.metric_direction("full_gbitops") == "lower"
        assert report.metric_direction("slo_violation_rate") == "lower"
        assert report.metric_direction("failure_rate") == "lower"
        assert report.metric_direction("achieved_qps") == "higher"
        assert report.metric_direction("cache_hit_rate") == "higher"
        # config echoes and counts are informational, never gated
        assert report.metric_direction("deadline_ms") is None
        assert report.metric_direction("offered_qps") is None
        assert report.metric_direction("requests") is None
        assert report.metric_direction("input_nodes") is None

    def test_slacks_positive_for_gated_suffixes(self):
        for name in ("p50_ms", "achieved_qps", "slo_violation_rate",
                     "failure_rate", "cache_hit_rate", "full_peak_mb",
                     "block_gbitops"):
            assert report.metric_slack(name) > 0
