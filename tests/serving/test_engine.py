"""Tests for the coalescing serving engine and the deprecated shim."""

import warnings

import numpy as np
import pytest

from repro.quant.inference import IntegerGCNInference  # reprolint: disable=RL04
from repro.serving import FullGraphSession, QuantizedArtifact, ServingEngine


@pytest.fixture(scope="module")
def gcn_session(served_models, small_cora):
    return FullGraphSession(QuantizedArtifact.from_model(served_models["gcn"]),
                            small_cora)


class TestServingEngine:
    def test_coalesced_requests_match_direct_serving(self, gcn_session):
        engine = ServingEngine(gcn_session, max_batch_size=4)
        requests = [np.asarray([0, 1, 2, 3, 4]), np.asarray([9]),
                    np.arange(10, 17)]
        ids = [engine.submit(nodes) for nodes in requests]
        results = engine.flush()

        assert [result.request_id for result in results] == ids
        for result, nodes in zip(results, requests):
            np.testing.assert_array_equal(result.nodes, nodes)
            # the full-graph session is deterministic, so coalesced micro-
            # batching must not change any request's logits
            np.testing.assert_array_equal(result.logits,
                                          gcn_session.predict(nodes))
            assert result.latency_seconds >= 0.0
            assert result.giga_bit_operations > 0.0
            assert result.classes.shape == nodes.shape

    def test_stats_accumulate(self, gcn_session):
        engine = ServingEngine(gcn_session, max_batch_size=8)
        engine.submit([0, 1, 2])
        engine.submit([3])
        results = engine.flush()
        assert engine.stats.requests == 2
        assert engine.stats.nodes == 4
        assert engine.stats.micro_batches == 1  # 4 seeds coalesced into one
        assert engine.stats.giga_bit_operations == pytest.approx(
            sum(result.giga_bit_operations for result in results))
        assert engine.stats.throughput() > 0.0

    def test_reset_stats_opens_fresh_window(self, gcn_session):
        engine = ServingEngine(gcn_session, max_batch_size=8)
        engine.submit([0, 1, 2])
        engine.flush()
        snapshot = engine.reset_stats()
        # the closed window's counters come back as a snapshot...
        assert snapshot.requests == 1
        assert snapshot.nodes == 3
        assert snapshot.giga_bit_operations > 0.0
        # ...and the live counters restart from zero
        assert engine.stats.requests == 0
        assert engine.stats.nodes == 0
        assert engine.stats.seconds == 0.0
        engine.submit([4])
        engine.flush()
        # the new window counts only post-reset traffic
        assert engine.stats.requests == 1
        assert engine.stats.nodes == 1
        # and the snapshot is detached from the live stats object
        assert snapshot.requests == 1

    def test_reset_stats_keeps_pending_requests(self, gcn_session):
        engine = ServingEngine(gcn_session, max_batch_size=8)
        engine.submit([0, 1])
        engine.reset_stats()
        assert engine.pending == 1
        engine.flush()
        # pending-at-reset requests land in the new window
        assert engine.stats.requests == 1
        assert engine.stats.nodes == 2

    def test_flush_without_requests(self, gcn_session):
        assert ServingEngine(gcn_session).flush() == []

    def test_predict_keeps_backlog_pending(self, gcn_session):
        engine = ServingEngine(gcn_session, max_batch_size=16)
        engine.submit([5, 6])
        logits = engine.predict([0, 1, 2])
        np.testing.assert_array_equal(logits, gcn_session.predict([0, 1, 2]))
        assert engine.pending == 1  # the submitted request is still queued
        assert len(engine.flush()) == 1

    def test_full_graph_flush_runs_once(self, gcn_session):
        # a full-graph pass costs the same whatever the request size, so the
        # engine must not re-run it per micro-batch
        engine = ServingEngine(gcn_session, max_batch_size=4)
        engine.submit(np.arange(13))
        engine.submit([20, 21])
        engine.flush()
        assert engine.stats.micro_batches == 1

    def test_block_flush_micro_batches(self, served_models, small_cora):
        from repro.serving import BlockSession
        session = BlockSession(QuantizedArtifact.from_model(served_models["gcn"]),
                               small_cora, fanouts=None, batch_size=4)
        engine = ServingEngine(session, max_batch_size=4)
        engine.submit(np.arange(10))
        engine.flush()
        assert engine.stats.micro_batches == 3  # ceil(10 / 4)

    def test_rejects_bad_inputs(self, gcn_session):
        engine = ServingEngine(gcn_session)
        with pytest.raises(ValueError):
            engine.submit([])
        with pytest.raises(ValueError):
            ServingEngine(gcn_session, max_batch_size=0)

    def test_rejects_out_of_range_nodes_at_submission(self, gcn_session):
        engine = ServingEngine(gcn_session)
        engine.submit([0, 1])  # a valid request is already pending
        num_nodes = gcn_session.graph.num_nodes
        with pytest.raises(ValueError):
            engine.submit([0, num_nodes])
        with pytest.raises(ValueError):
            engine.submit([-1])
        # the malformed submissions must not poison the pending flush
        assert engine.pending == 1
        assert len(engine.flush()) == 1


NUM_CLASSES = 3


class TestFlushFailureIsolation:
    """A raising micro-batch fails its requests only — the rest complete."""

    @pytest.mark.parametrize("workers", [1, 4])
    def test_unaffected_requests_complete(self, poisoned_session_class,
                                          workers):
        engine = ServingEngine(poisoned_session_class({13}), max_batch_size=4,
                               workers=workers)
        requests = [np.arange(0, 4), np.asarray([12, 13, 14, 15]),
                    np.arange(20, 24)]
        for nodes in requests:
            engine.submit(nodes)
        results = engine.flush()
        engine.close()

        assert [result.ok for result in results] == [True, False, True]
        for result, nodes in zip(results, requests):
            np.testing.assert_array_equal(result.nodes, nodes)
        # the survivors carry full, correct logits and attributed work
        for index in (0, 2):
            np.testing.assert_array_equal(
                results[index].logits,
                np.tile(requests[index][:, None].astype(np.float64),
                        (1, NUM_CLASSES)))
            assert results[index].giga_bit_operations > 0.0
            assert results[index].latency_seconds > 0.0
        # the failed request carries the exception and empty logits
        failed = results[1]
        assert isinstance(failed.error, RuntimeError)
        assert "13" in str(failed.error)
        assert failed.logits.shape == (0, NUM_CLASSES)
        assert failed.giga_bit_operations == 0.0
        assert "error=RuntimeError" in repr(failed)
        # stats stay consistent: everything attempted is counted once
        assert engine.stats.requests == 3
        assert engine.stats.nodes == 12
        assert engine.stats.micro_batches == 3
        assert engine.stats.failures == 1

    def test_request_spanning_a_failed_chunk_fails_whole(
            self, poisoned_session_class):
        # 8 seeds over two micro-batches; the second micro-batch raises, so
        # the request fails even though its first chunk ran fine.
        engine = ServingEngine(poisoned_session_class({7}), max_batch_size=4)
        engine.submit(np.arange(8))
        result = engine.flush()[0]
        assert not result.ok
        assert result.logits.shape[0] == 0
        assert engine.stats.failures == 1
        assert engine.stats.micro_batches == 2

    def test_all_chunks_failing_reports_zero_width_logits(
            self, poisoned_session_class):
        engine = ServingEngine(poisoned_session_class({1, 5}),
                               max_batch_size=4)
        engine.submit([1, 2])
        engine.submit([5, 6])
        results = engine.flush()
        assert all(not result.ok for result in results)
        # no chunk succeeded, so the logits width is unknown: (0, 0)
        assert all(result.logits.shape == (0, 0) for result in results)
        assert engine.stats.failures == 2

    def test_predict_raises_the_request_error(self, poisoned_session_class):
        engine = ServingEngine(poisoned_session_class({3}), max_batch_size=8)
        with pytest.raises(RuntimeError, match="poisoned"):
            engine.predict([2, 3])
        # a clean predict still works afterwards
        logits = engine.predict([2, 4])
        np.testing.assert_array_equal(
            logits, np.tile(np.asarray([[2.0], [4.0]]), (1, NUM_CLASSES)))

    def test_failure_only_window_keeps_counters_consistent(
            self, poisoned_session_class):
        engine = ServingEngine(poisoned_session_class({0}), max_batch_size=4)
        engine.submit([0])
        engine.flush()
        snapshot = engine.reset_stats()
        assert snapshot.requests == snapshot.failures == 1
        assert engine.stats.failures == 0  # reset zeroes the new counter


class CountingSession:
    """Delegating wrapper that counts what the engine actually executes."""

    def __init__(self, inner):
        self._inner = inner
        self.graph = inner.graph
        self.request_invariant_cost = inner.request_invariant_cost
        self.runs = 0
        self.seeds_executed = 0

    def run(self, nodes):
        nodes = np.asarray(nodes)
        self.runs += 1
        self.seeds_executed += int(nodes.size)
        return self._inner.run(nodes)


class TestSeedDedup:
    """Cross-request seed dedup: each distinct seed sampled once per flush,
    logits scattered back per request — bitwise equal to not deduplicating
    (sampling is a pure function of the seed, and the integer path is
    batch-composition invariant)."""

    #: Heavily overlapping traffic: 12 requested seeds, 7 distinct.
    OVERLAPPING = [np.asarray([0, 1, 2, 3]), np.asarray([2, 3, 4, 5]),
                   np.asarray([5, 1, 9, 0])]

    @pytest.fixture()
    def block_session(self, served_models, small_cora):
        from repro.serving import BlockSession
        return BlockSession(QuantizedArtifact.from_model(served_models["gcn"]),
                            small_cora, fanouts=3, batch_size=8, seed=7)

    def _flush(self, session, dedup: bool):
        engine = ServingEngine(session, max_batch_size=8, dedup_seeds=dedup)
        for nodes in self.OVERLAPPING:
            engine.submit(nodes)
        return engine, engine.flush()

    def test_dedup_matches_non_dedup_bitwise(self, block_session):
        _, plain = self._flush(block_session, dedup=False)
        _, deduped = self._flush(block_session, dedup=True)
        for ours, theirs in zip(deduped, plain):
            assert ours.ok and theirs.ok
            np.testing.assert_array_equal(ours.nodes, theirs.nodes)
            np.testing.assert_array_equal(ours.logits, theirs.logits)

    def test_dedup_executes_fewer_seeds(self, block_session):
        plain_counter = CountingSession(block_session)
        plain_engine, _ = self._flush(plain_counter, dedup=False)
        dedup_counter = CountingSession(block_session)
        dedup_engine, _ = self._flush(dedup_counter, dedup=True)

        requested = sum(nodes.size for nodes in self.OVERLAPPING)
        distinct = np.unique(np.concatenate(self.OVERLAPPING)).size
        assert plain_counter.seeds_executed == requested
        assert dedup_counter.seeds_executed == distinct
        assert dedup_counter.runs < plain_counter.runs
        assert dedup_engine.stats.micro_batches < plain_engine.stats.micro_batches
        # accounting still counts what callers asked for, not what ran
        assert dedup_engine.stats.nodes == requested

    def test_duplicates_within_a_request_are_preserved(self, block_session):
        engine = ServingEngine(block_session, max_batch_size=8)
        engine.submit(np.asarray([4, 4, 7]))
        result = engine.flush()[0]
        assert result.logits.shape[0] == 3
        np.testing.assert_array_equal(result.logits[0], result.logits[1])
        np.testing.assert_array_equal(
            result.logits, block_session.predict(np.asarray([4, 4, 7])))

    def test_shared_failed_seed_fails_every_dependent(
            self, poisoned_session_class):
        # both requests asked for the poisoned seed 5; its (single, shared)
        # micro-batch failing must fail them both — the third request's
        # seeds land in later micro-batches and survive
        engine = ServingEngine(poisoned_session_class({5}), max_batch_size=2)
        engine.submit([1, 5])
        engine.submit([5, 9])
        engine.submit([2, 3])
        results = engine.flush()
        assert [result.ok for result in results] == [False, False, True]
        assert engine.stats.failures == 2


class TestDeprecatedShim:
    def test_alias_still_serves_gcn(self, served_models, small_cora):
        with pytest.warns(DeprecationWarning):
            engine = IntegerGCNInference.from_quantized_model(  # reprolint: disable=RL04
                served_models["gcn"])
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            session_logits = FullGraphSession(
                QuantizedArtifact.from_model(served_models["gcn"]),
                small_cora).predict()
            np.testing.assert_array_equal(engine.predict(small_cora),
                                          session_logits)

    def test_alias_rejects_non_gcn(self, served_models):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(TypeError):
                IntegerGCNInference.from_quantized_model(  # reprolint: disable=RL04
                    served_models["sage"])
