"""Tests for the quantized deployment artifact (export + save/load)."""

import json

import numpy as np
import pytest

from repro.core.mixq import MixQNodeClassifier
from repro.gnn.models import build_node_model
from repro.quant.qmodules import gcn_component_names, uniform_assignment
from repro.serving import (
    QUANTIZER_SLOTS,
    QuantizedArtifact,
    WEIGHT_SLOTS,
    artifact_paths,
)

CONV_TYPES = ("gcn", "sage", "gin")


class TestExport:
    @pytest.mark.parametrize("conv", CONV_TYPES)
    def test_export_structure(self, served_models, conv):
        artifact = QuantizedArtifact.from_model(served_models[conv])
        assert artifact.conv_type == conv
        assert artifact.num_layers == 2
        assert artifact.layer_dims[0][1] == 16
        for plan in artifact.layers:
            assert set(plan.weights) == set(WEIGHT_SLOTS[conv])
            assert set(plan.quantizers) == set(QUANTIZER_SLOTS[conv])
            for weight in plan.weights.values():
                assert weight.bits == 8
                # integer weights live on the signed int8 grid
                assert np.array_equal(weight.integers, np.rint(weight.integers))
                assert weight.integers.min() >= -128 and weight.integers.max() <= 127

    def test_export_metadata(self, served_models):
        artifact = QuantizedArtifact.from_model(served_models["gcn"],
                                                metadata={"dataset": "cora"})
        assert artifact.metadata["dataset"] == "cora"
        assert artifact.metadata["average_bits"] == pytest.approx(8.0)
        assert artifact.metadata["num_layers"] == 2
        assert any(key.startswith("conv0.") for key in
                   artifact.metadata["component_bits"])

    def test_input_quantizer_only_on_first_layer(self, served_models):
        artifact = QuantizedArtifact.from_model(served_models["gcn"])
        assert artifact.layers[0].params("input") is not None
        assert artifact.layers[1].params("input") is None

    def test_rejects_float_model(self, small_cora, rng):
        model = build_node_model("gcn", small_cora.num_features, 8,
                                 small_cora.num_classes, rng=rng)
        with pytest.raises(TypeError):
            QuantizedArtifact.from_model(model)

    def test_accepts_finalized_mixq(self, small_cora):
        mixq = MixQNodeClassifier("gcn", small_cora.num_features, 8,
                                  small_cora.num_classes)
        with pytest.raises(TypeError):
            QuantizedArtifact.from_model(mixq)  # nothing finalized yet
        mixq.finalize(uniform_assignment(gcn_component_names(2), 4))
        artifact = QuantizedArtifact.from_model(mixq)
        assert artifact.conv_type == "gcn"
        assert artifact.layers[0].weights["weight"].bits == 4

    def test_requires_at_least_one_layer(self):
        with pytest.raises(ValueError):
            QuantizedArtifact(conv_type="gcn", layers=[])


class TestSaveLoad:
    @pytest.mark.parametrize("conv", CONV_TYPES)
    def test_roundtrip_is_bit_exact(self, served_models, conv, tmp_path):
        artifact = QuantizedArtifact.from_model(served_models[conv],
                                                metadata={"dataset": "cora"})
        artifact.save(tmp_path / "artifact.npz")
        loaded = QuantizedArtifact.load(tmp_path / "artifact.npz")

        assert loaded.conv_type == artifact.conv_type
        assert loaded.metadata == artifact.metadata
        for original, restored in zip(artifact.layers, loaded.layers):
            assert restored.in_features == original.in_features
            assert restored.out_features == original.out_features
            assert restored.eps == original.eps
            for name, weight in original.weights.items():
                other = restored.weights[name]
                assert np.array_equal(other.integers, weight.integers)
                assert other.scale == weight.scale
                assert other.bits == weight.bits
                if weight.bias is None:
                    assert other.bias is None
                else:
                    assert np.array_equal(other.bias, weight.bias)
            for name, params in original.quantizers.items():
                restored_params = restored.quantizers[name]
                if params is None:
                    assert restored_params is None
                    continue
                assert restored_params.as_scalars() == params.as_scalars()
                assert restored_params.qmin == params.qmin
                assert restored_params.qmax == params.qmax
                assert restored_params.bits == params.bits

    def test_paths_and_sidecar(self, served_models, tmp_path):
        artifact = QuantizedArtifact.from_model(served_models["gcn"])
        npz_path, json_path = artifact.save(tmp_path / "model")
        assert npz_path == tmp_path / "model.npz"
        assert json_path == tmp_path / "model.json"
        assert npz_path.exists() and json_path.exists()
        # either file of the pair can be handed to load()
        assert QuantizedArtifact.load(json_path).num_layers == artifact.num_layers
        assert artifact_paths("x.json") == artifact_paths("x.npz")

    def test_paths_keep_dotted_names(self, tmp_path):
        # only the .npz/.json suffixes are stripped; "model.v2" != "model.v3"
        npz_path, json_path = artifact_paths(tmp_path / "model.v2")
        assert npz_path.name == "model.v2.npz"
        assert json_path.name == "model.v2.json"
        assert artifact_paths(tmp_path / "model.v2") \
            != artifact_paths(tmp_path / "model.v3")

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            QuantizedArtifact.load(tmp_path / "nope.npz")

    def test_load_rejects_foreign_json(self, tmp_path):
        (tmp_path / "other.json").write_text(json.dumps({"rows": []}))
        with pytest.raises(ValueError):
            QuantizedArtifact.load(tmp_path / "other.json")

    def test_load_rejects_newer_format(self, served_models, tmp_path):
        artifact = QuantizedArtifact.from_model(served_models["gcn"])
        _, json_path = artifact.save(tmp_path / "artifact")
        payload = json.loads(json_path.read_text())
        payload["format_version"] = 999  # reprolint: disable=RL04
        json_path.write_text(json.dumps(payload))
        with pytest.raises(ValueError):
            QuantizedArtifact.load(tmp_path / "artifact")


def _downgrade_payload(json_path, version: int) -> None:
    """Rewrite a saved sidecar as a faithful v1 / v2 payload.

    v1 predates the attention score plans: no per-layer ``hops`` /
    ``negative_slope``.  v2 predates the head axis: no ``heads`` /
    ``head_merge``.  Stripping exactly those keys reproduces what the old
    writers emitted, so these are true version-negotiation regressions.
    """
    payload = json.loads(json_path.read_text())
    payload["format_version"] = version  # reprolint: disable=RL04
    dropped = {"heads", "head_merge"} if version == 2 else \
        {"heads", "head_merge", "hops", "negative_slope"}
    for layer in payload["layers"]:
        for key in dropped:
            layer.pop(key, None)
    json_path.write_text(json.dumps(payload, indent=2, sort_keys=True))


class TestVersionNegotiation:
    """v1 / v2 payloads must load and predict identically under the v3 reader."""

    @pytest.mark.parametrize("conv", CONV_TYPES)
    def test_v1_payload_loads_and_predicts_identically(self, served_models,
                                                       small_cora, tmp_path,
                                                       conv):
        from repro.serving import FullGraphSession

        artifact = QuantizedArtifact.from_model(served_models[conv])
        reference = FullGraphSession(artifact, small_cora).predict()
        _, json_path = artifact.save(tmp_path / "artifact")
        _downgrade_payload(json_path, version=1)

        loaded = QuantizedArtifact.load(tmp_path / "artifact")
        assert [plan.hops for plan in loaded.layers] \
            == [1] * artifact.num_layers
        assert [plan.heads for plan in loaded.layers] \
            == [1] * artifact.num_layers
        assert [plan.head_merge for plan in loaded.layers] \
            == ["concat"] * artifact.num_layers
        np.testing.assert_array_equal(
            FullGraphSession(loaded, small_cora).predict(), reference)

    @pytest.mark.parametrize("conv", ("gcn", "gat", "tag", "transformer"))
    def test_v2_payload_loads_and_predicts_identically(self, served_models,
                                                       attention_models,
                                                       small_cora, tmp_path,
                                                       conv):
        from repro.serving import FullGraphSession

        models = {**served_models, **attention_models}
        artifact = QuantizedArtifact.from_model(models[conv])
        reference = FullGraphSession(artifact, small_cora).predict()
        hops_before = [plan.hops for plan in artifact.layers]
        _, json_path = artifact.save(tmp_path / "artifact")
        _downgrade_payload(json_path, version=2)

        loaded = QuantizedArtifact.load(tmp_path / "artifact")
        # v2 carried hop plans; only the head axis defaults to single-head
        assert [plan.hops for plan in loaded.layers] == hops_before
        assert [plan.heads for plan in loaded.layers] \
            == [1] * artifact.num_layers
        np.testing.assert_array_equal(
            FullGraphSession(loaded, small_cora).predict(), reference)

    def test_v2_block_serving_unchanged(self, attention_models, small_cora,
                                        tmp_path):
        """A pre-head-axis artifact must serve blocks exactly as before."""
        from repro.serving import BlockSession

        artifact = QuantizedArtifact.from_model(attention_models["gat"])
        nodes = np.arange(24, dtype=np.int64)
        reference = BlockSession(artifact, small_cora, fanouts=4,
                                 batch_size=16, seed=3).predict(nodes)
        _, json_path = artifact.save(tmp_path / "artifact")
        _downgrade_payload(json_path, version=2)
        loaded = QuantizedArtifact.load(tmp_path / "artifact")
        served = BlockSession(loaded, small_cora, fanouts=4,
                              batch_size=16, seed=3).predict(nodes)
        np.testing.assert_array_equal(served, reference)
