"""End-to-end and argparse-snapshot tests for `repro export` / `repro predict`."""

import argparse

import numpy as np
import pytest

from repro.cli import _train_for_export, build_parser, main
from repro.quant.qmodules import gcn_component_names, uniform_assignment


def _subcommands(parser):
    action = next(a for a in parser._actions
                  if isinstance(a, argparse._SubParsersAction))
    return action.choices


def _option_snapshot(subparser):
    """(default, help) of every option — a version-stable argparse snapshot."""
    return {", ".join(action.option_strings): (action.default, action.help)
            for action in subparser._actions
            if action.option_strings and action.option_strings != ["-h", "--help"]}


class TestEndToEnd:
    def test_export_then_predict_matches_qat_logits(self, tmp_path):
        """Acceptance: file-served logits == in-memory fake-quantized QAT."""
        artifact_path = tmp_path / "artifact.npz"
        logits_path = tmp_path / "logits.npz"
        common = ["--dataset", "cora", "--scale", "0.05", "--seed", "0"]
        assert main(["export", *common, "--epochs", "6", "--uniform-bits", "8",
                     "--out", str(artifact_path)]) == 0
        assert artifact_path.exists()
        assert artifact_path.with_suffix(".json").exists()

        # block mode, unlimited fanout: exact integer serving from the file
        assert main(["predict", *common, "--artifact", str(artifact_path),
                     "--mode", "block", "--fanout", "0", "--split", "all",
                     "--requests", "3", "--out", str(logits_path)]) == 0

        # reconstruct the exact QAT model the export command trained
        graph, model, _ = _train_for_export(
            "cora", "gcn", 16, 2, 0.05, 0,
            uniform_assignment(gcn_component_names(2), 8),
            epochs=6, lr=0.01, degree_quant=False)
        reference = model(graph).data

        payload = np.load(logits_path)
        np.testing.assert_array_equal(payload["nodes"],
                                      np.arange(graph.num_nodes))
        np.testing.assert_allclose(payload["logits"], reference,
                                   rtol=1e-3, atol=1e-3)
        np.testing.assert_array_equal(payload["classes"],
                                      payload["logits"].argmax(axis=1))

    def test_predict_full_mode_and_node_list(self, tmp_path, capsys):
        artifact_path = tmp_path / "artifact"
        common = ["--dataset", "cora", "--scale", "0.05", "--seed", "0"]
        main(["export", *common, "--epochs", "3", "--uniform-bits", "4",
              "--out", str(artifact_path)])
        capsys.readouterr()
        assert main(["predict", *common, "--artifact", str(artifact_path),
                     "--mode", "full", "--nodes", "0", "1", "2"]) == 0
        out = capsys.readouterr().out
        assert "GBitOPs" in out
        assert "served 3 nodes" in out

    def test_predict_clamps_request_count(self, tmp_path, capsys):
        artifact_path = tmp_path / "artifact"
        common = ["--dataset", "cora", "--scale", "0.05", "--seed", "0"]
        main(["export", *common, "--epochs", "2", "--out", str(artifact_path)])
        capsys.readouterr()
        # more requests than nodes, and a non-positive count, both clamp
        assert main(["predict", *common, "--artifact", str(artifact_path),
                     "--nodes", "0", "1", "--requests", "7"]) == 0
        assert main(["predict", *common, "--artifact", str(artifact_path),
                     "--nodes", "0", "--requests", "0"]) == 0

    def test_predict_rejects_mismatched_graph(self, tmp_path, capsys):
        artifact_path = tmp_path / "artifact"
        main(["export", "--dataset", "cora", "--scale", "0.05", "--epochs", "2",
              "--out", str(artifact_path)])
        code = main(["predict", "--artifact", str(artifact_path),
                     "--dataset", "cora", "--scale", "0.1"])
        assert code == 1
        assert "features" in capsys.readouterr().err


class TestParserSnapshot:
    def test_subcommand_set(self):
        assert set(_subcommands(build_parser())) == \
            {"search", "train", "table", "export", "predict", "loadtest",
             "streamtest"}

    def test_export_options_snapshot(self):
        snapshot = _option_snapshot(_subcommands(build_parser())["export"])
        assert set(snapshot) == {
            "--dataset", "--conv", "--hidden", "--layers", "--hops", "--heads",
            "--head-merge", "--scale", "--seed", "--degree-quant",
            "--assignment", "--uniform-bits", "--epochs", "--lr", "--out"}
        assert snapshot["--conv"][0] == "gcn"
        assert snapshot["--uniform-bits"][0] == 8
        assert snapshot["--epochs"][0] == 100
        assert snapshot["--hops"][0] == 3
        assert snapshot["--heads"][0] == 1
        assert snapshot["--head-merge"][0] == "concat"
        assert snapshot["--lr"][0] == pytest.approx(0.01)
        # export serves every conv family the serving layer plans support
        conv_action = next(
            action for action
            in _subcommands(build_parser())["export"]._actions
            if action.option_strings == ["--conv"])
        assert list(conv_action.choices) == ["gcn", "sage", "gin", "gat",
                                             "tag", "transformer"]

    def test_predict_options_snapshot(self):
        snapshot = _option_snapshot(_subcommands(build_parser())["predict"])
        assert set(snapshot) == {
            "--artifact", "--dataset", "--scale", "--seed", "--mode",
            "--fanout", "--batch-size", "--nodes", "--split", "--requests",
            "--cache-size", "--cache-mb", "--workers", "--repeat", "--out",
            "--backend", "--shards", "--partition", "--shard-deadline"}
        assert snapshot["--mode"][0] == "block"
        assert snapshot["--fanout"][0] == 10
        assert snapshot["--batch-size"][0] == 256
        assert snapshot["--split"][0] == "test"
        assert snapshot["--requests"][0] == 1
        assert snapshot["--cache-size"][0] == 0
        assert snapshot["--cache-mb"][0] == pytest.approx(256.0)
        assert snapshot["--workers"][0] == 1
        assert snapshot["--repeat"][0] == 1
        assert snapshot["--shards"][0] == 0
        assert snapshot["--partition"][0] == "hash"
        assert snapshot["--shard-deadline"][0] == pytest.approx(0.0)

    def test_loadtest_options_snapshot(self):
        snapshot = _option_snapshot(_subcommands(build_parser())["loadtest"])
        assert set(snapshot) == {
            "--artifact", "--dataset", "--scale", "--seed", "--conv",
            "--hidden", "--layers", "--uniform-bits", "--train-epochs",
            "--pattern", "--skew", "--arrival", "--qps", "--duration",
            "--requests", "--seeds-per-request", "--mode", "--clients",
            "--warmup", "--deadline-ms", "--traffic-seed", "--fanout",
            "--batch-size", "--cache-size", "--workers", "--max-wait-ms",
            "--emit", "--name", "--backend", "--shards", "--partition",
            "--shard-deadline"}
        assert snapshot["--pattern"][0] == "zipfian"
        assert snapshot["--skew"][0] == pytest.approx(1.1)
        assert snapshot["--arrival"][0] == "poisson"
        assert snapshot["--qps"][0] == pytest.approx(200.0)
        assert snapshot["--duration"][0] == pytest.approx(1.0)
        assert snapshot["--mode"][0] == "open"
        assert snapshot["--clients"][0] == 4
        assert snapshot["--warmup"][0] == 16
        assert snapshot["--deadline-ms"][0] == pytest.approx(50.0)
        assert snapshot["--seeds-per-request"][0] == 8
        assert snapshot["--cache-size"][0] == 0
        assert snapshot["--workers"][0] == 1
        assert snapshot["--max-wait-ms"][0] == pytest.approx(2.0)
        assert snapshot["--emit"][0] == ""
        # pattern/arrival/mode expose exactly the harness's vocabulary
        loadtest = _subcommands(build_parser())["loadtest"]
        choices = {action.option_strings[0]: list(action.choices)
                   for action in loadtest._actions if action.choices}
        assert choices["--pattern"] == ["zipfian", "uniform"]
        assert choices["--arrival"] == ["poisson", "fixed"]
        assert choices["--mode"] == ["open", "closed"]

    def test_loadtest_emits_schema_valid_trajectory(self, tmp_path, capsys):
        from repro.loadgen.report import load_payload

        emit_path = tmp_path / "bench.json"
        assert main(["loadtest", "--dataset", "cora", "--scale", "0.05",
                     "--train-epochs", "2", "--pattern", "zipfian",
                     "--mode", "closed", "--clients", "2", "--requests", "12",
                     "--seeds-per-request", "4", "--warmup", "4",
                     "--deadline-ms", "200", "--cache-size", "2048",
                     "--emit", str(emit_path)]) == 0
        out = capsys.readouterr().out
        assert "p95" in out and "SLO" in out
        # load_payload schema-checks on read — a bad emit raises here
        payload = load_payload(emit_path)
        result = payload["results"]["loadtest.zipfian.closed"]
        assert result["kind"] == "loadtest"
        assert result["metrics"]["requests"] == 8  # 12 requests - 4 warm-up
        assert result["meta"]["dataset"] == "cora"

    def test_streamtest_options_snapshot(self):
        snapshot = _option_snapshot(_subcommands(build_parser())["streamtest"])
        assert set(snapshot) == {
            "--artifact", "--dataset", "--scale", "--seed", "--conv",
            "--hidden", "--layers", "--uniform-bits", "--train-epochs",
            "--pattern", "--skew", "--arrival", "--qps", "--duration",
            "--requests", "--seeds-per-request", "--update-every",
            "--edges-per-update", "--feature-nodes", "--update-seed",
            "--warmup", "--deadline-ms", "--traffic-seed", "--fanout",
            "--batch-size", "--cache-size", "--workers", "--backend",
            "--max-wait-ms", "--emit", "--name"}
        assert snapshot["--update-every"][0] == 8
        assert snapshot["--edges-per-update"][0] == 4
        assert snapshot["--feature-nodes"][0] == 2
        assert snapshot["--update-seed"][0] == 0
        assert snapshot["--warmup"][0] == 16
        assert snapshot["--deadline-ms"][0] == pytest.approx(50.0)
        # no sharding knobs: sharded sessions don't support streaming updates
        assert "--shards" not in snapshot and "--mode" not in snapshot

    def test_streamtest_emits_schema_valid_trajectory(self, tmp_path, capsys):
        from repro.loadgen.report import load_payload

        emit_path = tmp_path / "bench.json"
        assert main(["streamtest", "--dataset", "cora", "--scale", "0.05",
                     "--train-epochs", "2", "--requests", "24",
                     "--update-every", "6", "--seeds-per-request", "4",
                     "--warmup", "4", "--deadline-ms", "200",
                     "--cache-size", "2048", "--emit", str(emit_path)]) == 0
        out = capsys.readouterr().out
        assert "updates" in out and "failure rate" in out
        payload = load_payload(emit_path)
        result = payload["results"]["streamtest.zipfian.poisson"]
        assert result["kind"] == "loadtest"
        assert result["metrics"]["failure_rate"] == 0
        assert result["metrics"]["updates"] >= 1
        assert result["metrics"]["final_version"] >= 1
        assert result["meta"]["update_every"] == 6

    def test_predict_help_documents_defaults(self):
        # collapse argparse's terminal-width wrapping before matching
        help_text = " ".join(
            _subcommands(build_parser())["predict"].format_help().split())
        assert "default: 10" in help_text      # --fanout
        assert "default: 256" in help_text     # --batch-size
        assert "default: block" in help_text   # --mode
        assert "unlimited" in help_text or "every neighbour" in help_text
