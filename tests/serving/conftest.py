"""Shared fixtures for the serving test suite: trained quantized models."""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np
import pytest

from repro.quant.qmodules import (
    QuantNodeClassifier,
    gat_component_names,
    gcn_component_names,
    gin_component_names,
    sage_component_names,
    tag_component_names,
    transformer_component_names,
    uniform_assignment,
)
from repro.training.trainer import train_node_classifier

CONV_TYPES = ("gcn", "sage", "gin")
#: Families served through per-edge score plans (tested separately — their
#: fixtures are lighter and TAG carries a hop plan).
ATTENTION_CONV_TYPES = ("gat", "tag", "transformer")

#: TAG depth used throughout the serving tests (kept small for speed).
TAG_TEST_HOPS = 2

_COMPONENT_NAMES = {
    "gcn": lambda layers: gcn_component_names(layers),
    "sage": lambda layers: sage_component_names(layers),
    "gin": lambda layers: gin_component_names(layers, with_head=False),
    "gat": lambda layers: gat_component_names(layers),
    "tag": lambda layers: tag_component_names(layers, hops=TAG_TEST_HOPS),
    "transformer": lambda layers: transformer_component_names(layers),
}


def train_quantized(conv_type: str, graph, bits: int = 8, hidden: int = 16,
                    epochs: int = 12, seed: int = 0,
                    heads: int = 1) -> QuantNodeClassifier:
    """A small trained (observers initialised) quantized classifier."""
    assignment = uniform_assignment(_COMPONENT_NAMES[conv_type](2), bits)
    if conv_type == "tag":
        extra = {"hops": TAG_TEST_HOPS}
    elif conv_type in ("gat", "transformer"):
        extra = {"heads": heads}
    else:
        extra = {}
    model = QuantNodeClassifier.from_assignment(
        [(graph.num_features, hidden), (hidden, graph.num_classes)], conv_type,
        assignment, dropout=0.0, rng=np.random.default_rng(seed), **extra)
    train_node_classifier(model, graph, epochs=epochs, lr=0.02)
    model.eval()
    return model


@pytest.fixture(scope="session")
def served_models(small_cora):
    """One trained int8 model per matrix conv family (shared, read-only)."""
    return {conv: train_quantized(conv, small_cora) for conv in CONV_TYPES}


@pytest.fixture(scope="session")
def attention_models(small_cora):
    """One trained int8 model per attention conv family (shared, read-only)."""
    return {conv: train_quantized(conv, small_cora, epochs=8)
            for conv in ATTENTION_CONV_TYPES}


@pytest.fixture(scope="session")
def multi_head_models(small_cora):
    """Trained 4-head GAT / Transformer classifiers (shared, read-only)."""
    return {conv: train_quantized(conv, small_cora, epochs=8, heads=4)
            for conv in ("gat", "transformer")}


class PoisonedSession:
    """Stub session that raises whenever a poisoned node is in the batch.

    Logits are ``node id`` repeated across 3 classes, so tests can check a
    surviving request's rows without a real model.
    """

    NUM_CLASSES = 3
    request_invariant_cost = False

    def __init__(self, poisoned, num_nodes: int = 64):
        self.graph = SimpleNamespace(num_nodes=num_nodes)
        self.poisoned = set(poisoned)

    def run(self, nodes):
        nodes = np.asarray(nodes)
        bad = self.poisoned.intersection(nodes.tolist())
        if bad:
            raise RuntimeError(f"poisoned nodes {sorted(bad)}")
        return SimpleNamespace(
            logits=np.tile(nodes[:, None].astype(np.float64),
                           (1, self.NUM_CLASSES)),
            giga_bit_operations=lambda: 1e-3 * nodes.size)


@pytest.fixture
def poisoned_session_class():
    """The failing-stub class (tests choose their own poison set)."""
    return PoisonedSession
