"""Shared fixtures for the serving test suite: trained quantized models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.quant.qmodules import (
    QuantNodeClassifier,
    gat_component_names,
    gcn_component_names,
    gin_component_names,
    sage_component_names,
    tag_component_names,
    transformer_component_names,
    uniform_assignment,
)
from repro.training.trainer import train_node_classifier

CONV_TYPES = ("gcn", "sage", "gin")
#: Families served through per-edge score plans (tested separately — their
#: fixtures are lighter and TAG carries a hop plan).
ATTENTION_CONV_TYPES = ("gat", "tag", "transformer")

#: TAG depth used throughout the serving tests (kept small for speed).
TAG_TEST_HOPS = 2

_COMPONENT_NAMES = {
    "gcn": lambda layers: gcn_component_names(layers),
    "sage": lambda layers: sage_component_names(layers),
    "gin": lambda layers: gin_component_names(layers, with_head=False),
    "gat": lambda layers: gat_component_names(layers),
    "tag": lambda layers: tag_component_names(layers, hops=TAG_TEST_HOPS),
    "transformer": lambda layers: transformer_component_names(layers),
}


def train_quantized(conv_type: str, graph, bits: int = 8, hidden: int = 16,
                    epochs: int = 12, seed: int = 0,
                    heads: int = 1) -> QuantNodeClassifier:
    """A small trained (observers initialised) quantized classifier."""
    assignment = uniform_assignment(_COMPONENT_NAMES[conv_type](2), bits)
    if conv_type == "tag":
        extra = {"hops": TAG_TEST_HOPS}
    elif conv_type in ("gat", "transformer"):
        extra = {"heads": heads}
    else:
        extra = {}
    model = QuantNodeClassifier.from_assignment(
        [(graph.num_features, hidden), (hidden, graph.num_classes)], conv_type,
        assignment, dropout=0.0, rng=np.random.default_rng(seed), **extra)
    train_node_classifier(model, graph, epochs=epochs, lr=0.02)
    model.eval()
    return model


@pytest.fixture(scope="session")
def served_models(small_cora):
    """One trained int8 model per matrix conv family (shared, read-only)."""
    return {conv: train_quantized(conv, small_cora) for conv in CONV_TYPES}


@pytest.fixture(scope="session")
def attention_models(small_cora):
    """One trained int8 model per attention conv family (shared, read-only)."""
    return {conv: train_quantized(conv, small_cora, epochs=8)
            for conv in ATTENTION_CONV_TYPES}


@pytest.fixture(scope="session")
def multi_head_models(small_cora):
    """Trained 4-head GAT / Transformer classifiers (shared, read-only)."""
    return {conv: train_quantized(conv, small_cora, epochs=8, heads=4)
            for conv in ("gat", "transformer")}
