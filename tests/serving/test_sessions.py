"""Parity and memory-boundedness tests for the inference sessions.

The guarantees pinned down here are the serving analogue of Theorem 1:

* full-graph integer serving matches the fake-quantized QAT model to
  float32 round-off, for every supported conv family;
* block serving with unlimited fanout matches full-graph serving exactly
  (the sampled operators are exact row slices of the full operators);
* a saved-then-loaded artifact serves bit-identically to the in-memory one;
* block serving touches only the request's receptive field and never
  materialises the full (normalised) adjacency.
"""

import numpy as np
import pytest

from repro.serving import BlockSession, FullGraphSession, QuantizedArtifact

CONV_TYPES = ("gcn", "sage", "gin")


@pytest.fixture(scope="module")
def artifacts(served_models):
    return {conv: QuantizedArtifact.from_model(model)
            for conv, model in served_models.items()}


class TestFullGraphParity:
    @pytest.mark.parametrize("conv", CONV_TYPES)
    def test_matches_fake_quantized_model(self, artifacts, served_models,
                                          conv, small_cora):
        """Integer serving reproduces the QAT logits (Theorem 1 parity)."""
        session = FullGraphSession(artifacts[conv], small_cora)
        integer_logits = session.predict()
        fake_quant_logits = served_models[conv](small_cora).data
        np.testing.assert_allclose(integer_logits, fake_quant_logits,
                                   rtol=1e-3, atol=1e-3)

    def test_mixed_per_layer_adjacency_bits(self, small_cora):
        """Layers with different adjacency grids must not share a cached
        quantized operator (regression: cache keyed by adjacency id only)."""
        from repro.quant.qmodules import QuantNodeClassifier, \
            gcn_component_names, uniform_assignment
        from repro.training.trainer import train_node_classifier

        assignment = uniform_assignment(gcn_component_names(2), 4)
        assignment["conv1.adjacency"] = 8
        model = QuantNodeClassifier.from_assignment(
            [(small_cora.num_features, 8), (8, small_cora.num_classes)], "gcn",
            assignment, dropout=0.0, rng=np.random.default_rng(1))
        train_node_classifier(model, small_cora, epochs=10, lr=0.02)
        model.eval()
        session = FullGraphSession(QuantizedArtifact.from_model(model),
                                   small_cora)
        np.testing.assert_allclose(session.predict(), model(small_cora).data,
                                   rtol=2e-3, atol=2e-3)

    def test_node_subset_is_a_row_slice(self, artifacts, small_cora):
        session = FullGraphSession(artifacts["gcn"], small_cora)
        full = session.predict()
        nodes = np.asarray([3, 0, 11])
        np.testing.assert_array_equal(session.predict(nodes), full[nodes])

    def test_predict_classes_matches_argmax(self, artifacts, small_cora):
        session = FullGraphSession(artifacts["sage"], small_cora)
        np.testing.assert_array_equal(session.predict_classes(),
                                      session.predict().argmax(axis=1))

    def test_run_reports_work(self, artifacts, small_cora):
        run = FullGraphSession(artifacts["gcn"], small_cora).run()
        assert run.num_seeds == small_cora.num_nodes
        assert run.num_input_nodes == small_cora.num_nodes
        assert run.num_edges > 0
        assert run.bit_operations.total_bit_operations > 0
        assert run.seconds >= 0.0

    @pytest.mark.parametrize("conv", CONV_TYPES)
    def test_arithmetic_bitops_match_executed_counter(self, artifacts, conv,
                                                      small_cora):
        """bit_operations() derives the same counts a real pass records."""
        session = FullGraphSession(artifacts[conv], small_cora)
        assert session.bit_operations().per_function() \
            == session.run().bit_operations.per_function()


class TestBlockParity:
    @pytest.mark.parametrize("conv", CONV_TYPES)
    def test_unlimited_fanout_matches_full_graph(self, artifacts, conv,
                                                 small_cora):
        """Block serving at fanout=∞ equals the full-graph engine."""
        full = FullGraphSession(artifacts[conv], small_cora).predict()
        block = BlockSession(artifacts[conv], small_cora, fanouts=None,
                             batch_size=32)
        seeds = np.arange(small_cora.num_nodes, dtype=np.int64)[::3]
        np.testing.assert_allclose(block.predict(seeds), full[seeds],
                                   rtol=1e-7, atol=1e-8)

    @pytest.mark.parametrize("conv", CONV_TYPES)
    def test_saved_artifact_serves_bit_identically(self, artifacts, conv,
                                                   small_cora, tmp_path):
        """save() -> load() -> serve is exactly the in-memory serving path."""
        artifacts[conv].save(tmp_path / "artifact.npz")
        loaded = QuantizedArtifact.load(tmp_path / "artifact.npz")
        seeds = np.arange(0, small_cora.num_nodes, 5, dtype=np.int64)
        before = BlockSession(artifacts[conv], small_cora,
                              fanouts=None).predict(seeds)
        after = BlockSession(loaded, small_cora, fanouts=None).predict(seeds)
        np.testing.assert_array_equal(after, before)

    def test_fanout_capped_outputs_are_finite(self, artifacts, small_cora):
        session = BlockSession(artifacts["gcn"], small_cora, fanouts=2,
                               batch_size=8, seed=3)
        logits = session.predict(np.asarray([0, 5, 9]))
        assert logits.shape == (3, small_cora.num_classes)
        assert np.isfinite(logits).all()

    def test_empty_request(self, artifacts, small_cora):
        run = BlockSession(artifacts["gcn"], small_cora).run(np.asarray([], dtype=int))
        assert run.logits.shape == (0, small_cora.num_classes)
        assert run.num_edges == 0


class TestMemoryBoundedness:
    def test_never_materialises_full_adjacency(self, artifacts, small_cora):
        """Block serving builds no full-graph normalised/self-loop adjacency."""
        graph = small_cora.copy()  # fresh, empty adjacency cache
        session = BlockSession(artifacts["gcn"], graph, fanouts=3, batch_size=16)
        fanout, num_seeds = 3, 8
        run = session.run(np.arange(num_seeds, dtype=np.int64))

        # The raw adjacency is the input data the sampler slices rows from...
        assert "adj_False" in graph._cache
        # ...but the full normalised operator (and the self-loop-augmented
        # adjacency it derives from) must never be built by the serving path.
        assert "gcn_norm" not in graph._cache
        assert "adj_True" not in graph._cache

        # Work is bounded by the request's fanout-capped receptive field.
        receptive_bound = num_seeds * (fanout + 1) ** 2
        assert run.num_input_nodes <= receptive_bound
        assert run.num_input_nodes < graph.num_nodes

    def test_block_work_scales_with_request_not_graph(self, artifacts,
                                                      small_cora):
        session = BlockSession(artifacts["gcn"], small_cora, fanouts=2,
                               batch_size=64)
        small = session.run(np.arange(2, dtype=np.int64))
        large = session.run(np.arange(32, dtype=np.int64))
        full = FullGraphSession(artifacts["gcn"], small_cora).run()
        assert small.bit_operations.total_bit_operations \
            < large.bit_operations.total_bit_operations
        assert large.bit_operations.total_bit_operations \
            < full.bit_operations.total_bit_operations
