"""Score-plan serving: artifact export, integer execution, fanout=∞ parity.

Acceptance contract of the attention serving path: a ``QuantizedArtifact``
exported from a GAT / TAG / Transformer classifier round-trips through disk
bit-exactly, integer sessions match the QAT reference closely, and block
serving with unlimited fanout is **bit-identical** to the full-graph engine
— float, QAT and integer paths alike (the float/QAT halves live in
``tests/gnn`` / ``tests/quant``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.serving import (
    BlockSession,
    FullGraphSession,
    QUANTIZER_SLOTS,
    QuantizedArtifact,
    tag_weight_slots,
)
from repro.tensor.tensor import no_grad

# Mirrors tests/serving/conftest.py (kept literal: a bare ``import conftest``
# is ambiguous when several conftest files share one pytest run).
ATTENTION_CONV_TYPES = ("gat", "tag", "transformer")
TAG_TEST_HOPS = 2


@pytest.fixture(scope="module")
def artifacts(attention_models):
    return {conv: QuantizedArtifact.from_model(model)
            for conv, model in attention_models.items()}


class TestAttentionArtifacts:
    @pytest.mark.parametrize("conv", ATTENTION_CONV_TYPES)
    def test_export_slots(self, artifacts, conv):
        artifact = artifacts[conv]
        assert artifact.conv_type == conv
        for plan in artifact.layers:
            assert set(plan.quantizers) == set(QUANTIZER_SLOTS[conv])
            if conv == "tag":
                assert set(plan.weights) == set(tag_weight_slots(TAG_TEST_HOPS))
                assert plan.hops == TAG_TEST_HOPS
            else:
                assert plan.hops == 1

    def test_total_hops(self, artifacts):
        assert artifacts["gat"].total_hops == 2
        assert artifacts["transformer"].total_hops == 2
        assert artifacts["tag"].total_hops == 2 * TAG_TEST_HOPS

    def test_gat_keeps_attention_vectors_fp32(self, artifacts):
        for plan in artifacts["gat"].layers:
            assert plan.weights["attention_src"].bits == 32
            assert plan.weights["attention_dst"].bits == 32
            assert plan.weights["weight"].bits == 8

    @pytest.mark.parametrize("conv", ATTENTION_CONV_TYPES)
    def test_save_load_round_trip_bit_exact(self, artifacts, small_cora,
                                            tmp_path, conv):
        artifact = artifacts[conv]
        artifact.save(tmp_path / "artifact")
        loaded = QuantizedArtifact.load(tmp_path / "artifact.json")
        before = FullGraphSession(artifact, small_cora).predict()
        after = FullGraphSession(loaded, small_cora).predict()
        np.testing.assert_array_equal(after, before)
        assert [plan.hops for plan in loaded.layers] \
            == [plan.hops for plan in artifact.layers]


class TestAttentionSessions:
    @pytest.mark.parametrize("conv", ATTENTION_CONV_TYPES)
    def test_integer_matches_qat_reference(self, artifacts, attention_models,
                                           small_cora, conv):
        with no_grad():
            reference = attention_models[conv](small_cora).data
        logits = FullGraphSession(artifacts[conv], small_cora).predict()
        np.testing.assert_allclose(logits, reference, atol=5e-2)
        # integer classes agree with the QAT model almost everywhere
        agreement = (logits.argmax(1) == reference.argmax(1)).mean()
        assert agreement > 0.95

    @pytest.mark.parametrize("conv", ATTENTION_CONV_TYPES)
    def test_unlimited_fanout_block_bit_identical_to_full(self, artifacts,
                                                          small_cora, conv):
        full = FullGraphSession(artifacts[conv], small_cora).predict()
        block = BlockSession(artifacts[conv], small_cora, fanouts=None,
                             batch_size=small_cora.num_nodes).predict()
        np.testing.assert_array_equal(block, full)

    @pytest.mark.parametrize("conv", ATTENTION_CONV_TYPES)
    def test_fanout_capped_serving_is_finite_and_bounded(self, artifacts,
                                                         small_cora, conv):
        session = BlockSession(artifacts[conv], small_cora, fanouts=3,
                               batch_size=16)
        run = session.run(np.arange(12, dtype=np.int64))
        assert run.logits.shape == (12, small_cora.num_classes)
        assert np.isfinite(run.logits).all()
        assert run.num_seeds == 12
        assert run.num_input_nodes < small_cora.num_nodes

    @pytest.mark.parametrize("conv", ATTENTION_CONV_TYPES)
    def test_repeat_requests_are_deterministic(self, artifacts, small_cora,
                                               conv):
        session = BlockSession(artifacts[conv], small_cora, fanouts=4,
                               batch_size=16, seed=3)
        nodes = np.arange(20, dtype=np.int64)
        np.testing.assert_array_equal(session.predict(nodes),
                                      session.predict(nodes))


class TestAttentionBitOps:
    @pytest.mark.parametrize("conv", ATTENTION_CONV_TYPES)
    def test_block_bitops_at_unlimited_fanout_equal_full_graph(self, artifacts,
                                                               small_cora,
                                                               conv):
        full = FullGraphSession(artifacts[conv], small_cora)
        block = BlockSession(artifacts[conv], small_cora, fanouts=None,
                             batch_size=small_cora.num_nodes)
        full_counter = full.run().bit_operations
        block_counter = block.run().bit_operations
        assert block_counter.total_bit_operations \
            == full_counter.total_bit_operations
        # and the statically derived count agrees with the executed one
        assert full.bit_operations().total_bit_operations \
            == full_counter.total_bit_operations

    @pytest.mark.parametrize("conv", ATTENTION_CONV_TYPES)
    def test_score_stage_is_accounted(self, artifacts, small_cora, conv):
        counter = FullGraphSession(artifacts[conv], small_cora).bit_operations()
        names = [record.name for record in counter.records]
        if conv == "tag":
            assert any("aggregate_hop" in name for name in names)
            assert any("transform_hop" in name for name in names)
        else:
            assert any(name.endswith(".score") for name in names)
            assert any(name.endswith(".aggregate") for name in names)

    def test_fanout_capped_bitops_below_full(self, artifacts, small_cora):
        full = FullGraphSession(artifacts["gat"], small_cora).run()
        capped = BlockSession(artifacts["gat"], small_cora, fanouts=2,
                              batch_size=8).run(np.arange(8, dtype=np.int64))
        assert capped.bit_operations.total_bit_operations \
            < full.bit_operations.total_bit_operations
