"""Score-plan serving: artifact export, integer execution, the head axis.

Acceptance contract of the attention serving path: a ``QuantizedArtifact``
exported from a GAT / TAG / Transformer classifier round-trips through disk
bit-exactly (head axis included), integer sessions match the QAT reference
closely, and the per-head BitOPs accounting behaves.  The fanout=∞
bit-identity rows (block == full across float/QAT/integer × heads) live in
the unified parity matrix, ``tests/parity_matrix.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.serving import (
    BlockSession,
    FullGraphSession,
    QUANTIZER_SLOTS,
    QuantizedArtifact,
    tag_weight_slots,
)
from repro.tensor.tensor import no_grad

# Mirrors tests/serving/conftest.py (kept literal: a bare ``import conftest``
# is ambiguous when several conftest files share one pytest run).
ATTENTION_CONV_TYPES = ("gat", "tag", "transformer")
TAG_TEST_HOPS = 2


@pytest.fixture(scope="module")
def artifacts(attention_models):
    return {conv: QuantizedArtifact.from_model(model)
            for conv, model in attention_models.items()}


@pytest.fixture(scope="module")
def multi_head_artifacts(multi_head_models):
    return {conv: QuantizedArtifact.from_model(model)
            for conv, model in multi_head_models.items()}


class TestAttentionArtifacts:
    @pytest.mark.parametrize("conv", ATTENTION_CONV_TYPES)
    def test_export_slots(self, artifacts, conv):
        artifact = artifacts[conv]
        assert artifact.conv_type == conv
        for plan in artifact.layers:
            assert set(plan.quantizers) == set(QUANTIZER_SLOTS[conv])
            if conv == "tag":
                assert set(plan.weights) == set(tag_weight_slots(TAG_TEST_HOPS))
                assert plan.hops == TAG_TEST_HOPS
            else:
                assert plan.hops == 1

    def test_total_hops(self, artifacts):
        assert artifacts["gat"].total_hops == 2
        assert artifacts["transformer"].total_hops == 2
        assert artifacts["tag"].total_hops == 2 * TAG_TEST_HOPS

    def test_gat_keeps_attention_vectors_fp32(self, artifacts):
        for plan in artifacts["gat"].layers:
            assert plan.weights["attention_src"].bits == 32
            assert plan.weights["attention_dst"].bits == 32
            assert plan.weights["weight"].bits == 8

    @pytest.mark.parametrize("conv", ATTENTION_CONV_TYPES)
    def test_save_load_round_trip_bit_exact(self, artifacts, small_cora,
                                            tmp_path, conv):
        artifact = artifacts[conv]
        artifact.save(tmp_path / "artifact")
        loaded = QuantizedArtifact.load(tmp_path / "artifact.json")
        before = FullGraphSession(artifact, small_cora).predict()
        after = FullGraphSession(loaded, small_cora).predict()
        np.testing.assert_array_equal(after, before)
        assert [plan.hops for plan in loaded.layers] \
            == [plan.hops for plan in artifact.layers]


class TestAttentionSessions:
    @pytest.mark.parametrize("conv", ATTENTION_CONV_TYPES)
    def test_integer_matches_qat_reference(self, artifacts, attention_models,
                                           small_cora, conv):
        with no_grad():
            reference = attention_models[conv](small_cora).data
        logits = FullGraphSession(artifacts[conv], small_cora).predict()
        np.testing.assert_allclose(logits, reference, atol=5e-2)
        # integer classes agree with the QAT model almost everywhere
        agreement = (logits.argmax(1) == reference.argmax(1)).mean()
        assert agreement > 0.95

    # fanout=∞ block == full bit-identity: parity-matrix rows
    # (tests/parity_matrix.py, integer × served).

    @pytest.mark.parametrize("conv", ATTENTION_CONV_TYPES)
    def test_fanout_capped_serving_is_finite_and_bounded(self, artifacts,
                                                         small_cora, conv):
        session = BlockSession(artifacts[conv], small_cora, fanouts=3,
                               batch_size=16)
        run = session.run(np.arange(12, dtype=np.int64))
        assert run.logits.shape == (12, small_cora.num_classes)
        assert np.isfinite(run.logits).all()
        assert run.num_seeds == 12
        assert run.num_input_nodes < small_cora.num_nodes

    @pytest.mark.parametrize("conv", ATTENTION_CONV_TYPES)
    def test_repeat_requests_are_deterministic(self, artifacts, small_cora,
                                               conv):
        session = BlockSession(artifacts[conv], small_cora, fanouts=4,
                               batch_size=16, seed=3)
        nodes = np.arange(20, dtype=np.int64)
        np.testing.assert_array_equal(session.predict(nodes),
                                      session.predict(nodes))


class TestAttentionBitOps:
    # fanout=∞ BitOPs equality (block == full, executed == static): parity-
    # matrix rows (tests/parity_matrix.py, integer × served).

    @pytest.mark.parametrize("conv", ATTENTION_CONV_TYPES)
    def test_score_stage_is_accounted(self, artifacts, small_cora, conv):
        counter = FullGraphSession(artifacts[conv], small_cora).bit_operations()
        names = [record.name for record in counter.records]
        if conv == "tag":
            assert any("aggregate_hop" in name for name in names)
            assert any("transform_hop" in name for name in names)
        else:
            assert any(name.endswith(".score") for name in names)
            assert any(name.endswith(".aggregate") for name in names)

    def test_fanout_capped_bitops_below_full(self, artifacts, small_cora):
        full = FullGraphSession(artifacts["gat"], small_cora).run()
        capped = BlockSession(artifacts["gat"], small_cora, fanouts=2,
                              batch_size=8).run(np.arange(8, dtype=np.int64))
        assert capped.bit_operations.total_bit_operations \
            < full.bit_operations.total_bit_operations


class TestMultiHeadServing:
    """Format v3: the head axis travels export → disk → integer execution."""

    @pytest.mark.parametrize("conv", ("gat", "transformer"))
    def test_export_carries_head_axis(self, multi_head_artifacts, conv):
        artifact = multi_head_artifacts[conv]
        hidden, classes = artifact.layers[0].out_features, \
            artifact.layers[1].out_features
        assert [plan.heads for plan in artifact.layers] == [4, 4]
        assert [plan.head_merge for plan in artifact.layers] \
            == ["concat", "mean"]
        assert artifact.layers[0].head_dim == hidden // 4
        assert artifact.layers[1].head_dim == classes

    def test_gat_attention_vectors_store_one_column_per_head(
            self, multi_head_artifacts):
        for plan in multi_head_artifacts["gat"].layers:
            assert plan.weights["attention_src"].integers.shape \
                == (plan.head_dim, 4)
            assert plan.weights["attention_src"].bits == 32

    @pytest.mark.parametrize("conv", ("gat", "transformer"))
    def test_save_load_round_trip_bit_exact(self, multi_head_artifacts,
                                            small_cora, tmp_path, conv):
        artifact = multi_head_artifacts[conv]
        artifact.save(tmp_path / "artifact")
        loaded = QuantizedArtifact.load(tmp_path / "artifact")
        np.testing.assert_array_equal(
            FullGraphSession(loaded, small_cora).predict(),
            FullGraphSession(artifact, small_cora).predict())
        assert [plan.heads for plan in loaded.layers] == [4, 4]
        assert [plan.head_merge for plan in loaded.layers] \
            == ["concat", "mean"]

    @pytest.mark.parametrize("conv", ("gat", "transformer"))
    def test_integer_matches_multi_head_qat_reference(self,
                                                      multi_head_artifacts,
                                                      multi_head_models,
                                                      small_cora, conv):
        with no_grad():
            reference = multi_head_models[conv](small_cora).data
        logits = FullGraphSession(multi_head_artifacts[conv],
                                  small_cora).predict()
        np.testing.assert_allclose(logits, reference, atol=5e-2)
        agreement = (logits.argmax(1) == reference.argmax(1)).mean()
        assert agreement > 0.95

    @pytest.mark.parametrize("conv", ("gat", "transformer"))
    def test_more_heads_cost_more_bitops(self, artifacts,
                                         multi_head_artifacts, small_cora,
                                         conv):
        single = FullGraphSession(artifacts[conv], small_cora) \
            .bit_operations().total_bit_operations
        multi = FullGraphSession(multi_head_artifacts[conv], small_cora) \
            .bit_operations().total_bit_operations
        assert multi > single
