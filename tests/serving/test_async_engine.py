"""Concurrency tests: worker-pool flushes, deadline batching, race-free stats."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.serving import (
    AsyncServingEngine,
    BlockSession,
    QuantizedArtifact,
    ServingEngine,
)


@pytest.fixture(scope="module")
def block_session_factory(served_models, small_cora):
    artifact = QuantizedArtifact.from_model(served_models["gcn"])

    def factory(**kwargs):
        options = dict(fanouts=4, batch_size=16, seed=0)
        options.update(kwargs)
        return BlockSession(artifact, small_cora, **options)

    return factory


class TestWorkerPoolFlush:
    def test_worker_pool_matches_synchronous_engine(self, block_session_factory):
        requests = [np.arange(0, 20), np.arange(15, 45), np.asarray([3]),
                    np.arange(30, 60)]
        serial = ServingEngine(block_session_factory(), max_batch_size=8)
        pooled = ServingEngine(block_session_factory(), max_batch_size=8,
                               workers=4)
        for engine in (serial, pooled):
            for nodes in requests:
                engine.submit(nodes)
        serial_results = serial.flush()
        pooled_results = pooled.flush()
        assert serial.stats.micro_batches == pooled.stats.micro_batches
        for result_a, result_b in zip(serial_results, pooled_results):
            assert result_a.request_id == result_b.request_id
            np.testing.assert_array_equal(result_a.logits, result_b.logits)
            assert result_b.giga_bit_operations == pytest.approx(
                result_a.giga_bit_operations)

    def test_worker_pool_with_shared_cache_is_exact(self, block_session_factory):
        reference = block_session_factory()
        engine = ServingEngine(block_session_factory(cache_size=65536),
                               max_batch_size=8, workers=4)
        nodes = np.arange(0, 48)
        for _ in range(2):                 # second flush hits the warm cache
            engine.submit(nodes)
            result = engine.flush()[0]
            np.testing.assert_array_equal(result.logits,
                                          reference.predict(nodes))
        assert engine.session.cache_stats().hits > 0

    def test_rejects_bad_worker_count(self, block_session_factory):
        with pytest.raises(ValueError):
            ServingEngine(block_session_factory(), workers=0)


class TestAsyncServingEngine:
    def test_concurrent_submissions_match_synchronous_outputs(
            self, block_session_factory):
        reference = block_session_factory()
        num_threads = 8
        requests = [np.arange(start, start + 12) % 60
                    for start in range(num_threads)]
        outputs = [None] * num_threads

        with AsyncServingEngine(block_session_factory(cache_size=65536),
                                max_batch=32, max_wait_ms=5.0,
                                workers=4) as engine:
            def worker(position: int) -> None:
                outputs[position] = engine.submit(
                    requests[position]).result(timeout=30)

            threads = [threading.Thread(target=worker, args=(position,))
                       for position in range(num_threads)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

        for nodes, result in zip(requests, outputs):
            np.testing.assert_array_equal(result.nodes, nodes)
            np.testing.assert_array_equal(result.logits,
                                          reference.predict(nodes))
            assert result.latency_seconds > 0.0

    def test_stats_counters_are_race_free(self, block_session_factory):
        num_threads, per_thread = 6, 5
        with AsyncServingEngine(block_session_factory(), max_batch=16,
                                max_wait_ms=2.0) as engine:
            def worker(seed: int) -> None:
                rng = np.random.default_rng(seed)
                for _ in range(per_thread):
                    nodes = rng.choice(60, size=3, replace=False)
                    engine.submit(nodes).result(timeout=30)

            threads = [threading.Thread(target=worker, args=(seed,))
                       for seed in range(num_threads)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            stats = engine.stats
        assert stats.requests == num_threads * per_thread
        assert stats.nodes == num_threads * per_thread * 3
        assert stats.giga_bit_operations > 0.0

    def test_deadline_flushes_lone_request(self, block_session_factory):
        # max_batch is far larger than the request, so only the max_wait_ms
        # deadline can trigger the flush.
        with AsyncServingEngine(block_session_factory(), max_batch=10_000,
                                max_wait_ms=25.0) as engine:
            start = time.perf_counter()
            result = engine.submit([1, 2, 3]).result(timeout=30)
            elapsed_ms = (time.perf_counter() - start) * 1e3
        assert result.logits.shape[0] == 3
        # It waited for the deadline (not flushed immediately)...
        assert elapsed_ms >= 10.0
        # ...but not much longer (generous slack for slow CI machines).
        assert elapsed_ms < 5_000.0
        # The reported latency includes the queueing wait.
        assert result.latency_seconds * 1e3 >= 10.0

    def test_full_batch_flushes_before_deadline(self, block_session_factory):
        # A queue holding >= max_batch seeds must flush without waiting for
        # the (absurdly long) deadline.
        with AsyncServingEngine(block_session_factory(), max_batch=4,
                                max_wait_ms=60_000.0) as engine:
            future = engine.submit(np.arange(8))
            result = future.result(timeout=30)
        assert result.logits.shape[0] == 8

    def test_flush_now_overrides_deadline(self, block_session_factory):
        engine = AsyncServingEngine(block_session_factory(), max_batch=10_000,
                                    max_wait_ms=60_000.0)
        try:
            future = engine.submit([5, 6])
            engine.flush_now()
            result = future.result(timeout=30)
            np.testing.assert_array_equal(result.nodes, [5, 6])
            # The reported latency reflects the real wait, not the deadline.
            assert result.latency_seconds < 30.0
        finally:
            engine.close()

    def test_close_drains_pending_requests(self, block_session_factory):
        engine = AsyncServingEngine(block_session_factory(), max_batch=10_000,
                                    max_wait_ms=60_000.0)
        futures = [engine.submit([node]) for node in range(5)]
        engine.close()
        for future in futures:
            assert future.result(timeout=5).logits.shape[0] == 1
        with pytest.raises(RuntimeError):
            engine.submit([0])

    def test_reset_stats_separates_measurement_windows(
            self, block_session_factory):
        with AsyncServingEngine(block_session_factory(), max_batch=16,
                                max_wait_ms=1.0) as engine:
            # warm-up traffic; waiting on the futures commits the counters
            for node in range(4):
                engine.submit([node]).result(timeout=30)
            snapshot = engine.reset_stats()
            assert snapshot.requests == 4
            assert engine.stats.requests == 0
            # the measured window counts only post-reset traffic
            futures = [engine.submit([node]) for node in range(4, 10)]
            for future in futures:
                future.result(timeout=30)
            assert engine.stats.requests == 6
            assert engine.stats.nodes == 6

    def test_submit_validates_on_caller_thread(self, block_session_factory):
        with AsyncServingEngine(block_session_factory()) as engine:
            with pytest.raises(ValueError):
                engine.submit([])
            with pytest.raises(ValueError):
                engine.submit([10_000_000])

    def test_micro_batch_failure_only_fails_affected_futures(
            self, poisoned_session_class):
        with AsyncServingEngine(poisoned_session_class({13}), max_batch=4,
                                max_wait_ms=60_000.0) as engine:
            good = engine.submit(np.arange(0, 4))
            bad = engine.submit(np.asarray([12, 13, 14, 15]))
            also_good = engine.submit(np.arange(20, 24))
            engine.flush_now()
            # only the future whose micro-batch raised sees the exception
            with pytest.raises(RuntimeError, match="poisoned"):
                bad.result(timeout=30)
            for future in (good, also_good):
                result = future.result(timeout=30)
                assert result.ok
                assert result.logits.shape[0] == 4
                assert result.latency_seconds > 0.0
            stats = engine.stats
        assert stats.requests == 3
        assert stats.failures == 1
