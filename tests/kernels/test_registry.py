"""Registry behaviour of the pluggable kernel backends."""

import pytest

import repro.kernels as kernels
from repro.kernels import (
    BACKEND_ENV_VAR,
    NumpyBackend,
    VectorizedBackend,
    available_backends,
    get_backend,
    register_backend,
    resolve_backend,
)


@pytest.fixture
def scratch_name():
    """A registry name that is guaranteed gone again after the test."""
    name = "test-scratch-backend"
    yield name
    with kernels._registry_lock:
        kernels._factories.pop(name, None)
        kernels._instances.pop(name, None)


class TestRegistry:
    def test_builtin_backends_present_reference_first(self):
        names = available_backends()
        assert names[0] == "numpy"
        assert "vectorized" in names
        # the rest of the tuple is sorted, so the listing is deterministic
        assert list(names[1:]) == sorted(names[1:])

    def test_instances_are_process_wide_singletons(self):
        assert get_backend("numpy") is get_backend("numpy")
        assert get_backend("vectorized") is get_backend("vectorized")
        assert isinstance(get_backend("numpy"), NumpyBackend)
        assert isinstance(get_backend("vectorized"), VectorizedBackend)

    def test_unknown_name_lists_available(self):
        with pytest.raises(ValueError, match="numpy"):
            get_backend("no-such-backend")

    def test_register_rejects_duplicates_unless_replace(self, scratch_name):
        register_backend(scratch_name, NumpyBackend)
        with pytest.raises(ValueError, match="already registered"):
            register_backend(scratch_name, NumpyBackend)
        first = get_backend(scratch_name)
        # replace=True swaps the factory and drops the old instance
        register_backend(scratch_name, VectorizedBackend, replace=True)
        second = get_backend(scratch_name)
        assert second is not first
        assert isinstance(second, VectorizedBackend)

    def test_register_rejects_empty_name(self):
        with pytest.raises(ValueError, match="non-empty"):
            register_backend("", NumpyBackend)


class TestResolveBackend:
    def test_none_defaults_to_numpy(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert resolve_backend(None) is get_backend("numpy")

    def test_env_var_supplies_the_default(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "vectorized")
        assert resolve_backend(None) is get_backend("vectorized")
        # blank env values fall back to the reference
        monkeypatch.setenv(BACKEND_ENV_VAR, "   ")
        assert resolve_backend(None) is get_backend("numpy")

    def test_explicit_name_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "vectorized")
        assert resolve_backend("numpy") is get_backend("numpy")

    def test_instances_pass_through(self):
        backend = NumpyBackend()
        assert resolve_backend(backend) is backend
