"""Per-kernel certification: every backend bit-identical to the reference.

The served-logits parity lives in ``tests/parity_matrix.py`` (backend
axis); these tests certify each kernel *in isolation* on randomized
integer-grid inputs, so a contract break names the exact operation.
"""

import numpy as np
import pytest

from repro.kernels import available_backends, get_backend
from repro.tensor.sparse import SparseTensor

REFERENCE = get_backend("numpy")
OTHER_BACKENDS = [name for name in available_backends() if name != "numpy"]

NUM_NODES = 40
NUM_DST = 24
NUM_EDGES = 160
HEADS = 4
HEAD_DIM = 5


def _rng():
    return np.random.default_rng(17)


def _edges(rng, num_edges=NUM_EDGES):
    src = rng.integers(0, NUM_NODES, size=num_edges)
    dst = rng.integers(0, NUM_DST, size=num_edges)
    return src, dst


@pytest.mark.parametrize("name", OTHER_BACKENDS)
class TestKernelCertification:
    def test_spmm(self, name):
        rng = _rng()
        backend = get_backend(name)
        dense = rng.integers(-8, 8, size=(NUM_DST, NUM_NODES)).astype(np.float64)
        dense[rng.random(dense.shape) < 0.7] = 0.0
        qa = SparseTensor(dense)
        qx = rng.integers(0, 255, size=(NUM_NODES, 16)).astype(np.float64)
        arguments = (qa, 0.03, qx, 0.11, 7.0)
        keywords = {"sy": 0.9, "zy": 3.0}
        expected = REFERENCE.spmm(*arguments, **keywords)
        np.testing.assert_array_equal(backend.spmm(*arguments, **keywords),
                                      expected)

    def test_edge_spmm_single_head(self, name):
        rng = _rng()
        backend = get_backend(name)
        src, dst = _edges(rng)
        q_edge = rng.integers(0, 127, size=NUM_EDGES)
        qx = rng.integers(-128, 128, size=(NUM_NODES, 12))
        arguments = (q_edge, 0.007, qx, 0.2, 5.0, src, dst, NUM_DST)
        np.testing.assert_array_equal(backend.edge_spmm(*arguments),
                                      REFERENCE.edge_spmm(*arguments))

    def test_edge_spmm_multi_head(self, name):
        rng = _rng()
        backend = get_backend(name)
        src, dst = _edges(rng)
        q_edge = rng.integers(0, 127, size=(NUM_EDGES, HEADS))
        qx = rng.integers(-128, 128, size=(NUM_NODES, HEADS, HEAD_DIM))
        arguments = (q_edge, 0.004, qx, 0.15, 3.0, src, dst, NUM_DST)
        result = backend.edge_spmm(*arguments)
        assert result.shape == (NUM_DST, HEADS, HEAD_DIM)
        np.testing.assert_array_equal(result, REFERENCE.edge_spmm(*arguments))

    def test_edge_spmm_per_column_feature_params(self, name):
        rng = _rng()
        backend = get_backend(name)
        src, dst = _edges(rng)
        q_edge = rng.integers(0, 63, size=NUM_EDGES)
        qx = rng.integers(0, 255, size=(NUM_NODES, 6))
        sx = rng.uniform(0.01, 0.3, size=6)
        zx = rng.integers(-4, 4, size=6).astype(np.float64)
        arguments = (q_edge, 0.01, qx, sx, zx, src, dst, NUM_DST)
        np.testing.assert_array_equal(backend.edge_spmm(*arguments),
                                      REFERENCE.edge_spmm(*arguments))

    def test_edge_spmm_empty_edge_list(self, name):
        backend = get_backend(name)
        empty = np.zeros(0, dtype=np.int64)
        qx = np.ones((NUM_NODES, HEADS, HEAD_DIM))
        result = backend.edge_spmm(np.zeros((0, HEADS), dtype=np.int64), 0.01,
                                   qx, 0.1, 2.0, empty, empty, NUM_DST)
        assert result.shape == (NUM_DST, HEADS, HEAD_DIM)
        np.testing.assert_array_equal(result, np.zeros_like(result))

    def test_edge_spmm_rejects_mismatched_heads(self, name):
        backend = get_backend(name)
        empty = np.zeros(0, dtype=np.int64)
        with pytest.raises(ValueError, match="multi-head"):
            backend.edge_spmm(np.zeros((0, HEADS), dtype=np.int64), 0.01,
                              np.ones((NUM_NODES, HEADS + 1, HEAD_DIM)),
                              0.1, 0.0, empty, empty, NUM_DST)

    def test_edge_softmax(self, name):
        rng = _rng()
        backend = get_backend(name)
        _, dst = _edges(rng)
        scores = rng.normal(size=(NUM_EDGES, HEADS))
        expected = REFERENCE.edge_softmax(scores, dst, NUM_DST)
        np.testing.assert_array_equal(backend.edge_softmax(scores, dst,
                                                           NUM_DST), expected)
        # single-head (E,) form too
        flat = rng.normal(size=NUM_EDGES)
        np.testing.assert_array_equal(
            backend.edge_softmax(flat, dst, NUM_DST),
            REFERENCE.edge_softmax(flat, dst, NUM_DST))

    def test_gat_scores(self, name):
        rng = _rng()
        backend = get_backend(name)
        src, dst = _edges(rng)
        src = np.minimum(src, NUM_DST - 1)
        transformed = rng.normal(size=(NUM_DST, HEADS * HEAD_DIM))
        attention_src = rng.normal(size=(HEAD_DIM, HEADS))
        attention_dst = rng.normal(size=(HEAD_DIM, HEADS))
        arguments = (transformed, attention_src, attention_dst, src, dst,
                     HEADS, HEAD_DIM)
        np.testing.assert_array_equal(backend.gat_scores(*arguments),
                                      REFERENCE.gat_scores(*arguments))


class TestVectorizedMemoisation:
    def test_repeat_calls_are_stable(self):
        """Memoised segments/weights must not change results on reuse."""
        rng = _rng()
        backend = get_backend("vectorized")
        src, dst = _edges(rng)
        q_edge = rng.integers(0, 127, size=NUM_EDGES)
        qx = rng.integers(-64, 64, size=(NUM_NODES, 8))
        arguments = (q_edge, 0.02, qx, 0.3, 1.0, src, dst, NUM_DST)
        first = backend.edge_spmm(*arguments)
        second = backend.edge_spmm(*arguments)  # served from the dst memo
        np.testing.assert_array_equal(first, second)
        np.testing.assert_array_equal(first, REFERENCE.edge_spmm(*arguments))

    def test_thread_safety_under_concurrent_calls(self):
        import threading

        rng = _rng()
        backend = get_backend("vectorized")
        cases = []
        for _ in range(8):
            src, dst = _edges(rng, num_edges=64)
            q_edge = rng.integers(0, 63, size=64)
            qx = rng.integers(0, 127, size=(NUM_NODES, 4))
            arguments = (q_edge, 0.05, qx, 0.25, 2.0, src, dst, NUM_DST)
            cases.append((arguments, REFERENCE.edge_spmm(*arguments)))

        failures = []

        def worker():
            for arguments, expected in cases * 4:
                if not np.array_equal(backend.edge_spmm(*arguments), expected):
                    failures.append(arguments)  # pragma: no cover

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures
