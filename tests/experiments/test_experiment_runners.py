"""Smoke tests for the experiment runners (tiny configurations).

These protect the benchmark harness: every table/figure runner must execute
end-to-end and return rows in the expected layout.  Heavier, shape-asserting
runs live in ``benchmarks/``.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.experiments import ablation, figures, graph_tables, node_tables, table_static
from repro.experiments.common import MethodRow, format_table, merge_seed_rows
from repro.experiments.config import QUICK, STANDARD, current_scale

TINY = replace(QUICK, num_seeds=1, search_epochs=5, train_epochs=8, citation_scale=0.06,
               large_scale=0.3, num_graphs=16, graph_search_epochs=1,
               graph_train_epochs=2, num_folds=2, hidden_features=8)


class TestConfig:
    def test_presets(self):
        assert QUICK.num_seeds < STANDARD.num_seeds
        assert QUICK.citation_scale < STANDARD.citation_scale

    def test_current_scale_defaults_to_quick(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert current_scale() is QUICK
        monkeypatch.setenv("REPRO_SCALE", "standard")
        assert current_scale() is STANDARD


class TestRowUtilities:
    def test_method_row_statistics(self):
        row = MethodRow("m", [0.5, 0.7], bits=4.0)
        assert row.mean_accuracy == pytest.approx(0.6)
        assert row.std_accuracy == pytest.approx(0.1)
        assert row.as_dict()["method"] == "m"

    def test_format_table_contains_rows(self):
        text = format_table("T", [MethodRow("FP32", [0.8]), MethodRow("MixQ", [0.7], bits=4)])
        assert "FP32" in text and "MixQ" in text

    def test_merge_seed_rows(self):
        merged = merge_seed_rows([MethodRow("m", [0.5], bits=4.0),
                                  MethodRow("m", [0.7], bits=6.0)])
        assert merged.accuracies == [0.5, 0.7]
        assert merged.bits == pytest.approx(5.0)
        with pytest.raises(ValueError):
            merge_seed_rows([])


class TestStaticTables:
    def test_table1_rows(self):
        rows = table_static.table1_complexity()
        assert {row["method"] for row in rows} == {"DQ", "A2Q", "MixQ-GNN"}
        assert "Table 1" in table_static.format_table1(rows)

    def test_table2_contains_cora(self):
        table = table_static.table2_datasets()
        assert "cora" in table
        assert "cora" in table_static.format_table2(table)


class TestNodeTableRunners:
    def test_table3_shape(self):
        results = node_tables.table3_node_classification(datasets=("cora",), scale=TINY,
                                                         lambdas=(0.1,))
        rows = results["cora"]
        methods = [row.method for row in rows]
        assert methods[0] == "FP32"
        assert any("MixQ" in method for method in methods)
        assert all(row.accuracies for row in rows)

    def test_table6_sage(self):
        results = node_tables.table6_graphsage(datasets=("cora",), scale=TINY,
                                               lambdas=(1.0,))
        assert len(results["cora"]) == 2

    def test_table7_multilabel_metric(self):
        results = node_tables.table7_large_scale(datasets=("ogb-proteins",), scale=TINY,
                                                 lambdas=(0.1,))
        rows = results["ogb-proteins"]
        assert all(0.0 <= row.mean_accuracy <= 1.0 for row in rows)


class TestGraphTableRunners:
    def test_table8_shape(self):
        results = graph_tables.table8_graph_classification(datasets=("imdb-b",),
                                                           scale=TINY, num_layers=2,
                                                           lambdas=(1.0,))
        rows = results["imdb-b"]
        assert rows[0].method == "FP32"
        assert rows[0].giga_bit_operations > 0

    def test_table9_csl(self):
        rows = graph_tables.table9_csl(scale=TINY, num_layers=2,
                                       positional_encoding_dim=6, copies_per_class=3)
        methods = [row.method for row in rows]
        assert "QAT - INT2" in methods and "MixQ(λ=-ε)" in methods


class TestFigureRunners:
    def test_figure1_points(self):
        points = figures.figure1_operations_vs_accuracy(layer_types=("gcn", "gin"),
                                                        depths=(1, 2), scale=TINY)
        assert len(points) == 4
        assert all(point.operations > 0 for point in points)
        correlation = figures.spearman_rank_correlation(
            [p.operations for p in points], [p.accuracy for p in points])
        assert -1.0 <= correlation <= 1.0

    def test_figure2_and_3(self):
        result = figures.figure2_bitwidth_scatter(num_samples=4, scale=TINY)
        assert len(result.points) == 4
        assert result.pareto_indices
        histogram = figures.figure3_pareto_histograms(result)
        assert len(histogram) == 9  # one histogram per component

    def test_figure8_points_and_correlation(self):
        points = figures.figure8_bitops_vs_time(node_counts=(50,), num_features=8,
                                                bit_widths=(8, 32), repeats=1)
        assert len(points) == 2
        correlation = figures.pearson_correlation(
            [p.bit_operations for p in points], [p.inference_seconds for p in points])
        assert -1.0 <= correlation <= 1.0

    def test_figure9_lambda_sweep(self):
        points = figures.figure9_lambda_sweep(lambdas=(0.0, 1.0), scale=TINY, num_seeds=1)
        assert len(points) == 2
        assert all(2.0 <= p.average_bits <= 8.0 for p in points)


class TestAblationRunners:
    def test_table10(self):
        results = ablation.table10_random_vs_mixq(datasets=("cora",), scale=TINY,
                                                  num_random=1)
        methods = [row.method for row in results["cora"]]
        assert methods == ["Random", "Random+INT8", "MixQ(λ=1)"]

    def test_quantizer_range_ablation(self):
        rows = ablation.ablation_quantizer_ranges(scale=TINY)
        assert len(rows) == 2

    def test_output_quantizer_ablation(self):
        rows = ablation.ablation_output_quantizer(scale=TINY)
        assert rows[0].bits != rows[1].bits

    def test_penalty_routing_ablation(self):
        rows = ablation.ablation_penalty_routing(scale=TINY)
        assert len(rows) == 2
