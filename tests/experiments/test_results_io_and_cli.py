"""Tests for result serialization and the command-line interface."""

import json

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.core.mixq import MixQNodeClassifier, MixQResult
from repro.core.selection import BitWidthSearchResult
from repro.experiments.common import MethodRow
from repro.experiments.results_io import (
    load_assignment,
    load_table,
    mixq_result_to_dict,
    rows_to_records,
    save_assignment,
    save_mixq_result,
    save_table,
    search_result_to_dict,
)


@pytest.fixture
def assignment():
    return {"conv0.input": 8, "conv0.weight": 2, "conv1.weight": 4}


class TestResultsIO:
    def test_assignment_roundtrip(self, tmp_path, assignment):
        path = tmp_path / "assignment.json"
        save_assignment(assignment, path, metadata={"dataset": "cora"})
        assert load_assignment(path) == assignment
        payload = json.loads(path.read_text())
        assert payload["metadata"]["dataset"] == "cora"

    def test_load_assignment_rejects_other_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"rows": []}))
        with pytest.raises(ValueError):
            load_assignment(path)

    def test_search_result_to_dict(self, assignment):
        result = BitWidthSearchResult(assignment=assignment, average_bits=4.67,
                                      lambda_value=0.1, loss_history=[1.0, 0.5],
                                      penalty_history=[0.2, 0.1],
                                      expected_bits_history=[5.0, 4.7])
        payload = search_result_to_dict(result)
        assert payload["average_bits"] == pytest.approx(4.67)
        assert payload["loss_history"] == [1.0, 0.5]

    def test_mixq_result_roundtrip(self, tmp_path, assignment):
        result = MixQResult(accuracy=0.8, average_bits=4.0, giga_bit_operations=1.5,
                            assignment=assignment)
        path = tmp_path / "result.json"
        save_mixq_result(result, path)
        payload = json.loads(path.read_text())
        assert payload["accuracy"] == pytest.approx(0.8)
        assert payload["assignment"] == assignment
        assert "search" not in payload
        assert mixq_result_to_dict(result)["average_bits"] == pytest.approx(4.0)

    def test_table_roundtrip(self, tmp_path):
        rows = [MethodRow("FP32", [0.8], bits=32.0, giga_bit_operations=2.0),
                MethodRow("MixQ", [0.75, 0.77], bits=4.0, giga_bit_operations=0.5)]
        path = tmp_path / "table.json"
        save_table(rows, path, title="Table X")
        records = load_table(path)
        assert len(records) == 2
        assert records[1]["method"] == "MixQ"
        assert rows_to_records(rows)[0]["bits"] == 32.0


class TestCLI:
    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_search_command_writes_assignment(self, tmp_path):
        out = tmp_path / "assignment.json"
        code = main(["search", "--dataset", "cora", "--scale", "0.05", "--epochs", "4",
                     "--lambda", "0.5", "--out", str(out)])
        assert code == 0
        assignment = load_assignment(out)
        assert assignment
        assert set(assignment.values()) <= {2, 4, 8}

    def test_train_command_with_uniform_bits(self, tmp_path, capsys):
        out = tmp_path / "run.json"
        code = main(["train", "--dataset", "cora", "--scale", "0.05", "--epochs", "6",
                     "--uniform-bits", "4", "--out", str(out)])
        assert code == 0
        captured = capsys.readouterr().out
        assert "test accuracy" in captured
        payload = json.loads(out.read_text())
        assert payload["average_bits"] == pytest.approx(4.0)

    def test_train_command_consumes_search_output(self, tmp_path):
        assignment_path = tmp_path / "assignment.json"
        main(["search", "--dataset", "cora", "--scale", "0.05", "--epochs", "3",
              "--out", str(assignment_path)])
        code = main(["train", "--dataset", "cora", "--scale", "0.05", "--epochs", "4",
                     "--assignment", str(assignment_path)])
        assert code == 0

    def test_search_with_degree_quant_flag(self, tmp_path):
        code = main(["search", "--dataset", "cora", "--scale", "0.05", "--epochs", "3",
                     "--degree-quant"])
        assert code == 0
