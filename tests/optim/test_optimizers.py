"""Tests for SGD, Adam, gradient clipping and learning-rate schedulers."""

import numpy as np
import pytest

from repro.nn import Linear
from repro.optim import SGD, Adam, CosineAnnealingLR, StepLR, clip_grad_norm
from repro.optim.optimizer import Optimizer
from repro.tensor import Tensor
from repro.tensor.tensor import Tensor as T


def quadratic_loss(parameter):
    return ((parameter - 3.0) ** 2).sum()


class TestOptimizerBase:
    def test_empty_parameter_list_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_invalid_learning_rate_rejected(self):
        with pytest.raises(ValueError):
            Adam([Tensor([1.0], requires_grad=True)], lr=0.0)

    def test_zero_grad_clears_all(self):
        parameter = Tensor([1.0], requires_grad=True)
        optimizer = SGD([parameter], lr=0.1)
        quadratic_loss(parameter).backward()
        optimizer.zero_grad()
        assert parameter.grad is None

    def test_step_not_implemented_on_base(self):
        with pytest.raises(NotImplementedError):
            Optimizer([Tensor([1.0], requires_grad=True)], lr=0.1).step()


class TestSGD:
    def test_single_step_matches_formula(self):
        parameter = Tensor([1.0], requires_grad=True)
        optimizer = SGD([parameter], lr=0.1)
        quadratic_loss(parameter).backward()
        optimizer.step()
        assert parameter.data[0] == pytest.approx(1.0 - 0.1 * 2 * (1.0 - 3.0))

    def test_converges_on_quadratic(self):
        parameter = Tensor([0.0], requires_grad=True)
        optimizer = SGD([parameter], lr=0.1)
        for _ in range(200):
            optimizer.zero_grad()
            quadratic_loss(parameter).backward()
            optimizer.step()
        assert parameter.data[0] == pytest.approx(3.0, abs=1e-3)

    def test_momentum_accelerates(self):
        plain = Tensor([0.0], requires_grad=True)
        momentum = Tensor([0.0], requires_grad=True)
        sgd_plain = SGD([plain], lr=0.01)
        sgd_momentum = SGD([momentum], lr=0.01, momentum=0.9)
        for _ in range(30):
            for parameter, optimizer in ((plain, sgd_plain), (momentum, sgd_momentum)):
                optimizer.zero_grad()
                quadratic_loss(parameter).backward()
                optimizer.step()
        assert abs(momentum.data[0] - 3.0) < abs(plain.data[0] - 3.0)

    def test_weight_decay_shrinks_solution(self):
        parameter = Tensor([0.0], requires_grad=True)
        optimizer = SGD([parameter], lr=0.1, weight_decay=1.0)
        for _ in range(300):
            optimizer.zero_grad()
            quadratic_loss(parameter).backward()
            optimizer.step()
        assert 0.0 < parameter.data[0] < 3.0

    def test_skips_parameters_without_grad(self):
        used = Tensor([0.0], requires_grad=True)
        unused = Tensor([5.0], requires_grad=True)
        optimizer = SGD([used, unused], lr=0.1)
        quadratic_loss(used).backward()
        optimizer.step()
        assert unused.data[0] == pytest.approx(5.0)


class TestAdam:
    def test_converges_on_quadratic(self):
        parameter = Tensor([0.0], requires_grad=True)
        optimizer = Adam([parameter], lr=0.1)
        for _ in range(300):
            optimizer.zero_grad()
            quadratic_loss(parameter).backward()
            optimizer.step()
        assert parameter.data[0] == pytest.approx(3.0, abs=1e-2)

    def test_first_step_size_is_learning_rate(self):
        parameter = Tensor([0.0], requires_grad=True)
        optimizer = Adam([parameter], lr=0.05)
        quadratic_loss(parameter).backward()
        optimizer.step()
        assert parameter.data[0] == pytest.approx(0.05, rel=1e-3)

    def test_trains_linear_regression(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((64, 3)).astype(np.float32)
        true_weight = np.asarray([[1.0], [-2.0], [0.5]], dtype=np.float32)
        y = x @ true_weight
        layer = Linear(3, 1, rng=rng)
        optimizer = Adam(layer.parameters(), lr=0.05)
        for _ in range(200):
            layer.zero_grad()
            prediction = layer(Tensor(x))
            loss = ((prediction - Tensor(y)) ** 2).mean()
            loss.backward()
            optimizer.step()
        np.testing.assert_allclose(layer.weight.data, true_weight, atol=0.05)

    def test_decoupled_weight_decay_changes_trajectory(self):
        a = Tensor([1.0], requires_grad=True)
        b = Tensor([1.0], requires_grad=True)
        opt_a = Adam([a], lr=0.1, weight_decay=0.5)
        opt_b = Adam([b], lr=0.1, weight_decay=0.5, decoupled_weight_decay=True)
        for optimizer, parameter in ((opt_a, a), (opt_b, b)):
            optimizer.zero_grad()
            quadratic_loss(parameter).backward()
            optimizer.step()
        assert a.data[0] != pytest.approx(b.data[0])


class TestGradClipping:
    def test_clips_to_max_norm(self):
        parameter = Tensor(np.asarray([3.0, 4.0], dtype=np.float32), requires_grad=True)
        (parameter * parameter).sum().backward()  # grad = (6, 8), norm 10
        norm = clip_grad_norm([parameter], max_norm=1.0)
        assert norm == pytest.approx(10.0)
        assert np.linalg.norm(parameter.grad) == pytest.approx(1.0, rel=1e-5)

    def test_no_clip_when_below_threshold(self):
        parameter = Tensor([0.1], requires_grad=True)
        (parameter * 2.0).sum().backward()
        clip_grad_norm([parameter], max_norm=10.0)
        assert parameter.grad[0] == pytest.approx(2.0)

    def test_handles_empty_grads(self):
        assert clip_grad_norm([Tensor([1.0], requires_grad=True)], 1.0) == 0.0


class TestSchedulers:
    def test_step_lr_halves(self):
        parameter = Tensor([0.0], requires_grad=True)
        optimizer = SGD([parameter], lr=1.0)
        scheduler = StepLR(optimizer, step_size=2, gamma=0.5)
        for _ in range(4):
            scheduler.step()
        assert optimizer.lr == pytest.approx(0.25)

    def test_cosine_reaches_minimum(self):
        parameter = Tensor([0.0], requires_grad=True)
        optimizer = SGD([parameter], lr=1.0)
        scheduler = CosineAnnealingLR(optimizer, t_max=10, eta_min=0.1)
        for _ in range(10):
            scheduler.step()
        assert optimizer.lr == pytest.approx(0.1, abs=1e-6)

    def test_cosine_is_monotone_decreasing(self):
        optimizer = SGD([Tensor([0.0], requires_grad=True)], lr=1.0)
        scheduler = CosineAnnealingLR(optimizer, t_max=5)
        values = []
        for _ in range(5):
            scheduler.step()
            values.append(optimizer.lr)
        assert all(a >= b for a, b in zip(values, values[1:]))
