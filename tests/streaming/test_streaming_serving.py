"""Streaming updates through the serving engines: ordering, atomicity, API."""

from types import SimpleNamespace

import numpy as np
import pytest

from repro.serving import AsyncServingEngine, BlockSession, FullGraphSession
from repro.serving.engine import ServingEngine
from repro.streaming import GraphDelta


def _delta(graph, seed=0):
    rng = np.random.default_rng(seed)
    edges = rng.integers(0, graph.num_nodes, size=(2, 3))
    weights = rng.random(3).astype(np.float32) + np.float32(0.5)
    return GraphDelta(added_edges=edges, added_weights=weights)


@pytest.fixture()
def block_session(parity_graph, parity_artifact):
    return BlockSession(parity_artifact("gcn", 1), parity_graph.copy(),
                        fanouts=None, batch_size=parity_graph.num_nodes,
                        cache_size=4096)


class TestSyncEngineUpdates:
    def test_update_applies_before_queued_requests(self, block_session):
        engine = ServingEngine(block_session, max_batch_size=64)
        engine.submit([0, 1, 2])
        engine.submit_update(_delta(block_session.graph))
        results = engine.flush()
        # the whole flush was served at the post-update version
        assert block_session.graph.version == 1
        assert engine.stats.updates == 1
        assert len(results) == 1 or len(results) == 3  # engine groups freely
        engine.close()

    def test_updates_apply_even_with_empty_queue(self, block_session):
        engine = ServingEngine(block_session, max_batch_size=64)
        engine.submit_update(_delta(block_session.graph))
        engine.submit_update(_delta(block_session.graph, seed=1))
        assert engine.flush() == []
        assert block_session.graph.version == 2
        assert engine.stats.updates == 2
        engine.close()

    def test_apply_update_returns_new_version(self, block_session):
        engine = ServingEngine(block_session, max_batch_size=64)
        assert engine.apply_update(_delta(block_session.graph)) == 1
        assert engine.apply_update(_delta(block_session.graph, seed=1)) == 2
        engine.close()

    def test_rejects_sessions_without_update_support(self):
        stub = SimpleNamespace(supports_updates=False)
        engine = ServingEngine(stub, max_batch_size=64)
        with pytest.raises(TypeError, match="does not support"):
            engine.submit_update(GraphDelta())
        with pytest.raises(TypeError, match="does not support"):
            engine.apply_update(GraphDelta())

    def test_full_graph_session_supports_updates(self, parity_graph,
                                                 parity_artifact):
        session = FullGraphSession(parity_artifact("gcn", 1),
                                   parity_graph.copy())
        engine = ServingEngine(session, max_batch_size=64)
        engine.submit_update(_delta(session.graph))
        engine.flush()
        assert session.graph.version == 1
        engine.close()


class TestAsyncEngineUpdates:
    def test_update_future_resolves_to_version(self, block_session):
        with AsyncServingEngine(block_session, max_batch=64,
                                max_wait_ms=1.0) as engine:
            first = engine.submit_update(_delta(block_session.graph))
            assert first.result(timeout=10.0) == 1
            second = engine.submit_update(
                _delta(block_session.graph, seed=1))
            assert second.result(timeout=10.0) == 2
        assert engine.stats.updates == 2

    def test_queries_after_update_see_new_graph(self, block_session):
        with AsyncServingEngine(block_session, max_batch=64,
                                max_wait_ms=1.0) as engine:
            before = engine.submit([0, 1]).result(timeout=10.0)
            engine.submit_update(_delta(block_session.graph)) \
                .result(timeout=10.0)
            after = engine.submit([0, 1]).result(timeout=10.0)
        assert before.logits.shape == after.logits.shape
        assert block_session.graph.version == 1

    def test_pending_updates_drain_on_close(self, block_session):
        engine = AsyncServingEngine(block_session, max_batch=64,
                                    max_wait_ms=50.0)
        future = engine.submit_update(_delta(block_session.graph))
        engine.close()
        assert future.result(timeout=1.0) == 1

    def test_update_failure_sets_exception(self, block_session):
        absent = np.asarray([[block_session.graph.num_nodes - 1],
                             [block_session.graph.num_nodes - 1]])
        # craft a pair that is certainly absent: remove it twice
        delta = GraphDelta(removed_edges=absent)
        with AsyncServingEngine(block_session, max_batch=64,
                                max_wait_ms=1.0) as engine:
            engine.submit_update(
                GraphDelta(added_edges=absent)).result(timeout=10.0)
            engine.submit_update(delta).result(timeout=10.0)  # removes it
            failing = engine.submit_update(delta)              # now absent
            with pytest.raises(ValueError, match="absent edge"):
                failing.result(timeout=10.0)
            # the engine keeps serving after a failed update
            assert engine.submit([0]).result(timeout=10.0).logits.shape[0] == 1

    def test_rejects_sessions_without_update_support(self, block_session):
        with AsyncServingEngine(block_session, max_batch=64,
                                max_wait_ms=1.0) as engine:
            # shadow the class attribute on the instance: the rejection
            # must happen on the caller thread, before dispatch
            block_session.supports_updates = False
            with pytest.raises(TypeError, match="does not support"):
                engine.submit_update(GraphDelta())
