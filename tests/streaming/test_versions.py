"""affected_region reachability, version counters, scoped invalidation."""

from types import SimpleNamespace

import numpy as np
import pytest

from repro.cache.block_cache import BlockCache
from repro.graphs.graph import Graph
from repro.streaming import RegionVersions, affected_region


def _path_graph(n=8):
    """0 -> 1 -> 2 -> ... -> n-1 (directed chain)."""
    src = np.arange(n - 1)
    dst = np.arange(1, n)
    return Graph(np.zeros((n, 2), dtype=np.float32), np.stack([src, dst]))


class TestAffectedRegion:
    def test_chain_reachability_is_hop_bounded(self):
        """On 0->1->...->7, the reverse k-hop region of {4} is {4-k .. 4}."""
        graph = _path_graph(8)
        for hops in range(4):
            region = affected_region(graph, np.asarray([4]), hops)
            np.testing.assert_array_equal(region,
                                          np.arange(4 - hops, 5))

    def test_zero_hops_returns_touched_set(self):
        graph = _path_graph(5)
        np.testing.assert_array_equal(
            affected_region(graph, np.asarray([3, 1, 3]), 0), [1, 3])

    def test_empty_touched_set(self):
        graph = _path_graph(5)
        assert affected_region(graph, np.asarray([], dtype=np.int64),
                               2).size == 0

    def test_rejects_out_of_range(self):
        graph = _path_graph(5)
        with pytest.raises(ValueError):
            affected_region(graph, np.asarray([5]), 1)

    def test_region_never_exceeds_graph(self):
        graph = _path_graph(6)
        region = affected_region(graph, np.asarray([5]), 99)
        np.testing.assert_array_equal(region, np.arange(6))


class TestRegionVersions:
    def test_bump_scopes_to_given_nodes(self):
        versions = RegionVersions(6)
        versions.bump(np.asarray([2]), np.asarray([1, 2, 3]))
        np.testing.assert_array_equal(
            versions.row_versions(np.arange(6)), [0, 0, 1, 0, 0, 0])
        tag_all = np.frombuffer(versions.region_tag(np.arange(6)), np.int64)
        np.testing.assert_array_equal(tag_all, [0, 1, 1, 1, 0, 0])

    def test_region_tag_is_order_sensitive_full_vector(self):
        """The batch tag must distinguish per-seed versions, not just a max."""
        versions = RegionVersions(4)
        versions.bump(np.asarray([], dtype=np.int64), np.asarray([1]))
        tag_01 = versions.region_tag(np.asarray([0, 1]))
        versions_other = RegionVersions(4)
        versions_other.bump(np.asarray([], dtype=np.int64), np.asarray([0]))
        tag_10 = versions_other.region_tag(np.asarray([0, 1]))
        assert tag_01 != tag_10  # same max version, different vectors

    def test_repeated_bumps_accumulate(self):
        versions = RegionVersions(3)
        versions.bump(np.asarray([0]), np.asarray([0, 1]))
        versions.bump(np.asarray([0]), np.asarray([0]))
        np.testing.assert_array_equal(versions.row_versions(np.asarray([0])),
                                      [2])


class TestInvalidateNodes:
    def _warm_cache(self):
        cache = BlockCache(max_entries=64)
        for node in range(4):
            cache.put_raw_rows([node],
                               [(np.asarray([node + 1]), np.asarray([1.0]))])
        seeds = np.asarray([0, 1], dtype=np.int64)
        payload = SimpleNamespace(x=np.zeros(4), y=None, blocks=[])
        cache.put_batch(seeds, (5,), 0, payload)
        return cache, seeds, payload

    def test_evicts_only_named_nodes(self):
        cache, seeds, payload = self._warm_cache()
        evicted = cache.invalidate_nodes(np.asarray([2]))
        assert evicted == 1
        # untouched row entries still hit; the evicted one misses
        entries = cache.get_rows([0, 1, 3], fanout=None, hop=0, epoch=0)
        assert all(entry is not None for entry in entries)
        assert cache.get_rows([2], fanout=None, hop=0, epoch=0) == [None]

    def test_evicts_batches_touching_region(self):
        cache, seeds, payload = self._warm_cache()
        assert cache.get_batch(seeds, (5,), 0) is payload
        cache.invalidate_nodes(np.asarray([1]))
        assert cache.get_batch(seeds, (5,), 0) is None

    def test_keeps_batches_outside_region(self):
        cache, seeds, payload = self._warm_cache()
        cache.invalidate_nodes(np.asarray([3]))
        assert cache.get_batch(seeds, (5,), 0) is payload

    def test_versioned_keys_make_stale_entries_unreachable(self):
        """Even without eviction, a bumped version misses by key."""
        cache = BlockCache(max_entries=16)
        versions = RegionVersions(4)
        rows = [(np.asarray([1]), np.asarray([1.0]))]
        cache.put_raw_rows([0], rows,
                           versions=[int(v) for v
                                     in versions.row_versions([0])])
        assert cache.get_rows([0], fanout=None, hop=0, epoch=0,
                              versions=versions.row_versions([0]))[0] \
            is not None
        versions.bump(np.asarray([0]), np.asarray([0]))
        assert cache.get_rows([0], fanout=None, hop=0, epoch=0,
                              versions=versions.row_versions([0])) == [None]
