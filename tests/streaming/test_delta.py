"""GraphDelta validation, atomicity, and incremental-splice bit-identity."""

import numpy as np
import pytest

from repro.graphs.graph import Graph
from repro.streaming import GraphDelta
from repro.tensor.sparse import SparseTensor


def _graph(num_nodes=10, num_edges=30, seed=0, num_features=4):
    rng = np.random.default_rng(seed)
    edges = rng.integers(0, num_nodes, size=(2, num_edges))
    # guarantee at least one duplicate directed pair
    edges[:, -1] = edges[:, 0]
    weights = rng.random(num_edges).astype(np.float32) + np.float32(0.5)
    x = rng.random((num_nodes, num_features)).astype(np.float32)
    return Graph(x, edges, edge_weight=weights)


class TestDeltaValidation:
    def test_empty_delta_is_valid_and_bumps_version(self):
        graph = _graph()
        before = graph.edge_index.copy()
        delta = GraphDelta()
        assert delta.is_empty
        graph.apply_delta(delta)
        assert graph.version == 1
        np.testing.assert_array_equal(graph.edge_index, before)

    def test_rejects_bad_edge_shapes(self):
        with pytest.raises(ValueError):
            GraphDelta(added_edges=np.zeros((3, 2), dtype=np.int64))
        with pytest.raises(ValueError):
            GraphDelta(added_edges=np.zeros(4, dtype=np.int64))

    def test_rejects_weight_count_mismatch(self):
        edges = np.asarray([[0, 1], [1, 2]])
        with pytest.raises(ValueError):
            GraphDelta(added_edges=edges, added_weights=np.ones(3))

    def test_rejects_partial_feature_update(self):
        with pytest.raises(ValueError):
            GraphDelta(feature_nodes=np.asarray([0, 1]))
        with pytest.raises(ValueError):
            GraphDelta(features=np.zeros((2, 4)))
        with pytest.raises(ValueError):
            GraphDelta(feature_nodes=np.asarray([1, 1]),
                       features=np.zeros((2, 4)))

    def test_touched_and_changed_rows(self):
        delta = GraphDelta(added_edges=np.asarray([[3, 3], [1, 2]]),
                           removed_edges=None,
                           feature_nodes=np.asarray([7]),
                           features=np.zeros((1, 4), dtype=np.float32))
        np.testing.assert_array_equal(delta.changed_rows(), [3])
        np.testing.assert_array_equal(delta.touched_nodes(), [1, 2, 3, 7])


class TestApplyDelta:
    def test_spliced_adjacency_matches_fresh_rebuild(self):
        """The defining check: incremental splice == full reconstruction."""
        graph = _graph(num_nodes=16, num_edges=60)
        # warm the raw-adjacency cache so apply_delta takes the splice path
        graph.adjacency(add_self_loops=False)
        rng = np.random.default_rng(1)
        for _ in range(4):
            edges = rng.integers(0, 16, size=(2, 5))
            weights = rng.random(5).astype(np.float32)
            graph.add_edges(edges, weights)
            fresh = Graph(graph.x.copy(), graph.edge_index.copy(),
                          edge_weight=graph.edge_weight.copy())
            for loops in (False, True):
                spliced = graph.adjacency(add_self_loops=loops).csr
                rebuilt = fresh.adjacency(add_self_loops=loops).csr
                np.testing.assert_array_equal(spliced.indptr, rebuilt.indptr)
                np.testing.assert_array_equal(spliced.indices, rebuilt.indices)
                np.testing.assert_array_equal(spliced.data, rebuilt.data)
            gcn = graph.normalized_adjacency().csr
            gcn_fresh = fresh.normalized_adjacency().csr
            np.testing.assert_array_equal(gcn.data, gcn_fresh.data)

    def test_version_is_monotone(self):
        graph = _graph()
        assert graph.version == 0
        graph.add_edges(np.asarray([[0], [1]]))
        graph.update_features(np.asarray([2]),
                              np.ones((1, 4), dtype=np.float32))
        graph.remove_edges(np.asarray([[0], [1]]))
        assert graph.version == 3

    def test_remove_drops_every_occurrence(self):
        edges = np.asarray([[0, 0, 1], [1, 1, 2]])
        graph = Graph(np.zeros((3, 2), dtype=np.float32), edges)
        graph.remove_edges(np.asarray([[0], [1]]))
        assert graph.num_edges == 1
        np.testing.assert_array_equal(graph.edge_index, [[1], [2]])

    def test_remove_absent_edge_is_atomic(self):
        graph = _graph()
        before_edges = graph.edge_index.copy()
        before_x = graph.x.copy()
        delta = GraphDelta(
            added_edges=np.asarray([[0], [1]]),
            removed_edges=np.asarray([[0], [0]]) + graph.num_nodes - 1,
            feature_nodes=np.asarray([0]),
            features=np.full((1, 4), 9.0, dtype=np.float32))
        with pytest.raises(ValueError, match="absent edge"):
            graph.apply_delta(delta)
        # nothing moved: not the edges, not the features, not the version
        np.testing.assert_array_equal(graph.edge_index, before_edges)
        np.testing.assert_array_equal(graph.x, before_x)
        assert graph.version == 0

    def test_rejects_out_of_range_nodes(self):
        graph = _graph(num_nodes=5)
        with pytest.raises(ValueError):
            graph.add_edges(np.asarray([[5], [0]]))
        with pytest.raises(ValueError):
            graph.update_features(np.asarray([-1]),
                                  np.zeros((1, 4), dtype=np.float32))
        with pytest.raises(ValueError):
            graph.update_features(np.asarray([0]),
                                  np.zeros((1, 3), dtype=np.float32))

    def test_feature_update_overwrites_rows(self):
        graph = _graph()
        rows = np.full((2, 4), 3.5, dtype=np.float32)
        graph.update_features(np.asarray([1, 4]), rows)
        np.testing.assert_array_equal(graph.x[[1, 4]], rows)


class TestWithRows:
    def test_splice_equals_rebuild(self):
        rng = np.random.default_rng(2)
        dense = (rng.random((8, 8)) * (rng.random((8, 8)) < 0.4)) \
            .astype(np.float32)
        import scipy.sparse as sp
        tensor = SparseTensor(sp.csr_matrix(dense))
        rows = np.asarray([1, 5])
        new_rows = (rng.random((2, 8)) * (rng.random((2, 8)) < 0.5)) \
            .astype(np.float32)
        replacement = SparseTensor(sp.csr_matrix(new_rows))
        spliced = tensor.with_rows(rows, replacement).csr
        expected = dense.copy()
        expected[rows] = new_rows
        rebuilt = sp.csr_matrix(expected)
        np.testing.assert_array_equal(spliced.indptr, rebuilt.indptr)
        np.testing.assert_array_equal(spliced.indices, rebuilt.indices)
        np.testing.assert_array_equal(spliced.data, rebuilt.data)

    def test_rejects_bad_rows(self):
        import scipy.sparse as sp
        tensor = SparseTensor(sp.csr_matrix(np.eye(4)))
        replacement = SparseTensor(sp.csr_matrix(np.zeros((2, 4))))
        with pytest.raises(ValueError):
            tensor.with_rows(np.asarray([0, 0]), replacement)
        with pytest.raises(ValueError):
            tensor.with_rows(np.asarray([0, 4]), replacement)
        with pytest.raises(ValueError):
            tensor.with_rows(np.asarray([0]), replacement)
