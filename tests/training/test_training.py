"""Tests for metrics, training loops and cross-validation."""

import numpy as np
import pytest

from repro.gnn import build_node_model
from repro.gnn.models import GraphClassifier
from repro.graphs.datasets.tu import dataset_labels
from repro.training import (
    accuracy,
    cross_validate_graph_classifier,
    evaluate_graph_classifier,
    evaluate_node_classifier,
    masked_accuracy,
    roc_auc_score,
    train_graph_classifier,
    train_node_classifier,
)


class TestMetrics:
    def test_accuracy_perfect(self):
        logits = np.asarray([[2.0, 0.0], [0.0, 2.0]])
        assert accuracy(logits, [0, 1]) == 1.0

    def test_accuracy_half(self):
        logits = np.asarray([[2.0, 0.0], [2.0, 0.0]])
        assert accuracy(logits, [0, 1]) == 0.5

    def test_accuracy_shape_mismatch(self):
        with pytest.raises(ValueError):
            accuracy(np.zeros((3, 2)), [0, 1])

    def test_masked_accuracy(self):
        logits = np.asarray([[2.0, 0.0], [2.0, 0.0], [0.0, 2.0]])
        assert masked_accuracy(logits, [0, 1, 1], np.asarray([True, False, True])) == 1.0

    def test_masked_accuracy_empty_mask(self):
        with pytest.raises(ValueError):
            masked_accuracy(np.zeros((2, 2)), [0, 1], np.asarray([False, False]))

    def test_roc_auc_perfect_separation(self):
        scores = np.asarray([0.1, 0.2, 0.8, 0.9])
        labels = np.asarray([0, 0, 1, 1])
        assert roc_auc_score(scores, labels) == pytest.approx(1.0)

    def test_roc_auc_random_is_half(self):
        rng = np.random.default_rng(0)
        scores = rng.random(2000)
        labels = rng.integers(0, 2, 2000)
        assert roc_auc_score(scores, labels) == pytest.approx(0.5, abs=0.05)

    def test_roc_auc_inverted_predictions(self):
        scores = np.asarray([0.9, 0.8, 0.2, 0.1])
        labels = np.asarray([0, 0, 1, 1])
        assert roc_auc_score(scores, labels) == pytest.approx(0.0)

    def test_roc_auc_multilabel_averages_tasks(self):
        scores = np.asarray([[0.9, 0.1], [0.1, 0.9], [0.8, 0.2], [0.2, 0.8]])
        labels = np.asarray([[1, 0], [0, 1], [1, 0], [0, 1]])
        assert roc_auc_score(scores, labels) == pytest.approx(1.0)

    def test_roc_auc_skips_degenerate_tasks(self):
        scores = np.asarray([[0.9, 0.5], [0.1, 0.5]])
        labels = np.asarray([[1, 1], [0, 1]])  # second task has no negatives
        assert roc_auc_score(scores, labels) == pytest.approx(1.0)

    def test_roc_auc_all_degenerate_raises(self):
        with pytest.raises(ValueError):
            roc_auc_score(np.asarray([[0.5], [0.5]]), np.asarray([[1], [1]]))

    def test_roc_auc_with_ties(self):
        scores = np.asarray([0.5, 0.5, 0.5, 0.5])
        labels = np.asarray([0, 1, 0, 1])
        assert roc_auc_score(scores, labels) == pytest.approx(0.5)


class TestNodeTraining:
    def test_requires_train_mask(self, small_cora):
        graph = small_cora.copy()
        graph.train_mask = None
        model = build_node_model("gcn", graph.num_features, 8, graph.num_classes)
        with pytest.raises(ValueError):
            train_node_classifier(model, graph, epochs=1)

    def test_training_improves_over_initial(self, small_cora):
        model = build_node_model("gcn", small_cora.num_features, 16,
                                 small_cora.num_classes, rng=np.random.default_rng(0))
        initial = evaluate_node_classifier(model, small_cora, small_cora.test_mask)
        result = train_node_classifier(model, small_cora, epochs=40, lr=0.02)
        assert result.test_accuracy > initial
        assert result.test_accuracy > 1.0 / small_cora.num_classes

    def test_loss_history_recorded(self, small_cora):
        model = build_node_model("gcn", small_cora.num_features, 8,
                                 small_cora.num_classes, rng=np.random.default_rng(0))
        result = train_node_classifier(model, small_cora, epochs=5)
        assert len(result.loss_history) == 5

    def test_early_stopping_restores_best(self, small_cora):
        model = build_node_model("gcn", small_cora.num_features, 8,
                                 small_cora.num_classes, rng=np.random.default_rng(0))
        result = train_node_classifier(model, small_cora, epochs=60, patience=5)
        assert len(result.loss_history) <= 60
        assert result.best_epoch <= len(result.loss_history)

    def test_extra_penalty_invoked(self, small_cora):
        calls = []

        def penalty(model, graph):
            calls.append(1)
            from repro.tensor import Tensor
            return Tensor([0.0], requires_grad=False)

        model = build_node_model("gcn", small_cora.num_features, 8,
                                 small_cora.num_classes, rng=np.random.default_rng(0))
        train_node_classifier(model, small_cora, epochs=3, extra_penalty=penalty,
                              penalty_weight=0.5)
        assert len(calls) == 3


class TestGraphTraining:
    def test_training_runs_and_evaluates(self, tu_graphs):
        model = GraphClassifier(tu_graphs[0].num_features, 8, 2, num_layers=2,
                                batch_norm=False, rng=np.random.default_rng(0))
        result = train_graph_classifier(model, tu_graphs[:16], tu_graphs[16:], epochs=3,
                                        rng=np.random.default_rng(0))
        assert 0.0 <= result.test_accuracy <= 1.0
        assert len(result.loss_history) == 3

    def test_evaluate_counts_all_graphs(self, tu_graphs):
        model = GraphClassifier(tu_graphs[0].num_features, 8, 2, num_layers=2,
                                batch_norm=False, rng=np.random.default_rng(0))
        score = evaluate_graph_classifier(model, tu_graphs, batch_size=7)
        assert 0.0 <= score <= 1.0

    def test_cross_validation_runs_fresh_models(self, tu_graphs):
        created = []

        def factory(train_graphs):
            model = GraphClassifier(tu_graphs[0].num_features, 8, 2, num_layers=2,
                                    batch_norm=False,
                                    rng=np.random.default_rng(len(created)))
            created.append(model)
            return model

        result = cross_validate_graph_classifier(factory, tu_graphs, num_folds=3,
                                                 epochs=2, rng=np.random.default_rng(0))
        assert len(result.fold_accuracies) == 3
        assert len(created) == 3
        assert 0.0 <= result.mean <= 1.0
        assert result.min <= result.mean <= result.max
