"""MinibatchTrainer: full-batch equivalence, sampled training, exact eval."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.mixq import MixQNodeClassifier
from repro.gnn.models import build_node_model
from repro.graphs.datasets.synthetic import SBMConfig, generate_sbm_graph
from repro.quant.qmodules import (
    QuantNodeClassifier,
    gcn_component_names,
    uniform_assignment,
)
from repro.core.build import layer_dimensions
from repro.training.minibatch import MinibatchTrainer, layerwise_inference
from repro.training.trainer import evaluate_node_classifier, train_node_classifier


@pytest.fixture(scope="module")
def graph():
    config = SBMConfig(num_nodes=200, num_classes=4, num_features=32,
                       average_degree=5.0, name="minibatch-test")
    return generate_sbm_graph(config, seed=5)


def _fresh_model(graph, conv_type, seed=0, dropout=0.5):
    return build_node_model(conv_type, graph.num_features, 16, graph.num_classes,
                            rng=np.random.default_rng(seed), dropout=dropout)


# --------------------------------------------------------------------------- #
# exactness: unlimited fanout + one batch == full-batch training
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("conv_type", ["gcn", "sage"])
def test_unlimited_fanout_matches_full_batch_loss(graph, conv_type):
    full_model = _fresh_model(graph, conv_type, dropout=0.0)
    mini_model = _fresh_model(graph, conv_type, dropout=0.0)

    full = train_node_classifier(full_model, graph, epochs=6)
    trainer = MinibatchTrainer(mini_model, fanouts=None,
                               batch_size=graph.num_nodes, shuffle=False)
    mini = trainer.fit(graph, epochs=6)

    np.testing.assert_allclose(mini.loss_history, full.loss_history, atol=1e-5)
    assert mini.test_accuracy == pytest.approx(full.test_accuracy, abs=1e-6)


# --------------------------------------------------------------------------- #
# sampled training
# --------------------------------------------------------------------------- #
def test_fanout_capped_training_learns(graph):
    model = _fresh_model(graph, "sage", seed=1)
    result = MinibatchTrainer(model, fanouts=5, batch_size=32,
                              seed=2).fit(graph, epochs=12)
    assert len(result.loss_history) == 12
    # Above chance on 4 classes.
    assert result.test_accuracy > 0.4
    # The loss actually decreased.
    assert result.loss_history[-1] < result.loss_history[0]

def test_minibatch_trains_qat_model(graph):
    dims = layer_dimensions(graph.num_features, 16, graph.num_classes, 2)
    model = QuantNodeClassifier.from_assignment(
        dims, "gcn", uniform_assignment(gcn_component_names(2), 8),
        rng=np.random.default_rng(0))
    result = MinibatchTrainer(model, fanouts=5, batch_size=32,
                              seed=3).fit(graph, epochs=8)
    assert result.test_accuracy > 0.4


def test_minibatch_mixq_pipeline(graph):
    mixq = MixQNodeClassifier("gcn", graph.num_features, 16, graph.num_classes,
                              bit_choices=(4, 8), lambda_value=0.1, seed=0)
    result = mixq.fit(graph, search_epochs=3, train_epochs=4,
                      minibatch=True, fanout=5, batch_size=48)
    assert result.assignment
    assert 4.0 <= result.average_bits <= 8.0
    assert np.isfinite(result.accuracy)


def test_degree_quant_protection_aligns_with_block_ids(graph):
    from repro.graphs.sampling import NeighborSampler
    from repro.quant.degree_quant import DegreeQuantizer
    from repro.tensor.tensor import Tensor

    quantizer = DegreeQuantizer(bits=2, rng=np.random.default_rng(0))
    quantizer.set_probabilities(np.ones(graph.num_nodes))
    quantizer.train()
    block = next(iter(NeighborSampler(graph, [3], batch_size=16, seed=0))).blocks[0]
    x = Tensor(np.random.default_rng(1).standard_normal(
        (block.num_src, 4)).astype(np.float32))

    # Without block context the per-node probabilities cannot be aligned with
    # block-local rows, so plain 2-bit quantization applies.
    assert not np.allclose(quantizer(x).data, x.data)
    # With the block announced, probability-1 protection keeps every row FP32.
    quantizer.set_active_block(block)
    np.testing.assert_allclose(quantizer(x).data, x.data)
    quantizer.set_active_block(None)


def test_forward_blocks_routes_blocks_to_degree_quant(graph):
    from repro.graphs.sampling import NeighborSampler
    from repro.quant.degree_quant import (
        DegreeQuantizer,
        attach_degree_probabilities,
        degree_quant_factory,
    )

    dims = layer_dimensions(graph.num_features, 16, graph.num_classes, 2)
    model = QuantNodeClassifier.from_assignment(
        dims, "gcn", uniform_assignment(gcn_component_names(2), 8),
        quantizer_factory=degree_quant_factory(rng=np.random.default_rng(0)),
        rng=np.random.default_rng(0))
    attach_degree_probabilities(model, graph)
    model.train()

    quantizers = [m for m in model.modules() if isinstance(m, DegreeQuantizer)]
    assert quantizers
    aligned = []
    for quantizer in quantizers:
        original = quantizer._row_probabilities

        def patched(num_rows, _original=original, _q=quantizer):
            probabilities = _original(num_rows)
            if probabilities is not None:
                aligned.append(_q)
            return probabilities

        quantizer._row_probabilities = patched

    batch = next(iter(NeighborSampler(graph, [4, 4], batch_size=16, seed=1)))
    model(batch)
    # Degree protection actually fired during the block forward...
    assert aligned
    # ...and the per-layer block context was cleared afterwards.
    assert all(quantizer._block is None for quantizer in quantizers)


def test_trainer_seed_reproducibility(graph):
    results = []
    for _ in range(2):
        model = _fresh_model(graph, "gcn", seed=4)
        results.append(MinibatchTrainer(model, fanouts=4, batch_size=32,
                                        seed=7).fit(graph, epochs=4))
    np.testing.assert_allclose(results[0].loss_history, results[1].loss_history)


# --------------------------------------------------------------------------- #
# evaluation is exact
# --------------------------------------------------------------------------- #
def test_layerwise_inference_matches_full_forward(graph):
    model = _fresh_model(graph, "gcn", seed=5)
    logits = layerwise_inference(model, graph)
    model.eval()
    from repro.tensor.tensor import no_grad

    with no_grad():
        expected = model(graph).data
    np.testing.assert_allclose(logits, expected, atol=1e-6)


def test_evaluate_matches_full_batch_evaluation(graph):
    model = _fresh_model(graph, "sage", seed=6)
    trainer = MinibatchTrainer(model, fanouts=3, batch_size=32)
    accuracy = trainer.evaluate(graph, graph.test_mask)
    expected = evaluate_node_classifier(model, graph, graph.test_mask)
    assert accuracy == pytest.approx(expected)


def test_missing_train_mask_rejected(graph):
    stripped = graph.copy()
    stripped.train_mask = None
    model = _fresh_model(graph, "gcn")
    with pytest.raises(ValueError):
        MinibatchTrainer(model, fanouts=3).fit(stripped, epochs=1)
