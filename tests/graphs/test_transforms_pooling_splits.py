"""Tests for graph transforms, global pooling and dataset splits."""

import numpy as np
import pytest

from repro.graphs import pooling
from repro.graphs.graph import Graph
from repro.graphs.splits import (
    k_fold_indices,
    stratified_k_fold_indices,
    train_val_test_masks,
)
from repro.graphs.transforms import (
    add_self_loops,
    degree_one_hot,
    laplacian_positional_encoding,
    row_normalize_features,
    to_undirected,
)
from repro.tensor import Tensor


def path_graph(num_nodes=6):
    src = np.arange(num_nodes - 1)
    edges = np.vstack([np.concatenate([src, src + 1]),
                       np.concatenate([src + 1, src])])
    x = np.ones((num_nodes, 2), dtype=np.float32)
    return Graph(x, edges, y=np.zeros(num_nodes, dtype=np.int64))


class TestTransforms:
    def test_add_self_loops_adds_n_edges(self):
        graph = path_graph()
        looped = add_self_loops(graph)
        assert looped.num_edges == graph.num_edges + graph.num_nodes

    def test_to_undirected_symmetrises(self):
        edges = np.asarray([[0, 1], [1, 2]])
        graph = Graph(np.ones((3, 1), dtype=np.float32), edges)
        undirected = to_undirected(graph)
        dense = undirected.adjacency().to_dense()
        np.testing.assert_allclose(dense, dense.T)

    def test_to_undirected_removes_duplicates(self):
        edges = np.asarray([[0, 1, 0], [1, 0, 1]])
        graph = Graph(np.ones((2, 1), dtype=np.float32), edges)
        assert to_undirected(graph).num_edges == 2

    def test_degree_one_hot_shape(self):
        graph = path_graph()
        encoded = degree_one_hot(graph)
        max_degree = int((graph.in_degrees() + graph.out_degrees()).max())
        assert encoded.x.shape == (graph.num_nodes, max_degree + 1)
        np.testing.assert_allclose(encoded.x.sum(axis=1), np.ones(graph.num_nodes))

    def test_degree_one_hot_clipping(self):
        graph = path_graph()
        encoded = degree_one_hot(graph, max_degree=1)
        assert encoded.x.shape[1] == 2

    def test_laplacian_pe_dimension(self):
        graph = path_graph(10)
        encoded = laplacian_positional_encoding(graph, dim=4, concatenate=False)
        assert encoded.x.shape == (10, 4)

    def test_laplacian_pe_concatenates(self):
        graph = path_graph(10)
        encoded = laplacian_positional_encoding(graph, dim=3, concatenate=True)
        assert encoded.x.shape == (10, 2 + 3)

    def test_laplacian_pe_is_deterministic(self):
        graph = path_graph(12)
        a = laplacian_positional_encoding(graph, dim=4, concatenate=False).x
        b = laplacian_positional_encoding(graph, dim=4, concatenate=False).x
        np.testing.assert_allclose(a, b)

    def test_laplacian_pe_distinguishes_structures(self):
        """Positional encodings differ between a path and a cycle."""
        path = path_graph(8)
        nodes = np.arange(8)
        cycle_edges = np.vstack([np.concatenate([nodes, (nodes + 1) % 8]),
                                 np.concatenate([(nodes + 1) % 8, nodes])])
        cycle = Graph(np.ones((8, 2), dtype=np.float32), cycle_edges)
        pe_path = laplacian_positional_encoding(path, dim=3, concatenate=False).x
        pe_cycle = laplacian_positional_encoding(cycle, dim=3, concatenate=False).x
        assert not np.allclose(pe_path, pe_cycle, atol=1e-3)

    def test_row_normalize(self):
        graph = path_graph()
        graph.x = np.asarray([[2.0, 2.0]] * graph.num_nodes, dtype=np.float32)
        normalised = row_normalize_features(graph)
        np.testing.assert_allclose(normalised.x.sum(axis=1), np.ones(graph.num_nodes))

    def test_row_normalize_handles_zero_rows(self):
        graph = path_graph()
        graph.x = np.zeros_like(graph.x)
        normalised = row_normalize_features(graph)
        assert np.isfinite(normalised.x).all()


class TestPooling:
    def test_max_pool(self):
        x = Tensor(np.asarray([[1.0], [5.0], [2.0], [7.0]], dtype=np.float32))
        batch = np.asarray([0, 0, 1, 1])
        np.testing.assert_allclose(pooling.global_max_pool(x, batch, 2).data,
                                   [[5.0], [7.0]])

    def test_mean_pool(self):
        x = Tensor(np.asarray([[2.0], [4.0], [6.0]], dtype=np.float32))
        batch = np.asarray([0, 0, 1])
        np.testing.assert_allclose(pooling.global_mean_pool(x, batch, 2).data,
                                   [[3.0], [6.0]])

    def test_sum_pool(self):
        x = Tensor(np.asarray([[1.0], [2.0], [3.0]], dtype=np.float32))
        batch = np.asarray([0, 1, 1])
        np.testing.assert_allclose(pooling.global_sum_pool(x, batch, 2).data,
                                   [[1.0], [5.0]])

    def test_get_pooling_lookup(self):
        assert pooling.get_pooling("max") is pooling.global_max_pool
        with pytest.raises(KeyError):
            pooling.get_pooling("median")


class TestSplits:
    def test_planetoid_split_counts(self):
        labels = np.repeat(np.arange(4), 50)
        train, val, test = train_val_test_masks(200, labels, train_per_class=5,
                                                num_val=40, num_test=80,
                                                rng=np.random.default_rng(0))
        assert train.sum() == 20
        assert val.sum() == 40
        assert test.sum() == 80

    def test_split_masks_are_disjoint(self):
        labels = np.repeat(np.arange(3), 30)
        train, val, test = train_val_test_masks(90, labels, rng=np.random.default_rng(1))
        assert not (train & val).any()
        assert not (train & test).any()
        assert not (val & test).any()

    def test_train_mask_covers_all_classes(self):
        labels = np.repeat(np.arange(5), 20)
        train, _, _ = train_val_test_masks(100, labels, train_per_class=3,
                                           rng=np.random.default_rng(2))
        assert set(labels[train]) == set(range(5))

    def test_k_fold_partitions_everything(self):
        folds = k_fold_indices(20, 4, rng=np.random.default_rng(0))
        assert len(folds) == 4
        all_test = np.concatenate([test for _, test in folds])
        assert sorted(all_test.tolist()) == list(range(20))

    def test_k_fold_train_test_disjoint(self):
        for train, test in k_fold_indices(15, 3, rng=np.random.default_rng(0)):
            assert not set(train) & set(test)

    def test_k_fold_requires_two_folds(self):
        with pytest.raises(ValueError):
            k_fold_indices(10, 1)

    def test_stratified_folds_balance_classes(self):
        labels = np.asarray([0] * 20 + [1] * 20)
        folds = stratified_k_fold_indices(labels, 4, rng=np.random.default_rng(0))
        for _, test in folds:
            test_labels = labels[test]
            assert abs((test_labels == 0).sum() - (test_labels == 1).sum()) <= 1
