"""Tests for the synthetic dataset generators and the dataset registry."""

import numpy as np
import pytest

from repro.graphs.datasets import (
    GRAPH_DATASETS,
    NODE_DATASETS,
    dataset_characteristics,
    load_citation,
    load_cora,
    load_csl,
    load_graph_dataset,
    load_large_scale,
    load_node_dataset,
    load_tu_dataset,
)
from repro.graphs.datasets.csl import circulant_skip_link_graph
from repro.graphs.datasets.synthetic import SBMConfig, generate_sbm_graph
from repro.graphs.datasets.tu import TU_CHARACTERISTICS, dataset_labels


class TestSBMGenerator:
    def test_reproducible(self):
        config = SBMConfig(num_nodes=100, num_classes=4, num_features=16)
        a = generate_sbm_graph(config, seed=5)
        b = generate_sbm_graph(config, seed=5)
        np.testing.assert_array_equal(a.edge_index, b.edge_index)
        np.testing.assert_allclose(a.x, b.x)

    def test_different_seeds_differ(self):
        config = SBMConfig(num_nodes=100, num_classes=4, num_features=16)
        a = generate_sbm_graph(config, seed=1)
        b = generate_sbm_graph(config, seed=2)
        assert a.num_edges != b.num_edges or not np.array_equal(a.edge_index, b.edge_index)

    def test_all_classes_present(self):
        config = SBMConfig(num_nodes=60, num_classes=6, num_features=8)
        graph = generate_sbm_graph(config, seed=0)
        assert set(np.unique(graph.y)) == set(range(6))

    def test_masks_are_disjoint(self):
        graph = generate_sbm_graph(SBMConfig(num_nodes=200, num_classes=4), seed=0)
        assert not (graph.train_mask & graph.val_mask).any()
        assert not (graph.train_mask & graph.test_mask).any()

    def test_edges_are_undirected(self):
        graph = generate_sbm_graph(SBMConfig(num_nodes=80, num_classes=3), seed=0)
        dense = graph.adjacency().to_dense()
        np.testing.assert_allclose(dense, dense.T)

    def test_homophily_creates_intra_class_edges(self):
        config = SBMConfig(num_nodes=200, num_classes=4, homophily=0.9,
                           average_degree=6.0, hub_fraction=0.0)
        graph = generate_sbm_graph(config, seed=0)
        src, dst = graph.edge_index
        same_class = (graph.y[src] == graph.y[dst]).mean()
        assert same_class > 0.6

    def test_hubs_create_degree_skew(self):
        with_hubs = SBMConfig(num_nodes=300, num_classes=3, hub_fraction=0.05,
                              hub_extra_edges=30)
        without = SBMConfig(num_nodes=300, num_classes=3, hub_fraction=0.0)
        degree_with = generate_sbm_graph(with_hubs, seed=0).in_degrees().max()
        degree_without = generate_sbm_graph(without, seed=0).in_degrees().max()
        assert degree_with > degree_without


class TestCitationLoaders:
    def test_cora_characteristics(self):
        graph = load_cora(scale=0.1, seed=0)
        assert graph.num_classes == 7
        assert graph.name == "cora"
        assert graph.train_mask is not None

    def test_scale_controls_size(self):
        small = load_citation("citeseer", scale=0.05, seed=0)
        large = load_citation("citeseer", scale=0.15, seed=0)
        assert large.num_nodes > small.num_nodes

    def test_unknown_dataset_rejected(self):
        with pytest.raises(KeyError):
            load_citation("unknown")

    def test_registry_covers_paper_datasets(self):
        for name in ("cora", "citeseer", "pubmed", "ogb-arxiv", "reddit"):
            assert name in NODE_DATASETS

    def test_load_node_dataset_dispatch(self):
        graph = load_node_dataset("cora", scale=0.05, seed=1)
        assert graph.num_classes == 7

    def test_load_node_dataset_unknown(self):
        with pytest.raises(KeyError):
            load_node_dataset("imagenet")


class TestLargeScaleLoaders:
    def test_relative_sizes_preserved(self):
        products = load_large_scale("ogb-products", scale=0.5, seed=0)
        arxiv = load_large_scale("ogb-arxiv", scale=0.5, seed=0)
        assert products.num_nodes > arxiv.num_nodes

    def test_proteins_is_multilabel(self):
        graph = load_large_scale("ogb-proteins", scale=0.5, seed=0)
        assert graph.y.ndim == 2
        assert set(np.unique(graph.y)).issubset({0.0, 1.0})

    def test_unknown_large_dataset(self):
        with pytest.raises(KeyError):
            load_large_scale("ogb-mag")


class TestTUDatasets:
    def test_num_graphs_and_classes(self, tu_graphs):
        assert len(tu_graphs) == 24
        labels = dataset_labels(tu_graphs)
        assert set(labels) == {0, 1}

    def test_feature_dimensions_consistent(self, tu_graphs):
        dims = {graph.num_features for graph in tu_graphs}
        assert len(dims) == 1

    def test_labels_reflect_structure(self):
        graphs = load_tu_dataset("imdb-b", num_graphs=40, seed=0)
        labels = dataset_labels(graphs)
        densities = np.asarray([g.num_edges / (g.num_nodes * (g.num_nodes - 1))
                                for g in graphs])
        assert densities[labels == 1].mean() > densities[labels == 0].mean()

    def test_reddit_m_has_five_classes(self):
        graphs = load_tu_dataset("reddit-m", num_graphs=25, seed=0)
        assert set(dataset_labels(graphs)) == {0, 1, 2, 3, 4}

    def test_proteins_has_node_features(self):
        graphs = load_tu_dataset("proteins", num_graphs=10, seed=0)
        assert graphs[0].num_features == 3

    def test_registry_contains_all_paper_datasets(self):
        for name in ("imdb-b", "proteins", "dd", "reddit-b", "reddit-m"):
            assert name in TU_CHARACTERISTICS
            assert name in GRAPH_DATASETS

    def test_unknown_tu_dataset(self):
        with pytest.raises(KeyError):
            load_tu_dataset("mutag-xxl")

    def test_load_graph_dataset_dispatch(self):
        graphs = load_graph_dataset("proteins", num_graphs=6, seed=0)
        assert len(graphs) == 6


class TestCSL:
    def test_circulant_graph_structure(self):
        graph = circulant_skip_link_graph(num_nodes=11, skip=3, label=0)
        degrees = graph.in_degrees()
        assert degrees.max() == 4  # cycle (2) + skip links (2)
        assert graph.num_nodes == 11

    def test_invalid_skip_rejected(self):
        with pytest.raises(ValueError):
            circulant_skip_link_graph(10, 1, 0)

    def test_dataset_size_and_classes(self):
        graphs = load_csl(num_nodes=21, skip_lengths=(2, 3, 4), copies_per_class=4,
                          positional_encoding_dim=6, seed=0)
        assert len(graphs) == 12
        assert set(dataset_labels(graphs)) == {0, 1, 2}

    def test_positional_encoding_dimension(self):
        graphs = load_csl(num_nodes=21, skip_lengths=(2, 3), copies_per_class=2,
                          positional_encoding_dim=8, seed=0)
        assert all(graph.num_features == 8 for graph in graphs)

    def test_copies_are_permuted(self):
        graphs = load_csl(num_nodes=15, skip_lengths=(2,), copies_per_class=2,
                          positional_encoding_dim=4, seed=0)
        assert not np.array_equal(graphs[0].edge_index, graphs[1].edge_index)


class TestRegistry:
    def test_characteristics_table_complete(self):
        table = dataset_characteristics()
        for name in ("cora", "citeseer", "pubmed", "ogb-arxiv", "igb", "ogb-proteins",
                     "ogb-products", "reddit", "csl", "imdb-b", "proteins", "dd",
                     "reddit-b", "reddit-m"):
            assert name in table

    def test_characteristics_match_paper_table2(self):
        table = dataset_characteristics()
        assert table["cora"]["num_nodes"] == 2708
        assert table["citeseer"]["num_classes"] == 6
        assert table["reddit-m"]["num_classes"] == 5
        assert table["csl"]["num_graphs"] == 150
