"""Neighbor sampler: determinism, fanout caps, renumbering, renormalisation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs.sampling import (
    BlockBatch,
    NeighborSampler,
    SubgraphBlock,
    target_features,
)
from repro.tensor.sparse import SparseTensor
from repro.tensor.tensor import Tensor


def _block_edges(block: SubgraphBlock) -> set:
    """Sampled edges in global ids."""
    return set(zip(block.dst_nodes[block.edge_rows].tolist(),
                   block.src_nodes[block.edge_cols].tolist()))


# --------------------------------------------------------------------------- #
# SparseTensor.index_select
# --------------------------------------------------------------------------- #
class TestIndexSelect:
    def test_row_selection_matches_dense(self, sbm_graph):
        adjacency = sbm_graph.adjacency()
        index = np.asarray([5, 3, 3, 100])
        selected = adjacency.index_select(0, index)
        assert selected.shape == (4, sbm_graph.num_nodes)
        np.testing.assert_allclose(selected.to_dense(),
                                   adjacency.to_dense()[index])

    def test_column_selection_matches_dense(self, sbm_graph):
        adjacency = sbm_graph.adjacency()
        index = np.asarray([0, 7, 2])
        selected = adjacency.index_select(1, index)
        np.testing.assert_allclose(selected.to_dense(),
                                   adjacency.to_dense()[:, index])

    def test_invalid_dim_rejected(self):
        with pytest.raises(ValueError):
            SparseTensor(np.eye(3)).index_select(2, np.asarray([0]))


# --------------------------------------------------------------------------- #
# NeighborSampler
# --------------------------------------------------------------------------- #
class TestNeighborSampler:
    def test_seeded_determinism(self, sbm_graph):
        batches_a = list(NeighborSampler(sbm_graph, [4, 4], batch_size=32, seed=11))
        batches_b = list(NeighborSampler(sbm_graph, [4, 4], batch_size=32, seed=11))
        assert len(batches_a) == len(batches_b) > 1
        for a, b in zip(batches_a, batches_b):
            np.testing.assert_array_equal(a.seed_nodes, b.seed_nodes)
            for block_a, block_b in zip(a.blocks, b.blocks):
                np.testing.assert_array_equal(block_a.src_nodes, block_b.src_nodes)
                assert _block_edges(block_a) == _block_edges(block_b)

    def test_different_seeds_differ(self, sbm_graph):
        a = next(iter(NeighborSampler(sbm_graph, [3, 3], batch_size=32, seed=0)))
        b = next(iter(NeighborSampler(sbm_graph, [3, 3], batch_size=32, seed=1)))
        assert not np.array_equal(a.seed_nodes, b.seed_nodes)

    def test_fanout_caps_respected(self, sbm_graph):
        fanout = 3
        sampler = NeighborSampler(sbm_graph, [fanout, fanout], batch_size=16, seed=2)
        for batch in sampler:
            for block in batch.blocks:
                per_row = np.bincount(block.edge_rows, minlength=block.num_dst)
                assert per_row.max(initial=0) <= fanout

    def test_sampled_edges_exist_in_graph(self, sbm_graph):
        dense = sbm_graph.adjacency().to_dense()
        batch = next(iter(NeighborSampler(sbm_graph, [4, 4], batch_size=16, seed=3)))
        for block in batch.blocks:
            for u, v in _block_edges(block):
                assert dense[u, v] != 0.0

    def test_renumbering_round_trips(self, sbm_graph):
        batch = next(iter(NeighborSampler(sbm_graph, [4, 4], batch_size=16, seed=4)))
        inner, outer = batch.blocks
        # Targets are a prefix of sources on every block.
        for block in batch.blocks:
            np.testing.assert_array_equal(block.src_nodes[:block.num_dst],
                                          block.dst_nodes)
            assert np.unique(block.src_nodes).size == block.num_src
        # Consecutive blocks chain: the inner block produces exactly the
        # sources the outer block consumes.
        np.testing.assert_array_equal(inner.dst_nodes, outer.src_nodes)
        np.testing.assert_array_equal(outer.dst_nodes, batch.seed_nodes)
        # Features and labels line up with the global ids.
        np.testing.assert_array_equal(batch.x, sbm_graph.x[inner.src_nodes])
        np.testing.assert_array_equal(batch.y, sbm_graph.y[batch.seed_nodes])

    def test_unlimited_fanout_keeps_every_neighbour(self, sbm_graph):
        dense = sbm_graph.adjacency().to_dense()
        batch = next(iter(NeighborSampler(sbm_graph, [None, None],
                                          batch_size=16, seed=5)))
        block = batch.blocks[-1]
        for local_row, node in enumerate(block.dst_nodes):
            neighbours = set(np.flatnonzero(dense[node]).tolist())
            sampled = {int(block.src_nodes[c])
                       for c in block.edge_cols[block.edge_rows == local_row]}
            assert sampled == neighbours

    def test_mean_degree_renormalisation(self, sbm_graph):
        batch = next(iter(NeighborSampler(sbm_graph, [2, 2], batch_size=16, seed=6)))
        from repro.gnn.sage import mean_adjacency

        for block in batch.blocks:
            rows = mean_adjacency(block).row_sum()
            sampled_rows = np.bincount(block.edge_rows, minlength=block.num_dst) > 0
            np.testing.assert_allclose(rows[sampled_rows], 1.0, rtol=1e-5)

    def test_gcn_norm_exact_at_unlimited_fanout(self, sbm_graph):
        batch = next(iter(NeighborSampler(sbm_graph, [None, None],
                                          batch_size=24, seed=7)))
        full = sbm_graph.normalized_adjacency().to_dense()
        for block in batch.blocks:
            sliced = full[np.ix_(block.dst_nodes, block.src_nodes)]
            np.testing.assert_allclose(block.normalized_adjacency().to_dense(),
                                       sliced, atol=1e-6)
            # All mass of those rows lives inside the block's columns.
            np.testing.assert_allclose(block.normalized_adjacency().row_sum(),
                                       full[block.dst_nodes].sum(axis=1), atol=1e-6)

    def test_scalar_fanout_broadcasts(self, sbm_graph):
        sampler = NeighborSampler(sbm_graph, 4, num_layers=3, batch_size=8, seed=8)
        batch = sampler.sample(np.asarray([0, 1, 2]))
        assert batch.num_layers == 3

    def test_len_counts_batches(self, sbm_graph):
        sampler = NeighborSampler(sbm_graph, [2], batch_size=7, seed=9)
        assert len(sampler) == -(-sampler.seed_nodes.size // 7)
        assert len(list(sampler)) == len(sampler)

    # ------------------------------------------------------------------ #
    # regression: edge sampling shares one counter-based key stream, so a
    # batch's sample cannot depend on what was drawn before it (the old
    # sequential-rng implementation leaked iteration order into samples)
    # ------------------------------------------------------------------ #
    def test_iter_batches_independent_of_iteration_order(self, sbm_graph):
        seeds = np.arange(40, dtype=np.int64)
        fresh = NeighborSampler(sbm_graph, [3, 3], batch_size=16, seed=21)
        warmed = NeighborSampler(sbm_graph, [3, 3], batch_size=16, seed=21)
        # Consume unrelated sampling work on one of the two samplers first.
        warmed.sample(np.asarray([7, 9, 11]))
        list(warmed.iter_batches(np.arange(60, 90, dtype=np.int64)))
        for a, b in zip(fresh.iter_batches(seeds), warmed.iter_batches(seeds)):
            for block_a, block_b in zip(a.blocks, b.blocks):
                np.testing.assert_array_equal(block_a.src_nodes,
                                              block_b.src_nodes)
                np.testing.assert_array_equal(block_a.edge_rows,
                                              block_b.edge_rows)
                np.testing.assert_array_equal(block_a.edge_cols,
                                              block_b.edge_cols)
                np.testing.assert_array_equal(block_a.edge_weight,
                                              block_b.edge_weight)

    def test_repeat_sample_is_identical(self, sbm_graph):
        sampler = NeighborSampler(sbm_graph, [2, 2], batch_size=8, seed=22)
        seeds = np.asarray([0, 3, 50, 80], dtype=np.int64)
        first = sampler.sample(seeds)
        second = sampler.sample(seeds)
        for block_a, block_b in zip(first.blocks, second.blocks):
            assert _block_edges(block_a) == _block_edges(block_b)
            np.testing.assert_array_equal(block_a.row_scale, block_b.row_scale)

    def test_epoch_iteration_still_resamples(self, sbm_graph):
        sampler = NeighborSampler(sbm_graph, [2, 2], batch_size=32,
                                  shuffle=False, seed=23)
        edges_by_epoch = []
        for _ in range(2):
            edges_by_epoch.append({frozenset(_block_edges(block))
                                   for batch in sampler
                                   for block in batch.blocks})
        assert edges_by_epoch[0] != edges_by_epoch[1]
        assert sampler.rng_epoch == 2


# --------------------------------------------------------------------------- #
# target_features / BlockBatch
# --------------------------------------------------------------------------- #
def test_target_features_slices_blocks_only(sbm_graph):
    batch = next(iter(NeighborSampler(sbm_graph, [3, 3], batch_size=16, seed=10)))
    block = batch.blocks[0]
    x = Tensor(np.random.default_rng(0).standard_normal(
        (block.num_src, 4)).astype(np.float32))
    sliced = target_features(x, block)
    assert sliced.shape == (block.num_dst, 4)
    np.testing.assert_array_equal(sliced.data, x.data[:block.num_dst])
    assert target_features(x, sbm_graph) is x


def test_block_batch_reports_input_nodes(sbm_graph):
    batch = next(iter(NeighborSampler(sbm_graph, [3, 3], batch_size=16, seed=12)))
    assert isinstance(batch, BlockBatch)
    np.testing.assert_array_equal(batch.input_nodes, batch.blocks[0].src_nodes)
    assert batch.x.shape == (batch.input_nodes.size, sbm_graph.num_features)
