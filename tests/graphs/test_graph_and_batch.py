"""Tests for the Graph data object, GraphBatch and mini-batching."""

import numpy as np
import pytest

from repro.graphs import Graph, GraphBatch
from repro.graphs.batch import collate, iterate_minibatches


def triangle_graph(label=0):
    edges = np.asarray([[0, 1, 2, 1, 2, 0], [1, 2, 0, 0, 1, 2]])
    x = np.eye(3, dtype=np.float32)
    return Graph(x, edges, y=np.asarray(label))


class TestGraph:
    def test_basic_properties(self, tiny_graph):
        assert tiny_graph.num_nodes == 12
        assert tiny_graph.num_edges == 20
        assert tiny_graph.num_features == 5
        assert tiny_graph.num_classes == 3

    def test_edge_index_validation(self):
        with pytest.raises(ValueError):
            Graph(np.ones((2, 2), dtype=np.float32), np.asarray([0, 1]))

    def test_num_classes_requires_labels(self):
        graph = Graph(np.ones((2, 2), dtype=np.float32), np.asarray([[0], [1]]))
        with pytest.raises(ValueError):
            _ = graph.num_classes

    def test_adjacency_shape_and_nnz(self, tiny_graph):
        adjacency = tiny_graph.adjacency()
        assert adjacency.shape == (12, 12)
        assert adjacency.nnz == tiny_graph.num_edges

    def test_adjacency_with_self_loops(self, tiny_graph):
        adjacency = tiny_graph.adjacency(add_self_loops=True)
        dense = adjacency.to_dense()
        assert np.all(np.diag(dense) >= 1.0)

    def test_adjacency_is_cached(self, tiny_graph):
        assert tiny_graph.adjacency() is tiny_graph.adjacency()

    def test_normalized_adjacency_row_sums_bounded(self, tiny_graph):
        dense = tiny_graph.normalized_adjacency().to_dense()
        assert dense.max() <= 1.0 + 1e-6
        assert dense.min() >= 0.0

    def test_normalized_adjacency_is_symmetric_for_undirected(self, tiny_graph):
        dense = tiny_graph.normalized_adjacency().to_dense()
        np.testing.assert_allclose(dense, dense.T, atol=1e-6)

    def test_gcn_normalization_formula(self):
        graph = triangle_graph()
        dense = graph.normalized_adjacency().to_dense()
        # Every node of the triangle has degree 3 after self loops: entries 1/3.
        np.testing.assert_allclose(dense, np.full((3, 3), 1.0 / 3.0), atol=1e-6)

    def test_degrees(self, tiny_graph):
        assert tiny_graph.in_degrees().sum() == tiny_graph.num_edges
        assert tiny_graph.out_degrees().sum() == tiny_graph.num_edges

    def test_copy_is_deep_for_features(self, tiny_graph):
        copy = tiny_graph.copy()
        copy.x[0, 0] = 123.0
        assert tiny_graph.x[0, 0] != 123.0

    def test_repr(self, tiny_graph):
        assert "nodes=12" in repr(tiny_graph)


class TestGraphBatch:
    def test_disjoint_union_sizes(self):
        batch = GraphBatch([triangle_graph(0), triangle_graph(1)])
        assert batch.num_nodes == 6
        assert batch.num_edges == 12
        assert batch.num_graphs == 2

    def test_edge_offsets(self):
        batch = GraphBatch([triangle_graph(), triangle_graph()])
        assert batch.edge_index[:, 6:].min() == 3  # second graph's nodes are offset

    def test_batch_vector(self):
        batch = GraphBatch([triangle_graph(), triangle_graph(), triangle_graph()])
        np.testing.assert_array_equal(np.bincount(batch.batch), [3, 3, 3])

    def test_labels_concatenated(self):
        batch = GraphBatch([triangle_graph(0), triangle_graph(1)])
        np.testing.assert_array_equal(batch.y, [0, 1])

    def test_block_diagonal_adjacency(self):
        batch = GraphBatch([triangle_graph(), triangle_graph()])
        dense = batch.adjacency().to_dense()
        assert dense[:3, 3:].sum() == 0.0
        assert dense[3:, :3].sum() == 0.0

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            GraphBatch([])

    def test_collate_alias(self):
        assert isinstance(collate([triangle_graph()]), GraphBatch)


class TestMinibatching:
    def test_covers_all_graphs(self, tu_graphs):
        batches = iterate_minibatches(tu_graphs, batch_size=7,
                                      rng=np.random.default_rng(0))
        assert sum(batch.num_graphs for batch in batches) == len(tu_graphs)

    def test_batch_size_respected(self, tu_graphs):
        batches = iterate_minibatches(tu_graphs, batch_size=5,
                                      rng=np.random.default_rng(0))
        assert all(batch.num_graphs <= 5 for batch in batches)

    def test_no_shuffle_keeps_order(self, tu_graphs):
        batches = iterate_minibatches(tu_graphs, batch_size=len(tu_graphs), shuffle=False)
        np.testing.assert_array_equal(batches[0].y,
                                      [int(graph.y) for graph in tu_graphs])
