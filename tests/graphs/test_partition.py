"""Property tests of the deterministic graph partitioner."""

import pickle
import subprocess
import sys

import numpy as np
import pytest

from repro.graphs.partition import (PARTITION_STRATEGIES, halo_seeds,
                                    partition_graph, shard_edge_loads,
                                    shard_members)

ALL_CONFIGS = [(n_shards, strategy)
               for n_shards in (2, 3, 4)
               for strategy in PARTITION_STRATEGIES]
CONFIG_IDS = [f"s{n}-{strategy}" for n, strategy in ALL_CONFIGS]


@pytest.mark.parametrize("n_shards,strategy", ALL_CONFIGS, ids=CONFIG_IDS)
class TestPartitionInvariants:
    def test_disjoint_and_covering(self, sbm_graph, n_shards, strategy):
        assignment = partition_graph(sbm_graph, n_shards, strategy=strategy)
        assert assignment.shape == (sbm_graph.num_nodes,)
        assert assignment.dtype == np.int64
        assert assignment.min() >= 0 and assignment.max() < n_shards
        members = shard_members(assignment, n_shards)
        # disjoint and covering: every node in exactly one shard
        flat = np.concatenate(members)
        assert flat.shape == (sbm_graph.num_nodes,)
        assert np.array_equal(np.sort(flat),
                              np.arange(sbm_graph.num_nodes))
        # no shard is empty on a graph much larger than the shard count
        assert all(shard.size > 0 for shard in members)

    def test_pure_function_of_inputs(self, sbm_graph, n_shards, strategy):
        first = partition_graph(sbm_graph, n_shards, strategy=strategy, seed=5)
        again = partition_graph(sbm_graph, n_shards, strategy=strategy, seed=5)
        np.testing.assert_array_equal(first, again)
        # a different seed is allowed to (and here does) move something
        other = partition_graph(sbm_graph, n_shards, strategy=strategy, seed=6)
        assert not np.array_equal(first, other)

    def test_identical_assignment_across_processes(self, sbm_graph, n_shards,
                                                   strategy, tmp_path):
        """Same ``(graph, n_shards, strategy, seed)`` -> the same assignment
        in a fresh interpreter — nothing leaks in from process state."""
        graph_path = tmp_path / "graph.pkl"
        graph_path.write_bytes(pickle.dumps(sbm_graph))
        script = (
            "import pickle, sys\n"
            "import numpy as np\n"
            "from repro.graphs.partition import partition_graph\n"
            f"graph = pickle.loads(open({str(graph_path)!r}, 'rb').read())\n"
            f"assignment = partition_graph(graph, {n_shards}, "
            f"strategy={strategy!r}, seed=9)\n"
            "sys.stdout.buffer.write(pickle.dumps(assignment))\n")
        result = subprocess.run([sys.executable, "-c", script],
                                capture_output=True, check=True)
        remote = pickle.loads(result.stdout)
        local = partition_graph(sbm_graph, n_shards, strategy=strategy, seed=9)
        np.testing.assert_array_equal(remote, local)

    def test_halo_seeds_cross_boundaries(self, sbm_graph, n_shards, strategy):
        assignment = partition_graph(sbm_graph, n_shards, strategy=strategy)
        crossing = halo_seeds(sbm_graph, assignment)
        assert crossing.size > 0  # a connected-ish graph always has halos
        adjacency = sbm_graph.adjacency(add_self_loops=False).csr
        for node in crossing[:10]:
            row = adjacency.indices[adjacency.indptr[node]:
                                    adjacency.indptr[node + 1]]
            assert (assignment[row] != assignment[node]).any()


class TestDegreeBalance:
    def test_edge_loads_balanced(self, sbm_graph):
        """The degree strategy bounds the max/min shard edge-load ratio —
        the property that makes it worth its extra pass over the hash."""
        for n_shards in (2, 4):
            assignment = partition_graph(sbm_graph, n_shards,
                                         strategy="degree")
            loads = shard_edge_loads(sbm_graph, assignment, n_shards)
            assert loads.min() > 0
            # LPT scheduling on (row weight + 1) keeps shards tight; 1.5 is
            # loose for this graph (observed < 1.1) but pins the guarantee.
            assert loads.max() / loads.min() < 1.5

    def test_degree_beats_hash_on_balance(self, sbm_graph):
        hash_loads = shard_edge_loads(
            sbm_graph, partition_graph(sbm_graph, 4, strategy="hash"), 4)
        degree_loads = shard_edge_loads(
            sbm_graph, partition_graph(sbm_graph, 4, strategy="degree"), 4)
        assert degree_loads.max() / degree_loads.min() \
            <= hash_loads.max() / hash_loads.min()


class TestValidation:
    def test_single_shard_is_trivial(self, sbm_graph):
        for strategy in PARTITION_STRATEGIES:
            assignment = partition_graph(sbm_graph, 1, strategy=strategy)
            assert (assignment == 0).all()

    def test_rejects_bad_inputs(self, sbm_graph):
        with pytest.raises(ValueError):
            partition_graph(sbm_graph, 0)
        with pytest.raises(ValueError):
            partition_graph(sbm_graph, 2, strategy="roulette")
