"""Tests for the random-walk positional encoding and the CSL encoding options."""

import numpy as np
import pytest

from repro.graphs.datasets.csl import circulant_skip_link_graph, load_csl
from repro.graphs.graph import Graph
from repro.graphs.transforms import random_walk_positional_encoding


def cycle_graph(num_nodes):
    nodes = np.arange(num_nodes)
    edges = np.vstack([np.concatenate([nodes, (nodes + 1) % num_nodes]),
                       np.concatenate([(nodes + 1) % num_nodes, nodes])])
    return Graph(np.ones((num_nodes, 1), dtype=np.float32), edges)


class TestRandomWalkEncoding:
    def test_requires_positive_steps(self):
        with pytest.raises(ValueError):
            random_walk_positional_encoding(cycle_graph(6), steps=0)

    def test_shape_and_range(self):
        encoded = random_walk_positional_encoding(cycle_graph(8), steps=5,
                                                  concatenate=False)
        assert encoded.x.shape == (8, 5)
        assert (encoded.x >= 0).all() and (encoded.x <= 1).all()

    def test_concatenation(self):
        encoded = random_walk_positional_encoding(cycle_graph(8), steps=4,
                                                  concatenate=True)
        assert encoded.x.shape == (8, 1 + 4)

    def test_cycle_return_probabilities(self):
        """On a cycle, odd-length walks never return; 2-step returns are 1/2."""
        encoded = random_walk_positional_encoding(cycle_graph(10), steps=4,
                                                  concatenate=False)
        np.testing.assert_allclose(encoded.x[:, 0], 0.0, atol=1e-7)   # 1 step
        np.testing.assert_allclose(encoded.x[:, 1], 0.5, atol=1e-7)   # 2 steps
        np.testing.assert_allclose(encoded.x[:, 2], 0.0, atol=1e-7)   # 3 steps

    def test_vertex_transitive_graphs_have_identical_rows(self):
        graph = circulant_skip_link_graph(num_nodes=13, skip=3, label=0)
        encoded = random_walk_positional_encoding(graph, steps=6, concatenate=False)
        np.testing.assert_allclose(encoded.x, np.broadcast_to(encoded.x[0],
                                                              encoded.x.shape), atol=1e-6)

    def test_distinguishes_csl_skip_lengths(self):
        """Different skip lengths yield different return-probability signatures."""
        first = random_walk_positional_encoding(
            circulant_skip_link_graph(41, 2, 0), steps=12, concatenate=False).x[0]
        second = random_walk_positional_encoding(
            circulant_skip_link_graph(41, 9, 1), steps=12, concatenate=False).x[0]
        assert np.abs(first - second).max() > 1e-3


class TestCSLEncodingOptions:
    def test_default_is_random_walk(self):
        graphs = load_csl(num_nodes=21, skip_lengths=(2, 3), copies_per_class=1,
                          positional_encoding_dim=6, seed=0)
        assert all(g.num_features == 6 for g in graphs)
        # random-walk features are probabilities
        assert all((g.x >= 0).all() and (g.x <= 1).all() for g in graphs)

    def test_laplacian_option(self):
        graphs = load_csl(num_nodes=21, skip_lengths=(2, 3), copies_per_class=1,
                          positional_encoding_dim=6, positional_encoding="laplacian",
                          seed=0)
        assert all(g.num_features == 6 for g in graphs)
        assert any((g.x < 0).any() for g in graphs)  # eigenvectors take both signs

    def test_unknown_encoding_rejected(self):
        with pytest.raises(ValueError):
            load_csl(positional_encoding="sinusoidal")
