"""Fixtures for the cache parity harness: one small trained artifact."""

from __future__ import annotations

import numpy as np
import pytest

from repro.quant.qmodules import (
    QuantNodeClassifier,
    gcn_component_names,
    uniform_assignment,
)
from repro.serving import QuantizedArtifact
from repro.training.trainer import train_node_classifier


@pytest.fixture(scope="session")
def cache_artifact(small_cora) -> QuantizedArtifact:
    """A trained INT8 GCN deployment artifact bound to ``small_cora``."""
    model = QuantNodeClassifier.from_assignment(
        [(small_cora.num_features, 16), (16, small_cora.num_classes)], "gcn",
        uniform_assignment(gcn_component_names(2), 8), dropout=0.0,
        rng=np.random.default_rng(0))
    train_node_classifier(model, small_cora, epochs=6, lr=0.02)
    model.eval()
    return QuantizedArtifact.from_model(model)
