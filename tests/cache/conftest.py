"""Fixtures for the cache parity harness: one small trained artifact."""

from __future__ import annotations

import numpy as np
import pytest

from repro.quant.qmodules import (
    QuantNodeClassifier,
    gcn_component_names,
    uniform_assignment,
)
from repro.serving import QuantizedArtifact
from repro.training.trainer import train_node_classifier


def _train_artifact(graph, conv_type, component_names) -> QuantizedArtifact:
    model = QuantNodeClassifier.from_assignment(
        [(graph.num_features, 16), (16, graph.num_classes)], conv_type,
        uniform_assignment(component_names, 8), dropout=0.0,
        rng=np.random.default_rng(0))
    train_node_classifier(model, graph, epochs=6, lr=0.02)
    model.eval()
    return QuantizedArtifact.from_model(model)


@pytest.fixture(scope="session")
def cache_artifact(small_cora) -> QuantizedArtifact:
    """A trained INT8 GCN deployment artifact bound to ``small_cora``."""
    return _train_artifact(small_cora, "gcn", gcn_component_names(2))

# The attention (score-plan) cache-parity coverage moved to the unified
# parity matrix: tests/parity_matrix.py, integer × cached rows.
