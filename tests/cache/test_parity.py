"""Cached vs uncached parity: bit-identical blocks, logits and loss curves.

The cache contract (see ``repro/cache/block_cache.py``) is that attaching a
:class:`~repro.cache.BlockCache` can only change *when* a row is computed,
never *what* it contains.  These property-style tests pin that down across
fanouts (including unlimited), across repeat/overlapping serving requests,
across training epochs, and under eviction pressure (a thrashing two-entry
cache must still be exact).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache import BlockCache
from repro.gnn.models import build_node_model
from repro.graphs.sampling import NeighborSampler
from repro.serving import BlockSession
from repro.training.minibatch import MinibatchTrainer

FANOUTS = [None, 2, 5]


def _assert_batches_identical(batch_a, batch_b):
    np.testing.assert_array_equal(batch_a.seed_nodes, batch_b.seed_nodes)
    np.testing.assert_array_equal(batch_a.x, batch_b.x)
    assert batch_a.num_layers == batch_b.num_layers
    for block_a, block_b in zip(batch_a.blocks, batch_b.blocks):
        for name in ("dst_nodes", "src_nodes", "edge_rows", "edge_cols",
                     "edge_weight", "dst_inv_sqrt", "src_inv_sqrt",
                     "row_scale"):
            np.testing.assert_array_equal(getattr(block_a, name),
                                          getattr(block_b, name),
                                          err_msg=f"block field {name}")


# --------------------------------------------------------------------------- #
# sampler-level parity (the root guarantee everything else rides on)
# --------------------------------------------------------------------------- #
class TestSamplerParity:
    @pytest.mark.parametrize("fanout", FANOUTS)
    def test_cached_blocks_bit_identical(self, sbm_graph, fanout):
        seeds = np.arange(0, sbm_graph.num_nodes, 3, dtype=np.int64)
        plain = NeighborSampler(sbm_graph, [fanout, fanout], batch_size=16,
                                shuffle=False, seed=9)
        cached = NeighborSampler(sbm_graph, [fanout, fanout], batch_size=16,
                                 shuffle=False, seed=9,
                                 cache=BlockCache(max_entries=4096))
        for batch_a, batch_b in zip(plain.iter_batches(seeds),
                                    cached.iter_batches(seeds)):
            _assert_batches_identical(batch_a, batch_b)

    @pytest.mark.parametrize("fanout", [2, 5])
    def test_parity_survives_eviction_thrash(self, sbm_graph, fanout):
        """A cache too small to hold one hop must still be exact."""
        seeds = np.arange(0, sbm_graph.num_nodes, 2, dtype=np.int64)
        plain = NeighborSampler(sbm_graph, [fanout], batch_size=8,
                                shuffle=False, seed=1)
        cached = NeighborSampler(sbm_graph, [fanout], batch_size=8,
                                 shuffle=False, seed=1,
                                 cache=BlockCache(max_entries=2))
        for batch_a, batch_b in zip(plain.iter_batches(seeds),
                                    cached.iter_batches(seeds)):
            _assert_batches_identical(batch_a, batch_b)
        assert cached.cache.stats().evictions > 0

    def test_warm_cache_serves_identical_blocks(self, sbm_graph):
        seeds = np.arange(24, dtype=np.int64)
        sampler = NeighborSampler(sbm_graph, [3, 3], batch_size=8,
                                  shuffle=False, seed=2,
                                  cache=BlockCache(max_entries=4096))
        cold = list(sampler.iter_batches(seeds))
        warm = list(sampler.iter_batches(seeds))
        for batch_a, batch_b in zip(cold, warm):
            _assert_batches_identical(batch_a, batch_b)
        # The repeat pass was served from the batch cache outright.
        assert all(a is b for a, b in zip(cold, warm))

    def test_epoch_advance_resamples_and_invalidates(self, sbm_graph):
        cache = BlockCache(max_entries=4096)
        sampler = NeighborSampler(sbm_graph, [2, 2], batch_size=16,
                                  shuffle=False, seed=3, cache=cache)
        epoch_one = [batch.blocks[-1] for batch in sampler]
        entries_after_one = len(cache)
        epoch_two = [batch.blocks[-1] for batch in sampler]
        # Different rng-epoch -> different samples (same seeds, no shuffle).
        edges = [set(zip(block.dst_nodes[block.edge_rows].tolist(),
                         block.src_nodes[block.edge_cols].tolist()))
                 for block in epoch_one]
        edges_two = [set(zip(block.dst_nodes[block.edge_rows].tolist(),
                             block.src_nodes[block.edge_cols].tolist()))
                     for block in epoch_two]
        assert edges != edges_two
        # Epoch advance explicitly evicted the stale sampled rows...
        assert cache.stats().evictions > 0
        # ...while raw rows persisted (the store did not start from zero).
        assert entries_after_one > 0 and len(cache) > 0

    def test_sampling_is_a_pure_function_of_request(self, sbm_graph):
        """Same sampler, same seeds -> same blocks, no matter what ran
        in between (the property that makes caching safe at all)."""
        sampler = NeighborSampler(sbm_graph, [3, 3], batch_size=8,
                                  shuffle=False, seed=4)
        seeds = np.asarray([5, 17, 40, 41], dtype=np.int64)
        before = sampler.sample(seeds)
        list(sampler.iter_batches(np.arange(60, dtype=np.int64)))  # interleave
        after = sampler.sample(seeds)
        _assert_batches_identical(before, after)


# --------------------------------------------------------------------------- #
# serving-side parity
# --------------------------------------------------------------------------- #
class TestServingParity:
    @pytest.mark.parametrize("fanout", FANOUTS)
    def test_cached_session_logits_bit_identical(self, cache_artifact,
                                                 small_cora, fanout):
        seeds = np.arange(0, small_cora.num_nodes, 2, dtype=np.int64)
        plain = BlockSession(cache_artifact, small_cora, fanouts=fanout,
                             batch_size=32, seed=7)
        cached = BlockSession(cache_artifact, small_cora, fanouts=fanout,
                              batch_size=32, seed=7, cache_size=65536)
        np.testing.assert_array_equal(cached.predict(seeds),
                                      plain.predict(seeds))

    def test_repeat_and_overlapping_requests(self, cache_artifact, small_cora):
        session = BlockSession(cache_artifact, small_cora, fanouts=4,
                               batch_size=16, seed=0, cache_size=65536)
        reference = BlockSession(cache_artifact, small_cora, fanouts=4,
                                 batch_size=16, seed=0)
        requests = [np.arange(20, dtype=np.int64),
                    np.arange(10, 30, dtype=np.int64),    # overlaps the first
                    np.arange(20, dtype=np.int64)]        # exact repeat
        for nodes in requests:
            np.testing.assert_array_equal(session.predict(nodes),
                                          reference.predict(nodes))
        stats = session.cache_stats()
        assert stats is not None and stats.hits > 0
        assert reference.cache_stats() is None

    def test_warm_cache_hits_dominate_on_repeat(self, cache_artifact,
                                                small_cora):
        session = BlockSession(cache_artifact, small_cora, fanouts=4,
                               batch_size=32, seed=0, cache_size=65536)
        nodes = np.arange(40, dtype=np.int64)
        first = session.predict(nodes)
        cold = session.cache_stats()
        second = session.predict(nodes)
        warm = session.cache_stats()
        np.testing.assert_array_equal(first, second)
        # The repeat request was answered from the batch cache: exactly the
        # per-micro-batch lookups were added, all of them hits.
        assert warm.misses == cold.misses
        assert warm.hits > cold.hits


# --------------------------------------------------------------------------- #
# attention (score-plan) serving parity: migrated to the unified parity
# matrix (tests/parity_matrix.py, integer × cached / served rows — every
# conv family × head count, not just GAT).
# --------------------------------------------------------------------------- #


# --------------------------------------------------------------------------- #
# training-side parity
# --------------------------------------------------------------------------- #
class TestTrainingParity:
    @pytest.mark.parametrize("fanout", [None, 3])
    def test_loss_history_bit_identical(self, sbm_graph, fanout):
        histories = []
        caches = []
        for cache_size in (0, 65536):
            model = build_node_model("gcn", sbm_graph.num_features, 16,
                                     sbm_graph.num_classes,
                                     rng=np.random.default_rng(11), dropout=0.0)
            trainer = MinibatchTrainer(model, fanouts=fanout, batch_size=32,
                                       shuffle=True, seed=13,
                                       cache_size=cache_size)
            result = trainer.fit(sbm_graph, epochs=4)
            histories.append(result.loss_history)
            caches.append(trainer.cache)
        assert histories[0] == histories[1]     # bit-identical, not approx
        assert caches[0] is None
        assert caches[1] is not None and caches[1].stats().hits > 0

    def test_trainer_cache_reset_when_graph_changes(self, sbm_graph,
                                                    small_cora):
        """Rows cached for one graph must never leak into another graph's
        sampler (cache keys carry node ids only)."""
        model = build_node_model("gcn", sbm_graph.num_features, 16,
                                 sbm_graph.num_classes,
                                 rng=np.random.default_rng(0), dropout=0.0)
        trainer = MinibatchTrainer(model, fanouts=3, batch_size=32,
                                   shuffle=False, seed=1, cache_size=65536)
        trainer.make_sampler(sbm_graph).sample(np.arange(16, dtype=np.int64))
        assert len(trainer.cache) > 0
        trainer.make_sampler(small_cora)      # switching graphs resets
        assert len(trainer.cache) == 0
        # Same graph again: the cache is kept warm.
        sampler = trainer.make_sampler(small_cora)
        sampler.sample(np.arange(8, dtype=np.int64))
        entries = len(trainer.cache)
        trainer.make_sampler(small_cora)
        assert len(trainer.cache) == entries

    def test_trainer_cache_invalidation_across_epochs(self, sbm_graph):
        model = build_node_model("gcn", sbm_graph.num_features, 16,
                                 sbm_graph.num_classes,
                                 rng=np.random.default_rng(0), dropout=0.0)
        trainer = MinibatchTrainer(model, fanouts=2, batch_size=32,
                                   shuffle=False, seed=5, cache_size=65536)
        trainer.fit(sbm_graph, epochs=3)
        stats = trainer.cache.stats()
        # Sampled rows were evicted on every rng-epoch advance, yet the
        # deterministic raw rows kept producing hits in later epochs.
        assert stats.evictions > 0
        assert stats.hits > 0
