"""LRU store semantics: eviction order, capacity bounds, stats accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache import BlockCache, LRUCache


class TestLRUCache:
    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            LRUCache(0)
        with pytest.raises(ValueError):
            LRUCache(4, max_bytes=0)

    def test_get_put_roundtrip(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("missing", "default") == "default"
        assert "a" in cache and "missing" not in cache
        assert len(cache) == 1

    def test_eviction_order_is_least_recently_used(self):
        cache = LRUCache(3)
        for key in "abc":
            cache.put(key, key)
        cache.get("a")           # refresh a: eviction order is now b, c, a
        cache.put("d", "d")      # evicts b
        assert "b" not in cache
        assert cache.keys() == ["c", "a", "d"]
        cache.put("e", "e")      # evicts c
        assert cache.keys() == ["a", "d", "e"]
        assert cache.stats().evictions == 2

    def test_put_refreshes_recency_and_replaces(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)       # replace refreshes a to most recent
        cache.put("c", 3)        # evicts b, not a
        assert cache.get("a") == 10
        assert "b" not in cache

    def test_capacity_never_exceeded(self):
        cache = LRUCache(5)
        for index in range(50):
            cache.put(index, index)
            assert len(cache) <= 5
        stats = cache.stats()
        assert stats.entries == 5
        assert stats.evictions == 45

    def test_byte_budget_enforced(self):
        cache = LRUCache(100, max_bytes=100)
        for index in range(10):
            cache.put(index, index, nbytes=30)
        assert cache.nbytes <= 100
        assert len(cache) == 3

    def test_oversized_entry_rejected_not_thrashing(self):
        cache = LRUCache(100, max_bytes=100)
        for index in range(3):
            cache.put(index, index, nbytes=30)
        # An entry that could never fit is refused outright instead of
        # wiping the warm entries and sitting over budget.
        cache.put("giant", "g", nbytes=1000)
        assert "giant" not in cache
        assert len(cache) == 3 and cache.nbytes == 90
        # Replacing an existing key with an oversized value keeps the old
        # entry (the store is never mutated by a refused put).
        cache.put(0, "huge", nbytes=1000)
        assert cache.peek(0) == 0 and len(cache) == 3
        assert cache.stats().evictions == 0

    def test_replacing_updates_byte_accounting(self):
        cache = LRUCache(10, max_bytes=1000)
        cache.put("a", 1, nbytes=400)
        cache.put("a", 2, nbytes=100)
        assert cache.nbytes == 100

    def test_hit_miss_counters(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        cache.get("a")
        cache.get("b")
        cache.get_many(["a", "b", "a"])
        stats = cache.stats()
        assert stats.hits == 3
        assert stats.misses == 2
        assert stats.lookups == 5
        assert stats.hit_rate() == pytest.approx(3 / 5)

    def test_quiet_and_peek_do_not_count(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        assert cache.get_quiet("a") == 1
        assert cache.get_quiet("b", "d") == "d"
        assert cache.peek("a") == 1
        stats = cache.stats()
        assert stats.hits == 0 and stats.misses == 0

    def test_quiet_still_refreshes_recency(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get_quiet("a")
        cache.put("c", 3)        # evicts b (a was refreshed)
        assert "a" in cache and "b" not in cache

    def test_clear_and_pop(self):
        cache = LRUCache(4)
        cache.put("a", 1, nbytes=10)
        cache.put("b", 2, nbytes=10)
        assert cache.pop("a") == 1
        assert cache.stats().evictions == 1   # pop removed a stored entry
        assert cache.pop("a", "gone") == "gone"
        assert cache.stats().evictions == 1   # absent key: nothing removed
        cache.clear()
        assert len(cache) == 0 and cache.nbytes == 0
        # Every removal counts: one pop + one entry dropped by clear.
        assert cache.stats().evictions == 2

    def test_stats_snapshot_and_repr(self):
        cache = LRUCache(4)
        stats = cache.stats()
        assert stats.hit_rate() == 0.0        # no lookups yet
        cache.put("a", 1, nbytes=8)
        cache.get("a")
        text = repr(cache.stats())
        assert "hits=1" in text and "bytes=8" in text

    def test_evict_where(self):
        cache = LRUCache(10)
        for index in range(6):
            cache.put(("epoch", index % 2, index), index)
        removed = cache.evict_where(lambda key: key[1] == 0)
        assert removed == 3
        assert all(key[1] == 1 for key in cache.keys())


class TestBlockCacheStore:
    def _rows(self, sizes):
        return [(np.arange(size, dtype=np.int64),
                 np.ones(size, dtype=np.float32)) for size in sizes]

    def test_raw_rows_roundtrip_and_kinds(self):
        cache = BlockCache(max_entries=16)
        nodes = np.asarray([3, 7])
        cache.put_raw_rows(nodes, self._rows([2, 9]))
        # fanout=None: both rows come back final
        entries = cache.get_rows(nodes, None, hop=0, epoch=0)
        assert [entry[0] for entry in entries] == ["final", "final"]
        # fanout=4: the 9-edge row needs the cap applied
        entries = cache.get_rows(nodes, 4, hop=0, epoch=0)
        assert [entry[0] for entry in entries] == ["final", "raw"]
        # a miss shows up as None
        entries = cache.get_rows(np.asarray([3, 99]), None, hop=0, epoch=0)
        assert entries[0] is not None and entries[1] is None

    def test_capped_rows_preferred_over_raw(self):
        cache = BlockCache(max_entries=16)
        nodes = np.asarray([5])
        cache.put_raw_rows(nodes, self._rows([9]))
        capped = [(np.asarray([1, 2], dtype=np.int64),
                   np.asarray([1.0, 1.0], dtype=np.float32))]
        cache.put_capped_rows(nodes, 2, hop=1, epoch=3, rows=capped)
        entry = cache.get_rows(nodes, 2, hop=1, epoch=3)[0]
        assert entry[0] == "final" and entry[1].shape[0] == 2
        # a different hop/epoch falls back to the raw row
        assert cache.get_rows(nodes, 2, hop=0, epoch=3)[0][0] == "raw"
        assert cache.get_rows(nodes, 2, hop=1, epoch=4)[0][0] == "raw"

    def test_invalidate_epochs_keeps_raw_rows(self):
        cache = BlockCache(max_entries=64)
        nodes = np.asarray([1, 2])
        cache.put_raw_rows(nodes, self._rows([3, 3]))
        cache.put_capped_rows(nodes, 2, hop=0, epoch=1, rows=self._rows([2, 2]))
        cache.put_capped_rows(nodes, 2, hop=0, epoch=2, rows=self._rows([2, 2]))
        before = len(cache)
        dropped = cache.invalidate_epochs(2)
        assert dropped == 2                    # the epoch-1 sampled rows
        assert len(cache) == before - 2
        # raw rows and current-epoch sampled rows both survive
        assert cache.get_rows(nodes, None, 0, 0)[0] is not None
        assert cache.get_rows(nodes, 2, hop=0, epoch=2)[0][0] == "final"

    def test_logical_hit_miss_counting(self):
        cache = BlockCache(max_entries=16)
        nodes = np.asarray([1, 2])
        cache.get_rows(nodes, 4, hop=0, epoch=0)       # 2 logical misses
        cache.put_raw_rows(nodes, self._rows([2, 2]))
        cache.get_rows(nodes, 4, hop=0, epoch=0)       # 2 logical hits
        stats = cache.stats()
        # The raw-row fall-through probe must not double-count.
        assert stats.hits == 2 and stats.misses == 2
        assert stats.hit_rate() == pytest.approx(0.5)

    def test_size_bound_evicts(self):
        cache = BlockCache(max_entries=4)
        nodes = np.arange(10)
        cache.put_raw_rows(nodes, self._rows([2] * 10))
        assert len(cache) == 4
        assert cache.stats().evictions == 6
        assert cache.hit_rate() == 0.0
        assert "BlockCache" in repr(cache)
        cache.clear()
        assert len(cache) == 0

    def test_batch_probe_and_count_atomic(self):
        """get_batch counts its probe under the same locks as get_rows, so
        counters are exact however the lookups interleave across threads."""
        import threading

        from types import SimpleNamespace

        cache = BlockCache(max_entries=256)
        seeds_hit = np.asarray([1, 2], dtype=np.int64)
        seeds_miss = np.asarray([8, 9], dtype=np.int64)
        payload = SimpleNamespace(x=np.zeros(4), y=None, blocks=[])
        cache.put_batch(seeds_hit, (4,), epoch=0, batch=payload)
        cache.put_raw_rows(np.asarray([1]), self._rows([2]))
        rounds = 200
        threads_per_kind = 3

        def batch_worker():
            for _ in range(rounds):
                assert cache.get_batch(seeds_hit, (4,), epoch=0) is payload
                assert cache.get_batch(seeds_miss, (4,), epoch=0) is None

        def rows_worker():
            for _ in range(rounds):
                entries = cache.get_rows(np.asarray([1, 99]), None,
                                         hop=0, epoch=0)
                assert entries[0] is not None and entries[1] is None

        threads = [threading.Thread(target=target)
                   for target in (batch_worker, rows_worker)
                   for _ in range(threads_per_kind)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stats = cache.stats()
        # every logical lookup is counted exactly once, no probe lost
        expected = threads_per_kind * rounds * 2
        assert stats.hits == expected
        assert stats.misses == expected
        assert stats.lookups == 2 * expected
