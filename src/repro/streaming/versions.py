"""Region-scoped version counters: the streaming invalidation contract.

The rng-epoch contract from the block cache ("a key carries the epoch it
was sampled under; advancing the epoch makes old keys unreachable")
generalises here from one global counter to **two per-node counters**:

* ``row version`` — bumped only for nodes whose adjacency *row content*
  changed (the sources of added/removed edges).  Cached raw and
  fanout-capped rows are keyed by it: a row entry stays valid across
  updates that never touched that row.
* ``region version`` — bumped for every node within ``num_hops`` of an
  update (over *reverse* adjacency, i.e. every seed whose receptive field
  can reach a touched node).  Whole-batch cache entries are keyed by the
  region-version vector of their seed list, because a batch embeds
  feature rows and degree terms of its entire receptive field.

Versioned keys make stale entries unreachable by construction — eviction
(:meth:`~repro.cache.BlockCache.invalidate_nodes`) is a memory/accounting
optimisation on top, never a correctness requirement.  That is what keeps
the house bit-identity invariant under streaming: a cache can still only
change *when* a row is computed, never *what* it contains.
"""

from __future__ import annotations

from typing import Any

import numpy as np


def affected_region(graph: Any, touched: np.ndarray,
                    num_hops: int) -> np.ndarray:
    """Nodes whose ``num_hops`` receptive field reaches a touched node.

    A seed ``s`` samples the adjacency row of every node at distance
    ``< num_hops`` from it (following out-edges), and reads features and
    degree terms of nodes at distance ``<= num_hops``.  The seeds whose
    served logits an update *can* influence are therefore the nodes that
    reach the touched set within ``num_hops`` forward steps — computed
    here as a BFS from the touched set over **reverse** adjacency, on the
    post-update graph.

    Post-update reverse reachability is sound for the pre-update cache
    too: a path crossing an added/removed edge ``(u, v)`` has a strictly
    shorter prefix ending at ``u``, and ``u`` is in the touched set.

    Returns the sorted union of the touched set and its reverse
    ``num_hops`` neighbourhood.
    """
    touched = np.unique(np.asarray(touched, dtype=np.int64).reshape(-1))
    if touched.size == 0:
        return touched
    if touched.min() < 0 or touched.max() >= graph.num_nodes:
        raise ValueError(f"touched node ids must lie in "
                         f"[0, {graph.num_nodes}), got range "
                         f"[{touched.min()}, {touched.max()}]")
    affected = np.zeros(graph.num_nodes, dtype=bool)
    affected[touched] = True
    if num_hops <= 0:
        return touched
    # Row i of the transpose holds i's *in*-neighbours: the nodes one
    # forward step away from reaching i.
    reverse = graph.adjacency(add_self_loops=False).csr.T.tocsr()
    frontier = touched
    for _ in range(int(num_hops)):
        if frontier.size == 0:
            break
        neighbours = np.unique(reverse[frontier].indices)
        fresh = neighbours[~affected[neighbours]]
        affected[fresh] = True
        frontier = fresh
    return np.flatnonzero(affected)


class RegionVersions:
    """Per-node row/region version counters for one streamed graph.

    Owned by the serving session (one tracker per
    :class:`~repro.serving.session.BlockSession`); the sampler reads it to
    stamp cache keys, :meth:`bump` is called once per applied delta.  Not
    locked: updates are applied at flush boundaries (the serving stack's
    consistency point), never concurrently with sampling.
    """

    def __init__(self, num_nodes: int) -> None:
        self.num_nodes = int(num_nodes)
        self._row = np.zeros(self.num_nodes, dtype=np.int64)
        self._region = np.zeros(self.num_nodes, dtype=np.int64)

    # ------------------------------------------------------------------ #
    def row_versions(self, nodes: np.ndarray) -> np.ndarray:
        """Row version of each node (stamps raw/capped row cache keys)."""
        return self._row[np.asarray(nodes, dtype=np.int64)]

    def region_tag(self, seeds: np.ndarray) -> bytes:
        """Region-version vector of a seed list, as a hashable key part.

        The full vector — not its max — because two different version
        vectors can share a maximum while disagreeing on which seed's
        region moved.
        """
        return self._region[np.asarray(seeds, dtype=np.int64)].tobytes()

    def bump(self, changed_rows: np.ndarray,
             region_nodes: np.ndarray) -> None:
        """Advance versions after one applied delta."""
        self._row[np.asarray(changed_rows, dtype=np.int64)] += 1
        self._region[np.asarray(region_nodes, dtype=np.int64)] += 1

    def __repr__(self) -> str:
        return (f"RegionVersions(nodes={self.num_nodes}, "
                f"bumped_rows={int((self._row > 0).sum())}, "
                f"bumped_regions={int((self._region > 0).sum())})")
