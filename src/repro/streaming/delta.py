"""Atomic graph updates: the :class:`GraphDelta` batch format.

A delta bundles edge insertions, edge removals and feature overwrites into
one atomic unit: :meth:`~repro.graphs.graph.Graph.apply_delta` validates
the whole delta against the target graph before mutating anything, applies
every part, and bumps the graph's monotone version counter exactly once.
Streaming consumers (sessions, engines, the temporal load generator) only
ever exchange deltas — never raw array edits — so a serving stack can
define its consistency point as "between two deltas".

Semantics pinned here because every streaming test leans on them:

* ``added_edges`` are appended to the graph's edge list in the given
  order, with ``added_weights`` (default 1.0) as their weights.
* ``removed_edges`` name *directed* edges; removal drops **every**
  occurrence of each listed ``(source, target)`` pair.  Removing an edge
  the graph does not have is an error (the delta is rejected atomically).
* ``feature_nodes`` / ``features`` overwrite whole feature rows.  The
  node set must be duplicate-free — two new rows for one node in a single
  atomic delta would have no defined winner.
* A delta never adds or removes nodes: the feature matrix's shape is part
  of the session/artifact contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


def _as_edge_array(edges: Optional[np.ndarray], what: str) -> Optional[np.ndarray]:
    if edges is None:
        return None
    edges = np.asarray(edges, dtype=np.int64)
    if edges.ndim != 2 or edges.shape[0] != 2:
        raise ValueError(f"{what} must have shape (2, num_edges), "
                         f"got {edges.shape}")
    return None if edges.shape[1] == 0 else edges


@dataclass(frozen=True)
class GraphDelta:
    """One atomic batch of graph mutations (see the module docstring).

    Any field may be omitted; an empty delta is valid (it still bumps the
    version when applied, which gives tests a cheap "no-op update").
    """

    #: ``(2, E)`` directed edges to append, or ``None``.
    added_edges: Optional[np.ndarray] = None
    #: Per-added-edge weights; defaults to 1.0 for every added edge.
    added_weights: Optional[np.ndarray] = None
    #: ``(2, E)`` directed edges to remove (every occurrence), or ``None``.
    removed_edges: Optional[np.ndarray] = None
    #: Node ids whose feature rows ``features`` overwrites, or ``None``.
    feature_nodes: Optional[np.ndarray] = None
    #: ``(len(feature_nodes), num_features)`` replacement rows.
    features: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "added_edges",
                           _as_edge_array(self.added_edges, "added_edges"))
        object.__setattr__(self, "removed_edges",
                           _as_edge_array(self.removed_edges, "removed_edges"))
        if self.added_weights is not None:
            weights = np.asarray(self.added_weights, dtype=np.float32).reshape(-1)
            count = 0 if self.added_edges is None else self.added_edges.shape[1]
            if weights.shape[0] != count:
                raise ValueError(f"added_weights must have one entry per added "
                                 f"edge ({count}), got {weights.shape[0]}")
            object.__setattr__(self, "added_weights",
                               weights if count else None)
        if (self.feature_nodes is None) != (self.features is None):
            raise ValueError("feature_nodes and features must be given together")
        if self.feature_nodes is not None:
            nodes = np.asarray(self.feature_nodes, dtype=np.int64).reshape(-1)
            rows = np.asarray(self.features, dtype=np.float32)
            if rows.ndim != 2 or rows.shape[0] != nodes.shape[0]:
                raise ValueError(f"features must have shape "
                                 f"(len(feature_nodes), num_features), "
                                 f"got {rows.shape} for {nodes.shape[0]} nodes")
            if np.unique(nodes).shape[0] != nodes.shape[0]:
                raise ValueError("feature_nodes must be duplicate-free "
                                 "(one atomic delta has no defined winner)")
            if nodes.shape[0] == 0:
                nodes, rows = None, None  # type: ignore[assignment]
            object.__setattr__(self, "feature_nodes", nodes)
            object.__setattr__(self, "features", rows)

    # ------------------------------------------------------------------ #
    @property
    def is_empty(self) -> bool:
        return (self.added_edges is None and self.removed_edges is None
                and self.feature_nodes is None)

    def changed_rows(self) -> np.ndarray:
        """Nodes whose *adjacency row* content changes: sources of every
        added or removed edge (sorted, unique)."""
        sources = [edges[0] for edges in (self.added_edges, self.removed_edges)
                   if edges is not None]
        if not sources:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate(sources))

    def touched_nodes(self) -> np.ndarray:
        """Every node the delta mentions: both endpoints of added/removed
        edges plus feature-updated nodes (sorted, unique).

        Both endpoints are included deliberately: a target endpoint's own
        row is unchanged, but its degree-derived quantities (the GCN
        ``1/sqrt(degree)`` of the *source* side only — see
        ``affected_region``) make the conservative set the safe seed for
        the receptive-field sweep.
        """
        parts = [edges.reshape(-1) for edges
                 in (self.added_edges, self.removed_edges) if edges is not None]
        if self.feature_nodes is not None:
            parts.append(self.feature_nodes)
        if not parts:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate(parts))

    def __repr__(self) -> str:
        added = 0 if self.added_edges is None else self.added_edges.shape[1]
        removed = 0 if self.removed_edges is None else self.removed_edges.shape[1]
        feats = 0 if self.feature_nodes is None else self.feature_nodes.shape[0]
        return (f"GraphDelta(added={added}, removed={removed}, "
                f"feature_rows={feats})")
