"""Streaming / dynamic-graph serving support.

Three pieces, consumed by the graph core, the block cache and the serving
engines:

* :class:`GraphDelta` — atomic batches of edge insertions/removals and
  feature overwrites, applied via
  :meth:`~repro.graphs.graph.Graph.apply_delta` under a monotone graph
  version counter.
* :class:`RegionVersions` / :func:`affected_region` — per-node row and
  region version counters scoped to the receptive fields an update
  touches, stamped into every :class:`~repro.cache.BlockCache` key so
  stale entries are unreachable by construction.
* The serving wiring lives with the consumers:
  ``BlockSession.apply_update`` / ``ServingEngine.submit_update`` /
  ``AsyncServingEngine.submit_update`` apply deltas at flush boundaries
  (one flush serves entirely at one version), and
  :mod:`repro.loadgen.temporal` replays interleaved update/query traces.

The defining invariant (asserted in ``tests/parity_matrix.py``): after any
update sequence, served logits are bitwise identical to a fresh session
built on the equivalent static graph — cached == uncached — at every
intermediate version.
"""

from repro.streaming.delta import GraphDelta
from repro.streaming.versions import RegionVersions, affected_region

__all__ = [
    "GraphDelta",
    "RegionVersions",
    "affected_region",
]
