"""Shared block cache for neighbor-sampled receptive fields.

Both halves of the system resample identical neighbourhoods over and over:
the serving-side :class:`~repro.serving.session.BlockSession` rebuilds the
receptive field of every ``repro predict`` request, and the training-side
:class:`~repro.training.minibatch.MinibatchTrainer` resamples the same
low-degree neighbourhoods every epoch.  :class:`BlockCache` is the one
store both consumers share, holding three kinds of entries in a single
size-bounded LRU:

* **raw rows** — a node's full adjacency row (the
  :meth:`~repro.tensor.sparse.SparseTensor.index_select` slice), valid for
  every fanout, hop and rng-epoch because nothing random touched it;
* **sampled rows** — a node's fanout-capped row, keyed by
  ``(node, fanout, hop, rng-epoch)``; reusable only while the sampler stays
  in the same rng-epoch and explicitly invalidated when it advances;
* **batches** — whole :class:`~repro.graphs.sampling.BlockBatch` objects
  keyed by the exact seed list, so a byte-identical repeat request is
  served without rebuilding (or re-quantizing) anything.

The contract that makes caching safe is established in
:mod:`repro.graphs.sampling`: a node's sampled neighbourhood is a pure
function of ``(sampler seed, rng-epoch, hop, node)``, never of batch
composition or iteration order.  A cache therefore can only change *when*
a row is computed, not *what* it contains — cached and uncached paths are
bit-identical, which the parity harness in ``tests/cache`` asserts.

A cache binds to one sampler configuration (one graph, one sampler seed):
entries are keyed by node ids and sampler-local quantities only.  The
consumers (:class:`MinibatchTrainer`, :class:`BlockSession`) each build a
private cache, which keeps that invariant without bookkeeping.

Streaming graphs extend every key with a *graph-version* component (see
:mod:`repro.streaming.versions`): row-shaped entries carry the node's row
version, batch entries carry the region-version vector of their seed list.
An update bumps versions only inside the affected receptive field, so keys
from before the update become unreachable exactly where the graph changed
while untouched traffic keeps hitting its warm entries.
:meth:`BlockCache.invalidate_nodes` additionally evicts the newly
unreachable entries — a memory optimisation, never a correctness
requirement.
"""

from __future__ import annotations

import threading
from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from repro.cache.lru import CacheStats, LRUCache

#: Kind tags returned by :meth:`BlockCache.get_rows`.
ROW_FINAL = "final"
ROW_RAW = "raw"

#: Fixed per-entry bookkeeping overhead added to array payloads.
_ENTRY_OVERHEAD = 96


def _rows_nbytes(cols: np.ndarray, weights: np.ndarray) -> int:
    return int(cols.nbytes) + int(weights.nbytes) + _ENTRY_OVERHEAD


def _batch_nbytes(batch: Any) -> int:
    """Approximate footprint of a BlockBatch (duck-typed, no import cycle)."""
    total = _ENTRY_OVERHEAD + int(batch.x.nbytes)
    if batch.y is not None:
        total += int(batch.y.nbytes)
    for block in batch.blocks:
        for name in ("dst_nodes", "src_nodes", "edge_rows", "edge_cols",
                     "edge_weight", "dst_inv_sqrt", "src_inv_sqrt",
                     "row_scale"):
            total += int(getattr(block, name).nbytes)
    return total


class BlockCache:
    """Seeded, size-bounded LRU over per-seed sampled rows and block batches.

    Parameters
    ----------
    max_entries:
        Entry-count bound of the underlying LRU.
    max_bytes:
        Optional byte budget over the summed array payloads.
    """

    def __init__(self, max_entries: int = 65536,
                 max_bytes: Optional[int] = None) -> None:
        self._lru = LRUCache(max_entries, max_bytes=max_bytes)
        # One logical hit/miss per *row or batch lookup* (a probe that falls
        # through from the sampled-row key to the raw-row key still counts
        # once), so hit_rate() reads as "fraction of work served from cache".
        self._lock = threading.Lock()
        self._hits = 0  # guarded-by: self._lock
        self._misses = 0  # guarded-by: self._lock

    # ------------------------------------------------------------------ #
    # per-seed rows
    # ------------------------------------------------------------------ #
    def get_rows(self, nodes: np.ndarray, fanout: Optional[int], hop: int,
                 epoch: int, versions: Optional[np.ndarray] = None,
                 ) -> List[Optional[Tuple[str, np.ndarray, np.ndarray]]]:
        """Resolve each node's row for ``(fanout, hop, epoch)``.

        ``versions`` holds each node's row version (aligned with
        ``nodes``); omitted means version 0 everywhere, which static
        graphs never advance.  Returns one entry per node: ``None`` on a
        miss, ``(ROW_FINAL, cols, weights)`` when the cached row is
        directly usable, or ``(ROW_RAW, cols, weights)`` when a raw row
        was found but still needs the fanout cap applied (its length
        exceeds ``fanout``).
        """
        results: List[Optional[Tuple[str, np.ndarray, np.ndarray]]] = []
        hits = misses = 0
        # One hop probes every target: hold both locks across the loop so
        # the per-node get_quiet calls re-enter instead of re-contending.
        with self._lock, self._lru.lock:
            for index, node in enumerate(nodes):
                node = int(node)
                version = 0 if versions is None else int(versions[index])
                entry = None
                if fanout is not None:
                    entry = self._lru.get_quiet(
                        ("blk", node, fanout, hop, epoch, version), None)
                if entry is not None:
                    hits += 1
                    results.append((ROW_FINAL, entry[0], entry[1]))
                    continue
                entry = self._lru.get_quiet(("row", node, version), None)
                if entry is None:
                    misses += 1
                    results.append(None)
                    continue
                hits += 1
                cols, weights = entry
                if fanout is not None and cols.shape[0] > fanout:
                    results.append((ROW_RAW, cols, weights))
                else:
                    results.append((ROW_FINAL, cols, weights))
            self._hits += hits
            self._misses += misses
        return results

    def put_raw_rows(self, nodes: Sequence[int],
                     rows: Sequence[Tuple[np.ndarray, np.ndarray]],
                     versions: Optional[Sequence[int]] = None) -> None:
        """Store full adjacency rows (epoch/fanout/hop independent)."""
        if versions is None:
            versions = [0] * len(nodes)
        self._lru.put_many([
            (("row", int(node), int(version)), (cols, weights),
             _rows_nbytes(cols, weights))
            for node, version, (cols, weights) in zip(nodes, versions, rows)])

    def put_capped_rows(self, nodes: Sequence[int], fanout: int, hop: int,
                        epoch: int,
                        rows: Sequence[Tuple[np.ndarray, np.ndarray]],
                        versions: Optional[Sequence[int]] = None) -> None:
        """Store fanout-capped rows under their ``(node, fanout, hop, epoch,
        version)`` key; dropped wholesale when the rng-epoch advances."""
        if versions is None:
            versions = [0] * len(nodes)
        self._lru.put_many([
            (("blk", int(node), fanout, hop, epoch, int(version)),
             (cols, weights), _rows_nbytes(cols, weights))
            for node, version, (cols, weights) in zip(nodes, versions, rows)])

    # ------------------------------------------------------------------ #
    # whole batches
    # ------------------------------------------------------------------ #
    @staticmethod
    def _batch_key(seeds: np.ndarray, fanouts: Sequence[Optional[int]],
                   epoch: int, region_tag: bytes = b"") -> Tuple:
        return ("bat", seeds.tobytes(), tuple(fanouts), epoch, region_tag)

    def get_batch(self, seeds: np.ndarray, fanouts: Sequence[Optional[int]],
                  epoch: int, region_tag: bytes = b"") -> Optional[Any]:
        """A previously built batch for the exact same seed list, or None.

        ``region_tag`` is the seeds' region-version vector (see
        :meth:`~repro.streaming.RegionVersions.region_tag`); the default
        empty tag is what static graphs use.  The probe and its counter
        update happen under both locks (same order as :meth:`get_rows`),
        so concurrent readers never observe a probe whose hit/miss has
        not been counted yet.
        """
        with self._lock, self._lru.lock:
            batch = self._lru.get_quiet(
                self._batch_key(seeds, fanouts, epoch, region_tag), None)
            if batch is None:
                self._misses += 1
            else:
                self._hits += 1
        return batch

    def put_batch(self, seeds: np.ndarray, fanouts: Sequence[Optional[int]],
                  epoch: int, batch: Any, region_tag: bytes = b"") -> None:
        self._lru.put(self._batch_key(seeds, fanouts, epoch, region_tag),
                      batch, _batch_nbytes(batch))

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def invalidate_epochs(self, current_epoch: int) -> int:
        """Explicitly evict sampled rows and batches of *other* rng-epochs.

        Raw rows survive: they carry no randomness.  Returns the number of
        entries dropped.  Called by the sampler whenever it advances its
        rng-epoch (one advance per training epoch).
        """
        def stale(key: Tuple) -> bool:
            if key[0] == "blk":
                return bool(key[4] != current_epoch)
            if key[0] == "bat":
                return bool(key[3] != current_epoch)
            return False

        return self._lru.evict_where(stale)

    def invalidate_nodes(self, nodes: np.ndarray) -> int:
        """Evict entries made unreachable by a streaming update.

        Drops raw and fanout-capped rows of the given nodes (any version —
        the current version's entries were stored under the pre-bump
        version, so they are stale too) and every batch whose seed list
        intersects the node set.  Purely a memory/accounting measure: the
        versioned keys already guarantee stale entries are never *served*.
        Leaves the logical hit/miss counters untouched, so a measured
        window that contains updates still reports a monotone hit-rate.
        """
        node_set = {int(node) for node in np.asarray(nodes).reshape(-1)}
        if not node_set:
            return 0

        def stale(key: Tuple) -> bool:
            if key[0] in ("row", "blk"):
                return key[1] in node_set
            if key[0] == "bat":
                seeds = np.frombuffer(key[1], dtype=np.int64)
                return any(int(seed) in node_set for seed in seeds)
            return False

        return self._lru.evict_where(stale)

    def clear(self) -> None:
        self._lru.clear()

    def __len__(self) -> int:
        return len(self._lru)

    def stats(self) -> CacheStats:
        """Logical hit/miss counters plus the store's size/eviction counters."""
        store = self._lru.stats()
        with self._lock:
            return CacheStats(hits=self._hits, misses=self._misses,
                              evictions=store.evictions, entries=store.entries,
                              bytes=store.bytes)

    def hit_rate(self) -> float:
        return self.stats().hit_rate()

    def __repr__(self) -> str:
        return f"BlockCache({self.stats()!r})"
