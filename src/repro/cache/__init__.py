"""Shared block-cache subsystem.

One size-bounded, thread-safe LRU (:class:`LRUCache`) underneath a
:class:`BlockCache` that both the training-side
:class:`~repro.training.minibatch.MinibatchTrainer` and the serving-side
:class:`~repro.serving.session.BlockSession` consult before resampling a
node's neighbourhood.  See :mod:`repro.cache.block_cache` for the cache
key contract (per-seed rows keyed by ``(node, fanout, hop, rng-epoch)``)
and the bit-identity guarantee the parity tests enforce.
"""

from repro.cache.block_cache import ROW_FINAL, ROW_RAW, BlockCache
from repro.cache.lru import CacheStats, LRUCache

__all__ = [
    "BlockCache",
    "CacheStats",
    "LRUCache",
    "ROW_FINAL",
    "ROW_RAW",
]
