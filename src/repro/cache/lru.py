"""A thread-safe, size-bounded LRU cache with hit/miss/eviction accounting.

The cache subsystem sits on the hot path of both halves of the system (the
neighbor sampler during training, the block session during serving), so the
store itself is deliberately boring: an :class:`collections.OrderedDict`
under one lock, bounded by an entry count and optionally by a byte budget.
Batch operations (:meth:`get_many` / :meth:`put_many`) amortise the lock
over a whole minibatch of per-seed lookups.

Every mutation keeps the running counters consistent, and :meth:`stats`
returns an immutable snapshot, so concurrent readers never observe a
half-updated view — the property the serving concurrency tests pin down.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Hashable, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class CacheStats:
    """Immutable snapshot of a cache's lifetime counters."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    entries: int = 0
    bytes: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0 before any lookup)."""
        total = self.lookups
        return self.hits / total if total else 0.0

    def __repr__(self) -> str:
        return (f"CacheStats(hits={self.hits}, misses={self.misses}, "
                f"evictions={self.evictions}, entries={self.entries}, "
                f"bytes={self.bytes}, hit_rate={self.hit_rate():.3f})")


class LRUCache:
    """Least-recently-used mapping bounded by entries and (optionally) bytes.

    Parameters
    ----------
    max_entries:
        Hard cap on the number of stored entries (must be positive).
    max_bytes:
        Optional cap on the summed per-entry sizes.  Sizes are whatever the
        caller reports at :meth:`put` time (typically ``ndarray.nbytes``);
        the cache never inspects values.
    """

    def __init__(self, max_entries: int,
                 max_bytes: Optional[int] = None) -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError("max_bytes must be positive when given")
        self.max_entries = int(max_entries)
        self.max_bytes = None if max_bytes is None else int(max_bytes)
        self._lock = threading.RLock()
        self._store: "OrderedDict[Hashable, Tuple[Any, int]]"
        self._store = OrderedDict()  # guarded-by: self._lock
        self._bytes = 0  # guarded-by: self._lock
        self._hits = 0  # guarded-by: self._lock
        self._misses = 0  # guarded-by: self._lock
        self._evictions = 0  # guarded-by: self._lock

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        with self._lock:
            return len(self._store)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._store

    @property
    def lock(self) -> threading.RLock:
        """The store's re-entrant lock.  Hold it around a run of calls
        (e.g. many :meth:`get_quiet` probes) to amortise acquisition —
        nested calls re-enter without contention."""
        return self._lock

    @property
    def nbytes(self) -> int:
        with self._lock:
            return self._bytes

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(hits=self._hits, misses=self._misses,
                              evictions=self._evictions,
                              entries=len(self._store), bytes=self._bytes)

    # ------------------------------------------------------------------ #
    def get(self, key: Hashable, default: Any = None) -> Any:
        """Look up ``key``, marking it most recently used on a hit."""
        with self._lock:
            return self._get_locked(key, default)

    def get_many(self, keys: Sequence[Hashable],
                 default: Any = None) -> List[Any]:
        """One locked pass over ``keys``; missing keys yield ``default``."""
        with self._lock:
            return [self._get_locked(key, default) for key in keys]

    def get_quiet(self, key: Hashable, default: Any = None) -> Any:
        """Like :meth:`get` (recency updated) but without touching the
        hit/miss counters — for callers doing their own logical counting."""
        with self._lock:
            entry = self._store.get(key)
            if entry is None:
                return default
            self._store.move_to_end(key)
            return entry[0]

    def peek(self, key: Hashable, default: Any = None) -> Any:
        """Look up ``key`` without touching recency or hit/miss counters."""
        with self._lock:
            entry = self._store.get(key)
            return default if entry is None else entry[0]

    def put(self, key: Hashable, value: Any, nbytes: int = 0) -> None:
        """Insert/replace ``key`` as most recently used, then enforce bounds."""
        with self._lock:
            self._put_locked(key, value, nbytes)

    def put_many(self, items: Sequence[Tuple[Hashable, Any, int]]) -> None:
        """Insert many ``(key, value, nbytes)`` triples under one lock."""
        with self._lock:
            for key, value, nbytes in items:
                self._put_locked(key, value, nbytes)

    def pop(self, key: Hashable, default: Any = None) -> Any:
        """Remove and return ``key``'s value (``default`` when absent).

        Counts as an eviction: the contract is that *every* removal from
        the store — capacity pressure, :meth:`clear`, :meth:`evict_where`
        or an explicit pop — increments ``evictions``, so ``entries`` can
        always be reconciled against insertions minus evictions.
        """
        with self._lock:
            entry = self._store.pop(key, None)
            if entry is None:
                return default
            self._bytes -= entry[1]
            self._evictions += 1
            return entry[0]

    def clear(self) -> None:
        """Drop every entry (counted as evictions); counters keep running."""
        with self._lock:
            self._evictions += len(self._store)
            self._store.clear()
            self._bytes = 0

    def evict_where(self, predicate: Callable[[Hashable], bool]) -> int:
        """Evict every entry whose *key* satisfies ``predicate``; returns the
        number removed.  Used for explicit epoch invalidation."""
        with self._lock:
            doomed = [key for key in self._store if predicate(key)]
            for key in doomed:
                _, nbytes = self._store.pop(key)
                self._bytes -= nbytes
            self._evictions += len(doomed)
            return len(doomed)

    def keys(self) -> List[Hashable]:
        """Keys from least to most recently used (a snapshot copy)."""
        with self._lock:
            return list(self._store.keys())

    # ------------------------------------------------------------------ #
    def _get_locked(self, key: Hashable, default: Any) -> Any:  # requires-lock: self._lock
        entry = self._store.get(key)
        if entry is None:
            self._misses += 1
            return default
        self._hits += 1
        self._store.move_to_end(key)
        return entry[0]

    def _put_locked(self, key: Hashable, value: Any, nbytes: int) -> None:  # requires-lock: self._lock
        nbytes = int(nbytes)
        if self.max_bytes is not None and nbytes > self.max_bytes:
            # Refuse entries that could never fit: admitting one would only
            # wipe the rest of the cache and still leave us over budget.
            # The store is left untouched (an existing value survives).
            return
        previous = self._store.pop(key, None)
        if previous is not None:
            self._bytes -= previous[1]
        self._store[key] = (value, nbytes)
        self._bytes += nbytes
        while len(self._store) > self.max_entries or (
                self.max_bytes is not None and self._bytes > self.max_bytes):
            _, (_, dropped) = self._store.popitem(last=False)
            self._bytes -= dropped
            self._evictions += 1
