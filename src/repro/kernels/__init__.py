"""Pluggable kernel backends for the integer serving hot path.

The Theorem-1 aggregation kernels (:meth:`~repro.kernels.numpy_backend.
NumpyBackend.spmm` / :meth:`~repro.kernels.numpy_backend.NumpyBackend.
edge_spmm`), the attention score stages and the dense layer transforms
are dispatched through a small registry instead of being hard-wired to
one numpy implementation:

* :func:`register_backend` / :func:`get_backend` /
  :func:`available_backends` manage named backend factories;
* the ``numpy`` reference backend is always available and **bit-defines
  the contract** — every other backend must reproduce its integer path
  bit-for-bit (the parity matrix asserts this for every registered name);
* ``vectorized`` ships by default (memoised-CSR edge aggregation,
  batched per-head scores, memoised weight dequantization); ``numba``
  registers itself only when numba is importable.

Selection happens at session build time: ``FullGraphSession`` /
``BlockSession`` accept ``backend=`` (a name or a backend instance), the
CLI exposes ``--backend`` on ``repro predict`` / ``repro loadtest``, and
the ``REPRO_KERNEL_BACKEND`` environment variable supplies the default
when nothing explicit is given (:func:`resolve_backend`).

Backend instances are process-wide singletons (one per registered name):
they may carry memoisation but no per-request state, and every method
must be thread-safe — sessions share them across the serving engine's
worker pool.
"""

from __future__ import annotations

import os
import threading
from typing import Callable, Dict, Tuple, Union

from repro.kernels.numpy_backend import (
    NumpyBackend,
    dequantize_from,
    quantize_onto,
)
from repro.kernels.vectorized import VectorizedBackend

#: Environment variable naming the default backend for new sessions.
BACKEND_ENV_VAR = "REPRO_KERNEL_BACKEND"

#: Registry name of the reference backend (always available).
DEFAULT_BACKEND = "numpy"

#: What session/CLI plumbing accepts: a registry name, a ready backend
#: instance, or None (= the ``REPRO_KERNEL_BACKEND`` / ``numpy`` default).
BackendLike = Union[str, NumpyBackend, None]

_registry_lock = threading.Lock()
_factories: Dict[str, Callable[[], NumpyBackend]] = {}  # guarded-by: _registry_lock
_instances: Dict[str, NumpyBackend] = {}  # guarded-by: _registry_lock


def register_backend(name: str, factory: Callable[[], NumpyBackend],
                     replace: bool = False) -> None:
    """Register a backend factory under ``name``.

    The factory is called lazily, once, on first :func:`get_backend`; the
    instance is then shared process-wide.  Re-registering an existing name
    raises unless ``replace=True`` (which also drops the old instance).
    """
    if not name:
        raise ValueError("backend name must be non-empty")
    with _registry_lock:
        if name in _factories and not replace:
            raise ValueError(f"kernel backend {name!r} is already registered "
                             f"(pass replace=True to override)")
        _factories[name] = factory
        _instances.pop(name, None)


def available_backends() -> Tuple[str, ...]:
    """Registered backend names, reference first, the rest sorted."""
    with _registry_lock:
        names = set(_factories)
    ordered = [DEFAULT_BACKEND] if DEFAULT_BACKEND in names else []
    return tuple(ordered + sorted(names - {DEFAULT_BACKEND}))


def get_backend(name: str) -> NumpyBackend:
    """The shared instance registered under ``name`` (built on first use)."""
    with _registry_lock:
        instance = _instances.get(name)
        if instance is None:
            factory = _factories.get(name)
            if factory is None:
                raise ValueError(
                    f"unknown kernel backend {name!r}; available: "
                    f"{', '.join(available_backends_locked())}")
            instance = factory()
            _instances[name] = instance
    return instance


def available_backends_locked() -> Tuple[str, ...]:  # requires-lock: _registry_lock
    names = set(_factories)
    ordered = [DEFAULT_BACKEND] if DEFAULT_BACKEND in names else []
    return tuple(ordered + sorted(names - {DEFAULT_BACKEND}))


def resolve_backend(backend: BackendLike = None) -> NumpyBackend:
    """Turn a session-level ``backend=`` value into a backend instance.

    ``None`` consults ``REPRO_KERNEL_BACKEND`` and falls back to the
    ``numpy`` reference; a string is a registry lookup; anything else is
    assumed to already be a backend instance and passed through.
    """
    if backend is None:
        backend = os.environ.get(BACKEND_ENV_VAR, "").strip() or DEFAULT_BACKEND
    if isinstance(backend, str):
        return get_backend(backend)
    return backend


register_backend(DEFAULT_BACKEND, NumpyBackend)
register_backend("vectorized", VectorizedBackend)

try:  # optional: registers only when numba is importable in this env
    from repro.kernels.numba_backend import NumbaBackend
except ImportError:  # pragma: no cover - exercised only without numba
    NumbaBackend = None  # type: ignore[assignment,misc]
else:
    register_backend("numba", NumbaBackend)

__all__ = [
    "BACKEND_ENV_VAR",
    "BackendLike",
    "DEFAULT_BACKEND",
    "NumbaBackend",
    "NumpyBackend",
    "VectorizedBackend",
    "available_backends",
    "dequantize_from",
    "get_backend",
    "quantize_onto",
    "register_backend",
    "resolve_backend",
]
