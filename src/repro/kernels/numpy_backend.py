"""The ``numpy`` reference backend: the kernel contract, bit-defined.

Every kernel backend implements the five hot-path operations of the
integer serving stack.  This module holds the reference implementation —
plain numpy, no caching, no reassociation — and its outputs *are* the
contract: an alternative backend is correct iff it reproduces this
backend bit-for-bit on the integer path (and to float round-off nowhere,
because the float stages below are written so that any compliant backend
can match them exactly too; the parity matrix asserts full bit-identity
of served logits across backends).

The bit-identity argument, operation by operation:

* :meth:`~NumpyBackend.spmm` / :meth:`~NumpyBackend.edge_spmm` — the
  heavy accumulation is **int64**, and integer addition is exact and
  order-invariant (overflow wraps identically in any order), so a backend
  may reassociate, segment, tile or jit the accumulation freely.  Only
  the closing rank-one corrections touch floating point, and those are
  elementwise expressions with one fixed evaluation order.
* :meth:`~NumpyBackend.edge_softmax` — float reductions are *not*
  reorder-safe, so the denominator scatter-add is part of the contract:
  it must accumulate in the canonical edge order
  (:func:`~repro.gnn.attention.attention_edges`).  The per-target *max*
  may be computed in any order (max is exact), which is what gives
  vectorized backends room to speed this stage up.
* :meth:`~NumpyBackend.gat_scores` — the per-head projection is defined
  as an elementwise multiply + ``sum(axis=-1)`` over each head's feature
  slice.  That pairwise-summed form produces the same reduction tree
  whether a backend loops over heads (this module) or batches all heads
  as ``(N, H, D)`` arrays (the vectorized backend), so both are
  bit-identical — which a BLAS ``matvec`` would not guarantee.
* :meth:`~NumpyBackend.linear_requant` / :meth:`~NumpyBackend.weight_matrix`
  — dense transform + optional bias + optional requantization onto a
  stored grid.  Backends may cache the dequantized weight (it is a pure
  function of the plan) but must not change the matmul operands.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

VectorOrScalar = Union[float, np.ndarray]


def as_column(vector: VectorOrScalar, length: int) -> np.ndarray:
    """Broadcast a scalar or length-``length`` vector to a column."""
    array = np.asarray(vector, dtype=np.float64).reshape(-1)
    if array.size == 1:
        array = np.full(length, float(array[0]))
    if array.size != length:
        raise ValueError(f"expected scalar or length-{length} vector, got {array.size}")
    return array.reshape(length, 1)


def as_row(vector: VectorOrScalar, length: int) -> np.ndarray:
    """Broadcast a scalar or length-``length`` vector to a row."""
    return as_column(vector, length).reshape(1, length)


def quantize_onto(params, values: np.ndarray) -> np.ndarray:
    """Snap float values onto a stored integer grid (round-half-even)."""
    scale, zero_point = params.as_scalars()
    return np.clip(np.rint(values / scale) + zero_point, params.qmin, params.qmax)


def dequantize_from(params, integers: np.ndarray) -> np.ndarray:
    """Map grid integers back to their float representatives."""
    scale, zero_point = params.as_scalars()
    return (integers - zero_point) * scale


class NumpyBackend:
    """Reference kernel backend (always registered as ``"numpy"``).

    Stateless and allocation-per-call by design: nothing here may be
    faster than obvious, because this is the implementation every other
    backend is certified against.  Alternative backends subclass this and
    override individual kernels.
    """

    #: Registry name; subclasses override.
    name = "numpy"

    # ------------------------------------------------------------------ #
    # dense transforms
    # ------------------------------------------------------------------ #
    def weight_matrix(self, weight) -> np.ndarray:
        """The float weight matrix of a :class:`~repro.serving.artifact.
        WeightPlan` (``W_int * S_w``).  Pure per plan, so backends may
        memoise it; the reference recomputes to stay allocation-honest."""
        return weight.dequantized()

    def linear_requant(self, x: np.ndarray, weight, params,
                       add_bias: bool = True
                       ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """``x @ W (+ bias)`` then optional requantization onto ``params``.

        Returns ``(transformed, transformed_int)``; ``transformed_int`` is
        ``None`` when ``params`` is (the layer keeps the transform in full
        precision) and otherwise holds the grid integers the integer
        aggregation consumes.
        """
        transformed = x @ self.weight_matrix(weight)
        if add_bias and weight.bias is not None:
            transformed = transformed + weight.bias
        if params is None:
            return transformed, None
        transformed_int = quantize_onto(params, transformed)
        return dequantize_from(params, transformed_int), transformed_int

    # ------------------------------------------------------------------ #
    # integer aggregation (Theorem 1)
    # ------------------------------------------------------------------ #
    # reprolint: integer-stage
    def spmm(self, qa, sa: VectorOrScalar, qx: np.ndarray,
             sx: VectorOrScalar, zx: VectorOrScalar,
             sy: VectorOrScalar = 1.0, zy: VectorOrScalar = 0.0) -> np.ndarray:
        """Sparse fast path of Theorem 1 (symmetric adjacency, ``Z_a = 0``).

        The integer sparse-dense product runs on int64 arrays; only the
        rank-one corrections touch floating point, exactly as the theorem
        prescribes.
        """
        n_rows = qa.shape[0]
        n_cols = qx.shape[1]
        sa_col = as_column(sa, n_rows)
        sx_row = as_row(sx, n_cols)
        zx_row = as_row(zx, n_cols)
        sy_row = as_row(sy, n_cols)
        zy_row = as_row(zy, n_cols)

        integer_adjacency = qa.csr.astype(np.int64)
        integer_features = np.asarray(qx, dtype=np.int64)
        integer_product = np.asarray(integer_adjacency @ integer_features,
                                     dtype=np.float64)
        row_sum_qa = np.asarray(integer_adjacency.sum(axis=1),
                                dtype=np.float64).reshape(-1, 1)

        main = sa_col * integer_product * sx_row
        correction_x = sa_col * row_sum_qa * (zx_row * sx_row)
        output = (main - correction_x) / sy_row + zy_row
        return output

    # reprolint: integer-stage
    def edge_spmm(self, q_edge: np.ndarray, s_edge: float, qx: np.ndarray,
                  sx: VectorOrScalar, zx: VectorOrScalar, src: np.ndarray,
                  dst: np.ndarray, num_dst: int) -> np.ndarray:
        """Theorem 1 over an explicit edge list — the per-edge score plan.

        Multi-head form: ``q_edge`` shaped ``(E, H)`` with ``qx`` shaped
        ``(N, H, D)`` returns ``(num_dst, H, D)``; single-head ``(E,)`` /
        ``(N, D)`` is the squeezed ``H = 1`` special case.  The heavy
        accumulation is int64 (exact, order-invariant); only the rank-one
        zero-point correction is floating point.
        """
        q_edge_arr = np.asarray(q_edge, dtype=np.int64)
        qx_int = np.asarray(qx, dtype=np.int64)
        if q_edge_arr.ndim == 2:
            check_multi_head_shapes(q_edge_arr, qx_int)
            n_cols = qx_int.shape[2]
            sx_axes = as_row(sx, n_cols).reshape(1, 1, n_cols)
            zx_axes = as_row(zx, n_cols).reshape(1, 1, n_cols)
            integer_product = np.zeros((num_dst,) + qx_int.shape[1:],
                                       dtype=np.int64)
            np.add.at(integer_product, dst, q_edge_arr[:, :, None] * qx_int[src])
            row_sum_qe = np.zeros((num_dst, q_edge_arr.shape[1]), dtype=np.int64)
            np.add.at(row_sum_qe, dst, q_edge_arr)
            main = float(s_edge) * integer_product.astype(np.float64) * sx_axes
            correction_x = float(s_edge) * row_sum_qe.astype(np.float64)[:, :, None] \
                * (zx_axes * sx_axes)
            return main - correction_x

        q_edge_int = q_edge_arr.reshape(-1)
        n_cols = qx_int.shape[1]
        sx_row = as_row(sx, n_cols)
        zx_row = as_row(zx, n_cols)

        integer_product = np.zeros((num_dst, n_cols), dtype=np.int64)
        np.add.at(integer_product, dst, q_edge_int[:, None] * qx_int[src])
        row_sum_qe = np.zeros(num_dst, dtype=np.int64)
        np.add.at(row_sum_qe, dst, q_edge_int)

        main = float(s_edge) * integer_product.astype(np.float64) * sx_row
        correction_x = float(s_edge) * row_sum_qe.astype(np.float64).reshape(-1, 1) \
            * (zx_row * sx_row)
        return main - correction_x

    # ------------------------------------------------------------------ #
    # attention score stages (float, but order-pinned — see module doc)
    # ------------------------------------------------------------------ #
    def edge_softmax(self, scores: np.ndarray, dst: np.ndarray,
                     num_dst: int) -> np.ndarray:
        """Numerically-shifted softmax of per-edge scores within each target.

        ``scores`` may carry trailing axes — the multi-head form ``(E, H)``
        normalises every head independently in one pass.  The denominator
        accumulates in edge order (the reorder-sensitive float stage every
        backend must preserve); the per-target max is order-free.
        """
        per_target_max = np.full((num_dst,) + scores.shape[1:], -np.inf)
        np.maximum.at(per_target_max, dst, scores)
        exponent = np.exp(scores - per_target_max[dst])
        denominator = np.zeros((num_dst,) + scores.shape[1:])
        np.add.at(denominator, dst, exponent)
        return exponent / denominator[dst]

    def gat_scores(self, transformed: np.ndarray, attention_src: np.ndarray,
                   attention_dst: np.ndarray, src: np.ndarray,
                   dst: np.ndarray, heads: int, head_dim: int) -> np.ndarray:
        """Raw (pre-activation) GAT scores, one ``(E, heads)`` column per head.

        ``attention_src`` / ``attention_dst`` are the ``(head_dim, heads)``
        projection vectors.  The per-node projection is an elementwise
        multiply + ``sum`` over each head's contiguous feature slice —
        the exact reduction tree a batched ``(N, H, D)`` evaluation also
        produces, which is what makes batching it bit-safe.
        """
        scores = np.empty((src.shape[0], heads))
        for head in range(heads):
            block = transformed[:, head * head_dim:(head + 1) * head_dim]
            projected_src = (block * attention_src[:, head]).sum(axis=-1)
            projected_dst = (block * attention_dst[:, head]).sum(axis=-1)
            scores[:, head] = projected_src[src] + projected_dst[dst]
        return scores


def check_multi_head_shapes(q_edge: np.ndarray, qx: np.ndarray) -> None:
    """Shared validation of the multi-head ``edge_spmm`` operand shapes."""
    if qx.ndim != 3 or qx.shape[1] != q_edge.shape[1]:
        raise ValueError(f"multi-head edge coefficients {q_edge.shape} "
                         f"need features shaped (N, H, D), got {qx.shape}")
