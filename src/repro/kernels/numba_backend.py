"""Optional ``numba`` backend — registered only when numba imports.

Importing this module raises :class:`ImportError` when numba is absent;
the package ``__init__`` catches that and simply leaves the backend
unregistered, so environments without numba lose nothing but the name.

The jitted kernels replace only the **integer** edge accumulation: int64
addition is exact and order-invariant, so a sequential jitted loop is
bit-identical to both the reference scatter-add and the vectorized
segment reduce.  Every float stage (corrections, softmax, scores) is
inherited from :class:`~repro.kernels.vectorized.VectorizedBackend`
unchanged — float code paths are where bit-identity goes to die, so the
jit is kept away from them entirely.
"""

from __future__ import annotations

import numpy as np
from numba import njit  # noqa: F401 - the import *is* the availability gate

from repro.kernels.numpy_backend import VectorOrScalar, as_row, \
    check_multi_head_shapes
from repro.kernels.vectorized import VectorizedBackend


@njit(cache=True)
def _accumulate_multi_head(q_edge, qx, src, dst, integer_product, row_sum_qe):
    for edge in range(q_edge.shape[0]):
        target = dst[edge]
        source = src[edge]
        for head in range(q_edge.shape[1]):
            coefficient = q_edge[edge, head]
            row_sum_qe[target, head] += coefficient
            for feature in range(qx.shape[2]):
                integer_product[target, head, feature] += \
                    coefficient * qx[source, head, feature]


@njit(cache=True)
def _accumulate_single_head(q_edge, qx, src, dst, integer_product, row_sum_qe):
    for edge in range(q_edge.shape[0]):
        target = dst[edge]
        source = src[edge]
        coefficient = q_edge[edge]
        row_sum_qe[target] += coefficient
        for feature in range(qx.shape[1]):
            integer_product[target, feature] += coefficient * qx[source, feature]


class NumbaBackend(VectorizedBackend):
    """Jitted integer edge accumulation (registered as ``"numba"``)."""

    name = "numba"

    # reprolint: integer-stage
    def edge_spmm(self, q_edge: np.ndarray, s_edge: float, qx: np.ndarray,
                  sx: VectorOrScalar, zx: VectorOrScalar, src: np.ndarray,
                  dst: np.ndarray, num_dst: int) -> np.ndarray:
        q_edge_arr = np.ascontiguousarray(q_edge, dtype=np.int64)
        qx_int = np.ascontiguousarray(qx, dtype=np.int64)
        src_idx = np.ascontiguousarray(src, dtype=np.int64)
        dst_idx = np.ascontiguousarray(dst, dtype=np.int64)
        if q_edge_arr.ndim == 2:
            check_multi_head_shapes(q_edge_arr, qx_int)
            n_cols = qx_int.shape[2]
            sx_axes = as_row(sx, n_cols).reshape(1, 1, n_cols)
            zx_axes = as_row(zx, n_cols).reshape(1, 1, n_cols)
            integer_product = np.zeros((num_dst,) + qx_int.shape[1:],
                                       dtype=np.int64)
            row_sum_qe = np.zeros((num_dst, q_edge_arr.shape[1]),
                                  dtype=np.int64)
            _accumulate_multi_head(q_edge_arr, qx_int, src_idx, dst_idx,
                                   integer_product, row_sum_qe)
            main = float(s_edge) * integer_product.astype(np.float64) * sx_axes
            correction_x = float(s_edge) \
                * row_sum_qe.astype(np.float64)[:, :, None] \
                * (zx_axes * sx_axes)
            return main - correction_x

        q_edge_int = q_edge_arr.reshape(-1)
        n_cols = qx_int.shape[1]
        sx_row = as_row(sx, n_cols)
        zx_row = as_row(zx, n_cols)
        integer_product = np.zeros((num_dst, n_cols), dtype=np.int64)
        row_sum_qe = np.zeros(num_dst, dtype=np.int64)
        _accumulate_single_head(q_edge_int, qx_int, src_idx, dst_idx,
                                integer_product, row_sum_qe)
        main = float(s_edge) * integer_product.astype(np.float64) * sx_row
        correction_x = float(s_edge) \
            * row_sum_qe.astype(np.float64).reshape(-1, 1) \
            * (zx_row * sx_row)
        return main - correction_x
