"""The ``vectorized`` backend: same bits, fewer passes.

Three hot-path rewrites over the :class:`~repro.kernels.numpy_backend.
NumpyBackend` reference, each exact by construction:

* **CSR edge aggregation** — ``np.add.at`` is a scalar scatter-loop in
  numpy; this backend sorts the edge list by target once (memoised per
  edge-array identity) into a CSR structure and runs each head's
  accumulation as one int64 sparse-dense matmul.  Integer addition is
  exact and order-invariant, so however scipy's kernel associates the
  per-row sums the result is bit-identical to the reference scatter; the
  small per-target coefficient sums come from ``np.add.reduceat`` over
  the same sorted order.
* **Batched per-head score projection** — the reference loops over heads;
  here all heads evaluate in one ``(N, H, D)`` elementwise multiply +
  ``sum(axis=-1)``.  Both forms reduce each head's contiguous
  ``head_dim`` slice with the same pairwise tree, so the float scores
  match bit-for-bit (the contract pins the projection to multiply+sum
  precisely to make this legal — see the reference module docstring).
  The per-edge gather moves to ``np.take``, which reads the same rows
  much faster than fancy indexing.
* **Fused dequant-weight transform** — :meth:`~repro.kernels.
  numpy_backend.NumpyBackend.weight_matrix` recomputes ``W_int * S_w``
  per call; this backend memoises the dequantized matrix per plan
  identity, hoisting the dequantization out of the per-request path so a
  layer transform is one matmul (+ bias + requant), not a weight
  materialisation followed by one.

The softmax denominator keeps the reference's ordered ``np.add.at``
(float accumulation is reorder-sensitive); only the per-target max —
exact under any order — moves to ``np.maximum.reduceat``.
"""

from __future__ import annotations

import threading
from typing import Dict, Tuple

import numpy as np
import scipy.sparse as sp

from repro.kernels.numpy_backend import (
    NumpyBackend,
    VectorOrScalar,
    as_row,
    check_multi_head_shapes,
)

#: Entry bounds of the per-backend memo dicts (weights / edge sorters).
#: Generous for any realistic artifact (layers × plans) and request mix,
#: tiny in bytes next to the arrays they index.
_MEMO_ENTRIES = 64

#: (order, segment starts, segment target ids) of one sorted edge list.
_Segments = Tuple[np.ndarray, np.ndarray, np.ndarray]

#: (order, csr column indices, csr indptr, segment starts, target ids) of
#: one edge list sorted by target — everything of a CSR operator except
#: its per-call coefficient data.
_CsrStructure = Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray,
                      np.ndarray]


def _build_segments(dst: np.ndarray) -> _Segments:
    """Stable sort of the edge targets plus its segment boundaries."""
    order = np.argsort(dst, kind="stable")
    if order.shape[0] == 0:
        empty = np.zeros(0, dtype=np.int64)
        return order, empty, empty
    sorted_dst = np.asarray(dst)[order]
    boundaries = np.empty(sorted_dst.shape[0], dtype=bool)
    boundaries[0] = True
    np.not_equal(sorted_dst[1:], sorted_dst[:-1], out=boundaries[1:])
    starts = np.flatnonzero(boundaries)
    return order, starts, sorted_dst[starts]


def _build_csr_structure(src: np.ndarray, dst: np.ndarray,
                         num_dst: int) -> _CsrStructure:
    """The reusable half of a ``dst × src`` CSR operator.

    Row pointers come from the target counts, column indices are the
    sources in target-sorted order; only the coefficient data changes per
    call.  ``starts``/``targets`` index the non-empty rows for the
    reduceat coefficient sums.
    """
    order = np.argsort(dst, kind="stable")
    counts = np.bincount(np.asarray(dst, dtype=np.int64), minlength=num_dst)
    indptr = np.zeros(num_dst + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    indices = np.asarray(src, dtype=np.int64)[order]
    targets = np.flatnonzero(counts)
    return order, indices, indptr, indptr[targets], targets


class VectorizedBackend(NumpyBackend):
    """CSR-matmul + batched-head backend (registered as ``"vectorized"``).

    Carries three bounded, identity-keyed memo dicts (dequantized weights,
    edge-list sorters, CSR operator structures).  Entries store the keyed
    object(s) themselves, so a recycled ``id()`` can never alias a
    different array; all dicts are lock-guarded because sessions share one
    backend instance across the serving engine's worker pool.
    """

    name = "vectorized"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._weights: Dict[int, Tuple[object, np.ndarray]] = {}  # guarded-by: self._lock
        self._sorters: Dict[int, Tuple[np.ndarray, _Segments]] = {}  # guarded-by: self._lock
        self._structures: Dict[
            Tuple[int, int],
            Tuple[np.ndarray, np.ndarray, int, _CsrStructure],
        ] = {}  # guarded-by: self._lock

    # ------------------------------------------------------------------ #
    # memoised ingredients
    # ------------------------------------------------------------------ #
    def weight_matrix(self, weight) -> np.ndarray:
        with self._lock:
            entry = self._weights.get(id(weight))
        if entry is not None and entry[0] is weight:
            return entry[1]
        matrix = weight.dequantized()
        with self._lock:
            self._weights[id(weight)] = (weight, matrix)
            while len(self._weights) > _MEMO_ENTRIES:
                self._weights.pop(next(iter(self._weights)))
        return matrix

    def _segments(self, dst: np.ndarray) -> _Segments:
        """Per-``dst``-identity memo of :func:`_build_segments`.

        Full-graph sessions and cache-reused blocks present the same edge
        arrays run after run, so steady-state serving sorts each edge list
        once.  A rebuild race is benign (the result is deterministic).
        """
        with self._lock:
            entry = self._sorters.get(id(dst))
        if entry is not None and entry[0] is dst:
            return entry[1]
        segments = _build_segments(dst)
        with self._lock:
            self._sorters[id(dst)] = (dst, segments)
            while len(self._sorters) > _MEMO_ENTRIES:
                self._sorters.pop(next(iter(self._sorters)))
        return segments

    def _csr_structure(self, src: np.ndarray, dst: np.ndarray,
                       num_dst: int) -> _CsrStructure:
        """Per-edge-list-identity memo of :func:`_build_csr_structure`.

        Keyed by both endpoint arrays (and verified against ``num_dst``):
        the same pair reappears run after run in full-graph sessions and
        cache-reused blocks, so steady-state serving builds each operator
        structure once.  A rebuild race is benign (deterministic result).
        """
        key = (id(src), id(dst))
        with self._lock:
            entry = self._structures.get(key)
        if entry is not None and entry[0] is src and entry[1] is dst \
                and entry[2] == num_dst:
            return entry[3]
        structure = _build_csr_structure(src, dst, num_dst)
        with self._lock:
            self._structures[key] = (src, dst, num_dst, structure)
            while len(self._structures) > _MEMO_ENTRIES:
                self._structures.pop(next(iter(self._structures)))
        return structure

    # ------------------------------------------------------------------ #
    # integer aggregation
    # ------------------------------------------------------------------ #
    # reprolint: integer-stage
    def edge_spmm(self, q_edge: np.ndarray, s_edge: float, qx: np.ndarray,
                  sx: VectorOrScalar, zx: VectorOrScalar, src: np.ndarray,
                  dst: np.ndarray, num_dst: int) -> np.ndarray:
        q_edge_arr = np.asarray(q_edge, dtype=np.int64)
        qx_int = np.asarray(qx, dtype=np.int64)
        num_src = qx_int.shape[0]
        order, indices, indptr, starts, targets = \
            self._csr_structure(src, dst, num_dst)
        # Only the coefficients change per call; the duplicate column
        # entries of the non-canonical CSR sum correctly under matmul, and
        # int64 addition is exact, so the product is bit-identical to the
        # reference scatter-add.
        q_sorted = q_edge_arr[order]
        if q_edge_arr.ndim == 2:
            check_multi_head_shapes(q_edge_arr, qx_int)
            num_heads, n_cols = qx_int.shape[1], qx_int.shape[2]
            sx_axes = as_row(sx, n_cols).reshape(1, 1, n_cols)
            zx_axes = as_row(zx, n_cols).reshape(1, 1, n_cols)
            integer_product = np.empty((num_dst, num_heads, n_cols),
                                       dtype=np.int64)
            for head in range(num_heads):
                operator = sp.csr_matrix(
                    (q_sorted[:, head], indices, indptr),
                    shape=(num_dst, num_src))
                integer_product[:, head] = operator @ qx_int[:, head, :]
            row_sum_qe = np.zeros((num_dst, num_heads), dtype=np.int64)
            if starts.shape[0]:
                row_sum_qe[targets] = np.add.reduceat(q_sorted, starts,
                                                      axis=0)
            main = float(s_edge) * integer_product.astype(np.float64) * sx_axes
            correction_x = float(s_edge) \
                * row_sum_qe.astype(np.float64)[:, :, None] \
                * (zx_axes * sx_axes)
            return main - correction_x

        n_cols = qx_int.shape[1]
        sx_row = as_row(sx, n_cols)
        zx_row = as_row(zx, n_cols)
        operator = sp.csr_matrix((q_sorted.reshape(-1), indices, indptr),
                                 shape=(num_dst, num_src))
        integer_product = np.asarray(operator @ qx_int, dtype=np.int64)
        row_sum_qe = np.zeros(num_dst, dtype=np.int64)
        if starts.shape[0]:
            row_sum_qe[targets] = np.add.reduceat(q_sorted.reshape(-1),
                                                  starts)
        main = float(s_edge) * integer_product.astype(np.float64) * sx_row
        correction_x = float(s_edge) \
            * row_sum_qe.astype(np.float64).reshape(-1, 1) \
            * (zx_row * sx_row)
        return main - correction_x

    # ------------------------------------------------------------------ #
    # attention score stages
    # ------------------------------------------------------------------ #
    def edge_softmax(self, scores: np.ndarray, dst: np.ndarray,
                     num_dst: int) -> np.ndarray:
        order, starts, targets = self._segments(dst)
        per_target_max = np.full((num_dst,) + scores.shape[1:], -np.inf)
        if order.shape[0]:
            per_target_max[targets] = np.maximum.reduceat(
                scores[order], starts, axis=0)
        exponent = np.exp(scores - per_target_max[dst])
        # The denominator stays an ordered scatter-add: float accumulation
        # order is part of the contract (see the reference module).
        denominator = np.zeros((num_dst,) + scores.shape[1:])
        np.add.at(denominator, dst, exponent)
        return exponent / denominator[dst]

    def gat_scores(self, transformed: np.ndarray, attention_src: np.ndarray,
                   attention_dst: np.ndarray, src: np.ndarray,
                   dst: np.ndarray, heads: int, head_dim: int) -> np.ndarray:
        per_head = transformed.reshape(-1, heads, head_dim)
        projected_src = (per_head * attention_src.T[None, :, :]).sum(axis=-1)
        projected_dst = (per_head * attention_dst.T[None, :, :]).sum(axis=-1)
        # np.take is markedly faster than fancy indexing for the edge
        # gather and reads the same rows; the in-place add pairs the same
        # operands as ``a[src] + b[dst]``, so the bits cannot differ.
        scores = np.take(projected_src, src, axis=0)
        scores += np.take(projected_dst, dst, axis=0)
        return scores
