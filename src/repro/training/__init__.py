"""Training loops, metrics and cross-validation used by the experiments."""

from repro.training.evaluation import accuracy, masked_accuracy, roc_auc_score
from repro.training.trainer import (
    NodeTrainingResult,
    GraphTrainingResult,
    train_node_classifier,
    train_graph_classifier,
    evaluate_node_classifier,
    evaluate_graph_classifier,
)
from repro.training.minibatch import MinibatchTrainer, layerwise_inference
from repro.training.cross_validation import cross_validate_graph_classifier

__all__ = [
    "MinibatchTrainer",
    "layerwise_inference",
    "accuracy",
    "masked_accuracy",
    "roc_auc_score",
    "NodeTrainingResult",
    "GraphTrainingResult",
    "train_node_classifier",
    "train_graph_classifier",
    "evaluate_node_classifier",
    "evaluate_graph_classifier",
    "cross_validate_graph_classifier",
]
