"""Neighbor-sampling minibatch training for node classification.

:class:`MinibatchTrainer` mirrors the full-batch
:func:`~repro.training.trainer.train_node_classifier` API — same optimizer,
early stopping and :class:`~repro.training.trainer.NodeTrainingResult` — but
draws gradient steps from fanout-capped :class:`BlockBatch` es produced by a
:class:`~repro.graphs.sampling.NeighborSampler`.  Per-step cost is bounded
by ``batch_size`` and the fanouts, never by the node count, which is what
lets the QAT and MixQ pipelines train on graphs the full-batch path cannot
hold in memory.

Evaluation never samples: :func:`layerwise_inference` runs the model one
layer at a time over the *full* graph (materialising a single layer's
activations at a time), so reported accuracies are exact, not Monte-Carlo
estimates.  With unlimited fanout and a single batch covering all training
nodes, ``MinibatchTrainer.fit`` reproduces the full-batch loss trajectory to
float tolerance — the property the tier-1 tests pin down.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Union

import numpy as np

from repro.cache import BlockCache
from repro.graphs.graph import Graph
from repro.graphs.sampling import BlockBatch, Fanout, NeighborSampler
from repro.nn.module import Module
from repro.optim import Adam
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor, no_grad
from repro.training.evaluation import masked_accuracy, roc_auc_score
from repro.training.trainer import NodeTrainingResult


def layerwise_inference(model: Module, graph: Graph) -> np.ndarray:
    """Exact full-graph logits computed one layer at a time.

    Applies each convolution of a conv-stack classifier to the whole graph
    before moving to the next layer, so only one layer's activations are
    alive at any point and no neighbourhood explosion occurs.  Falls back to
    a plain full forward for models without a ``convs`` stack.
    """
    model.eval()
    convs = getattr(model, "convs", None)
    with no_grad():
        if convs is None:
            return model(graph).data
        x = Tensor(graph.x)
        num_layers = len(convs)
        for index, conv in enumerate(convs):
            x = conv(x, graph)
            if index < num_layers - 1:
                x = model.activation(x)
        return x.data


class MinibatchTrainer:
    """Train a node classifier with neighbor-sampled minibatches.

    Parameters
    ----------
    model:
        A conv-stack classifier (float, quantized or relaxed) whose forward
        accepts a :class:`BlockBatch`.
    fanouts:
        Per-layer neighbour caps (innermost first); an ``int`` broadcasts
        over the model's layers, ``None`` keeps every neighbour.
    batch_size:
        Seed nodes per gradient step.
    lr / weight_decay:
        Adam hyper-parameters (defaults match the full-batch trainer).
    multilabel:
        Evaluate with ROC-AUC and a sigmoid loss (OGB-Proteins stand-in).
    shuffle / seed:
        Sampler behaviour; a fixed seed makes the whole run deterministic.
    cache_size / cache_bytes:
        When ``cache_size`` is positive, attach a
        :class:`~repro.cache.BlockCache` of that many entries (optionally
        byte-bounded) to the sampler.  Steady-state epochs then reuse the
        adjacency row slices of every node and the sampled rows of nodes
        whose neighbourhood is deterministic (degree <= fanout); sampled
        rows are explicitly invalidated whenever the sampler's rng-epoch
        advances.  Sampling is counter-based, so training with a cache is
        **bit-identical** to training without one.
    """

    def __init__(self, model: Module,
                 fanouts: Union[Fanout, Sequence[Fanout]] = 10,
                 batch_size: int = 512, lr: float = 0.01,
                 weight_decay: float = 5e-4, multilabel: bool = False,
                 shuffle: bool = True, seed: int = 0, cache_size: int = 0,
                 cache_bytes: Optional[int] = None):
        self.model = model
        self.fanouts = fanouts
        self.batch_size = int(batch_size)
        self.lr = lr
        self.weight_decay = weight_decay
        self.multilabel = multilabel
        self.shuffle = shuffle
        self.seed = seed
        self.cache = BlockCache(max_entries=cache_size, max_bytes=cache_bytes) \
            if cache_size > 0 else None
        # Cache entries are keyed by node id only, so they bind to one
        # graph; remember which and reset when the trainer switches graphs.
        self._cache_graph: Optional[Graph] = None

    # ------------------------------------------------------------------ #
    def _num_layers(self) -> int:
        """Blocks per batch: the model's total hop count (TAG layers consume
        ``hops`` blocks each), not its layer count."""
        from repro.gnn.models import total_hops

        convs = getattr(self.model, "convs", None)
        if convs is None:
            raise TypeError("MinibatchTrainer needs a conv-stack classifier "
                            "(an object with a .convs ModuleList)")
        return total_hops(convs)

    def make_sampler(self, graph: Graph,
                     seed_nodes: Optional[np.ndarray] = None) -> NeighborSampler:
        """The sampler this trainer would use for ``graph`` (public for reuse)."""
        if self.cache is not None and self._cache_graph is not graph:
            # Cached rows of a previous graph would be silently wrong here.
            if self._cache_graph is not None:
                self.cache.clear()
            self._cache_graph = graph
        return NeighborSampler(graph, self.fanouts, batch_size=self.batch_size,
                               num_layers=self._num_layers(),
                               seed_nodes=seed_nodes, shuffle=self.shuffle,
                               seed=self.seed, cache=self.cache,
                               cache_batches=False)

    def batch_loss(self, batch: BlockBatch) -> Tensor:
        """Task loss of one sampled batch (public for custom training loops)."""
        logits = self.model(batch)
        if self.multilabel:
            return F.binary_cross_entropy_with_logits(logits, batch.y)
        return F.cross_entropy(logits, batch.y)

    # ------------------------------------------------------------------ #
    def fit(self, graph: Graph, epochs: int = 100,
            patience: Optional[int] = None,
            extra_penalty: Optional[Callable[[Module, Graph], Tensor]] = None,
            penalty_weight: float = 0.0) -> NodeTrainingResult:
        """Train on ``graph.train_mask`` seeds; returns the same result type
        as the full-batch trainer."""
        if graph.train_mask is None:
            raise ValueError("graph has no train_mask")
        if graph.y is None:
            raise ValueError("graph has no labels")
        sampler = self.make_sampler(graph, seed_nodes=graph.train_mask)
        optimizer = Adam(self.model.parameters(), lr=self.lr,
                         weight_decay=self.weight_decay)
        loss_history: List[float] = []
        best_val = -np.inf
        best_epoch = 0
        best_state = None
        epochs_without_improvement = 0

        for epoch in range(epochs):
            self.model.train()
            epoch_losses: List[float] = []
            for batch in sampler:
                self.model.zero_grad()
                loss = self.batch_loss(batch)
                if extra_penalty is not None and penalty_weight:
                    loss = loss + extra_penalty(self.model, graph) * float(penalty_weight)
                loss.backward()
                optimizer.step()
                epoch_losses.append(loss.item())
            loss_history.append(float(np.mean(epoch_losses)))

            if graph.val_mask is not None and graph.val_mask.any():
                val_accuracy = self.evaluate(graph, graph.val_mask)
                if val_accuracy > best_val:
                    best_val = val_accuracy
                    best_epoch = epoch
                    best_state = self.model.state_dict()
                    epochs_without_improvement = 0
                else:
                    epochs_without_improvement += 1
                if patience is not None and epochs_without_improvement > patience:
                    break

        if best_state is not None:
            self.model.load_state_dict(best_state)

        train_accuracy = self.evaluate(graph, graph.train_mask)
        val_accuracy = self.evaluate(graph, graph.val_mask) \
            if graph.val_mask is not None and graph.val_mask.any() else float("nan")
        test_accuracy = self.evaluate(graph, graph.test_mask) \
            if graph.test_mask is not None and graph.test_mask.any() else float("nan")
        return NodeTrainingResult(train_accuracy, val_accuracy, test_accuracy,
                                  loss_history, best_epoch)

    # ------------------------------------------------------------------ #
    def predict(self, graph: Graph) -> np.ndarray:
        """Exact full-graph logits via layer-wise inference."""
        return layerwise_inference(self.model, graph)

    def evaluate(self, graph: Graph, mask: Optional[np.ndarray] = None) -> float:
        """Exact accuracy (or ROC-AUC) on the masked nodes — never sampled."""
        logits = self.predict(graph)
        if self.multilabel:
            return roc_auc_score(logits, graph.y, mask=mask)
        return masked_accuracy(logits, graph.y, mask=mask)
