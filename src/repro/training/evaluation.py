"""Evaluation metrics: accuracy, masked accuracy and ROC-AUC.

ROC-AUC (used for the OGB-Proteins stand-in, Table 7) is computed with the
rank-statistic formulation (equivalent to the Mann-Whitney U statistic),
averaged over tasks for multi-label targets.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


def accuracy(logits: np.ndarray, targets: np.ndarray) -> float:
    """Top-1 accuracy of class logits against integer targets."""
    predictions = np.asarray(logits).argmax(axis=-1)
    targets = np.asarray(targets).astype(np.int64)
    if predictions.shape != targets.shape:
        raise ValueError("logits and targets describe different numbers of items")
    return float((predictions == targets).mean())


def masked_accuracy(logits: np.ndarray, targets: np.ndarray,
                    mask: Optional[np.ndarray]) -> float:
    """Accuracy restricted to the rows selected by a boolean mask."""
    if mask is None:
        return accuracy(logits, targets)
    mask = np.asarray(mask, dtype=bool)
    if not mask.any():
        raise ValueError("mask selects no rows")
    return accuracy(np.asarray(logits)[mask], np.asarray(targets)[mask])


def _binary_roc_auc(scores: np.ndarray, labels: np.ndarray) -> float:
    """ROC-AUC for one binary task via the rank statistic."""
    labels = np.asarray(labels).astype(bool)
    positives = labels.sum()
    negatives = labels.size - positives
    if positives == 0 or negatives == 0:
        return float("nan")
    order = np.argsort(scores, kind="mergesort")
    ranks = np.empty(labels.size, dtype=np.float64)
    ranks[order] = np.arange(1, labels.size + 1)
    # Average ranks over ties so the statistic is exact for discrete scores.
    sorted_scores = np.asarray(scores)[order]
    start = 0
    while start < labels.size:
        stop = start
        while stop + 1 < labels.size and sorted_scores[stop + 1] == sorted_scores[start]:
            stop += 1
        if stop > start:
            ranks[order[start:stop + 1]] = (start + stop + 2) / 2.0
        start = stop + 1
    positive_rank_sum = ranks[labels].sum()
    u_statistic = positive_rank_sum - positives * (positives + 1) / 2.0
    return float(u_statistic / (positives * negatives))


def roc_auc_score(scores: np.ndarray, labels: np.ndarray,
                  mask: Optional[np.ndarray] = None) -> float:
    """ROC-AUC, averaged over columns for multi-label targets (NaN tasks skipped)."""
    scores = np.asarray(scores, dtype=np.float64)
    labels = np.asarray(labels)
    if mask is not None:
        mask = np.asarray(mask, dtype=bool)
        scores = scores[mask]
        labels = labels[mask]
    if scores.ndim == 1:
        return _binary_roc_auc(scores, labels)
    per_task = [_binary_roc_auc(scores[:, task], labels[:, task])
                for task in range(scores.shape[1])]
    valid = [value for value in per_task if not np.isnan(value)]
    if not valid:
        raise ValueError("no task had both positive and negative labels")
    return float(np.mean(valid))
