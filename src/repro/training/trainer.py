"""Training loops for node-level and graph-level tasks.

The loops are deliberately plain QAT training: Adam, optional weight decay,
early stopping on a validation mask, and an optional extra penalty term
(used by the A²Q baseline's memory penalty).  Both the FP32 baselines and
every quantized variant in the benchmarks run through these functions so
comparisons differ only in the model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.graphs.batch import iterate_minibatches
from repro.graphs.graph import Graph
from repro.nn.module import Module
from repro.optim import Adam
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor, no_grad
from repro.training.evaluation import masked_accuracy, roc_auc_score


@dataclass
class NodeTrainingResult:
    """Summary of one node-classification training run."""

    train_accuracy: float
    val_accuracy: float
    test_accuracy: float
    loss_history: List[float] = field(default_factory=list)
    best_epoch: int = 0

    def __repr__(self) -> str:
        return (f"NodeTrainingResult(test={self.test_accuracy:.3f}, "
                f"val={self.val_accuracy:.3f}, epochs={len(self.loss_history)})")


@dataclass
class GraphTrainingResult:
    """Summary of one graph-classification training run."""

    train_accuracy: float
    test_accuracy: float
    loss_history: List[float] = field(default_factory=list)


def _node_loss(model: Module, graph: Graph, mask: np.ndarray, multilabel: bool) -> Tensor:
    logits = model(graph)
    if multilabel:
        return F.binary_cross_entropy_with_logits(logits, graph.y, mask=mask)
    return F.cross_entropy(logits, graph.y, mask=mask)


def evaluate_node_classifier(model: Module, graph: Graph,
                             mask: Optional[np.ndarray] = None,
                             multilabel: bool = False) -> float:
    """Accuracy (or ROC-AUC for multi-label targets) on the selected nodes."""
    model.eval()
    with no_grad():
        logits = model(graph).data
    if multilabel:
        return roc_auc_score(logits, graph.y, mask=mask)
    return masked_accuracy(logits, graph.y, mask=mask)


def train_node_classifier(model: Module, graph: Graph, epochs: int = 100,
                          lr: float = 0.01, weight_decay: float = 5e-4,
                          multilabel: bool = False,
                          extra_penalty: Optional[Callable[[Module, Graph], Tensor]] = None,
                          penalty_weight: float = 0.0,
                          patience: Optional[int] = None) -> NodeTrainingResult:
    """Train a node classifier transductively with optional early stopping."""
    if graph.train_mask is None:
        raise ValueError("graph has no train_mask")
    optimizer = Adam(model.parameters(), lr=lr, weight_decay=weight_decay)
    loss_history: List[float] = []
    best_val = -np.inf
    best_epoch = 0
    best_state = None
    epochs_without_improvement = 0

    for epoch in range(epochs):
        model.train()
        model.zero_grad()
        loss = _node_loss(model, graph, graph.train_mask, multilabel)
        if extra_penalty is not None and penalty_weight:
            loss = loss + extra_penalty(model, graph) * float(penalty_weight)
        loss.backward()
        optimizer.step()
        loss_history.append(loss.item())

        if graph.val_mask is not None and graph.val_mask.any():
            val_accuracy = evaluate_node_classifier(model, graph, graph.val_mask, multilabel)
            if val_accuracy > best_val:
                best_val = val_accuracy
                best_epoch = epoch
                best_state = model.state_dict()
                epochs_without_improvement = 0
            else:
                epochs_without_improvement += 1
            if patience is not None and epochs_without_improvement > patience:
                break

    if best_state is not None:
        model.load_state_dict(best_state)

    train_accuracy = evaluate_node_classifier(model, graph, graph.train_mask, multilabel)
    val_accuracy = evaluate_node_classifier(model, graph, graph.val_mask, multilabel) \
        if graph.val_mask is not None and graph.val_mask.any() else float("nan")
    test_accuracy = evaluate_node_classifier(model, graph, graph.test_mask, multilabel) \
        if graph.test_mask is not None and graph.test_mask.any() else float("nan")
    return NodeTrainingResult(train_accuracy, val_accuracy, test_accuracy,
                              loss_history, best_epoch)


def evaluate_graph_classifier(model: Module, graphs: Sequence[Graph],
                              batch_size: int = 64) -> float:
    """Classification accuracy over a list of graphs."""
    model.eval()
    correct = 0
    total = 0
    with no_grad():
        for batch in iterate_minibatches(list(graphs), batch_size, shuffle=False):
            predictions = model(batch).data.argmax(axis=-1)
            correct += int((predictions == batch.y).sum())
            total += batch.num_graphs
    return correct / max(total, 1)


def train_graph_classifier(model: Module, train_graphs: Sequence[Graph],
                           test_graphs: Sequence[Graph], epochs: int = 30,
                           lr: float = 0.01, batch_size: int = 32,
                           rng: Optional[np.random.Generator] = None
                           ) -> GraphTrainingResult:
    """Train a graph classifier with mini-batched Adam."""
    if rng is None:
        rng = np.random.default_rng(0)
    optimizer = Adam(model.parameters(), lr=lr)
    loss_history: List[float] = []
    for _ in range(epochs):
        model.train()
        epoch_losses = []
        for batch in iterate_minibatches(list(train_graphs), batch_size, rng=rng):
            model.zero_grad()
            loss = F.cross_entropy(model(batch), batch.y)
            loss.backward()
            optimizer.step()
            epoch_losses.append(float(loss.data))
        loss_history.append(float(np.mean(epoch_losses)))
    train_accuracy = evaluate_graph_classifier(model, train_graphs, batch_size)
    test_accuracy = evaluate_graph_classifier(model, test_graphs, batch_size)
    return GraphTrainingResult(train_accuracy, test_accuracy, loss_history)
