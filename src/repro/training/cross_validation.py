"""K-fold cross-validation for graph classification (paper Section 5.4).

The paper evaluates graph-level tasks with 10-fold cross-validation and
re-initialises a fresh relaxed architecture in every fold before searching
for bit-widths; :func:`cross_validate_graph_classifier` mirrors that
protocol with a model factory called once per fold.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.graphs.datasets.tu import dataset_labels
from repro.graphs.graph import Graph
from repro.graphs.splits import stratified_k_fold_indices
from repro.nn.module import Module
from repro.training.trainer import GraphTrainingResult, train_graph_classifier


@dataclass
class CrossValidationResult:
    """Per-fold accuracies and their summary statistics."""

    fold_accuracies: List[float] = field(default_factory=list)

    @property
    def mean(self) -> float:
        return float(np.mean(self.fold_accuracies)) if self.fold_accuracies else float("nan")

    @property
    def std(self) -> float:
        return float(np.std(self.fold_accuracies)) if self.fold_accuracies else float("nan")

    @property
    def min(self) -> float:
        return float(np.min(self.fold_accuracies)) if self.fold_accuracies else float("nan")

    @property
    def max(self) -> float:
        return float(np.max(self.fold_accuracies)) if self.fold_accuracies else float("nan")

    def __repr__(self) -> str:
        return f"CrossValidationResult(mean={self.mean:.3f} ± {self.std:.3f})"


def cross_validate_graph_classifier(
        model_factory: Callable[[Sequence[Graph]], Module],
        graphs: Sequence[Graph], num_folds: int = 10, epochs: int = 30,
        lr: float = 0.01, batch_size: int = 32,
        rng: Optional[np.random.Generator] = None) -> CrossValidationResult:
    """Stratified k-fold cross-validation with a fresh model per fold.

    ``model_factory`` receives the training graphs of the fold (so bit-width
    searches can run on exactly the fold's training data) and must return a
    new model instance.
    """
    if rng is None:
        rng = np.random.default_rng(0)
    labels = dataset_labels(list(graphs))
    result = CrossValidationResult()
    for train_indices, test_indices in stratified_k_fold_indices(labels, num_folds, rng=rng):
        train_graphs = [graphs[i] for i in train_indices]
        test_graphs = [graphs[i] for i in test_indices]
        model = model_factory(train_graphs)
        fold: GraphTrainingResult = train_graph_classifier(
            model, train_graphs, test_graphs, epochs=epochs, lr=lr,
            batch_size=batch_size, rng=rng)
        result.fold_accuracies.append(fold.test_accuracy)
    return result
