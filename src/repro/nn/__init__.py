"""Neural-network module system built on the autodiff tensor engine."""

from repro.nn.module import Module, Parameter, Sequential, ModuleList
from repro.nn.linear import Linear
from repro.nn.mlp import MLP
from repro.nn.normalization import BatchNorm1d, LayerNorm
from repro.nn.activations import ReLU, Sigmoid, Tanh, Identity, Dropout
from repro.nn import init

__all__ = [
    "Module",
    "Parameter",
    "Sequential",
    "ModuleList",
    "Linear",
    "MLP",
    "BatchNorm1d",
    "LayerNorm",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "Identity",
    "Dropout",
    "init",
]
