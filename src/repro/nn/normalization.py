"""Normalisation layers (BatchNorm1d, LayerNorm).

GIN architectures in the paper use an MLP with batch normalisation between
the two linear layers; the graph-classification benchmark (Table 8) relies
on this module.
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module, Parameter
from repro.tensor.tensor import Tensor


class BatchNorm1d(Module):
    """Batch normalisation over the feature dimension of a 2-D input."""

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1):
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.weight = Parameter(np.ones(num_features, dtype=np.float32), name="weight")
        self.bias = Parameter(np.zeros(num_features, dtype=np.float32), name="bias")
        self.register_buffer("running_mean", np.zeros(num_features, dtype=np.float32))
        self.register_buffer("running_var", np.ones(num_features, dtype=np.float32))

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 2:
            raise ValueError("BatchNorm1d expects a 2-D input (rows, features)")
        if self.training:
            batch_mean = x.data.mean(axis=0)
            batch_var = x.data.var(axis=0)
            self.update_buffer(
                "running_mean",
                (1 - self.momentum) * self.running_mean + self.momentum * batch_mean)
            self.update_buffer(
                "running_var",
                (1 - self.momentum) * self.running_var + self.momentum * batch_var)
            mean, var = batch_mean, batch_var
        else:
            mean, var = self.running_mean, self.running_var

        scale = 1.0 / np.sqrt(var + self.eps)
        normalised = (x - Tensor(mean)) * Tensor(scale.astype(np.float32))
        return normalised * self.weight + self.bias

    def __repr__(self) -> str:
        return f"BatchNorm1d({self.num_features})"


class LayerNorm(Module):
    """Layer normalisation over the last dimension."""

    def __init__(self, num_features: int, eps: float = 1e-5):
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.weight = Parameter(np.ones(num_features, dtype=np.float32), name="weight")
        self.bias = Parameter(np.zeros(num_features, dtype=np.float32), name="bias")

    def forward(self, x: Tensor) -> Tensor:
        mean = x.mean(axis=-1, keepdims=True)
        centred = x - mean
        variance = (centred * centred).mean(axis=-1, keepdims=True)
        normalised = centred / (variance + self.eps).sqrt()
        return normalised * self.weight + self.bias

    def __repr__(self) -> str:
        return f"LayerNorm({self.num_features})"
