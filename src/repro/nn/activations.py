"""Activation and regularisation modules."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.module import Module
from repro.tensor import functional as F
from repro.tensor.random import default_generator
from repro.tensor.tensor import Tensor


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()

    def __repr__(self) -> str:
        return "ReLU()"


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()

    def __repr__(self) -> str:
        return "Sigmoid()"


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()

    def __repr__(self) -> str:
        return "Tanh()"


class Identity(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x

    def __repr__(self) -> str:
        return "Identity()"


class Dropout(Module):
    """Inverted dropout, active only in training mode."""

    def __init__(self, p: float = 0.5, rng: Optional[np.random.Generator] = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout probability must be in [0, 1)")
        self.p = p
        self._rng = rng if rng is not None else default_generator()

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, training=self.training, rng=self._rng)

    def __repr__(self) -> str:
        return f"Dropout(p={self.p})"
