"""Multi-layer perceptron used as the GIN update function and readout heads."""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.nn.activations import ReLU
from repro.nn.linear import Linear
from repro.nn.module import Module, ModuleList
from repro.nn.normalization import BatchNorm1d
from repro.tensor.tensor import Tensor


class MLP(Module):
    """A stack of ``Linear -> (BatchNorm) -> ReLU`` blocks.

    Parameters
    ----------
    dims:
        Layer widths including input and output,
        e.g. ``[in, hidden, out]`` builds two linear layers.
    batch_norm:
        Insert a :class:`BatchNorm1d` after every hidden linear layer.
    activate_last:
        Apply the activation after the final linear layer as well.
    """

    def __init__(self, dims: Sequence[int], batch_norm: bool = False,
                 activate_last: bool = False, bias: bool = True,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        if len(dims) < 2:
            raise ValueError("MLP needs at least an input and an output dimension")
        self.dims = list(dims)
        self.activate_last = activate_last
        self.linears = ModuleList(
            [Linear(dims[i], dims[i + 1], bias=bias, rng=rng) for i in range(len(dims) - 1)])
        norms: List[Module] = []
        if batch_norm:
            norms = [BatchNorm1d(dims[i + 1]) for i in range(len(dims) - 1)]
        self.norms = ModuleList(norms)
        self.activation = ReLU()

    def forward(self, x: Tensor) -> Tensor:
        num_layers = len(self.linears)
        for index, linear in enumerate(self.linears):
            x = linear(x)
            is_last = index == num_layers - 1
            if len(self.norms) and (not is_last or self.activate_last):
                x = self.norms[index](x)
            if not is_last or self.activate_last:
                x = self.activation(x)
        return x

    def operation_count(self, num_rows: int) -> int:
        return sum(linear.operation_count(num_rows) for linear in self.linears)

    def __repr__(self) -> str:
        return f"MLP(dims={self.dims})"
