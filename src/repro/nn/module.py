"""``Module`` / ``Parameter`` abstractions (a torch.nn-like module system).

Modules register parameters and sub-modules automatically through attribute
assignment, expose recursive iteration over them, and carry a ``training``
flag toggled by :meth:`Module.train` / :meth:`Module.eval`.  This is the
scaffolding the quantization and relaxation wrappers in :mod:`repro.quant`
and :mod:`repro.core` hook into.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.tensor.tensor import Tensor


class Parameter(Tensor):
    """A tensor flagged as a learnable parameter of a module."""

    def __init__(self, data, name: Optional[str] = None):
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all neural-network modules."""

    def __init__(self):
        self._parameters: Dict[str, Parameter] = {}
        self._modules: Dict[str, "Module"] = {}
        self._buffers: Dict[str, np.ndarray] = {}
        self.training = True

    # ------------------------------------------------------------------ #
    # attribute based registration
    # ------------------------------------------------------------------ #
    def __setattr__(self, key, value):
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", {})[key] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[key] = value
        object.__setattr__(self, key, value)

    def register_parameter(self, name: str, parameter: Parameter) -> None:
        self._parameters[name] = parameter
        object.__setattr__(self, name, parameter)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register non-learnable state (e.g. running statistics, observer ranges)."""
        self._buffers[name] = np.asarray(value)
        object.__setattr__(self, name, self._buffers[name])

    def update_buffer(self, name: str, value: np.ndarray) -> None:
        if name not in self._buffers:
            raise KeyError(f"unknown buffer {name!r}")
        self._buffers[name] = np.asarray(value)
        object.__setattr__(self, name, self._buffers[name])

    def add_module(self, name: str, module: "Module") -> None:
        self._modules[name] = module
        object.__setattr__(self, name, module)

    # ------------------------------------------------------------------ #
    # traversal
    # ------------------------------------------------------------------ #
    def parameters(self) -> List[Parameter]:
        """All parameters of this module and its sub-modules (depth-first)."""
        return [parameter for _, parameter in self.named_parameters()]

    def named_parameters(self, prefix: str = "") -> List[Tuple[str, Parameter]]:
        out: List[Tuple[str, Parameter]] = []
        for name, parameter in self._parameters.items():
            out.append((prefix + name, parameter))
        for name, module in self._modules.items():
            out.extend(module.named_parameters(prefix=f"{prefix}{name}."))
        return out

    def modules(self) -> Iterator["Module"]:
        """Yield this module and every sub-module (depth-first, pre-order)."""
        yield self
        for module in self._modules.values():
            yield from module.modules()

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield prefix.rstrip("."), self
        for name, module in self._modules.items():
            yield from module.named_modules(prefix=f"{prefix}{name}.")

    def children(self) -> Iterator["Module"]:
        yield from self._modules.values()

    # ------------------------------------------------------------------ #
    # state
    # ------------------------------------------------------------------ #
    def train(self, mode: bool = True) -> "Module":
        for module in self.modules():
            module.training = mode
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for parameter in self.parameters():
            parameter.zero_grad()

    def num_parameters(self) -> int:
        return sum(parameter.size for parameter in self.parameters())

    def state_dict(self, prefix: str = "") -> Dict[str, np.ndarray]:
        state: Dict[str, np.ndarray] = {}
        for name, parameter in self._parameters.items():
            state[prefix + name] = parameter.data.copy()
        for name, value in self._buffers.items():
            state[prefix + name] = np.asarray(value).copy()
        for name, module in self._modules.items():
            state.update(module.state_dict(prefix=f"{prefix}{name}."))
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray], prefix: str = "") -> None:
        for name, parameter in self._parameters.items():
            key = prefix + name
            if key in state:
                parameter.data = np.asarray(state[key], dtype=parameter.data.dtype).copy()
        for name in list(self._buffers):
            key = prefix + name
            if key in state:
                self.update_buffer(name, state[key])
        for name, module in self._modules.items():
            module.load_state_dict(state, prefix=f"{prefix}{name}.")

    # ------------------------------------------------------------------ #
    # call protocol
    # ------------------------------------------------------------------ #
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def __repr__(self) -> str:
        lines = [self.__class__.__name__ + "("]
        for name, module in self._modules.items():
            child = repr(module).replace("\n", "\n  ")
            lines.append(f"  ({name}): {child}")
        lines.append(")")
        return "\n".join(lines) if len(lines) > 2 else f"{self.__class__.__name__}()"


class Sequential(Module):
    """Run sub-modules in order, feeding each output into the next module."""

    def __init__(self, *modules: Module):
        super().__init__()
        self._ordered: List[Module] = []
        for index, module in enumerate(modules):
            self.add_module(str(index), module)
            self._ordered.append(module)

    def forward(self, x, *extra):
        for module in self._ordered:
            x = module(x, *extra) if extra else module(x)
            extra = ()
        return x

    def __iter__(self) -> Iterator[Module]:
        return iter(self._ordered)

    def __len__(self) -> int:
        return len(self._ordered)

    def __getitem__(self, index: int) -> Module:
        return self._ordered[index]


class ModuleList(Module):
    """A list container whose entries are registered as sub-modules."""

    def __init__(self, modules: Optional[List[Module]] = None):
        super().__init__()
        self._ordered: List[Module] = []
        for module in modules or []:
            self.append(module)

    def append(self, module: Module) -> "ModuleList":
        self.add_module(str(len(self._ordered)), module)
        self._ordered.append(module)
        return self

    def __iter__(self) -> Iterator[Module]:
        return iter(self._ordered)

    def __len__(self) -> int:
        return len(self._ordered)

    def __getitem__(self, index: int) -> Module:
        return self._ordered[index]

    def forward(self, *args, **kwargs):
        raise RuntimeError("ModuleList is a container and cannot be called")
