"""Parameter initialisers (Glorot/Xavier, Kaiming/He, uniform, zeros)."""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.tensor.random import default_generator


def _generator(rng: Optional[np.random.Generator]) -> np.random.Generator:
    return rng if rng is not None else default_generator()


def glorot_uniform(shape: tuple, rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Glorot/Xavier uniform initialisation for a 2-D weight matrix."""
    fan_in, fan_out = shape[0], shape[-1]
    limit = math.sqrt(6.0 / (fan_in + fan_out))
    return _generator(rng).uniform(-limit, limit, size=shape).astype(np.float32)


def kaiming_uniform(shape: tuple, rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Kaiming/He uniform initialisation (fan-in mode, ReLU gain)."""
    fan_in = shape[0]
    limit = math.sqrt(6.0 / fan_in)
    return _generator(rng).uniform(-limit, limit, size=shape).astype(np.float32)


def uniform(shape: tuple, low: float, high: float,
            rng: Optional[np.random.Generator] = None) -> np.ndarray:
    return _generator(rng).uniform(low, high, size=shape).astype(np.float32)


def normal(shape: tuple, std: float = 0.01,
           rng: Optional[np.random.Generator] = None) -> np.ndarray:
    return (_generator(rng).standard_normal(size=shape) * std).astype(np.float32)


def zeros(shape: tuple) -> np.ndarray:
    return np.zeros(shape, dtype=np.float32)


def ones(shape: tuple) -> np.ndarray:
    return np.ones(shape, dtype=np.float32)
