"""Dense linear transformation ``y = x W + b``."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.tensor.tensor import Tensor


class Linear(Module):
    """Affine transformation of the last input dimension.

    Parameters
    ----------
    in_features / out_features:
        Input and output dimensionality.
    bias:
        Whether to add a learnable bias vector.
    """

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.glorot_uniform((in_features, out_features), rng=rng),
                                name="weight")
        if bias:
            self.bias: Optional[Parameter] = Parameter(init.zeros((out_features,)), name="bias")
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        out = x.matmul(self.weight)
        if self.bias is not None:
            out = out + self.bias
        return out

    def operation_count(self, num_rows: int) -> int:
        """Number of scalar multiply-accumulate operations for ``num_rows`` inputs."""
        ops = 2 * num_rows * self.in_features * self.out_features
        if self.bias is not None:
            ops += num_rows * self.out_features
        return ops

    def __repr__(self) -> str:
        return (f"Linear(in_features={self.in_features}, "
                f"out_features={self.out_features}, bias={self.bias is not None})")
