"""Stochastic gradient descent with optional momentum and weight decay."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.optim.optimizer import Optimizer
from repro.tensor.tensor import Tensor


class SGD(Optimizer):
    def __init__(self, parameters: Iterable[Tensor], lr: float = 0.01,
                 momentum: float = 0.0, weight_decay: float = 0.0):
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for parameter, velocity in zip(self.parameters, self._velocity):
            if parameter.grad is None:
                continue
            grad = parameter.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            parameter.data = parameter.data - self.lr * grad
