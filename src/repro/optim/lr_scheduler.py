"""Learning-rate schedulers operating on an :class:`Optimizer`."""

from __future__ import annotations

import math

from repro.optim.optimizer import Optimizer


class StepLR:
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.5):
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> None:
        self.epoch += 1
        exponent = self.epoch // self.step_size
        self.optimizer.lr = self.base_lr * (self.gamma ** exponent)


class CosineAnnealingLR:
    """Cosine decay from the base learning rate to ``eta_min`` over ``t_max`` epochs."""

    def __init__(self, optimizer: Optimizer, t_max: int, eta_min: float = 0.0):
        self.optimizer = optimizer
        self.t_max = max(t_max, 1)
        self.eta_min = eta_min
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> None:
        self.epoch += 1
        progress = min(self.epoch, self.t_max) / self.t_max
        self.optimizer.lr = self.eta_min + 0.5 * (self.base_lr - self.eta_min) * (
            1 + math.cos(math.pi * progress))
