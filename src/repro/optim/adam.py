"""Adam optimiser (Kingma & Ba, 2015) with decoupled weight decay option."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.optim.optimizer import Optimizer
from repro.tensor.tensor import Tensor


class Adam(Optimizer):
    def __init__(self, parameters: Iterable[Tensor], lr: float = 0.01,
                 betas: tuple = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0, decoupled_weight_decay: bool = False):
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self.decoupled_weight_decay = decoupled_weight_decay
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias_correction1 = 1.0 - self.beta1 ** self._t
        bias_correction2 = 1.0 - self.beta2 ** self._t
        for parameter, m, v in zip(self.parameters, self._m, self._v):
            if parameter.grad is None:
                continue
            grad = parameter.grad
            if self.weight_decay and not self.decoupled_weight_decay:
                grad = grad + self.weight_decay * parameter.data
            m *= self.beta1
            m += (1 - self.beta1) * grad
            v *= self.beta2
            v += (1 - self.beta2) * grad * grad
            m_hat = m / bias_correction1
            v_hat = v / bias_correction2
            update = self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
            if self.weight_decay and self.decoupled_weight_decay:
                update = update + self.lr * self.weight_decay * parameter.data
            parameter.data = parameter.data - update
