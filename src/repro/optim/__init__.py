"""Gradient-based optimisers and learning-rate schedulers."""

from repro.optim.optimizer import Optimizer, clip_grad_norm
from repro.optim.sgd import SGD
from repro.optim.adam import Adam
from repro.optim.lr_scheduler import StepLR, CosineAnnealingLR

__all__ = ["Optimizer", "SGD", "Adam", "StepLR", "CosineAnnealingLR", "clip_grad_norm"]
