"""Optimizer base class and gradient utilities."""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from repro.tensor.tensor import Tensor


class Optimizer:
    """Base class: holds the parameter list and clears gradients."""

    def __init__(self, parameters: Iterable[Tensor], lr: float):
        self.parameters: List[Tensor] = [p for p in parameters]
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr

    def zero_grad(self) -> None:
        for parameter in self.parameters:
            parameter.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


def clip_grad_norm(parameters: Iterable[Tensor], max_norm: float) -> float:
    """Clip the global gradient norm in place; returns the pre-clip norm."""
    parameters = [p for p in parameters if p.grad is not None]
    if not parameters:
        return 0.0
    total = float(np.sqrt(sum(float((p.grad ** 2).sum()) for p in parameters)))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for parameter in parameters:
            parameter.grad = parameter.grad * scale
    return total
