"""MixQ-GNN reproduction: mixed-precision quantization for graph neural networks.

Reproduction of "Efficient Mixed Precision Quantization in Graph Neural
Networks" (Moustafa, Kriege, Gansterer — ICDE 2025) as a self-contained
Python library: a numpy autodiff substrate, GNN layers, the quantization
stack (Theorem 1 integer message passing, Degree-Quant, A²Q baselines) and
the MixQ-GNN differentiable bit-width search.

Quickstart
----------
>>> from repro.graphs.datasets import load_cora
>>> from repro.core import MixQNodeClassifier
>>> graph = load_cora(scale=0.2, seed=0)
>>> mixq = MixQNodeClassifier("gcn", graph.num_features, 16, graph.num_classes,
...                           bit_choices=(2, 4, 8), lambda_value=0.1)
>>> result = mixq.fit(graph, search_epochs=30, train_epochs=60)
>>> result.accuracy, result.average_bits  # doctest: +SKIP
"""

__version__ = "1.0.0"

from repro import core, gnn, graphs, nn, optim, quant, tensor, training

__all__ = ["core", "gnn", "graphs", "nn", "optim", "quant", "tensor", "training",
           "__version__"]
