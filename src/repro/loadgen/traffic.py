"""Deterministic, production-shaped serving traffic.

The load harness exists to exercise the serving stack in the regime the
cache, coalescing, and seed-dedup work were built for: *skewed, repetitive*
traffic.  This module generates that traffic as a pure function of a
:class:`TrafficConfig` — same config, same seed, same trace, bit for bit —
so a load test is replayable across machines and PRs:

* **Seed popularity** follows a Zipf law over a seeded permutation of the
  node ids (``pattern="zipfian"``, ``skew`` configurable; ``skew=0`` or
  ``pattern="uniform"`` degenerates to uniform draws).  Ranks map to node
  ids through a permutation so "popular" nodes are spread across the id
  space instead of clustering at 0.
* **Arrival times** come from an open-loop process: Poisson
  (``arrival="poisson"``, exponential inter-arrival gaps at the offered
  QPS) or fixed-rate (``arrival="fixed"``, exact ``1/qps`` spacing).
  Open-loop means arrivals never wait for completions — the offered load
  is what production offers, not what the server can absorb.  Closed-loop
  N-client replay (see :func:`~repro.loadgen.harness.run_load`) ignores
  the arrival column and drives requests back to back instead.

Every request draws ``seeds_per_request`` distinct nodes from the
popularity distribution, mirroring the multi-seed requests the coalescing
engine is optimised for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

#: Seed-popularity patterns the generator understands.
PATTERNS = ("zipfian", "uniform")
#: Open-loop arrival processes the generator understands.
ARRIVALS = ("poisson", "fixed")


@dataclass(frozen=True)
class TrafficConfig:
    """Full description of one deterministic traffic trace.

    Parameters
    ----------
    num_nodes:
        Size of the served graph's node id space.
    pattern / skew:
        Seed-popularity law.  ``zipfian`` draws node *ranks* with
        probability proportional to ``rank ** -skew``; ``uniform`` (or
        ``skew=0``) draws every node equally often.
    seeds_per_request:
        Distinct seed nodes per request (the coalescing engine's unit).
    arrival / qps / duration_seconds / num_requests:
        Open-loop schedule: ``qps`` is the offered rate, the request count
        defaults to ``round(qps * duration_seconds)`` unless
        ``num_requests`` pins it explicitly.
    seed:
        Root of the generator; the entire trace is a pure function of the
        config including this value.
    """

    num_nodes: int
    pattern: str = "zipfian"
    skew: float = 1.1
    seeds_per_request: int = 8
    arrival: str = "poisson"
    qps: float = 200.0
    duration_seconds: float = 1.0
    num_requests: Optional[int] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        if self.pattern not in PATTERNS:
            raise ValueError(f"pattern must be one of {PATTERNS}, got {self.pattern!r}")
        if self.arrival not in ARRIVALS:
            raise ValueError(f"arrival must be one of {ARRIVALS}, got {self.arrival!r}")
        if self.skew < 0:
            raise ValueError("skew must be non-negative")
        if not 1 <= self.seeds_per_request <= self.num_nodes:
            raise ValueError("seeds_per_request must lie in [1, num_nodes]")
        if self.qps <= 0:
            raise ValueError("qps must be positive")
        if self.num_requests is None and self.duration_seconds <= 0:
            raise ValueError("duration_seconds must be positive when "
                             "num_requests is not given")
        if self.num_requests is not None and self.num_requests <= 0:
            raise ValueError("num_requests must be positive when given")

    @property
    def request_count(self) -> int:
        """Number of requests in the trace."""
        if self.num_requests is not None:
            return int(self.num_requests)
        return max(1, int(round(self.qps * self.duration_seconds)))


@dataclass(frozen=True)
class LoadTrace:
    """One replayable traffic trace: arrival offsets plus per-request seeds."""

    #: Seconds from trace start, non-decreasing, one per request.
    arrivals: np.ndarray
    #: Seed-node arrays, one per request, aligned with :attr:`arrivals`.
    requests: Tuple[np.ndarray, ...]
    config: TrafficConfig

    @property
    def num_requests(self) -> int:
        return len(self.requests)

    @property
    def num_seeds(self) -> int:
        """Total seed nodes over the whole trace."""
        return int(sum(nodes.shape[0] for nodes in self.requests))

    def tail(self, skip: int) -> "LoadTrace":
        """The trace with its first ``skip`` requests removed and arrivals
        re-based to the first remaining request (the measured window after
        a warm-up prefix)."""
        skip = max(0, min(int(skip), self.num_requests - 1))
        if skip == 0:
            return self
        arrivals = self.arrivals[skip:] - self.arrivals[skip]
        return LoadTrace(arrivals=arrivals, requests=self.requests[skip:],
                        config=self.config)


def popularity_probabilities(num_nodes: int, pattern: str,
                             skew: float) -> Optional[np.ndarray]:
    """Per-rank draw probabilities, or ``None`` for uniform traffic."""
    if pattern == "uniform" or skew == 0.0:
        return None
    ranks = np.arange(1, num_nodes + 1, dtype=np.float64)
    weights = ranks ** -float(skew)
    return weights / weights.sum()


def generate_trace(config: TrafficConfig) -> LoadTrace:
    """Materialise the deterministic trace a config describes.

    Same config (seed included) → bit-identical arrivals and request
    arrays; this is the property the harness's replayability and the CI
    perf gate lean on.
    """
    rng = np.random.default_rng(config.seed)
    count = config.request_count

    # Popular ranks land on a seeded permutation of the id space so the
    # hot set is not an artifact of node numbering.
    node_by_rank = rng.permutation(config.num_nodes)
    probabilities = popularity_probabilities(config.num_nodes, config.pattern,
                                             config.skew)
    requests = []
    for _ in range(count):
        ranks = rng.choice(config.num_nodes, size=config.seeds_per_request,
                           replace=False, p=probabilities)
        requests.append(np.asarray(node_by_rank[ranks], dtype=np.int64))

    if config.arrival == "fixed":
        arrivals = np.arange(count, dtype=np.float64) / config.qps
    else:
        gaps = rng.exponential(1.0 / config.qps, size=count)
        arrivals = np.cumsum(gaps) - gaps[0]

    return LoadTrace(arrivals=arrivals, requests=tuple(requests), config=config)
