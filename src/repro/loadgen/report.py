"""The persisted perf-trajectory format (``BENCH_*.json``) and its schema.

Every benchmark in the repository used to print a table and throw the
numbers away; this module is the one place results flow through instead.
A trajectory file is a single versioned JSON document::

    {
      "schema": "repro-bench",
      "schema_version": 1,
      "results": {
        "loadtest.zipfian.poisson.open": {
          "kind": "loadtest",
          "metrics": {"p50_ms": 3.1, "p95_ms": 7.9, ...},
          "meta": {"dataset": "cora", "workers": 2, ...}
        },
        "serving.n3000": {"kind": "benchmark", "metrics": {...}}
      }
    }

``kind="loadtest"`` results must carry the full latency/QPS/SLO metric set
(:data:`LOADTEST_REQUIRED_METRICS`); ``kind="benchmark"`` results carry
whatever scalars their benchmark measures.  Metric *names* encode the
regression direction for ``tools/check_bench.py`` (see
:func:`metric_direction`): ``*_ms`` / ``*_mb`` / ``*_gbitops`` /
``slo_violation_rate`` regress upward, ``*_qps`` / ``*hit_rate`` regress
downward, everything else is informational.  Emission always merges into
an existing file, so one ``BENCH_PR<k>.json`` accumulates the whole perf
surface of a PR.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

SCHEMA_NAME = "repro-bench"
SCHEMA_VERSION = 1

#: Result kinds a trajectory file may hold.
RESULT_KINDS = ("loadtest", "benchmark")

#: Every ``loadtest`` result must report at least these metrics.
#: ``failure_rate`` is the failed fraction of the measured requests
#: (failed requests are excluded from the latency percentiles but still
#: occupy the measured window — see :mod:`repro.loadgen.harness`).
LOADTEST_REQUIRED_METRICS = frozenset({
    "requests", "offered_qps", "achieved_qps",
    "p50_ms", "p95_ms", "p99_ms", "max_ms", "mean_ms",
    "deadline_ms", "slo_violation_rate", "cache_hit_rate",
    "failure_rate",
})

#: Metrics that echo configuration (or are load-determined) and must never
#: be gated even though their suffix suggests a direction.
_DIRECTION_OVERRIDES: Dict[str, Optional[str]] = {
    "deadline_ms": None,
    "offered_qps": None,
}


def metric_direction(name: str) -> Optional[str]:
    """``"lower"`` / ``"higher"`` = which way is *better*; ``None`` = not gated."""
    if name in _DIRECTION_OVERRIDES:
        return _DIRECTION_OVERRIDES[name]
    if name in ("slo_violation_rate", "failure_rate") \
            or name.endswith(("_ms", "_mb", "_gbitops")):
        return "lower"
    if name.endswith("_qps") or name.endswith("hit_rate"):
        return "higher"
    return None


#: (suffix, absolute slack) pairs — the flat part of the tolerance band,
#: so near-zero baselines (an empty SLO budget, a sub-millisecond p50)
#: don't turn measurement noise into a failed gate.
_ABSOLUTE_SLACKS = (
    ("_rate", 0.05),
    ("hit_rate", 0.05),
    ("_ms", 2.0),
    ("_mb", 2.0),
    ("_qps", 5.0),
    ("_gbitops", 1e-6),
)


def metric_slack(name: str) -> float:
    """Absolute slack added on top of the relative tolerance band."""
    for suffix, slack in _ABSOLUTE_SLACKS:
        if name.endswith(suffix):
            return slack
    return 0.0


# --------------------------------------------------------------------- #
# latency / SLO accounting
# --------------------------------------------------------------------- #
def summarize_latencies(latencies_seconds: np.ndarray,
                        deadline_ms: float) -> Dict[str, float]:
    """Percentile and SLO accounting over one measured latency trace.

    Returns the ``p50/p95/p99/max/mean`` milliseconds plus the fraction of
    requests that missed the ``deadline_ms`` SLO.
    """
    latencies = np.asarray(latencies_seconds, dtype=np.float64).reshape(-1)
    if latencies.size == 0:
        raise ValueError("cannot summarize an empty latency trace")
    if deadline_ms <= 0:
        raise ValueError("deadline_ms must be positive")
    milliseconds = latencies * 1e3
    p50, p95, p99 = np.percentile(milliseconds, [50.0, 95.0, 99.0])
    return {
        "p50_ms": float(p50),
        "p95_ms": float(p95),
        "p99_ms": float(p99),
        "max_ms": float(milliseconds.max()),
        "mean_ms": float(milliseconds.mean()),
        "deadline_ms": float(deadline_ms),
        "slo_violation_rate": float((milliseconds > deadline_ms).mean()),
    }


# --------------------------------------------------------------------- #
# payload construction / validation / persistence
# --------------------------------------------------------------------- #
def new_payload() -> dict:
    """An empty trajectory document at the current schema version."""
    return {"schema": SCHEMA_NAME, "schema_version": SCHEMA_VERSION,
            "results": {}}


def merge_result(payload: dict, name: str, metrics: Dict[str, float],
                 meta: Optional[dict] = None, kind: str = "loadtest") -> dict:
    """Add (or replace) one named result in a payload, validated.

    Results are re-sorted by name so emitted files diff stably.
    """
    if kind not in RESULT_KINDS:
        raise ValueError(f"kind must be one of {RESULT_KINDS}, got {kind!r}")
    if not name or not isinstance(name, str):
        raise ValueError("result name must be a non-empty string")
    clean: Dict[str, Union[int, float]] = {}
    for key, value in metrics.items():
        if isinstance(value, bool) or not isinstance(value, (int, float, np.number)):
            raise ValueError(f"metric {key!r} must be a number, got {value!r}")
        number = float(value)
        if not math.isfinite(number):
            raise ValueError(f"metric {key!r} must be finite, got {value!r}")
        clean[key] = int(value) if float(value).is_integer() else round(number, 6)
    if not clean:
        raise ValueError("a result needs at least one metric")
    if kind == "loadtest":
        missing = LOADTEST_REQUIRED_METRICS - clean.keys()
        if missing:
            raise ValueError(f"loadtest result is missing metrics: "
                             f"{sorted(missing)}")
    entry: dict = {"kind": kind, "metrics": clean}
    if meta:
        entry["meta"] = {str(key): value for key, value in meta.items()}
    payload["results"][name] = entry
    payload["results"] = dict(sorted(payload["results"].items()))
    return payload


def validate_payload(payload: object) -> List[str]:
    """Schema errors of a trajectory document (empty list = valid)."""
    errors: List[str] = []
    if not isinstance(payload, dict):
        return ["payload is not a JSON object"]
    if payload.get("schema") != SCHEMA_NAME:
        errors.append(f"schema must be {SCHEMA_NAME!r}, "
                      f"got {payload.get('schema')!r}")
    if payload.get("schema_version") != SCHEMA_VERSION:
        errors.append(f"schema_version must be {SCHEMA_VERSION}, "
                      f"got {payload.get('schema_version')!r}")
    results = payload.get("results")
    if not isinstance(results, dict) or not results:
        errors.append("results must be a non-empty object")
        return errors
    for name, entry in results.items():
        where = f"results[{name!r}]"
        if not isinstance(entry, dict):
            errors.append(f"{where} is not an object")
            continue
        kind = entry.get("kind")
        if kind not in RESULT_KINDS:
            errors.append(f"{where}.kind must be one of {RESULT_KINDS}, "
                          f"got {kind!r}")
        metrics = entry.get("metrics")
        if not isinstance(metrics, dict) or not metrics:
            errors.append(f"{where}.metrics must be a non-empty object")
            continue
        for key, value in metrics.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)) \
                    or not math.isfinite(value):
                errors.append(f"{where}.metrics[{key!r}] must be a finite "
                              f"number, got {value!r}")
        if kind == "loadtest":
            missing = LOADTEST_REQUIRED_METRICS - metrics.keys()
            if missing:
                errors.append(f"{where} is missing loadtest metrics: "
                              f"{sorted(missing)}")
        if "meta" in entry and not isinstance(entry["meta"], dict):
            errors.append(f"{where}.meta must be an object")
    return errors


def load_payload(path: Union[str, Path]) -> dict:
    """Read and schema-check a trajectory file (raises on invalid)."""
    payload = json.loads(Path(path).read_text())
    errors = validate_payload(payload)
    if errors:
        raise ValueError(f"{path}: " + "; ".join(errors))
    return payload


def save_payload(path: Union[str, Path], payload: dict) -> Path:
    """Write a payload as stable, diff-friendly JSON."""
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def emit(path: Union[str, Path], name: str, metrics: Dict[str, float],
         meta: Optional[dict] = None, kind: str = "loadtest") -> Path:
    """Merge one result into the trajectory file at ``path``.

    Creates the file when absent; an existing file must already be
    schema-valid (a corrupt trajectory is an error, never silently
    clobbered).
    """
    path = Path(path)
    payload = load_payload(path) if path.exists() else new_payload()
    merge_result(payload, name, metrics, meta=meta, kind=kind)
    return save_payload(path, payload)
