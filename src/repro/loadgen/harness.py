"""Traffic replay against :class:`~repro.serving.AsyncServingEngine`.

:func:`run_load` drives one deterministic :class:`~repro.loadgen.traffic.
LoadTrace` through a running engine and measures what production would
see:

* **Open-loop** replay submits each request at its scheduled arrival time
  regardless of completions, so queueing delay under overload is *measured*
  instead of hidden — per-request latency is ``completion − scheduled
  arrival`` (coordinated-omission-free), not ``completion − submit``.
* **Closed-loop** replay runs ``clients`` threads that each submit the next
  request the moment their previous one completes — the classic N-client
  saturation probe.  Arrival times in the trace are ignored; latency is the
  engine-reported queue + service time.

An optional warm-up prefix serves the head of the trace first and then
calls :meth:`~repro.serving.ServingEngine.reset_stats` (and snapshots the
block-cache counters), so the reported window measures steady state — the
cache hit rate is a *delta* over the measured window, not a lifetime
average diluted by cold misses.

Failure accounting: a failed request (its future carries an exception)
does not abort the run.  Both replay modes keep going, count the failure,
and report latency percentiles over the *successful* requests only — a
failed request has no meaningful service latency, and mixing in its
time-to-error would skew every percentile.  The failed requests still
occupy the measured wall-clock window (they consumed queue and engine
time), so ``achieved_qps`` counts successes over the full window and
``failure_rate`` reports the failed fraction.  Only a run in which *every*
measured request failed raises, since it has no latencies to summarise.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Optional, Tuple

import numpy as np

from repro.loadgen.traffic import LoadTrace
from repro.serving.async_engine import AsyncServingEngine

#: Replay modes :func:`run_load` understands.
MODES = ("open", "closed")


@dataclass(frozen=True)
class LoadRunResult:
    """Raw measurements of one replayed window (summarised by
    :func:`~repro.loadgen.report.summarize_latencies` /
    :func:`metrics_from_run`)."""

    #: Latency of each *successful* request, in completion-eligible trace
    #: order (failed requests are excluded — they have no service latency).
    latencies_seconds: np.ndarray
    #: Wall-clock span of the measured window (first submit → last completion).
    measured_seconds: float
    #: The rate the trace offered (closed-loop: the achieved rate).
    offered_qps: float
    requests: int
    nodes: int
    micro_batches: int
    giga_bit_operations: float
    #: Block-cache hit/lookup deltas over the measured window (None = no cache).
    cache_hits: Optional[int]
    cache_lookups: Optional[int]
    #: Measured requests whose future carried an exception.
    failures: int = 0

    @property
    def achieved_qps(self) -> float:
        """Successfully served requests per second of measured wall-clock."""
        if self.measured_seconds <= 0:
            return 0.0
        return (self.requests - self.failures) / self.measured_seconds

    @property
    def failure_rate(self) -> float:
        """Failed fraction of the measured requests."""
        return self.failures / self.requests if self.requests else 0.0

    @property
    def cache_hit_rate(self) -> float:
        """Hit rate over the measured window (0 when no cache is attached)."""
        if not self.cache_lookups:
            return 0.0
        return self.cache_hits / self.cache_lookups


def metrics_from_run(run: LoadRunResult, deadline_ms: float) -> dict:
    """The full ``kind="loadtest"`` metric set of one measured window."""
    from repro.loadgen.report import summarize_latencies

    metrics = summarize_latencies(run.latencies_seconds, deadline_ms)
    metrics.update({
        "requests": run.requests,
        "offered_qps": float(run.offered_qps),
        "achieved_qps": float(run.achieved_qps),
        "cache_hit_rate": float(run.cache_hit_rate),
        "failure_rate": float(run.failure_rate),
    })
    return metrics


def _cache_counters(engine: AsyncServingEngine) -> Optional[Tuple[int, int]]:
    """(hits, lookups) of the session's block cache, or None without one."""
    stats = getattr(engine.session, "cache_stats", lambda: None)()
    return None if stats is None else (stats.hits, stats.lookups)


class _CompletionTracker:
    """Done-callback sink for one open-loop replay.

    ``Future.result()`` can return on the waiting thread *before* the
    future's done callbacks have run (callbacks fire after the result is
    set, on the resolving thread) — reading the completion array right
    after ``result()`` therefore races the recorder and can observe an
    unwritten slot (a zero timestamp, i.e. a hugely negative latency).
    The tracker counts callbacks down and :meth:`wait` blocks until every
    recorder has actually written its slot.
    """

    def __init__(self, count: int) -> None:
        self.completions = np.zeros(count, dtype=np.float64)
        self.failed = np.zeros(count, dtype=bool)
        self._remaining = count
        self._lock = threading.Lock()
        self._all_done = threading.Event()

    def recorder(self, index: int) -> Callable[[Any], None]:
        def record(future: Any) -> None:
            self.completions[index] = time.perf_counter()
            try:
                self.failed[index] = future.exception() is not None
            except Exception:  # cancelled futures raise from .exception()
                self.failed[index] = True
            with self._lock:
                self._remaining -= 1
                if self._remaining == 0:
                    self._all_done.set()
        return record

    def wait(self) -> None:
        self._all_done.wait()


def _replay_open(engine: AsyncServingEngine,
                 trace: LoadTrace) -> Tuple[np.ndarray, float, int]:
    """Submit at scheduled arrivals; latency = completion − scheduled arrival.

    Returns ``(latencies of successful requests, measured wall-clock,
    failure count)``.
    """
    count = trace.num_requests
    tracker = _CompletionTracker(count)

    first_submit = 0.0
    start = time.perf_counter()
    for index, (arrival, nodes) in enumerate(zip(trace.arrivals,
                                                 trace.requests)):
        delay = start + float(arrival) - time.perf_counter()
        if delay > 0:
            time.sleep(delay)
        if index == 0:
            first_submit = time.perf_counter()
        engine.submit(nodes).add_done_callback(tracker.recorder(index))
    engine.flush_now()
    # Synchronise on the *callbacks*, not on Future.result(): see
    # _CompletionTracker.  This also makes a failed request a counted
    # outcome instead of an exception that aborts the whole replay.
    tracker.wait()
    latencies = tracker.completions - (start + trace.arrivals)
    # The measured window opens at the first *actual* submit, not at the
    # replay clock's zero: a trace whose first arrival is offset (a warm-up
    # tail, a sliced trace) would otherwise count idle lead-in as load time
    # and deflate achieved_qps.  Failed requests still close the window —
    # the engine spent wall-clock on them.
    measured = float(tracker.completions.max() - first_submit)
    return latencies[~tracker.failed], measured, int(tracker.failed.sum())


def _replay_closed(engine: AsyncServingEngine, trace: LoadTrace,
                   clients: int) -> Tuple[np.ndarray, float, int]:
    """N clients, each back-to-back over a shared request queue.

    Returns ``(latencies of successful requests, measured wall-clock,
    failure count)``.
    """
    count = trace.num_requests
    latencies = np.zeros(count, dtype=np.float64)
    failed = np.zeros(count, dtype=bool)
    cursor = iter(range(count))
    lock = threading.Lock()

    def client_loop() -> None:
        while True:
            with lock:
                index = next(cursor, None)
            if index is None:
                return
            try:
                result = engine.submit(trace.requests[index]).result()
            except Exception:
                # A failed request must not kill its client thread: the
                # remaining queue would never be drained and the run would
                # under-report by a whole client's worth of traffic.
                failed[index] = True
                continue
            latencies[index] = result.latency_seconds

    threads = [threading.Thread(target=client_loop,
                                name=f"repro-loadgen-client-{i}")
               for i in range(max(1, int(clients)))]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    measured = time.perf_counter() - start
    return latencies[~failed], float(measured), int(failed.sum())


def run_load(engine: AsyncServingEngine, trace: LoadTrace, *,
             mode: str = "open", clients: int = 4,
             warmup_requests: int = 0) -> LoadRunResult:
    """Replay a trace through a running engine and measure the window.

    ``warmup_requests`` requests are taken off the *head* of the trace,
    served closed-loop, and excluded from every reported number (engine
    stats are reset at the warm-up boundary); the measured window replays
    the remainder in the requested ``mode``.
    """
    if mode not in MODES:
        raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
    if trace.num_requests == 0:
        raise ValueError("cannot replay an empty trace")

    warmup_requests = max(0, min(int(warmup_requests),
                                 trace.num_requests - 1))
    if warmup_requests:
        for nodes in trace.requests[:warmup_requests]:
            try:
                engine.submit(nodes).result()
            except Exception:
                # Warm-up exists to heat caches, not to measure: a failed
                # warm-up request costs some warmth, never the run.
                pass
    measured_trace = trace.tail(warmup_requests)

    # Warm-up boundary: every warm-up future has resolved, so its flush's
    # counters are committed and the reset cannot race the dispatcher.
    engine.reset_stats()
    cache_before = _cache_counters(engine)

    if mode == "open":
        latencies, measured, failures = _replay_open(engine, measured_trace)
        offered = measured_trace.config.qps
    else:
        latencies, measured, failures = _replay_closed(engine, measured_trace,
                                                       clients)
        offered = measured_trace.num_requests / measured if measured > 0 else 0.0
    if failures >= measured_trace.num_requests:
        raise RuntimeError(
            f"every measured request failed ({failures} of "
            f"{measured_trace.num_requests}); no latencies to summarise")

    cache_after = _cache_counters(engine)
    cache_hits = cache_lookups = None
    if cache_before is not None and cache_after is not None:
        cache_hits = cache_after[0] - cache_before[0]
        cache_lookups = cache_after[1] - cache_before[1]

    stats = engine.stats
    return LoadRunResult(
        latencies_seconds=latencies,
        measured_seconds=measured,
        offered_qps=float(offered),
        requests=measured_trace.num_requests,
        nodes=stats.nodes,
        micro_batches=stats.micro_batches,
        giga_bit_operations=stats.giga_bit_operations,
        cache_hits=cache_hits,
        cache_lookups=cache_lookups,
        failures=failures,
    )
