"""Traffic replay against :class:`~repro.serving.AsyncServingEngine`.

:func:`run_load` drives one deterministic :class:`~repro.loadgen.traffic.
LoadTrace` through a running engine and measures what production would
see:

* **Open-loop** replay submits each request at its scheduled arrival time
  regardless of completions, so queueing delay under overload is *measured*
  instead of hidden — per-request latency is ``completion − scheduled
  arrival`` (coordinated-omission-free), not ``completion − submit``.
* **Closed-loop** replay runs ``clients`` threads that each submit the next
  request the moment their previous one completes — the classic N-client
  saturation probe.  Arrival times in the trace are ignored; latency is the
  engine-reported queue + service time.

An optional warm-up prefix serves the head of the trace first and then
calls :meth:`~repro.serving.ServingEngine.reset_stats` (and snapshots the
block-cache counters), so the reported window measures steady state — the
cache hit rate is a *delta* over the measured window, not a lifetime
average diluted by cold misses.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Optional, Tuple

import numpy as np

from repro.loadgen.traffic import LoadTrace
from repro.serving.async_engine import AsyncServingEngine

#: Replay modes :func:`run_load` understands.
MODES = ("open", "closed")


@dataclass(frozen=True)
class LoadRunResult:
    """Raw measurements of one replayed window (summarised by
    :func:`~repro.loadgen.report.summarize_latencies` /
    :func:`metrics_from_run`)."""

    #: Per-request latency, aligned with the measured trace order.
    latencies_seconds: np.ndarray
    #: Wall-clock span of the measured window (first submit → last completion).
    measured_seconds: float
    #: The rate the trace offered (closed-loop: the achieved rate).
    offered_qps: float
    requests: int
    nodes: int
    micro_batches: int
    giga_bit_operations: float
    #: Block-cache hit/lookup deltas over the measured window (None = no cache).
    cache_hits: Optional[int]
    cache_lookups: Optional[int]

    @property
    def achieved_qps(self) -> float:
        return self.requests / self.measured_seconds \
            if self.measured_seconds > 0 else 0.0

    @property
    def cache_hit_rate(self) -> float:
        """Hit rate over the measured window (0 when no cache is attached)."""
        if not self.cache_lookups:
            return 0.0
        return self.cache_hits / self.cache_lookups


def metrics_from_run(run: LoadRunResult, deadline_ms: float) -> dict:
    """The full ``kind="loadtest"`` metric set of one measured window."""
    from repro.loadgen.report import summarize_latencies

    metrics = summarize_latencies(run.latencies_seconds, deadline_ms)
    metrics.update({
        "requests": run.requests,
        "offered_qps": float(run.offered_qps),
        "achieved_qps": float(run.achieved_qps),
        "cache_hit_rate": float(run.cache_hit_rate),
    })
    return metrics


def _cache_counters(engine: AsyncServingEngine) -> Optional[Tuple[int, int]]:
    """(hits, lookups) of the session's block cache, or None without one."""
    stats = getattr(engine.session, "cache_stats", lambda: None)()
    return None if stats is None else (stats.hits, stats.lookups)


def _replay_open(engine: AsyncServingEngine,
                 trace: LoadTrace) -> Tuple[np.ndarray, float]:
    """Submit at scheduled arrivals; latency = completion − scheduled arrival."""
    count = trace.num_requests
    completions = np.zeros(count, dtype=np.float64)

    def completion_recorder(index: int) -> Callable[[object], None]:
        def record(_future: object) -> None:
            completions[index] = time.perf_counter()
        return record

    futures = []
    first_submit = 0.0
    start = time.perf_counter()
    for index, (arrival, nodes) in enumerate(zip(trace.arrivals,
                                                 trace.requests)):
        delay = start + float(arrival) - time.perf_counter()
        if delay > 0:
            time.sleep(delay)
        if index == 0:
            first_submit = time.perf_counter()
        future = engine.submit(nodes)
        future.add_done_callback(completion_recorder(index))
        futures.append(future)
    engine.flush_now()
    for future in futures:
        future.result()
    latencies = completions - (start + trace.arrivals)
    # The measured window opens at the first *actual* submit, not at the
    # replay clock's zero: a trace whose first arrival is offset (a warm-up
    # tail, a sliced trace) would otherwise count idle lead-in as load time
    # and deflate achieved_qps.
    measured = float(completions.max() - first_submit)
    return latencies, measured


def _replay_closed(engine: AsyncServingEngine, trace: LoadTrace,
                   clients: int) -> Tuple[np.ndarray, float]:
    """N clients, each back-to-back over a shared request queue."""
    count = trace.num_requests
    latencies = np.zeros(count, dtype=np.float64)
    cursor = iter(range(count))
    lock = threading.Lock()

    def client_loop() -> None:
        while True:
            with lock:
                index = next(cursor, None)
            if index is None:
                return
            result = engine.submit(trace.requests[index]).result()
            latencies[index] = result.latency_seconds

    threads = [threading.Thread(target=client_loop,
                                name=f"repro-loadgen-client-{i}")
               for i in range(max(1, int(clients)))]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    measured = time.perf_counter() - start
    return latencies, float(measured)


def run_load(engine: AsyncServingEngine, trace: LoadTrace, *,
             mode: str = "open", clients: int = 4,
             warmup_requests: int = 0) -> LoadRunResult:
    """Replay a trace through a running engine and measure the window.

    ``warmup_requests`` requests are taken off the *head* of the trace,
    served closed-loop, and excluded from every reported number (engine
    stats are reset at the warm-up boundary); the measured window replays
    the remainder in the requested ``mode``.
    """
    if mode not in MODES:
        raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
    if trace.num_requests == 0:
        raise ValueError("cannot replay an empty trace")

    warmup_requests = max(0, min(int(warmup_requests),
                                 trace.num_requests - 1))
    if warmup_requests:
        for nodes in trace.requests[:warmup_requests]:
            engine.submit(nodes).result()
    measured_trace = trace.tail(warmup_requests)

    # Warm-up boundary: every warm-up future has resolved, so its flush's
    # counters are committed and the reset cannot race the dispatcher.
    engine.reset_stats()
    cache_before = _cache_counters(engine)

    if mode == "open":
        latencies, measured = _replay_open(engine, measured_trace)
        offered = measured_trace.config.qps
    else:
        latencies, measured = _replay_closed(engine, measured_trace, clients)
        offered = measured_trace.num_requests / measured if measured > 0 else 0.0

    cache_after = _cache_counters(engine)
    cache_hits = cache_lookups = None
    if cache_before is not None and cache_after is not None:
        cache_hits = cache_after[0] - cache_before[0]
        cache_lookups = cache_after[1] - cache_before[1]

    stats = engine.stats
    return LoadRunResult(
        latencies_seconds=latencies,
        measured_seconds=measured,
        offered_qps=float(offered),
        requests=measured_trace.num_requests,
        nodes=stats.nodes,
        micro_batches=stats.micro_batches,
        giga_bit_operations=stats.giga_bit_operations,
        cache_hits=cache_hits,
        cache_lookups=cache_lookups,
    )
