"""Temporal traces: interleaved graph updates and queries, replayed live.

Streaming serving is only worth its machinery if it holds up under the
traffic shape that motivates it — queries arriving *while* the graph
changes underneath them.  This module generates that shape as a pure
function of a :class:`TemporalConfig` (same config, same trace, bit for
bit, like :mod:`repro.loadgen.traffic` before it) and replays it through
an :class:`~repro.serving.AsyncServingEngine` whose session supports
:class:`~repro.streaming.GraphDelta` updates.

The event stream interleaves the deterministic query trace of a wrapped
:class:`~repro.loadgen.traffic.TrafficConfig` with update events every
``update_every`` queries.  Updates cycle through the three delta kinds —
edge additions, feature overwrites, edge removals — with removals drawn
only from edges a previous update of the same trace added, so a temporal
trace is always applicable to the base graph regardless of its edge list.

Replay (:func:`run_stream`) submits updates through
:meth:`~repro.serving.AsyncServingEngine.submit_update` and waits for each
update future before offering the next query, so served versions are
deterministic: every query in the trace observes exactly the updates that
precede it.  Query failures are counted, not fatal (same accounting as
:func:`~repro.loadgen.harness.run_load`); a failed *update* raises — a
trace that cannot apply its own deltas is a harness bug, not load.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.loadgen.harness import LoadRunResult, _CompletionTracker, \
    metrics_from_run
from repro.loadgen.traffic import TrafficConfig, generate_trace
from repro.serving.async_engine import AsyncServingEngine
from repro.streaming import GraphDelta

#: Update kinds a temporal trace cycles through, in order.
UPDATE_KINDS = ("add_edges", "update_features", "remove_edges")


@dataclass(frozen=True)
class TemporalConfig:
    """Full description of one deterministic update/query stream.

    Parameters
    ----------
    traffic:
        The wrapped query-traffic config; its ``num_nodes`` is also the
        id space updates draw endpoints from.
    update_every:
        One update event after every this-many queries (0 disables
        updates, degenerating to plain traffic).
    edges_per_update:
        Edges added (or removed) per edge-kind update.
    feature_nodes_per_update:
        Feature rows overwritten per feature-kind update.
    num_features:
        Width of the served graph's feature matrix (replacement rows must
        match it).
    seed:
        Root of the update generator — deliberately separate from the
        traffic seed so the same query trace can be replayed under
        different update schedules.
    """

    traffic: TrafficConfig
    update_every: int = 8
    edges_per_update: int = 4
    feature_nodes_per_update: int = 2
    num_features: int = 32
    seed: int = 0

    def __post_init__(self) -> None:
        if self.update_every < 0:
            raise ValueError("update_every must be non-negative")
        if self.edges_per_update <= 0:
            raise ValueError("edges_per_update must be positive")
        if self.feature_nodes_per_update <= 0:
            raise ValueError("feature_nodes_per_update must be positive")
        if self.feature_nodes_per_update > self.traffic.num_nodes:
            raise ValueError("feature_nodes_per_update must not exceed "
                             "num_nodes")
        if self.num_features <= 0:
            raise ValueError("num_features must be positive")


@dataclass(frozen=True)
class TemporalEvent:
    """One stream event: a query (seed nodes) or an update (a delta)."""

    #: Seconds from stream start, non-decreasing.
    arrival: float
    #: ``"query"`` or one of :data:`UPDATE_KINDS`.
    kind: str
    #: Seed nodes (query events only).
    nodes: Optional[np.ndarray] = None
    #: The delta to apply (update events only).
    delta: Optional[GraphDelta] = None

    @property
    def is_query(self) -> bool:
        return self.kind == "query"


@dataclass(frozen=True)
class TemporalTrace:
    """One replayable update/query stream."""

    events: Tuple[TemporalEvent, ...]
    config: TemporalConfig

    @property
    def num_queries(self) -> int:
        return sum(1 for event in self.events if event.is_query)

    @property
    def num_updates(self) -> int:
        return len(self.events) - self.num_queries


def generate_temporal_trace(config: TemporalConfig) -> TemporalTrace:
    """Materialise the deterministic event stream a config describes.

    Update events inherit the arrival time of the query they precede
    (they apply at that flush boundary, consuming no offered-load time of
    their own).  Removals draw from the pool of previously *added* unique
    edges, each pair removed at most once, so every delta in the stream
    is valid against the base graph whatever its edge list holds.
    """
    query_trace = generate_trace(config.traffic)
    rng = np.random.default_rng(config.seed)
    num_nodes = config.traffic.num_nodes

    events: List[TemporalEvent] = []
    added_pool: List[Tuple[int, int]] = []
    update_index = 0
    for position, (arrival, nodes) in enumerate(zip(query_trace.arrivals,
                                                    query_trace.requests)):
        if config.update_every and position \
                and position % config.update_every == 0:
            kind = UPDATE_KINDS[update_index % len(UPDATE_KINDS)]
            update_index += 1
            delta: Optional[GraphDelta] = None
            if kind == "add_edges":
                edges = rng.integers(0, num_nodes,
                                     size=(2, config.edges_per_update))
                weights = rng.random(config.edges_per_update) \
                    .astype(np.float32) + np.float32(0.5)
                delta = GraphDelta(added_edges=edges, added_weights=weights)
                # Deduplicate per update: removal drops every occurrence
                # of a pair, so one pool entry per distinct pair.
                seen = set(added_pool)
                for u, v in zip(edges[0], edges[1]):
                    pair = (int(u), int(v))
                    if pair not in seen:
                        seen.add(pair)
                        added_pool.append(pair)
            elif kind == "update_features":
                feature_nodes = rng.choice(
                    num_nodes, size=config.feature_nodes_per_update,
                    replace=False).astype(np.int64)
                rows = rng.random((config.feature_nodes_per_update,
                                   config.num_features)).astype(np.float32)
                delta = GraphDelta(feature_nodes=feature_nodes, features=rows)
            else:  # remove_edges — only ever edges this trace added
                take = min(config.edges_per_update, len(added_pool))
                if take:
                    chosen = rng.choice(len(added_pool), size=take,
                                        replace=False)
                    pairs = [added_pool[int(i)] for i in sorted(chosen)]
                    for pair in pairs:
                        added_pool.remove(pair)
                    edges = np.asarray(pairs, dtype=np.int64).T
                    delta = GraphDelta(removed_edges=edges)
            if delta is not None:
                events.append(TemporalEvent(arrival=float(arrival),
                                            kind=kind, delta=delta))
        events.append(TemporalEvent(arrival=float(arrival), kind="query",
                                    nodes=nodes))
    return TemporalTrace(events=tuple(events), config=config)


@dataclass(frozen=True)
class StreamRunResult:
    """Measurements of one replayed temporal stream.

    Query accounting matches :class:`~repro.loadgen.harness.LoadRunResult`
    exactly (it is one, in :attr:`load`); the stream adds the applied
    update count and the graph version the stream ended at.
    """

    load: LoadRunResult
    updates: int
    final_version: int


def metrics_from_stream(result: StreamRunResult, deadline_ms: float) -> dict:
    """The ``kind="loadtest"`` metric set of one stream, plus update counts."""
    metrics = metrics_from_run(result.load, deadline_ms)
    metrics.update({
        "updates": result.updates,
        "final_version": result.final_version,
    })
    return metrics


def run_stream(engine: AsyncServingEngine, trace: TemporalTrace, *,
               warmup_events: int = 0) -> StreamRunResult:
    """Replay a temporal trace open-loop through a running engine.

    ``warmup_events`` events from the head of the stream are served
    (queries awaited, updates applied) before the measured window opens
    with an engine-stats reset, mirroring
    :func:`~repro.loadgen.harness.run_load`'s warm-up semantics.  Each
    update future is awaited before the next event is offered — an update
    that fails raises — so the version every query is served at is a pure
    function of the trace.
    """
    from repro.loadgen.harness import _cache_counters

    events = trace.events
    warmup_events = max(0, min(int(warmup_events), len(events) - 1))
    updates = 0
    for event in events[:warmup_events]:
        if event.is_query:
            try:
                engine.submit(event.nodes).result()
            except Exception:
                pass  # warm-up heats caches; it never fails the run
        else:
            engine.submit_update(event.delta).result()
            updates += 1

    measured = events[warmup_events:]
    query_count = sum(1 for event in measured if event.is_query)
    if query_count == 0:
        raise ValueError("the measured window needs at least one query")
    engine.reset_stats()
    cache_before = _cache_counters(engine)

    tracker = _CompletionTracker(query_count)
    arrivals = np.zeros(query_count, dtype=np.float64)
    base = measured[0].arrival
    query_index = 0
    first_submit = 0.0
    start = time.perf_counter()
    for event in measured:
        offset = event.arrival - base
        delay = start + offset - time.perf_counter()
        if delay > 0:
            time.sleep(delay)
        if event.is_query:
            if query_index == 0:
                first_submit = time.perf_counter()
            arrivals[query_index] = offset
            engine.submit(event.nodes) \
                .add_done_callback(tracker.recorder(query_index))
            query_index += 1
        else:
            # Await the version bump: queries after this point are served
            # at the new version, which keeps the stream deterministic.
            engine.submit_update(event.delta).result()
            updates += 1
    engine.flush_now()
    tracker.wait()

    failures = int(tracker.failed.sum())
    if failures >= query_count:
        raise RuntimeError(f"every measured query failed ({failures} of "
                           f"{query_count}); no latencies to summarise")
    latencies = tracker.completions - (start + arrivals)
    measured_seconds = float(tracker.completions.max() - first_submit)

    cache_after = _cache_counters(engine)
    cache_hits = cache_lookups = None
    if cache_before is not None and cache_after is not None:
        cache_hits = cache_after[0] - cache_before[0]
        cache_lookups = cache_after[1] - cache_before[1]

    stats = engine.stats
    load = LoadRunResult(
        latencies_seconds=latencies[~tracker.failed],
        measured_seconds=measured_seconds,
        offered_qps=float(trace.config.traffic.qps),
        requests=query_count,
        nodes=stats.nodes,
        micro_batches=stats.micro_batches,
        giga_bit_operations=stats.giga_bit_operations,
        cache_hits=cache_hits,
        cache_lookups=cache_lookups,
        failures=failures,
    )
    return StreamRunResult(load=load, updates=updates,
                           final_version=engine.session.graph.version)
