"""Traffic-replay load harness for the serving stack.

Three pieces, used together by ``repro loadtest`` and the benchmarks:

* :mod:`repro.loadgen.traffic` — deterministic production-shaped traffic
  (zipfian seed popularity, Poisson / fixed-rate open-loop arrivals).
* :mod:`repro.loadgen.harness` — open- and closed-loop replay against an
  :class:`~repro.serving.AsyncServingEngine`, with a warm-up phase,
  steady-state cache-delta accounting, and per-request failure counting.
* :mod:`repro.loadgen.temporal` — dynamic-graph streams: deterministic
  interleavings of :class:`~repro.streaming.GraphDelta` updates and
  queries, replayed live for ``repro streamtest``.
* :mod:`repro.loadgen.report` — the versioned ``BENCH_*.json`` perf
  trajectory format shared with the benchmark suite and gated in CI by
  ``tools/check_bench.py``.
"""

from repro.loadgen.harness import LoadRunResult, metrics_from_run, run_load
from repro.loadgen.report import LOADTEST_REQUIRED_METRICS, summarize_latencies
from repro.loadgen.temporal import (
    UPDATE_KINDS,
    StreamRunResult,
    TemporalConfig,
    TemporalEvent,
    TemporalTrace,
    generate_temporal_trace,
    metrics_from_stream,
    run_stream,
)
from repro.loadgen.traffic import (
    ARRIVALS,
    PATTERNS,
    LoadTrace,
    TrafficConfig,
    generate_trace,
)

__all__ = [
    "ARRIVALS",
    "LOADTEST_REQUIRED_METRICS",
    "PATTERNS",
    "UPDATE_KINDS",
    "LoadRunResult",
    "LoadTrace",
    "StreamRunResult",
    "TemporalConfig",
    "TemporalEvent",
    "TemporalTrace",
    "TrafficConfig",
    "generate_temporal_trace",
    "generate_trace",
    "metrics_from_run",
    "metrics_from_stream",
    "run_load",
    "run_stream",
    "summarize_latencies",
]
