"""Traffic-replay load harness for the serving stack.

Three pieces, used together by ``repro loadtest`` and the benchmarks:

* :mod:`repro.loadgen.traffic` — deterministic production-shaped traffic
  (zipfian seed popularity, Poisson / fixed-rate open-loop arrivals).
* :mod:`repro.loadgen.harness` — open- and closed-loop replay against an
  :class:`~repro.serving.AsyncServingEngine`, with a warm-up phase and
  steady-state cache-delta accounting.
* :mod:`repro.loadgen.report` — the versioned ``BENCH_*.json`` perf
  trajectory format shared with the benchmark suite and gated in CI by
  ``tools/check_bench.py``.
"""

from repro.loadgen.harness import LoadRunResult, metrics_from_run, run_load
from repro.loadgen.report import LOADTEST_REQUIRED_METRICS, summarize_latencies
from repro.loadgen.traffic import (
    ARRIVALS,
    PATTERNS,
    LoadTrace,
    TrafficConfig,
    generate_trace,
)

__all__ = [
    "ARRIVALS",
    "LOADTEST_REQUIRED_METRICS",
    "PATTERNS",
    "LoadRunResult",
    "LoadTrace",
    "TrafficConfig",
    "generate_trace",
    "metrics_from_run",
    "run_load",
    "summarize_latencies",
]
