"""Message-passing base class (matrix MPNN formulation, Equation 2 of the paper).

A layer is decomposed into the three functions of the MPNN framework:

* ``message`` — a transformation ``M`` of the previous embeddings;
* ``aggregate`` — the permutation-invariant reduction, realised as the
  sparse-dense product with the (normalised) adjacency matrix;
* ``update`` — the transformation ``U`` applied to the aggregated messages.

Sub-classes override whichever piece differs; quantization wrappers in
:mod:`repro.quant` and :mod:`repro.core` insert quantizers precisely around
these three functions, which is how the paper defines its per-component
bit-width search space.

Layers propagate either over a full :class:`~repro.graphs.graph.Graph` or
over a bipartite :class:`~repro.graphs.sampling.SubgraphBlock` from the
neighbor-sampling minibatch engine.  A block exposes the same adjacency
accessors as a graph (``adjacency`` / ``normalized_adjacency``) with shape
``(num_dst, num_src)``, so aggregation is the same sparse-dense product; the
only bipartite adaptation is that the update/root term uses the target-side
slice of the features (:func:`~repro.graphs.sampling.target_features`).
"""

from __future__ import annotations

from typing import Optional, Union

from repro.graphs.graph import Graph
from repro.graphs.sampling import SubgraphBlock, target_features
from repro.nn.module import Module
from repro.tensor.sparse import SparseTensor, spmm
from repro.tensor.tensor import Tensor

#: What a layer can propagate over.
GraphLike = Union[Graph, SubgraphBlock]


class MessagePassing(Module):
    """Base class for adjacency-matrix message-passing layers."""

    #: Propagation steps one layer consumes.  Single-hop for every layer
    #: except :class:`~repro.gnn.tag.TAGConv`-style polynomial filters, which
    #: override it; samplers must emit one bipartite block per *hop*, so the
    #: block count of a model is ``sum(conv.hops)``, not ``len(convs)``
    #: (see :func:`~repro.gnn.models.hop_plan`).
    hops: int = 1

    def __init__(self):
        super().__init__()

    # ------------------------------------------------------------------ #
    # pieces of the MPNN decomposition
    # ------------------------------------------------------------------ #
    def message(self, x: Tensor) -> Tensor:
        """The per-node message function ``M`` (identity by default)."""
        return x

    def aggregate(self, adjacency: SparseTensor, messages: Tensor) -> Tensor:
        """Aggregate messages with the adjacency matrix (``A @ M(H)``)."""
        return spmm(adjacency, messages)

    def update(self, aggregated: Tensor, x: Tensor) -> Tensor:
        """The update function ``U`` (identity by default)."""
        return aggregated

    # ------------------------------------------------------------------ #
    def adjacency_for(self, graph: GraphLike) -> SparseTensor:
        """Which adjacency this layer propagates over (raw by default)."""
        return graph.adjacency(add_self_loops=False)

    def propagate(self, graph: GraphLike, x: Tensor,
                  adjacency: Optional[SparseTensor] = None) -> Tensor:
        """Full message-passing step: message, aggregate, update.

        On a bipartite block the update function receives the target-side
        rows of ``x`` so root terms stay shape-compatible with the
        ``(num_dst, ...)`` aggregation output.
        """
        if adjacency is None:
            adjacency = self.adjacency_for(graph)
        messages = self.message(x)
        aggregated = self.aggregate(adjacency, messages)
        return self.update(aggregated, target_features(x, graph))

    def forward(self, x: Tensor, graph: GraphLike) -> Tensor:
        return self.propagate(graph, x)

    # ------------------------------------------------------------------ #
    # cost accounting used by the BitOPs metric and Figure 1
    # ------------------------------------------------------------------ #
    def aggregation_operations(self, graph: Graph, num_features: int) -> int:
        """Scalar operations for the sparse-dense aggregation on ``graph``."""
        nnz = graph.adjacency(add_self_loops=True).nnz
        return 2 * nnz * num_features

    def operation_count(self, graph: Graph) -> int:
        """Total scalar operations for one forward pass (sub-classes refine)."""
        return self.aggregation_operations(graph, graph.num_features)
