"""Graph Convolutional Network layer (Kipf & Welling, 2017).

Matrix form used by the paper: ``H' = \\hat{A} H \\Theta`` with
``\\hat{A} = D^{-1/2}(I + A)D^{-1/2}``.  The message function is the
learnable linear transformation, aggregation is the normalised-adjacency
product, and the update function is the identity (the non-linearity lives in
the surrounding architecture).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.gnn.message_passing import GraphLike, MessagePassing
from repro.graphs.graph import Graph
from repro.nn.linear import Linear
from repro.tensor.sparse import SparseTensor
from repro.tensor.tensor import Tensor


class GCNConv(MessagePassing):
    """One GCN convolution ``\\hat{A} X \\Theta``."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.linear = Linear(in_features, out_features, bias=bias, rng=rng)

    def adjacency_for(self, graph: GraphLike) -> SparseTensor:
        # Blocks expose the same accessor with degree-renormalised values.
        return graph.normalized_adjacency()

    def message(self, x: Tensor) -> Tensor:
        return self.linear(x)

    def forward(self, x: Tensor, graph: GraphLike) -> Tensor:
        return self.propagate(graph, x)

    def operation_count(self, graph: Graph) -> int:
        transform = self.linear.operation_count(graph.num_nodes)
        aggregate = self.aggregation_operations(graph, self.out_features)
        return transform + aggregate

    def __repr__(self) -> str:
        return f"GCNConv({self.in_features} -> {self.out_features})"
