"""Topology-Adaptive Graph Convolution (Du et al., 2017).

``H' = sum_{k=0..K} \\hat{A}^k H Theta_k`` — a fixed-depth polynomial of the
normalised adjacency.  Used in the Figure 1 layer-family sweep.

Unlike the single-hop convolutions, one TAG layer consumes ``hops``
propagation steps, so in minibatch mode it is fed a *stack* of ``hops``
bipartite :class:`~repro.graphs.sampling.SubgraphBlock` s (its per-layer hop
plan): block ``k`` realises multiplication by ``\\hat{A}`` at hop ``k``, and
because every block's source side starts with its targets — and target
prefixes nest across the stack — the hop-``k`` term restricted to the
layer's final targets is simply ``propagated[:num_final]``.  Samplers must
therefore emit one block *per hop*, not per layer (see
:func:`~repro.gnn.models.hop_plan`).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

from repro.gnn.message_passing import MessagePassing
from repro.graphs.graph import Graph
from repro.graphs.sampling import SubgraphBlock
from repro.nn.linear import Linear
from repro.nn.module import ModuleList
from repro.tensor.sparse import spmm
from repro.tensor.tensor import Tensor

#: What a TAG layer propagates over: a full graph, or one block per hop.
TAGGraphLike = Union[Graph, SubgraphBlock, Sequence[SubgraphBlock]]


def hop_views(graph: TAGGraphLike, hops: int) -> List:
    """Normalise a TAG layer's input into one graph view per hop.

    A full :class:`Graph` is reused for every hop; a sequence of blocks must
    carry exactly ``hops`` entries (innermost hop first); a bare block is
    accepted only for single-hop layers.
    """
    if isinstance(graph, Graph):
        return [graph] * hops
    if isinstance(graph, SubgraphBlock):
        views: List = [graph]
    else:
        views = list(graph)
    if len(views) != hops:
        raise ValueError(
            f"a TAG layer with hops={hops} needs {hops} blocks per layer, "
            f"got {len(views)}; sampler fanouts must have one entry per hop")
    return views


class TAGConv(MessagePassing):
    """Topology-adaptive graph convolution with ``hops`` adjacency powers."""

    def __init__(self, in_features: int, out_features: int, hops: int = 3,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        if hops < 1:
            raise ValueError("TAGConv needs at least one hop")
        self.in_features = in_features
        self.out_features = out_features
        self.hops = hops
        self.linears = ModuleList(
            [Linear(in_features, out_features, bias=(k == 0), rng=rng)
             for k in range(hops + 1)])

    def forward(self, x: Tensor, graph: TAGGraphLike) -> Tensor:
        views = hop_views(graph, self.hops)
        last = views[-1]
        num_final = last.num_dst if isinstance(last, SubgraphBlock) else None
        output = self.linears[0](x if num_final is None else x[:num_final])
        propagated = x
        for hop, view in enumerate(views, start=1):
            propagated = spmm(view.normalized_adjacency(), propagated)
            term = propagated if num_final is None else propagated[:num_final]
            output = output + self.linears[hop](term)
        return output

    def operation_count(self, graph: Graph) -> int:
        aggregate = self.hops * self.aggregation_operations(graph, self.in_features)
        transform = sum(linear.operation_count(graph.num_nodes) for linear in self.linears)
        return aggregate + transform

    def __repr__(self) -> str:
        return f"TAGConv({self.in_features} -> {self.out_features}, hops={self.hops})"
