"""Topology-Adaptive Graph Convolution (Du et al., 2017).

``H' = sum_{k=0..K} \\hat{A}^k H Theta_k`` — a fixed-depth polynomial of the
normalised adjacency.  Used in the Figure 1 layer-family sweep.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.gnn.message_passing import MessagePassing
from repro.graphs.graph import Graph
from repro.nn.linear import Linear
from repro.nn.module import ModuleList
from repro.tensor.sparse import spmm
from repro.tensor.tensor import Tensor


class TAGConv(MessagePassing):
    """Topology-adaptive graph convolution with ``hops`` adjacency powers."""

    def __init__(self, in_features: int, out_features: int, hops: int = 3,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        if hops < 1:
            raise ValueError("TAGConv needs at least one hop")
        self.in_features = in_features
        self.out_features = out_features
        self.hops = hops
        self.linears = ModuleList(
            [Linear(in_features, out_features, bias=(k == 0), rng=rng)
             for k in range(hops + 1)])

    def forward(self, x: Tensor, graph: Graph) -> Tensor:
        adjacency = graph.normalized_adjacency()
        output = self.linears[0](x)
        propagated = x
        for hop in range(1, self.hops + 1):
            propagated = spmm(adjacency, propagated)
            output = output + self.linears[hop](propagated)
        return output

    def operation_count(self, graph: Graph) -> int:
        aggregate = self.hops * self.aggregation_operations(graph, self.in_features)
        transform = sum(linear.operation_count(graph.num_nodes) for linear in self.linears)
        return aggregate + transform

    def __repr__(self) -> str:
        return f"TAGConv({self.in_features} -> {self.out_features}, hops={self.hops})"
