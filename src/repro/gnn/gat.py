"""Graph attention layers (Velickovic et al., 2018; UniMP-style transformer).

Multi-head additive / dot-product attention: per-edge coefficients are
computed from the transformed endpoint embeddings — one score column per
head, shape ``(E, H)`` on the canonical edge list — normalised with a
scatter softmax over each node's incoming edges (independently per head),
and used as edge weights for per-head aggregation.  Head outputs merge by
``concat`` (hidden layers; per-head width ``out_features // heads``) or
``mean`` (output layers; per-head width ``out_features``), so the merged
layer width is always ``out_features`` and ``heads`` stays an internal
knob.  ``heads=1`` is bit-identical to the historical single-head layer.

Both layers propagate over a full :class:`~repro.graphs.graph.Graph` or a
bipartite :class:`~repro.graphs.sampling.SubgraphBlock`: scores are computed
directly on the canonical per-edge list (:func:`~repro.gnn.attention
.attention_edges`) and normalised with a scatter softmax over the target
side, so the same code path serves full-batch and neighbor-sampled
minibatch execution.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.gnn.attention import (
    attention_aggregate_operations,
    attention_edges,
    attention_head_dim,
    gat_score_operations,
    transformer_score_operations,
)
from repro.gnn.message_passing import GraphLike, MessagePassing
from repro.graphs.graph import Graph
from repro.nn import init
from repro.nn.linear import Linear
from repro.nn.module import Parameter
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor


def head_scores(transformed: Tensor, vectors: Tensor, heads: int,
                head_dim: int) -> Tensor:
    """Per-head score projections ``(N, H)``: column ``h`` is ``X_h @ a_h``.

    ``transformed`` is the ``(N, H * D)`` concatenation of the per-head
    feature slices and ``vectors`` the ``(D, H)`` attention parameters.  The
    single-head case is a plain matmul — multi-head slices each head's
    feature block out first, which for ``heads=1`` degenerates to the same
    product bit-for-bit.
    """
    if heads == 1:
        return transformed.matmul(vectors)
    columns = [transformed[:, h * head_dim:(h + 1) * head_dim]
               .matmul(vectors[:, h:h + 1]) for h in range(heads)]
    return Tensor.concatenate(columns, axis=1)


def merge_heads(aggregated: Tensor, heads: int, head_dim: int,
                head_merge: str) -> Tensor:
    """Merge per-head aggregations ``(N, H, D)`` into ``(N, out_features)``.

    ``concat`` flattens the head axis (a pure reshape); ``mean`` averages
    over it.  ``heads=1`` always takes the reshape path, which is the
    identity on the stored values.
    """
    if head_merge == "mean" and heads > 1:
        return aggregated.mean(axis=1)
    return aggregated.reshape(aggregated.shape[0], heads * head_dim)


class GATConv(MessagePassing):
    """One multi-head GAT convolution (``heads=1`` by default)."""

    def __init__(self, in_features: int, out_features: int,
                 negative_slope: float = 0.2, heads: int = 1,
                 head_merge: str = "concat",
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.negative_slope = negative_slope
        self.heads = int(heads)
        self.head_merge = head_merge
        self.head_dim = attention_head_dim(out_features, self.heads, head_merge)
        width = self.heads * self.head_dim
        self.linear = Linear(in_features, width, bias=False, rng=rng)
        self.attention_src = Parameter(init.glorot_uniform((self.head_dim, self.heads),
                                                           rng=rng),
                                       name="attention_src")
        self.attention_dst = Parameter(init.glorot_uniform((self.head_dim, self.heads),
                                                           rng=rng),
                                       name="attention_dst")
        self.bias = Parameter(init.zeros((out_features,)), name="bias")

    def forward(self, x: Tensor, graph: GraphLike) -> Tensor:
        # Attention is computed with self loops appended so every target
        # attends at least to itself; on a block the loop endpoints coincide
        # because sources start with the targets.
        edges = attention_edges(graph)
        transformed = self.linear(x)
        score_src = head_scores(transformed, self.attention_src,
                                self.heads, self.head_dim)
        score_dst = head_scores(transformed, self.attention_dst,
                                self.heads, self.head_dim)
        edge_scores = F.leaky_relu(score_src[edges.src] + score_dst[edges.dst],
                                   negative_slope=self.negative_slope)
        attention = F.scatter_softmax(edge_scores, edges.dst, edges.num_dst)
        per_head = transformed.reshape(-1, self.heads, self.head_dim)
        messages = per_head[edges.src] * attention.reshape(-1, self.heads, 1)
        aggregated = F.segment_sum(messages, edges.dst, edges.num_dst)
        merged = merge_heads(aggregated, self.heads, self.head_dim,
                             self.head_merge)
        return merged + self.bias

    def operation_count(self, graph: Graph) -> int:
        num_edges = graph.num_edges + graph.num_nodes
        transform = self.linear.operation_count(graph.num_nodes)
        scores = gat_score_operations(graph.num_nodes, num_edges,
                                      self.heads, self.head_dim)
        aggregate = attention_aggregate_operations(num_edges, self.heads,
                                                   self.head_dim)
        return transform + scores + aggregate

    def __repr__(self) -> str:
        return (f"GATConv({self.in_features} -> {self.out_features}, "
                f"heads={self.heads})")


class TransformerConv(MessagePassing):
    """Multi-head dot-product attention convolution (UniMP-style layer).

    Included for the Figure 1 sweep over layer families; identical interface
    to :class:`GATConv` but with scaled dot-product attention scores
    (``1 / sqrt(head_dim)``).
    """

    def __init__(self, in_features: int, out_features: int, heads: int = 1,
                 head_merge: str = "concat",
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.heads = int(heads)
        self.head_merge = head_merge
        self.head_dim = attention_head_dim(out_features, self.heads, head_merge)
        width = self.heads * self.head_dim
        self.query = Linear(in_features, width, bias=False, rng=rng)
        self.key = Linear(in_features, width, bias=False, rng=rng)
        self.value = Linear(in_features, width, bias=True, rng=rng)

    def forward(self, x: Tensor, graph: GraphLike) -> Tensor:
        edges = attention_edges(graph)
        queries = self.query(x).reshape(-1, self.heads, self.head_dim)
        keys = self.key(x).reshape(-1, self.heads, self.head_dim)
        values = self.value(x).reshape(-1, self.heads, self.head_dim)
        scale = 1.0 / np.sqrt(self.head_dim)
        edge_scores = (queries[edges.dst] * keys[edges.src]).sum(axis=-1) * scale
        attention = F.scatter_softmax(edge_scores, edges.dst, edges.num_dst)
        messages = values[edges.src] * attention.reshape(-1, self.heads, 1)
        aggregated = F.segment_sum(messages, edges.dst, edges.num_dst)
        return merge_heads(aggregated, self.heads, self.head_dim,
                           self.head_merge)

    def operation_count(self, graph: Graph) -> int:
        num_edges = graph.num_edges + graph.num_nodes
        transform = (self.query.operation_count(graph.num_nodes)
                     + self.key.operation_count(graph.num_nodes)
                     + self.value.operation_count(graph.num_nodes))
        scores = transformer_score_operations(num_edges, self.heads,
                                              self.head_dim)
        aggregate = attention_aggregate_operations(num_edges, self.heads,
                                                   self.head_dim)
        return transform + scores + aggregate

    def __repr__(self) -> str:
        return (f"TransformerConv({self.in_features} -> {self.out_features}, "
                f"heads={self.heads})")
