"""Graph Attention Network layer (Velickovic et al., 2018).

Single-head additive attention: per-edge coefficients are computed from the
transformed endpoint embeddings, normalised with a softmax over each node's
incoming edges, and used as edge weights for aggregation.  Used by the
Figure 1 operations-versus-accuracy benchmark; the quantization experiments
in the paper focus on GCN / GIN / GraphSAGE.

Both layers propagate over a full :class:`~repro.graphs.graph.Graph` or a
bipartite :class:`~repro.graphs.sampling.SubgraphBlock`: scores are computed
directly on the canonical per-edge list (:func:`~repro.gnn.attention
.attention_edges`) and normalised with a scatter softmax over the target
side, so the same code path serves full-batch and neighbor-sampled
minibatch execution.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.gnn.attention import attention_edges
from repro.gnn.message_passing import GraphLike, MessagePassing
from repro.graphs.graph import Graph
from repro.nn import init
from repro.nn.linear import Linear
from repro.nn.module import Parameter
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor


class GATConv(MessagePassing):
    """One single-head GAT convolution."""

    def __init__(self, in_features: int, out_features: int,
                 negative_slope: float = 0.2,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.negative_slope = negative_slope
        self.linear = Linear(in_features, out_features, bias=False, rng=rng)
        self.attention_src = Parameter(init.glorot_uniform((out_features, 1), rng=rng),
                                       name="attention_src")
        self.attention_dst = Parameter(init.glorot_uniform((out_features, 1), rng=rng),
                                       name="attention_dst")
        self.bias = Parameter(init.zeros((out_features,)), name="bias")

    def forward(self, x: Tensor, graph: GraphLike) -> Tensor:
        # Attention is computed with self loops appended so every target
        # attends at least to itself; on a block the loop endpoints coincide
        # because sources start with the targets.
        edges = attention_edges(graph)
        transformed = self.linear(x)
        score_src = transformed.matmul(self.attention_src).reshape(-1)
        score_dst = transformed.matmul(self.attention_dst).reshape(-1)
        edge_scores = F.leaky_relu(score_src[edges.src] + score_dst[edges.dst],
                                   negative_slope=self.negative_slope)
        attention = F.scatter_softmax(edge_scores.reshape(-1, 1), edges.dst,
                                      edges.num_dst)
        messages = transformed[edges.src] * attention
        aggregated = F.segment_sum(messages, edges.dst, edges.num_dst)
        return aggregated + self.bias

    def operation_count(self, graph: Graph) -> int:
        num_edges = graph.num_edges + graph.num_nodes
        transform = self.linear.operation_count(graph.num_nodes)
        scores = 4 * graph.num_nodes * self.out_features + 6 * num_edges
        aggregate = 2 * num_edges * self.out_features
        return transform + scores + aggregate

    def __repr__(self) -> str:
        return f"GATConv({self.in_features} -> {self.out_features})"


class TransformerConv(MessagePassing):
    """Dot-product attention convolution (UniMP-style transformer layer).

    Included for the Figure 1 sweep over layer families; identical interface
    to :class:`GATConv` but with scaled dot-product attention scores.
    """

    def __init__(self, in_features: int, out_features: int,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.query = Linear(in_features, out_features, bias=False, rng=rng)
        self.key = Linear(in_features, out_features, bias=False, rng=rng)
        self.value = Linear(in_features, out_features, bias=True, rng=rng)

    def forward(self, x: Tensor, graph: GraphLike) -> Tensor:
        edges = attention_edges(graph)
        queries = self.query(x)
        keys = self.key(x)
        values = self.value(x)
        scale = 1.0 / np.sqrt(self.out_features)
        edge_scores = (queries[edges.dst] * keys[edges.src]).sum(
            axis=-1, keepdims=True) * scale
        attention = F.scatter_softmax(edge_scores, edges.dst, edges.num_dst)
        messages = values[edges.src] * attention
        return F.segment_sum(messages, edges.dst, edges.num_dst)

    def operation_count(self, graph: Graph) -> int:
        num_edges = graph.num_edges + graph.num_nodes
        transform = (self.query.operation_count(graph.num_nodes)
                     + self.key.operation_count(graph.num_nodes)
                     + self.value.operation_count(graph.num_nodes))
        scores = 2 * num_edges * self.out_features
        aggregate = 2 * num_edges * self.out_features
        return transform + scores + aggregate

    def __repr__(self) -> str:
        return f"TransformerConv({self.in_features} -> {self.out_features})"
