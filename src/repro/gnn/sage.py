"""GraphSAGE layer (Hamilton et al., 2017).

Matrix form used by the paper:
``H' = sigma(Theta_1 H + Theta_2 (A_mean H))`` where ``A_mean`` is the
row-normalised (mean) adjacency.  The paper's GraphSAGE case study
(Section 5.3.2) additionally uses neighbour sampling to cap node in-degree,
which :meth:`sample_adjacency` reproduces.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp

from repro.gnn.message_passing import GraphLike, MessagePassing
from repro.graphs.graph import Graph
from repro.graphs.sampling import SubgraphBlock, target_features
from repro.nn.linear import Linear
from repro.tensor.sparse import SparseTensor
from repro.tensor.tensor import Tensor


def mean_adjacency(graph: GraphLike) -> SparseTensor:
    """Row-normalised adjacency ``D^{-1} A`` (mean aggregation).

    Accepts a full graph or a bipartite block; on a block the division is by
    the *sampled* degree, which is exactly the degree renormalisation the
    fanout-capped minibatch engine needs.
    """
    adjacency = graph.adjacency(add_self_loops=False)
    degree = adjacency.row_sum()
    inverse = np.zeros_like(degree)
    positive = degree > 0
    inverse[positive] = 1.0 / degree[positive]
    coo = adjacency.csr.tocoo()
    return adjacency.with_values(inverse[coo.row] * coo.data)


def sample_adjacency(graph: Graph, max_neighbours: int,
                     rng: np.random.Generator) -> SparseTensor:
    """Neighbour-sampled mean adjacency: keep at most ``max_neighbours`` per row.

    This is GraphSAGE's node sampling, which the paper uses to bound node
    in-degree and therefore the magnitude of aggregated values (Section 5.3.2).
    """
    adjacency = graph.adjacency(add_self_loops=False).csr
    indptr = adjacency.indptr
    indices = adjacency.indices
    rows, cols, values = [], [], []
    for row in range(graph.num_nodes):
        neighbours = indices[indptr[row]:indptr[row + 1]]
        if neighbours.size == 0:
            continue
        if neighbours.size > max_neighbours:
            neighbours = rng.choice(neighbours, size=max_neighbours, replace=False)
        weight = 1.0 / neighbours.size
        rows.extend([row] * neighbours.size)
        cols.extend(neighbours.tolist())
        values.extend([weight] * neighbours.size)
    matrix = sp.csr_matrix((np.asarray(values, dtype=np.float32), (rows, cols)),
                           shape=(graph.num_nodes, graph.num_nodes))
    return SparseTensor(matrix)


class SAGEConv(MessagePassing):
    """One GraphSAGE convolution with mean aggregation."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 max_neighbours: Optional[int] = None,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.max_neighbours = max_neighbours
        self.linear_root = Linear(in_features, out_features, bias=bias, rng=rng)
        self.linear_neighbour = Linear(in_features, out_features, bias=False, rng=rng)
        self._sampling_rng = rng if rng is not None else np.random.default_rng(0)

    def adjacency_for(self, graph: GraphLike) -> SparseTensor:
        if isinstance(graph, SubgraphBlock):
            # Blocks arrive pre-sampled by the NeighborSampler.
            return mean_adjacency(graph)
        if self.max_neighbours is not None and self.training:
            return sample_adjacency(graph, self.max_neighbours, self._sampling_rng)
        return mean_adjacency(graph)

    def forward(self, x: Tensor, graph: GraphLike) -> Tensor:
        adjacency = self.adjacency_for(graph)
        aggregated = self.aggregate(adjacency, x)
        return self.linear_root(target_features(x, graph)) \
            + self.linear_neighbour(aggregated)

    def operation_count(self, graph: Graph) -> int:
        aggregate = self.aggregation_operations(graph, self.in_features)
        transform = (self.linear_root.operation_count(graph.num_nodes)
                     + self.linear_neighbour.operation_count(graph.num_nodes))
        return aggregate + transform

    def __repr__(self) -> str:
        return f"SAGEConv({self.in_features} -> {self.out_features})"
