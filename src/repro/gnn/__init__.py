"""Graph neural network layers and reference architectures."""

from repro.gnn.message_passing import MessagePassing
from repro.gnn.gcn import GCNConv
from repro.gnn.gin import GINConv
from repro.gnn.sage import SAGEConv
from repro.gnn.gat import GATConv
from repro.gnn.tag import TAGConv
from repro.gnn.models import NodeClassifier, GraphClassifier, build_node_model

__all__ = [
    "MessagePassing",
    "GCNConv",
    "GINConv",
    "SAGEConv",
    "GATConv",
    "TAGConv",
    "NodeClassifier",
    "GraphClassifier",
    "build_node_model",
]
