"""Graph Isomorphism Network layer (Xu et al., 2019).

Matrix form used by the paper: ``H' = MLP((1 + eps) H + A H)``.  The message
function is the identity, aggregation is the unweighted adjacency product,
and the update function adds the scaled root embedding and applies an MLP.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.gnn.message_passing import MessagePassing
from repro.graphs.graph import Graph
from repro.nn.mlp import MLP
from repro.nn.module import Parameter
from repro.tensor.sparse import SparseTensor
from repro.tensor.tensor import Tensor


class GINConv(MessagePassing):
    """One GIN convolution ``MLP((1 + eps) X + A X)``."""

    def __init__(self, in_features: int, out_features: int,
                 hidden_features: Optional[int] = None,
                 eps: float = 0.0, train_eps: bool = True,
                 batch_norm: bool = True,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        hidden = hidden_features if hidden_features is not None else out_features
        self.mlp = MLP([in_features, hidden, out_features], batch_norm=batch_norm, rng=rng)
        if train_eps:
            self.eps: Parameter | float = Parameter(np.asarray([eps], dtype=np.float32),
                                                    name="eps")
        else:
            self.eps = eps

    def adjacency_for(self, graph: Graph) -> SparseTensor:
        return graph.adjacency(add_self_loops=False)

    def update(self, aggregated: Tensor, x: Tensor) -> Tensor:
        if isinstance(self.eps, Parameter):
            scaled_root = x * (self.eps + 1.0)
        else:
            scaled_root = x * (1.0 + self.eps)
        return self.mlp(scaled_root + aggregated)

    def forward(self, x: Tensor, graph: Graph) -> Tensor:
        return self.propagate(graph, x)

    def operation_count(self, graph: Graph) -> int:
        aggregate = self.aggregation_operations(graph, self.in_features)
        combine = 2 * graph.num_nodes * self.in_features
        transform = self.mlp.operation_count(graph.num_nodes)
        return aggregate + combine + transform

    def __repr__(self) -> str:
        return f"GINConv({self.in_features} -> {self.out_features})"


def gin_architecture_dims(in_features: int, hidden: int, num_layers: int) -> Sequence[int]:
    """Helper returning the feature dimensions of a standard GIN stack."""
    return [in_features, *([hidden] * num_layers)]
