"""Canonical per-edge view of a graph or block for attention layers.

Attention convolutions (GAT, Transformer) score every edge individually, so
unlike the matrix layers they cannot ride on :meth:`adjacency` alone — they
need the explicit ``(source, target)`` index of every message, including the
self loops every node attends to.  :func:`attention_edges` materialises that
list once per graph object, in a *canonical order* shared by full graphs and
bipartite :class:`~repro.graphs.sampling.SubgraphBlock` s: edges grouped by
target (row-major), each target's sources in ascending global id, self loops
appended at the end.

The order matters for the fanout=∞ parity contract: a block sampled with
unlimited fanout carries exactly the full graph's per-target edge runs in
the same relative order, so per-target float accumulations (softmax
denominators, weighted message sums) execute in the same sequence on both
paths and block execution reproduces full-graph execution to float
round-off.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.sampling import SubgraphBlock


@dataclass(frozen=True)
class AttentionEdges:
    """Flat per-edge index of one attention propagation step.

    ``src`` indexes the rows of the features entering the layer (source
    side); ``dst`` indexes the output rows (target side).  On a full graph
    the two sides coincide; on a bipartite block ``dst`` values are always
    ``< num_dst`` and — because a block's sources start with its targets —
    index the same rows of the source-side features.  Self loops
    ``(t, t)`` for every target are appended after the sampled edges.
    """

    src: np.ndarray
    dst: np.ndarray
    num_src: int
    num_dst: int

    @property
    def num_edges(self) -> int:
        return int(self.src.shape[0])


def attention_edges(graph) -> AttentionEdges:
    """The canonical (self-loop-augmented) edge list of a graph or block.

    Memoised on the graph object's ``_cache`` so repeated layers (and the
    serving executor) share one materialisation.
    """
    cache = getattr(graph, "_cache", None)
    if cache is not None and "attention_edges" in cache:
        return cache["attention_edges"]
    if isinstance(graph, SubgraphBlock):
        loops = np.arange(graph.num_dst, dtype=np.int64)
        edges = AttentionEdges(
            src=np.concatenate([graph.edge_cols, loops]),
            dst=np.concatenate([graph.edge_rows, loops]),
            num_src=graph.num_src, num_dst=graph.num_dst)
    else:
        csr = graph.adjacency(add_self_loops=False).csr
        num_nodes = int(csr.shape[0])
        counts = np.diff(csr.indptr).astype(np.int64)
        loops = np.arange(num_nodes, dtype=np.int64)
        edges = AttentionEdges(
            src=np.concatenate([csr.indices.astype(np.int64), loops]),
            dst=np.concatenate([np.repeat(loops, counts), loops]),
            num_src=num_nodes, num_dst=num_nodes)
    if cache is not None:
        cache["attention_edges"] = edges
    return edges
