"""Canonical per-edge view of a graph or block for attention layers.

Attention convolutions (GAT, Transformer) score every edge individually, so
unlike the matrix layers they cannot ride on :meth:`adjacency` alone — they
need the explicit ``(source, target)`` index of every message, including the
self loops every node attends to.  :func:`attention_edges` materialises that
list once per graph object, in a *canonical order* shared by full graphs and
bipartite :class:`~repro.graphs.sampling.SubgraphBlock` s: edges grouped by
target (row-major), each target's sources in ascending global id, self loops
appended at the end.

The order matters for the fanout=∞ parity contract: a block sampled with
unlimited fanout carries exactly the full graph's per-target edge runs in
the same relative order, so per-target float accumulations (softmax
denominators, weighted message sums) execute in the same sequence on both
paths and block execution reproduces full-graph execution to float
round-off.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.sampling import SubgraphBlock

#: Supported multi-head merge modes: ``concat`` splits ``out_features`` into
#: ``heads`` slices of ``out_features // heads`` each and concatenates the
#: per-head aggregations back (hidden layers); ``mean`` runs every head at
#: the full ``out_features`` width and averages them (output layers).
HEAD_MERGES = ("concat", "mean")


def attention_head_dim(out_features: int, heads: int, head_merge: str) -> int:
    """Per-head feature width of a multi-head attention layer.

    The layer's *merged* output width is always ``out_features`` — heads are
    an internal knob, so layer-dimension plumbing (classifier stacks, MixQ
    search, artifact topology) never changes with the head count.  Under
    ``concat`` that forces ``out_features % heads == 0``; under ``mean``
    every head runs at the full width.  ``heads=1`` with either merge is
    numerically identical to the single-head layer.
    """
    if heads < 1:
        raise ValueError(f"attention layers need at least one head, got {heads}")
    if head_merge not in HEAD_MERGES:
        raise ValueError(f"unknown head merge {head_merge!r}; "
                         f"options: {HEAD_MERGES}")
    if head_merge == "mean":
        return out_features
    if out_features % heads:
        raise ValueError(f"concat merge needs out_features divisible by heads "
                         f"({out_features} % {heads} != 0); use head_merge="
                         f"'mean' for indivisible widths")
    return out_features // heads


# --------------------------------------------------------------------------- #
# per-head operation counts of the attention stages
#
# One source of truth for the float layers' ``operation_count``, the QAT
# modules' BitOPs and the serving executor's accounting (the latter two
# import these through :mod:`repro.quant.bitops`) — so the executed, the
# statically derived and the float counts can never drift apart.
# ``heads * head_dim`` is the pre-merge feature width of a multi-head layer
# (``out_features`` under concat, ``heads * out_features`` under mean).
# --------------------------------------------------------------------------- #
def gat_score_operations(num_nodes: int, num_edges: int, heads: int,
                         head_dim: int) -> int:
    """FP32 ops of the GAT score stage: two per-head projections per node
    plus leaky-relu + softmax per edge per head."""
    return 4 * num_nodes * heads * head_dim + 6 * num_edges * heads


def transformer_score_operations(num_edges: int, heads: int,
                                 head_dim: int) -> int:
    """FP32 ops of the transformer score stage: one ``head_dim``-wide dot
    product plus scale/softmax per edge per head."""
    return (2 * head_dim + 5) * num_edges * heads


def attention_aggregate_operations(num_edges: int, heads: int,
                                   head_dim: int) -> int:
    """Integer ops of the per-edge aggregation: one multiply-accumulate per
    edge per head per feature."""
    return 2 * num_edges * heads * head_dim


@dataclass(frozen=True)
class AttentionEdges:
    """Flat per-edge index of one attention propagation step.

    ``src`` indexes the rows of the features entering the layer (source
    side); ``dst`` indexes the output rows (target side).  On a full graph
    the two sides coincide; on a bipartite block ``dst`` values are always
    ``< num_dst`` and — because a block's sources start with its targets —
    index the same rows of the source-side features.  Self loops
    ``(t, t)`` for every target are appended after the sampled edges.
    """

    src: np.ndarray
    dst: np.ndarray
    num_src: int
    num_dst: int

    @property
    def num_edges(self) -> int:
        return int(self.src.shape[0])


def attention_edges(graph) -> AttentionEdges:
    """The canonical (self-loop-augmented) edge list of a graph or block.

    Memoised on the graph object's ``_cache`` so repeated layers (and the
    serving executor) share one materialisation.
    """
    cache = getattr(graph, "_cache", None)
    if cache is not None and "attention_edges" in cache:
        return cache["attention_edges"]
    if isinstance(graph, SubgraphBlock):
        loops = np.arange(graph.num_dst, dtype=np.int64)
        edges = AttentionEdges(
            src=np.concatenate([graph.edge_cols, loops]),
            dst=np.concatenate([graph.edge_rows, loops]),
            num_src=graph.num_src, num_dst=graph.num_dst)
    else:
        csr = graph.adjacency(add_self_loops=False).csr
        num_nodes = int(csr.shape[0])
        counts = np.diff(csr.indptr).astype(np.int64)
        loops = np.arange(num_nodes, dtype=np.int64)
        edges = AttentionEdges(
            src=np.concatenate([csr.indices.astype(np.int64), loops]),
            dst=np.concatenate([np.repeat(loops, counts), loops]),
            num_src=num_nodes, num_dst=num_nodes)
    if cache is not None:
        cache["attention_edges"] = edges
    return edges
