"""Reference GNN architectures used throughout the experiments.

* :class:`NodeClassifier` — a stack of convolutions with ReLU/dropout in
  between, producing per-node logits (the two/three-layer GCN and GraphSAGE
  architectures of Tables 3-7).
* :class:`GraphClassifier` — the five-layer GIN architecture with global max
  pooling and a two-layer readout head from Table 8 / Table 9.
* :func:`build_node_model` — factory over layer families used by the
  Figure 1 operations-versus-accuracy sweep.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

from repro.gnn.gat import GATConv, TransformerConv
from repro.gnn.gcn import GCNConv
from repro.gnn.gin import GINConv
from repro.gnn.message_passing import MessagePassing
from repro.gnn.sage import SAGEConv
from repro.gnn.tag import TAGConv
from repro.graphs.batch import GraphBatch
from repro.graphs.graph import Graph
from repro.graphs.sampling import BlockBatch
from repro.graphs.pooling import get_pooling
from repro.nn.activations import Dropout, ReLU
from repro.nn.linear import Linear
from repro.nn.module import Module, ModuleList
from repro.tensor.tensor import Tensor


def hop_plan(convs) -> List[int]:
    """Propagation steps per layer: ``[conv.hops, ...]`` (1 for most layers).

    Multi-hop layers (TAG) consume several stacked blocks per layer, so
    samplers size their block stacks by :func:`total_hops`, not the layer
    count.
    """
    return [int(getattr(conv, "hops", 1)) for conv in convs]


def total_hops(convs) -> int:
    """Blocks a sampler must emit per batch for this conv stack."""
    return sum(hop_plan(convs))


def forward_blocks(classifier: Module, batch: BlockBatch,
                   x: Optional[Tensor] = None) -> Tensor:
    """Run a convolution-stack classifier over a sampled :class:`BlockBatch`.

    Shared by the float, quantized and relaxed node classifiers — they all
    expose ``convs`` / ``activation`` / ``dropout`` — so minibatch execution
    is one code path regardless of the quantization wrapper in use.

    Blocks are assigned to layers by the model's hop plan: single-hop layers
    consume one block, multi-hop layers (TAG) a stack of ``conv.hops``
    consecutive blocks.
    """
    convs = classifier.convs
    plan = hop_plan(convs)
    if sum(plan) != batch.num_layers:
        raise ValueError(f"model needs {sum(plan)} blocks (per-layer hops "
                         f"{plan}) but the batch carries {batch.num_layers}; "
                         f"sampler fanouts must have one entry per hop")
    if x is None:
        x = Tensor(batch.x)
    num_layers = len(convs)

    def announce_block(conv, block):
        # Node-indexed quantizers (Degree-Quant) need the block's global ids
        # to align their per-node state with block-local rows.  Duck-typed to
        # keep gnn free of a dependency on the quant package.
        for module in conv.modules():
            if hasattr(module, "set_active_block"):
                module.set_active_block(block)

    cursor = 0
    for index, (conv, hops) in enumerate(zip(convs, plan)):
        blocks = batch.blocks[cursor:cursor + hops]
        cursor += hops
        announce_block(conv, blocks[0])
        try:
            x = conv(x, blocks[0] if hops == 1 else blocks)
        finally:
            announce_block(conv, None)
        if index < num_layers - 1:
            x = classifier.activation(x)
            x = classifier.dropout(x)
    return x


class NodeClassifier(Module):
    """Convolution stack for transductive node classification.

    The final convolution outputs ``num_classes`` logits directly (matching
    the two-layer GCN formulation the paper quantizes).

    Besides a full :class:`Graph`, the forward pass accepts a
    :class:`~repro.graphs.sampling.BlockBatch` from the neighbor sampler, in
    which case layer ``i`` consumes bipartite block ``i`` and the output has
    one logits row per seed node.
    """

    def __init__(self, convs: List[MessagePassing], dropout: float = 0.5,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        if not convs:
            raise ValueError("NodeClassifier needs at least one convolution")
        self.convs = ModuleList(convs)
        self.activation = ReLU()
        self.dropout = Dropout(dropout, rng=rng)

    def forward(self, graph, x: Optional[Tensor] = None) -> Tensor:
        if isinstance(graph, BlockBatch):
            return forward_blocks(self, graph, x)
        if x is None:
            x = Tensor(graph.x)
        num_layers = len(self.convs)
        for index, conv in enumerate(self.convs):
            x = conv(x, graph)
            if index < num_layers - 1:
                x = self.activation(x)
                x = self.dropout(x)
        return x

    def operation_count(self, graph: Graph) -> int:
        return sum(conv.operation_count(graph) for conv in self.convs)


class GraphClassifier(Module):
    """GIN-style architecture for graph classification.

    ``num_layers`` GIN convolutions followed by global pooling (max by
    default, per the paper's overflow argument) and a two-layer MLP head.
    """

    def __init__(self, in_features: int, hidden_features: int, num_classes: int,
                 num_layers: int = 5, pooling: str = "max", dropout: float = 0.5,
                 batch_norm: bool = True,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        convs: List[MessagePassing] = []
        for layer in range(num_layers):
            fan_in = in_features if layer == 0 else hidden_features
            convs.append(GINConv(fan_in, hidden_features, batch_norm=batch_norm, rng=rng))
        self.convs = ModuleList(convs)
        self.pooling_name = pooling
        self._pool = get_pooling(pooling)
        self.head_hidden = Linear(hidden_features, hidden_features, rng=rng)
        self.head_out = Linear(hidden_features, num_classes, rng=rng)
        self.activation = ReLU()
        self.dropout = Dropout(dropout, rng=rng)

    def forward(self, batch: GraphBatch, x: Optional[Tensor] = None) -> Tensor:
        if x is None:
            x = Tensor(batch.x)
        for conv in self.convs:
            x = conv(x, batch)
            x = self.activation(x)
        pooled = self._pool(x, batch.batch, batch.num_graphs)
        hidden = self.activation(self.head_hidden(pooled))
        hidden = self.dropout(hidden)
        return self.head_out(hidden)

    def operation_count(self, graph: Graph) -> int:
        ops = sum(conv.operation_count(graph) for conv in self.convs)
        num_graphs = getattr(graph, "num_graphs", 1)
        ops += self.head_hidden.operation_count(num_graphs)
        ops += self.head_out.operation_count(num_graphs)
        return ops


#: Layer families available to :func:`build_node_model` (Figure 1 sweep).
LAYER_FAMILIES: Dict[str, Callable[..., MessagePassing]] = {
    "gcn": GCNConv,
    "gat": GATConv,
    "gin": lambda fan_in, fan_out, rng=None: GINConv(fan_in, fan_out, batch_norm=False,
                                                     rng=rng),
    "sage": SAGEConv,
    "tag": TAGConv,
    "transformer": TransformerConv,
}

#: Families whose layers carry a multi-head attention axis.
HEADED_FAMILIES = ("gat", "transformer")


def head_merge_for_layer(index: int, num_layers: int, heads: int,
                         head_merge: str = "concat") -> str:
    """Merge mode of layer ``index`` in a ``num_layers`` attention stack.

    Hidden layers use ``head_merge`` (``concat`` by default, the GAT
    convention); the output layer averages its heads (``mean``) so the
    logits width never has to divide by the head count.  With a single head
    both merges are numerically identical, so ``concat`` is kept everywhere
    for exact backward compatibility.
    """
    if heads <= 1:
        return "concat"
    return "mean" if index == num_layers - 1 else head_merge


def build_node_model(layer_type: str, in_features: int, hidden_features: int,
                     num_classes: int, num_layers: int = 2, dropout: float = 0.5,
                     heads: int = 1, head_merge: str = "concat",
                     rng: Optional[np.random.Generator] = None) -> NodeClassifier:
    """Build a node classifier from a named layer family.

    One layer maps straight from input features to class logits; deeper
    models insert ``hidden_features``-wide intermediate layers.  ``heads``
    applies to the attention families (:data:`HEADED_FAMILIES`) only:
    hidden layers merge by ``head_merge``, the output layer by ``mean``
    (see :func:`head_merge_for_layer`).
    """
    key = layer_type.lower()
    if key not in LAYER_FAMILIES:
        raise KeyError(f"unknown layer family {layer_type!r}; "
                       f"options: {sorted(LAYER_FAMILIES)}")
    factory = LAYER_FAMILIES[key]

    def build(index: int, fan_in: int, fan_out: int) -> MessagePassing:
        if key in HEADED_FAMILIES:
            return factory(fan_in, fan_out, heads=heads,
                           head_merge=head_merge_for_layer(index, num_layers,
                                                           heads, head_merge),
                           rng=rng)
        return factory(fan_in, fan_out, rng=rng)

    convs: List[MessagePassing] = []
    if num_layers == 1:
        convs.append(build(0, in_features, num_classes))
    else:
        convs.append(build(0, in_features, hidden_features))
        for middle in range(num_layers - 2):
            convs.append(build(middle + 1, hidden_features, hidden_features))
        convs.append(build(num_layers - 1, hidden_features, num_classes))
    return NodeClassifier(convs, dropout=dropout, rng=rng)
