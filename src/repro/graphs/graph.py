"""The :class:`Graph` data object.

A graph carries node features ``x``, an ``edge_index`` of shape
``(2, num_edges)`` with optional ``edge_weight``, labels ``y`` (per node or
per graph), and optional boolean masks for transductive node classification.
The normalised adjacency used by GCN-style layers is built lazily and cached.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.tensor.sparse import SparseTensor


class Graph:
    """A single attributed graph.

    Parameters
    ----------
    x:
        Node feature matrix of shape ``(num_nodes, num_features)``.
    edge_index:
        ``(2, num_edges)`` integer array of directed edges ``source -> target``.
        Undirected graphs store both directions.
    y:
        Either a length ``num_nodes`` label vector (node classification) or a
        scalar / small vector (graph classification).
    edge_weight:
        Optional per-edge weights (defaults to 1).
    train_mask / val_mask / test_mask:
        Boolean node masks for transductive tasks.
    """

    def __init__(self, x: np.ndarray, edge_index: np.ndarray,
                 y: Optional[np.ndarray] = None,
                 edge_weight: Optional[np.ndarray] = None,
                 train_mask: Optional[np.ndarray] = None,
                 val_mask: Optional[np.ndarray] = None,
                 test_mask: Optional[np.ndarray] = None,
                 name: str = "graph"):
        self.x = np.asarray(x, dtype=np.float32)
        self.edge_index = np.asarray(edge_index, dtype=np.int64)
        if self.edge_index.ndim != 2 or self.edge_index.shape[0] != 2:
            raise ValueError("edge_index must have shape (2, num_edges)")
        self.y = None if y is None else np.asarray(y)
        if edge_weight is None:
            edge_weight = np.ones(self.edge_index.shape[1], dtype=np.float32)
        self.edge_weight = np.asarray(edge_weight, dtype=np.float32)
        self.train_mask = None if train_mask is None else np.asarray(train_mask, dtype=bool)
        self.val_mask = None if val_mask is None else np.asarray(val_mask, dtype=bool)
        self.test_mask = None if test_mask is None else np.asarray(test_mask, dtype=bool)
        self.name = name
        self._cache: Dict[str, SparseTensor] = {}

    # ------------------------------------------------------------------ #
    @property
    def num_nodes(self) -> int:
        return int(self.x.shape[0])

    @property
    def num_edges(self) -> int:
        return int(self.edge_index.shape[1])

    @property
    def num_features(self) -> int:
        return int(self.x.shape[1])

    @property
    def num_classes(self) -> int:
        if self.y is None:
            raise ValueError("graph has no labels")
        if self.y.ndim > 1:
            return int(self.y.shape[1])
        return int(self.y.max()) + 1

    # ------------------------------------------------------------------ #
    def adjacency(self, add_self_loops: bool = False) -> SparseTensor:
        """Raw (weighted) adjacency matrix, optionally with self loops added."""
        key = f"adj_{add_self_loops}"
        if key not in self._cache:
            adjacency = SparseTensor.from_edge_index(
                self.edge_index, self.num_nodes, self.edge_weight)
            if add_self_loops:
                adjacency = SparseTensor(adjacency.csr + SparseTensor.identity(self.num_nodes).csr)
            self._cache[key] = adjacency
        return self._cache[key]

    def normalized_adjacency(self) -> SparseTensor:
        r"""GCN-normalised adjacency :math:`\hat A = D^{-1/2}(I + A)D^{-1/2}`."""
        if "gcn_norm" not in self._cache:
            adjacency = self.adjacency(add_self_loops=True)
            degree = adjacency.row_sum()
            inv_sqrt = np.zeros_like(degree)
            positive = degree > 0
            inv_sqrt[positive] = 1.0 / np.sqrt(degree[positive])
            # ``tocoo`` on a CSR matrix preserves the CSR data ordering, so the
            # rescaled values can be written straight back into the pattern.
            coo = adjacency.csr.tocoo()
            values = inv_sqrt[coo.row] * coo.data * inv_sqrt[coo.col]
            self._cache["gcn_norm"] = adjacency.with_values(values)
        return self._cache["gcn_norm"]

    def in_degrees(self) -> np.ndarray:
        """In-degree of every node (number of incoming edges)."""
        return np.bincount(self.edge_index[1], minlength=self.num_nodes)

    def out_degrees(self) -> np.ndarray:
        return np.bincount(self.edge_index[0], minlength=self.num_nodes)

    def copy(self) -> "Graph":
        return Graph(self.x.copy(), self.edge_index.copy(),
                     y=None if self.y is None else self.y.copy(),
                     edge_weight=self.edge_weight.copy(),
                     train_mask=None if self.train_mask is None else self.train_mask.copy(),
                     val_mask=None if self.val_mask is None else self.val_mask.copy(),
                     test_mask=None if self.test_mask is None else self.test_mask.copy(),
                     name=self.name)

    def __repr__(self) -> str:
        return (f"Graph(name={self.name!r}, nodes={self.num_nodes}, "
                f"edges={self.num_edges}, features={self.num_features})")
