"""The :class:`Graph` data object.

A graph carries node features ``x``, an ``edge_index`` of shape
``(2, num_edges)`` with optional ``edge_weight``, labels ``y`` (per node or
per graph), and optional boolean masks for transductive node classification.
The normalised adjacency used by GCN-style layers is built lazily and cached.

Graphs are mutable through the streaming update API only: ``add_edges`` /
``remove_edges`` / ``update_features`` wrap their arguments into an atomic
:class:`~repro.streaming.GraphDelta` and route through :meth:`Graph.
apply_delta`, which validates everything before touching any array, bumps
the monotone :attr:`Graph.version` counter, and refreshes the cached
adjacency *incrementally* (only the changed rows are respliced — see
:meth:`~repro.tensor.sparse.SparseTensor.with_rows`).  A mutated graph is
indistinguishable from a fresh ``Graph`` built on the edited edge list,
bit for bit, which is what the streaming parity tests assert.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

import numpy as np
import scipy.sparse as sp

from repro.tensor.sparse import SparseTensor

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (deltas are applied here)
    from repro.streaming.delta import GraphDelta


class Graph:
    """A single attributed graph.

    Parameters
    ----------
    x:
        Node feature matrix of shape ``(num_nodes, num_features)``.
    edge_index:
        ``(2, num_edges)`` integer array of directed edges ``source -> target``.
        Undirected graphs store both directions.
    y:
        Either a length ``num_nodes`` label vector (node classification) or a
        scalar / small vector (graph classification).
    edge_weight:
        Optional per-edge weights (defaults to 1).
    train_mask / val_mask / test_mask:
        Boolean node masks for transductive tasks.
    """

    def __init__(self, x: np.ndarray, edge_index: np.ndarray,
                 y: Optional[np.ndarray] = None,
                 edge_weight: Optional[np.ndarray] = None,
                 train_mask: Optional[np.ndarray] = None,
                 val_mask: Optional[np.ndarray] = None,
                 test_mask: Optional[np.ndarray] = None,
                 name: str = "graph"):
        self.x = np.asarray(x, dtype=np.float32)
        self.edge_index = np.asarray(edge_index, dtype=np.int64)
        if self.edge_index.ndim != 2 or self.edge_index.shape[0] != 2:
            raise ValueError("edge_index must have shape (2, num_edges)")
        self.y = None if y is None else np.asarray(y)
        if edge_weight is None:
            edge_weight = np.ones(self.edge_index.shape[1], dtype=np.float32)
        self.edge_weight = np.asarray(edge_weight, dtype=np.float32)
        self.train_mask = None if train_mask is None else np.asarray(train_mask, dtype=bool)
        self.val_mask = None if val_mask is None else np.asarray(val_mask, dtype=bool)
        self.test_mask = None if test_mask is None else np.asarray(test_mask, dtype=bool)
        self.name = name
        #: Monotone update counter: number of deltas applied to this
        #: instance (a freshly built graph is version 0).
        self.version = 0
        self._cache: Dict[str, SparseTensor] = {}

    # ------------------------------------------------------------------ #
    @property
    def num_nodes(self) -> int:
        return int(self.x.shape[0])

    @property
    def num_edges(self) -> int:
        return int(self.edge_index.shape[1])

    @property
    def num_features(self) -> int:
        return int(self.x.shape[1])

    @property
    def num_classes(self) -> int:
        if self.y is None:
            raise ValueError("graph has no labels")
        if self.y.ndim > 1:
            return int(self.y.shape[1])
        return int(self.y.max()) + 1

    # ------------------------------------------------------------------ #
    def adjacency(self, add_self_loops: bool = False) -> SparseTensor:
        """Raw (weighted) adjacency matrix, optionally with self loops added."""
        key = f"adj_{add_self_loops}"
        if key not in self._cache:
            adjacency = SparseTensor.from_edge_index(
                self.edge_index, self.num_nodes, self.edge_weight)
            if add_self_loops:
                adjacency = SparseTensor(adjacency.csr + SparseTensor.identity(self.num_nodes).csr)
            self._cache[key] = adjacency
        return self._cache[key]

    def normalized_adjacency(self) -> SparseTensor:
        r"""GCN-normalised adjacency :math:`\hat A = D^{-1/2}(I + A)D^{-1/2}`."""
        if "gcn_norm" not in self._cache:
            adjacency = self.adjacency(add_self_loops=True)
            degree = adjacency.row_sum()
            inv_sqrt = np.zeros_like(degree)
            positive = degree > 0
            inv_sqrt[positive] = 1.0 / np.sqrt(degree[positive])
            # ``tocoo`` on a CSR matrix preserves the CSR data ordering, so the
            # rescaled values can be written straight back into the pattern.
            coo = adjacency.csr.tocoo()
            values = inv_sqrt[coo.row] * coo.data * inv_sqrt[coo.col]
            self._cache["gcn_norm"] = adjacency.with_values(values)
        return self._cache["gcn_norm"]

    def in_degrees(self) -> np.ndarray:
        """In-degree of every node (number of incoming edges)."""
        return np.bincount(self.edge_index[1], minlength=self.num_nodes)

    def out_degrees(self) -> np.ndarray:
        return np.bincount(self.edge_index[0], minlength=self.num_nodes)

    # ------------------------------------------------------------------ #
    # Streaming update API.
    def apply_delta(self, delta: "GraphDelta") -> "GraphDelta":
        """Apply one atomic :class:`~repro.streaming.GraphDelta`.

        The whole delta is validated before any array is touched, so a
        rejected delta leaves the graph (and its version) unchanged.  On
        success the version counter advances by exactly one and the cached
        raw adjacency is respliced incrementally: only the rows of edge
        sources the delta names are rebuilt (see
        :meth:`~repro.tensor.sparse.SparseTensor.with_rows`); derived
        caches (self-loop adjacency, GCN normalisation) are dropped.

        Returns the normalised delta (arrays coerced to canonical dtypes),
        which callers feed to the version trackers.
        """
        from repro.streaming.delta import GraphDelta

        if not isinstance(delta, GraphDelta):
            raise TypeError(f"expected a GraphDelta, got {type(delta).__name__}")
        num_nodes = self.num_nodes
        touched = delta.touched_nodes()
        if touched.size and (touched.min() < 0 or touched.max() >= num_nodes):
            raise ValueError(
                f"delta names node ids outside [0, {num_nodes}): "
                f"range [{touched.min()}, {touched.max()}]")
        if delta.features is not None \
                and delta.features.shape[1] != self.num_features:
            raise ValueError(
                f"feature rows must have width {self.num_features}, "
                f"got {delta.features.shape[1]}")
        # Pair codes make "drop every occurrence" a vectorised membership
        # test; validated before mutation so absence rejects atomically.
        drop = None
        if delta.removed_edges is not None:
            edge_codes = self.edge_index[0] * num_nodes + self.edge_index[1]
            removed_codes = np.unique(
                delta.removed_edges[0] * num_nodes + delta.removed_edges[1])
            present = np.isin(removed_codes, edge_codes)
            if not present.all():
                missing = removed_codes[~present][0]
                raise ValueError(
                    f"cannot remove absent edge "
                    f"({missing // num_nodes}, {missing % num_nodes})")
            drop = np.isin(edge_codes, removed_codes)

        edge_index = self.edge_index
        edge_weight = self.edge_weight
        if drop is not None:
            edge_index = edge_index[:, ~drop]
            edge_weight = edge_weight[~drop]
        if delta.added_edges is not None:
            weights = delta.added_weights
            if weights is None:
                weights = np.ones(delta.added_edges.shape[1], dtype=np.float32)
            edge_index = np.concatenate([edge_index, delta.added_edges], axis=1)
            edge_weight = np.concatenate([edge_weight, weights])
        self.edge_index = edge_index
        self.edge_weight = edge_weight
        if delta.feature_nodes is not None:
            self.x[delta.feature_nodes] = delta.features
        self.version += 1

        changed = delta.changed_rows()
        cached = self._cache.get("adj_False")
        self._cache.clear()
        if cached is not None and changed.size:
            mask = np.isin(edge_index[0], changed)
            local = np.searchsorted(changed, edge_index[0][mask])
            replacement = SparseTensor(sp.csr_matrix(
                (edge_weight[mask], (local, edge_index[1][mask])),
                shape=(changed.shape[0], num_nodes)))
            self._cache["adj_False"] = cached.with_rows(changed, replacement)
        elif cached is not None:
            self._cache["adj_False"] = cached
        return delta

    def add_edges(self, edges: np.ndarray,
                  weights: Optional[np.ndarray] = None) -> "GraphDelta":
        """Append directed edges (``(2, E)``) as one atomic delta."""
        from repro.streaming.delta import GraphDelta

        return self.apply_delta(GraphDelta(added_edges=edges,
                                           added_weights=weights))

    def remove_edges(self, edges: np.ndarray) -> "GraphDelta":
        """Remove every occurrence of the given directed edges atomically."""
        from repro.streaming.delta import GraphDelta

        return self.apply_delta(GraphDelta(removed_edges=edges))

    def update_features(self, nodes: np.ndarray,
                        rows: np.ndarray) -> "GraphDelta":
        """Overwrite whole feature rows as one atomic delta."""
        from repro.streaming.delta import GraphDelta

        return self.apply_delta(GraphDelta(feature_nodes=nodes, features=rows))

    def copy(self) -> "Graph":
        return Graph(self.x.copy(), self.edge_index.copy(),
                     y=None if self.y is None else self.y.copy(),
                     edge_weight=self.edge_weight.copy(),
                     train_mask=None if self.train_mask is None else self.train_mask.copy(),
                     val_mask=None if self.val_mask is None else self.val_mask.copy(),
                     test_mask=None if self.test_mask is None else self.test_mask.copy(),
                     name=self.name)

    def __repr__(self) -> str:
        return (f"Graph(name={self.name!r}, nodes={self.num_nodes}, "
                f"edges={self.num_edges}, features={self.num_features})")
