"""Graph data structures, transforms, pooling and dataset generators."""

from repro.graphs.graph import Graph
from repro.graphs.batch import GraphBatch
from repro.graphs import transforms
from repro.graphs import pooling
from repro.graphs.sampling import BlockBatch, NeighborSampler, SubgraphBlock
from repro.graphs.partition import (PARTITION_STRATEGIES, halo_seeds,
                                    partition_graph, shard_edge_loads,
                                    shard_members)
from repro.graphs.splits import train_val_test_masks, k_fold_indices

__all__ = [
    "Graph",
    "GraphBatch",
    "BlockBatch",
    "NeighborSampler",
    "SubgraphBlock",
    "PARTITION_STRATEGIES",
    "partition_graph",
    "shard_members",
    "shard_edge_loads",
    "halo_seeds",
    "transforms",
    "pooling",
    "train_val_test_masks",
    "k_fold_indices",
]
