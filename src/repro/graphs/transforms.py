"""Graph transforms: self loops, feature encodings, positional encodings.

The paper applies two feature constructions that are reproduced here:

* degree one-hot encoding for TU datasets without node features (Section 5);
* Laplacian positional encodings (50 eigenvectors) for the CSL dataset
  (Section 5.4.1).
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.graphs.graph import Graph


def add_self_loops(graph: Graph) -> Graph:
    """Return a copy of ``graph`` with a self loop added to every node."""
    loops = np.vstack([np.arange(graph.num_nodes)] * 2)
    new = graph.copy()
    new.edge_index = np.concatenate([graph.edge_index, loops], axis=1)
    new.edge_weight = np.concatenate(
        [graph.edge_weight, np.ones(graph.num_nodes, dtype=np.float32)])
    new._cache.clear()
    return new


def to_undirected(graph: Graph) -> Graph:
    """Symmetrise the edge set (adds reversed edges, removes duplicates)."""
    src, dst = graph.edge_index
    both = np.concatenate([graph.edge_index, np.vstack([dst, src])], axis=1)
    keys = both[0] * graph.num_nodes + both[1]
    _, unique_positions = np.unique(keys, return_index=True)
    new = graph.copy()
    new.edge_index = both[:, np.sort(unique_positions)]
    new.edge_weight = np.ones(new.edge_index.shape[1], dtype=np.float32)
    new._cache.clear()
    return new


def degree_one_hot(graph: Graph, max_degree: Optional[int] = None) -> Graph:
    """Replace node features with a one-hot encoding of node degree.

    Used for TU datasets that ship without node attributes (IMDB-B,
    REDDIT-B/M) — exactly the construction described in Section 5.
    """
    degrees = graph.in_degrees() + graph.out_degrees()
    if max_degree is None:
        max_degree = int(degrees.max())
    clipped = np.minimum(degrees, max_degree)
    features = np.zeros((graph.num_nodes, max_degree + 1), dtype=np.float32)
    features[np.arange(graph.num_nodes), clipped] = 1.0
    new = graph.copy()
    new.x = features
    new._cache.clear()
    return new


def laplacian_positional_encoding(graph: Graph, dim: int,
                                  concatenate: bool = True) -> Graph:
    """Append the ``dim`` smallest non-trivial Laplacian eigenvectors as features.

    This reproduces the positional encoding used for CSL.  Sign ambiguity is
    resolved by fixing the first non-zero entry of each eigenvector to be
    positive so the encoding is deterministic.
    """
    adjacency = graph.adjacency(add_self_loops=False).csr
    adjacency = ((adjacency + adjacency.T) > 0).astype(np.float32)
    degree = np.asarray(adjacency.sum(axis=1)).reshape(-1)
    inv_sqrt = np.zeros_like(degree)
    positive = degree > 0
    inv_sqrt[positive] = 1.0 / np.sqrt(degree[positive])
    d_inv = sp.diags(inv_sqrt)
    laplacian = sp.identity(graph.num_nodes, format="csr") - d_inv @ adjacency @ d_inv

    requested = min(dim + 1, graph.num_nodes - 1)
    if requested < 2 or graph.num_nodes <= dim + 2:
        dense = np.asarray(laplacian.todense())
        eigenvalues, eigenvectors = np.linalg.eigh(dense)
    else:
        try:
            eigenvalues, eigenvectors = spla.eigsh(laplacian, k=requested, which="SM")
        except (spla.ArpackNoConvergence, RuntimeError):
            dense = np.asarray(laplacian.todense())
            eigenvalues, eigenvectors = np.linalg.eigh(dense)
    order = np.argsort(eigenvalues)
    eigenvectors = eigenvectors[:, order]
    # Drop the trivial constant eigenvector, keep the next ``dim``.
    encoding = eigenvectors[:, 1:dim + 1]
    if encoding.shape[1] < dim:
        padding = np.zeros((graph.num_nodes, dim - encoding.shape[1]), dtype=np.float32)
        encoding = np.concatenate([encoding, padding], axis=1)
    for column in range(encoding.shape[1]):
        nonzero = np.flatnonzero(np.abs(encoding[:, column]) > 1e-8)
        if nonzero.size and encoding[nonzero[0], column] < 0:
            encoding[:, column] *= -1

    new = graph.copy()
    encoding = encoding.astype(np.float32)
    if concatenate and graph.x.shape[1] > 0:
        new.x = np.concatenate([graph.x, encoding], axis=1)
    else:
        new.x = encoding
    new._cache.clear()
    return new


def random_walk_positional_encoding(graph: Graph, steps: int,
                                    concatenate: bool = True) -> Graph:
    """Append random-walk return probabilities (RWSE) as node features.

    Feature ``k`` of node ``v`` is the probability that a ``k+1``-step random
    walk starting at ``v`` returns to ``v``.  For the CSL graphs this encodes
    the skip length directly (cycles of different lengths close at different
    step counts), which makes the dataset learnable by a small GNN — the role
    Laplacian positional encodings play in the paper.
    """
    if steps < 1:
        raise ValueError("random-walk encoding needs at least one step")
    adjacency = graph.adjacency(add_self_loops=False).csr
    adjacency = ((adjacency + adjacency.T) > 0).astype(np.float64)
    degree = np.asarray(adjacency.sum(axis=1)).reshape(-1)
    inverse = np.zeros_like(degree)
    positive = degree > 0
    inverse[positive] = 1.0 / degree[positive]
    transition = sp.diags(inverse) @ adjacency

    encoding = np.zeros((graph.num_nodes, steps), dtype=np.float32)
    power = transition.copy()
    for step in range(steps):
        power = power @ transition if step else power
        encoding[:, step] = power.diagonal()
    new = graph.copy()
    if concatenate and graph.x.shape[1] > 0:
        new.x = np.concatenate([graph.x, encoding], axis=1)
    else:
        new.x = encoding
    new._cache.clear()
    return new


def row_normalize_features(graph: Graph) -> Graph:
    """L1-normalise node features row-wise (standard for citation datasets)."""
    new = graph.copy()
    totals = np.abs(new.x).sum(axis=1, keepdims=True)
    totals[totals == 0] = 1.0
    new.x = (new.x / totals).astype(np.float32)
    new._cache.clear()
    return new
