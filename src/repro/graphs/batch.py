"""Batching a list of graphs into one disjoint-union graph.

Graph-level tasks (Table 8, Table 9) process mini-batches of graphs.  The
standard trick is to stack the graphs into a single block-diagonal adjacency
matrix and keep a ``batch`` vector mapping each node to its graph, which the
global pooling functions then use for per-graph readout.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.graphs.graph import Graph


class GraphBatch(Graph):
    """A disjoint union of graphs with a node-to-graph assignment vector."""

    def __init__(self, graphs: Sequence[Graph]):
        if not graphs:
            raise ValueError("cannot batch an empty list of graphs")
        offsets = np.cumsum([0, *(g.num_nodes for g in graphs)])
        x = np.concatenate([g.x for g in graphs], axis=0)
        edge_index = np.concatenate(
            [g.edge_index + offset for g, offset in zip(graphs, offsets[:-1])], axis=1)
        edge_weight = np.concatenate([g.edge_weight for g in graphs])
        y = None
        if all(g.y is not None for g in graphs):
            y = np.concatenate([np.atleast_1d(g.y) for g in graphs])
        super().__init__(x, edge_index, y=y, edge_weight=edge_weight, name="batch")
        self.batch = np.concatenate(
            [np.full(g.num_nodes, index, dtype=np.int64) for index, g in enumerate(graphs)])
        self.num_graphs = len(graphs)
        self.graph_sizes = np.asarray([g.num_nodes for g in graphs])

    def __repr__(self) -> str:
        return (f"GraphBatch(graphs={self.num_graphs}, nodes={self.num_nodes}, "
                f"edges={self.num_edges})")


def collate(graphs: Sequence[Graph]) -> GraphBatch:
    """Alias of :class:`GraphBatch` construction (mirrors dataloader collate)."""
    return GraphBatch(graphs)


def iterate_minibatches(graphs: Sequence[Graph], batch_size: int,
                        rng: np.random.Generator | None = None,
                        shuffle: bool = True) -> List[GraphBatch]:
    """Split ``graphs`` into :class:`GraphBatch` mini-batches."""
    order = np.arange(len(graphs))
    if shuffle:
        if rng is None:
            rng = np.random.default_rng(0)
        rng.shuffle(order)
    batches = []
    for start in range(0, len(graphs), batch_size):
        chunk = [graphs[i] for i in order[start:start + batch_size]]
        batches.append(GraphBatch(chunk))
    return batches
