"""Deterministic graph partitioning for sharded serving.

A partition assigns every node to exactly one shard.  The sharded serving
tier (:mod:`repro.sharding`) runs one worker process per shard: a worker
owns the adjacency *rows* of its nodes and answers other shards' halo-row
queries for them, so the assignment decides both memory placement and the
cross-shard traffic pattern.

Both strategies are **pure functions of** ``(graph, n_shards, strategy,
seed)``: no global RNG state, no dict-order dependence, no wall clock.
That purity is what lets every worker process — and the router — recompute
the identical assignment independently instead of shipping it around, and
what makes sharded serving replayable (the parity matrix compares sharded
logits bitwise against a single-process session).

Strategies
----------
``hash``
    ``splitmix64(node ^ salt(seed)) % n_shards``.  Placement is O(1) per
    node with no structural knowledge; expected balance follows from the
    hash's avalanche, but degree skew is ignored.
``degree``
    Greedy balanced placement by adjacency-row weight: nodes are visited
    in (row weight desc, id asc) order and each goes to the currently
    lightest shard (ties to the smallest shard id).  This is
    longest-processing-time scheduling on row weights, so the per-shard
    *edge* totals — the actual serving work — stay within a small
    max/min ratio even on skewed graphs (property-tested in
    ``tests/graphs/test_partition.py``).

The ``seed`` perturbs tie-breaking for ``degree`` (and the hash salt for
``hash``) so repartitioning is cheap to explore; the default 0 is the
deployment convention.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.graphs.graph import Graph
from repro.graphs.sampling import _mix64

#: Every supported partition strategy, in CLI/choices order.
PARTITION_STRATEGIES = ("hash", "degree")


def _row_weights(graph: Graph) -> np.ndarray:
    """Adjacency-row weight per node: the serving cost a shard inherits."""
    return graph.adjacency(add_self_loops=False).row_sum().astype(np.float64)


def _hash_partition(num_nodes: int, n_shards: int, seed: int) -> np.ndarray:
    salt = _mix64(np.array([seed % (1 << 64)], dtype=np.uint64))[0]
    keys = _mix64(np.arange(num_nodes, dtype=np.uint64) ^ salt)
    return (keys % np.uint64(n_shards)).astype(np.int64)


def _degree_partition(graph: Graph, n_shards: int, seed: int) -> np.ndarray:
    weights = _row_weights(graph) + 1.0  # +1: a node costs at least itself
    num_nodes = graph.num_nodes
    # Visit heavy rows first; the id tie-break is salted by ``seed`` so
    # equal-degree nodes can be re-dealt without changing the heavy head.
    salt = _mix64(np.arange(num_nodes, dtype=np.uint64)
                  ^ _mix64(np.array([seed % (1 << 64)], dtype=np.uint64))[0])
    order = np.lexsort((salt, -weights))
    loads = np.zeros(n_shards, dtype=np.float64)
    assignment = np.empty(num_nodes, dtype=np.int64)
    for node in order:
        shard = int(np.argmin(loads))  # argmin ties break to the lowest id
        assignment[node] = shard
        loads[shard] += weights[node]
    return assignment


def partition_graph(graph: Graph, n_shards: int, strategy: str = "hash",
                    seed: int = 0) -> np.ndarray:
    """Assign every node to a shard; returns a ``(num_nodes,)`` int64 array.

    A pure function of ``(graph structure, n_shards, strategy, seed)`` —
    identical across calls, processes and machines.
    """
    if n_shards < 1:
        raise ValueError("n_shards must be at least 1")
    if strategy not in PARTITION_STRATEGIES:
        raise ValueError(f"unknown partition strategy {strategy!r}; "
                         f"choose from {PARTITION_STRATEGIES}")
    if n_shards == 1:
        return np.zeros(graph.num_nodes, dtype=np.int64)
    if strategy == "hash":
        return _hash_partition(graph.num_nodes, n_shards, seed)
    return _degree_partition(graph, n_shards, seed)


def shard_members(assignment: np.ndarray, n_shards: int) -> List[np.ndarray]:
    """Per-shard node-id lists (ascending); disjoint and covering by
    construction of the assignment array."""
    assignment = np.asarray(assignment, dtype=np.int64)
    return [np.flatnonzero(assignment == shard) for shard in range(n_shards)]


def shard_edge_loads(graph: Graph, assignment: np.ndarray,
                     n_shards: int) -> np.ndarray:
    """Summed adjacency-row weight owned by each shard (the balance metric
    the ``degree`` strategy optimises)."""
    weights = _row_weights(graph)
    return np.bincount(np.asarray(assignment, dtype=np.int64),
                       weights=weights, minlength=n_shards)


def halo_seeds(graph: Graph, assignment: np.ndarray) -> np.ndarray:
    """Seeds whose 1-hop receptive field crosses a shard boundary.

    A request for any of these nodes forces its owning worker to fetch at
    least one remote adjacency row or source feature — the halo protocol is
    guaranteed to be exercised.  Used by the parity matrix to construct
    guaranteed-halo cases per strategy.
    """
    assignment = np.asarray(assignment, dtype=np.int64)
    csr = graph.adjacency(add_self_loops=False).csr
    counts = np.diff(csr.indptr)
    rows = np.repeat(np.arange(graph.num_nodes, dtype=np.int64), counts)
    crossing = assignment[rows] != assignment[csr.indices]
    return np.unique(rows[crossing])
