"""Fanout-limited neighbor sampling for minibatch training (GraphSAGE-style).

Full-batch training keeps every node's activations alive for every layer,
which caps the graph sizes the reproduction can touch.  This module bounds
per-step cost by materialising, for each minibatch of *seed* nodes, one
bipartite :class:`SubgraphBlock` per GNN layer: the block's target side is
the nodes whose embeddings the layer must produce, its source side is those
targets plus a fanout-capped sample of their in-neighbourhood.  Stacking
``L`` blocks yields exactly the receptive field an ``L``-layer network needs
for the seeds — nothing else is ever touched.

Sampling is a vectorized CSR operation end to end: target rows are extracted
with :meth:`~repro.tensor.sparse.SparseTensor.index_select`, the fanout cap
is applied with one random-key sort over the extracted non-zeros, and node
renumbering uses a reusable global->local lookup table.  No Python-level
per-node loops.

Degree renormalisation keeps sampled operators unbiased:

* the mean (GraphSAGE) operator divides each row by its *sampled* degree;
* the GCN operator uses the full graph's symmetric normalisation
  ``D^{-1/2}(A + I)D^{-1/2}`` on the sampled edges, rescaled per row by
  ``full_degree / sampled_degree`` so dropped neighbours are compensated.

With unlimited fanout both operators reproduce the full-batch operators
exactly (restricted to the block's rows), which is what makes minibatch
training with ``fanout=None`` numerically identical to full-batch training.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Union

import numpy as np
import scipy.sparse as sp

from repro.graphs.graph import Graph
from repro.tensor.sparse import SparseTensor
from repro.tensor.tensor import Tensor

#: A per-layer fanout: ``None`` means unlimited (keep every neighbour).
Fanout = Optional[int]


class SubgraphBlock:
    """One bipartite message-passing block ``targets <- sources``.

    The first ``num_dst`` sources *are* the targets (self-alignment), so a
    layer's root/update term is simply ``x[:num_dst]``.  The block mirrors
    the adjacency API of :class:`~repro.graphs.graph.Graph`
    (:meth:`adjacency` / :meth:`normalized_adjacency`), which lets the
    existing convolutions — and every quantization wrapper around them —
    consume blocks without code changes.

    Parameters
    ----------
    dst_nodes / src_nodes:
        Global node ids of the target and source sides; ``src_nodes``
        starts with ``dst_nodes``.
    edge_rows / edge_cols:
        Local (renumbered) endpoints of the sampled edges: row indexes
        ``dst_nodes``, column indexes ``src_nodes``.
    edge_weight:
        Original edge weights of the sampled edges.
    dst_inv_sqrt / src_inv_sqrt:
        ``1/sqrt(degree + loop)`` of the global graph for both sides, used
        by the GCN normalisation.
    row_scale:
        Per-target ratio ``full_degree / sampled_degree`` compensating the
        fanout cap (1 when nothing was dropped).
    """

    def __init__(self, dst_nodes: np.ndarray, src_nodes: np.ndarray,
                 edge_rows: np.ndarray, edge_cols: np.ndarray,
                 edge_weight: np.ndarray, dst_inv_sqrt: np.ndarray,
                 src_inv_sqrt: np.ndarray, row_scale: np.ndarray):
        self.dst_nodes = dst_nodes
        self.src_nodes = src_nodes
        self.edge_rows = edge_rows
        self.edge_cols = edge_cols
        self.edge_weight = edge_weight
        self.dst_inv_sqrt = dst_inv_sqrt
        self.src_inv_sqrt = src_inv_sqrt
        self.row_scale = row_scale
        self._cache: dict = {}

    # ------------------------------------------------------------------ #
    @property
    def num_dst(self) -> int:
        return int(self.dst_nodes.shape[0])

    @property
    def num_src(self) -> int:
        return int(self.src_nodes.shape[0])

    @property
    def num_nodes(self) -> int:
        """Source-side size (the rows of the features entering this block)."""
        return self.num_src

    @property
    def num_edges(self) -> int:
        return int(self.edge_rows.shape[0])

    # ------------------------------------------------------------------ #
    def _build(self, values: np.ndarray, add_self_loops: bool,
               loop_values: Optional[np.ndarray] = None) -> SparseTensor:
        rows, cols = self.edge_rows, self.edge_cols
        if add_self_loops:
            loop = np.arange(self.num_dst, dtype=np.int64)
            rows = np.concatenate([rows, loop])
            cols = np.concatenate([cols, loop])
            if loop_values is None:
                loop_values = np.ones(self.num_dst, dtype=np.float32)
            values = np.concatenate([values, loop_values.astype(np.float32)])
        matrix = sp.csr_matrix(
            (values.astype(np.float32), (rows, cols)),
            shape=(self.num_dst, self.num_src))
        return SparseTensor(matrix)

    def adjacency(self, add_self_loops: bool = False) -> SparseTensor:
        """Sampled bipartite adjacency with the original edge weights."""
        key = f"adj_{add_self_loops}"
        if key not in self._cache:
            self._cache[key] = self._build(self.edge_weight, add_self_loops)
        return self._cache[key]

    def normalized_adjacency(self) -> SparseTensor:
        """GCN normalisation on the sampled edges, degree-renormalised.

        Edge values are ``inv_sqrt[u] * w * inv_sqrt[v] * row_scale[u]`` with
        the *global* inverse square-root degrees, plus unscaled self loops
        ``inv_sqrt[u]^2``; at unlimited fanout this is an exact row slice of
        :meth:`Graph.normalized_adjacency`.
        """
        if "gcn_norm" not in self._cache:
            values = (self.dst_inv_sqrt[self.edge_rows] * self.edge_weight
                      * self.src_inv_sqrt[self.edge_cols]
                      * self.row_scale[self.edge_rows])
            loops = self.dst_inv_sqrt * self.dst_inv_sqrt
            self._cache["gcn_norm"] = self._build(values, True, loop_values=loops)
        return self._cache["gcn_norm"]

    def __repr__(self) -> str:
        return (f"SubgraphBlock(dst={self.num_dst}, src={self.num_src}, "
                f"edges={self.num_edges})")


def target_features(x: Tensor, graph: Union[Graph, "SubgraphBlock"]) -> Tensor:
    """Features of the target side: ``x[:num_dst]`` on a block, ``x`` else.

    Because a block's sources start with its targets, this is the only
    adaptation a root/update term needs to run bipartite.
    """
    if isinstance(graph, SubgraphBlock):
        return x[:graph.num_dst]
    return x


class BlockBatch:
    """One minibatch: per-layer blocks plus the seed features and labels.

    ``blocks[0]`` is the innermost hop (consumed by the first convolution);
    ``blocks[-1]`` produces exactly the ``seed_nodes``.  ``x`` holds the
    input features of ``blocks[0].src_nodes`` and ``y`` the labels of the
    seeds, so a model forward plus a loss needs nothing but this object.
    """

    def __init__(self, blocks: List[SubgraphBlock], x: np.ndarray,
                 y: Optional[np.ndarray], seed_nodes: np.ndarray):
        self.blocks = blocks
        self.x = x
        self.y = y
        self.seed_nodes = seed_nodes

    @property
    def input_nodes(self) -> np.ndarray:
        """Global ids whose features feed the first layer."""
        return self.blocks[0].src_nodes

    @property
    def num_seeds(self) -> int:
        return int(self.seed_nodes.shape[0])

    @property
    def num_layers(self) -> int:
        return len(self.blocks)

    def __repr__(self) -> str:
        return (f"BlockBatch(seeds={self.num_seeds}, layers={self.num_layers}, "
                f"input_nodes={self.input_nodes.shape[0]})")


def _normalize_fanouts(fanouts: Union[Fanout, Sequence[Fanout]],
                       num_layers: int) -> List[Fanout]:
    """Broadcast a scalar fanout and map non-positive values to unlimited."""
    if fanouts is None or isinstance(fanouts, (int, np.integer)):
        fanouts = [fanouts] * num_layers
    fanouts = [None if f is None or int(f) <= 0 else int(f) for f in fanouts]
    if len(fanouts) != num_layers:
        raise ValueError(f"expected {num_layers} fanouts, got {len(fanouts)}")
    return fanouts


class NeighborSampler:
    """Seeded k-hop neighbor sampler emitting :class:`BlockBatch` es.

    Parameters
    ----------
    graph:
        The full graph to sample from.
    fanouts:
        Per-layer neighbour caps, innermost layer first (one entry per GNN
        layer); an ``int`` broadcasts over ``num_layers``, ``None`` /
        non-positive means keep every neighbour.
    batch_size:
        Seeds per minibatch.
    num_layers:
        Layer count used to broadcast a scalar ``fanouts`` (ignored when a
        sequence is given).
    seed_nodes:
        Boolean mask or integer ids of the seeds to iterate (defaults to
        ``graph.train_mask``, else all nodes).
    shuffle:
        Reshuffle the seed order every epoch (deterministic given ``seed``).
    seed:
        Seed of the private generator driving shuffling and edge sampling.
    """

    def __init__(self, graph: Graph, fanouts: Union[Fanout, Sequence[Fanout]],
                 batch_size: int = 512, num_layers: Optional[int] = None,
                 seed_nodes: Optional[np.ndarray] = None,
                 shuffle: bool = True, seed: int = 0):
        self.graph = graph
        if not isinstance(fanouts, (list, tuple)):
            fanouts = [fanouts] * (num_layers if num_layers is not None else 1)
        elif num_layers is not None and len(fanouts) != num_layers:
            raise ValueError(f"expected {num_layers} fanouts (one per layer), "
                             f"got {len(fanouts)}")
        self.fanouts = _normalize_fanouts(fanouts, len(fanouts))
        self.batch_size = int(batch_size)
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.shuffle = shuffle
        self._rng = np.random.default_rng(seed)

        if seed_nodes is None:
            seed_nodes = graph.train_mask if graph.train_mask is not None \
                else np.arange(graph.num_nodes, dtype=np.int64)
        seed_nodes = np.asarray(seed_nodes)
        if seed_nodes.dtype == bool:
            seed_nodes = np.flatnonzero(seed_nodes)
        self.seed_nodes = seed_nodes.astype(np.int64)

        adjacency = graph.adjacency(add_self_loops=False)
        self._adjacency = adjacency
        row_weight = adjacency.row_sum()
        self._row_weight = row_weight.astype(np.float32)
        gcn_degree = row_weight + 1.0  # self loop weight of D^{-1/2}(A+I)D^{-1/2}
        self._inv_sqrt = (1.0 / np.sqrt(gcn_degree)).astype(np.float32)
        # Reusable global->local renumbering table (reset after every hop).
        self._lookup = np.full(graph.num_nodes, -1, dtype=np.int64)

    # ------------------------------------------------------------------ #
    def _sample_hop(self, targets: np.ndarray, fanout: Fanout) -> SubgraphBlock:
        """Sample one bipartite block for ``targets`` (vectorized CSR ops)."""
        sub = self._adjacency.index_select(0, targets).csr
        counts = np.diff(sub.indptr)
        cols = sub.indices
        weights = sub.data
        rows_local = np.repeat(np.arange(targets.shape[0], dtype=np.int64), counts)

        if fanout is not None and counts.size and int(counts.max()) > fanout:
            # Random-key top-k per row: sort (row, random key) and keep the
            # first `fanout` entries of every row — a uniform sample without
            # replacement, all rows at once.
            keys = self._rng.random(cols.shape[0])
            order = np.lexsort((keys, rows_local))
            starts = np.concatenate([[0], np.cumsum(counts)[:-1]])
            position = np.arange(cols.shape[0]) - np.repeat(starts, counts)
            selected = order[position < fanout]
            rows_local = rows_local[selected]
            cols = cols[selected]
            weights = weights[selected]

        sampled_weight = np.zeros(targets.shape[0], dtype=np.float32)
        np.add.at(sampled_weight, rows_local, weights)
        full_weight = self._row_weight[targets]
        row_scale = np.ones(targets.shape[0], dtype=np.float32)
        positive = sampled_weight > 0
        row_scale[positive] = full_weight[positive] / sampled_weight[positive]

        # Renumber: targets occupy the local prefix, new neighbours follow.
        lookup = self._lookup
        lookup[targets] = np.arange(targets.shape[0], dtype=np.int64)
        fresh = np.unique(cols[lookup[cols] < 0])
        lookup[fresh] = targets.shape[0] + np.arange(fresh.shape[0], dtype=np.int64)
        src_nodes = np.concatenate([targets, fresh])
        edge_cols = lookup[cols]
        lookup[src_nodes] = -1

        return SubgraphBlock(
            dst_nodes=targets, src_nodes=src_nodes,
            edge_rows=rows_local, edge_cols=edge_cols,
            edge_weight=weights.astype(np.float32),
            dst_inv_sqrt=self._inv_sqrt[targets],
            src_inv_sqrt=self._inv_sqrt[src_nodes],
            row_scale=row_scale)

    def sample(self, seeds: np.ndarray) -> BlockBatch:
        """Build the block stack for one batch of seed nodes."""
        seeds = np.asarray(seeds, dtype=np.int64)
        blocks: List[SubgraphBlock] = []
        targets = seeds
        for fanout in reversed(self.fanouts):
            block = self._sample_hop(targets, fanout)
            blocks.append(block)
            targets = block.src_nodes
        blocks.reverse()
        x = self.graph.x[blocks[0].src_nodes]
        y = None if self.graph.y is None else self.graph.y[seeds]
        return BlockBatch(blocks, x, y, seeds)

    def iter_batches(self, seeds: np.ndarray) -> Iterator[BlockBatch]:
        """Yield :class:`BlockBatch` es for an explicit seed list, in order.

        Unlike iteration over the sampler (which walks its configured
        ``seed_nodes``, shuffled per epoch), this serves an arbitrary
        request: the seeds are chunked into ``batch_size`` micro-batches
        without reordering, so concatenating the per-batch outputs lines up
        with the request.  Used by the serving engine's block backend.
        """
        seeds = np.asarray(seeds, dtype=np.int64).reshape(-1)
        for start in range(0, seeds.shape[0], self.batch_size):
            yield self.sample(seeds[start:start + self.batch_size])

    # ------------------------------------------------------------------ #
    def __iter__(self) -> Iterator[BlockBatch]:
        order = self.seed_nodes
        if self.shuffle:
            order = self._rng.permutation(order)
        for start in range(0, order.shape[0], self.batch_size):
            yield self.sample(order[start:start + self.batch_size])

    def __len__(self) -> int:
        return -(-self.seed_nodes.shape[0] // self.batch_size)
