"""Fanout-limited neighbor sampling for minibatch training (GraphSAGE-style).

Full-batch training keeps every node's activations alive for every layer,
which caps the graph sizes the reproduction can touch.  This module bounds
per-step cost by materialising, for each minibatch of *seed* nodes, one
bipartite :class:`SubgraphBlock` per GNN layer: the block's target side is
the nodes whose embeddings the layer must produce, its source side is those
targets plus a fanout-capped sample of their in-neighbourhood.  Stacking
``L`` blocks yields exactly the receptive field an ``L``-layer network needs
for the seeds — nothing else is ever touched.

Sampling is a vectorized CSR operation end to end: target rows are extracted
with :meth:`~repro.tensor.sparse.SparseTensor.index_select`, the fanout cap
is applied with one random-key sort over the extracted non-zeros, and node
renumbering uses a reusable global->local lookup table.  No Python-level
per-node loops.

The random keys are *counter-based*: each edge's key is a SplitMix64 hash of
``(sampler seed, rng-epoch, hop, target node, edge position)`` rather than a
draw from a sequential generator stream.  A node's sampled neighbourhood is
therefore a pure function of those five values — independent of batch
composition, batch order, or how many batches were drawn before it.  That is
what makes seeded runs reproducible regardless of iteration order, and what
lets a :class:`~repro.cache.BlockCache` reuse per-seed rows with *bit
identical* results: a cache can only change when a row is computed, never
what it contains.  The rng-epoch advances once per ``__iter__`` epoch (so
training still resamples every epoch, and cached sampled rows are explicitly
invalidated), while explicit :meth:`NeighborSampler.sample` /
:meth:`NeighborSampler.iter_batches` calls — the serving path — stay in the
current epoch and enjoy warm caches across requests.

Degree renormalisation keeps sampled operators unbiased:

* the mean (GraphSAGE) operator divides each row by its *sampled* degree;
* the GCN operator uses the full graph's symmetric normalisation
  ``D^{-1/2}(A + I)D^{-1/2}`` on the sampled edges, rescaled per row by
  ``full_degree / sampled_degree`` so dropped neighbours are compensated.

With unlimited fanout both operators reproduce the full-batch operators
exactly (restricted to the block's rows), which is what makes minibatch
training with ``fanout=None`` numerically identical to full-batch training.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np
import scipy.sparse as sp

from repro.graphs.graph import Graph
from repro.tensor.sparse import SparseTensor
from repro.tensor.tensor import Tensor

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (cache stores blocks)
    from repro.cache import BlockCache
    from repro.streaming import RegionVersions

#: A per-layer fanout: ``None`` means unlimited (keep every neighbour).
Fanout = Optional[int]

# --------------------------------------------------------------------------- #
# Counter-based random keys (SplitMix64).  Integer overflow wraps, which is
# exactly the arithmetic the mixer wants; numpy only warns for *scalar*
# overflow, so the salt helpers below work on 1-element arrays.
# --------------------------------------------------------------------------- #
_MIX_INCREMENT = np.uint64(0x9E3779B97F4A7C15)
_MIX_MULTIPLIER_1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX_MULTIPLIER_2 = np.uint64(0x94D049BB133111EB)


def _mix64(values: np.ndarray) -> np.ndarray:
    """SplitMix64 finaliser: avalanche a uint64 array element-wise."""
    values = values + _MIX_INCREMENT
    values = (values ^ (values >> np.uint64(30))) * _MIX_MULTIPLIER_1
    values = (values ^ (values >> np.uint64(27))) * _MIX_MULTIPLIER_2
    return values ^ (values >> np.uint64(31))


def _salt(seed: int, epoch: int, hop: int) -> np.uint64:
    """One uint64 salt chaining (seed, rng-epoch, hop)."""
    value = _mix64(np.array([seed % (1 << 64)], dtype=np.uint64))
    value = _mix64(value ^ np.uint64(epoch % (1 << 64)))
    value = _mix64(value ^ np.uint64(hop % (1 << 64)))
    return value[0]


def _edge_keys(node_ids: np.ndarray, positions: np.ndarray,
               salt: np.uint64) -> np.ndarray:
    """Per-edge uint64 sort keys: a pure function of (salt, node, position).

    ``node_ids`` is the *global* target id of each edge and ``positions``
    the edge's index within its row, so a row's keys never depend on which
    other rows share the batch.
    """
    base = _mix64(node_ids.astype(np.uint64) ^ salt)
    return _mix64(base + positions.astype(np.uint64))


class SubgraphBlock:
    """One bipartite message-passing block ``targets <- sources``.

    The first ``num_dst`` sources *are* the targets (self-alignment), so a
    layer's root/update term is simply ``x[:num_dst]``.  The block mirrors
    the adjacency API of :class:`~repro.graphs.graph.Graph`
    (:meth:`adjacency` / :meth:`normalized_adjacency`), which lets the
    existing convolutions — and every quantization wrapper around them —
    consume blocks without code changes.

    Parameters
    ----------
    dst_nodes / src_nodes:
        Global node ids of the target and source sides; ``src_nodes``
        starts with ``dst_nodes``.
    edge_rows / edge_cols:
        Local (renumbered) endpoints of the sampled edges: row indexes
        ``dst_nodes``, column indexes ``src_nodes``.
    edge_weight:
        Original edge weights of the sampled edges.
    dst_inv_sqrt / src_inv_sqrt:
        ``1/sqrt(degree + loop)`` of the global graph for both sides, used
        by the GCN normalisation.
    row_scale:
        Per-target ratio ``full_degree / sampled_degree`` compensating the
        fanout cap (1 when nothing was dropped).
    """

    def __init__(self, dst_nodes: np.ndarray, src_nodes: np.ndarray,
                 edge_rows: np.ndarray, edge_cols: np.ndarray,
                 edge_weight: np.ndarray, dst_inv_sqrt: np.ndarray,
                 src_inv_sqrt: np.ndarray, row_scale: np.ndarray):
        self.dst_nodes = dst_nodes
        self.src_nodes = src_nodes
        self.edge_rows = edge_rows
        self.edge_cols = edge_cols
        self.edge_weight = edge_weight
        self.dst_inv_sqrt = dst_inv_sqrt
        self.src_inv_sqrt = src_inv_sqrt
        self.row_scale = row_scale
        self._cache: dict = {}

    # ------------------------------------------------------------------ #
    @property
    def num_dst(self) -> int:
        return int(self.dst_nodes.shape[0])

    @property
    def num_src(self) -> int:
        return int(self.src_nodes.shape[0])

    @property
    def num_nodes(self) -> int:
        """Source-side size (the rows of the features entering this block)."""
        return self.num_src

    @property
    def num_edges(self) -> int:
        return int(self.edge_rows.shape[0])

    # ------------------------------------------------------------------ #
    def _build(self, values: np.ndarray, add_self_loops: bool,
               loop_values: Optional[np.ndarray] = None) -> SparseTensor:
        rows, cols = self.edge_rows, self.edge_cols
        if add_self_loops:
            loop = np.arange(self.num_dst, dtype=np.int64)
            rows = np.concatenate([rows, loop])
            cols = np.concatenate([cols, loop])
            if loop_values is None:
                loop_values = np.ones(self.num_dst, dtype=np.float32)
            values = np.concatenate([values, loop_values.astype(np.float32)])
        matrix = sp.csr_matrix(
            (values.astype(np.float32), (rows, cols)),
            shape=(self.num_dst, self.num_src))
        return SparseTensor(matrix)

    def adjacency(self, add_self_loops: bool = False) -> SparseTensor:
        """Sampled bipartite adjacency with the original edge weights."""
        key = f"adj_{add_self_loops}"
        if key not in self._cache:
            self._cache[key] = self._build(self.edge_weight, add_self_loops)
        return self._cache[key]

    def normalized_adjacency(self) -> SparseTensor:
        """GCN normalisation on the sampled edges, degree-renormalised.

        Edge values are ``inv_sqrt[u] * w * inv_sqrt[v] * row_scale[u]`` with
        the *global* inverse square-root degrees, plus unscaled self loops
        ``inv_sqrt[u]^2``; at unlimited fanout this is an exact row slice of
        :meth:`Graph.normalized_adjacency`.
        """
        if "gcn_norm" not in self._cache:
            values = (self.dst_inv_sqrt[self.edge_rows] * self.edge_weight
                      * self.src_inv_sqrt[self.edge_cols]
                      * self.row_scale[self.edge_rows])
            loops = self.dst_inv_sqrt * self.dst_inv_sqrt
            self._cache["gcn_norm"] = self._build(values, True, loop_values=loops)
        return self._cache["gcn_norm"]

    def __repr__(self) -> str:
        return (f"SubgraphBlock(dst={self.num_dst}, src={self.num_src}, "
                f"edges={self.num_edges})")


def target_features(x: Tensor, graph: Union[Graph, "SubgraphBlock"]) -> Tensor:
    """Features of the target side: ``x[:num_dst]`` on a block, ``x`` else.

    Because a block's sources start with its targets, this is the only
    adaptation a root/update term needs to run bipartite.
    """
    if isinstance(graph, SubgraphBlock):
        return x[:graph.num_dst]
    return x


class BlockBatch:
    """One minibatch: per-layer blocks plus the seed features and labels.

    ``blocks[0]`` is the innermost hop (consumed by the first convolution);
    ``blocks[-1]`` produces exactly the ``seed_nodes``.  ``x`` holds the
    input features of ``blocks[0].src_nodes`` and ``y`` the labels of the
    seeds, so a model forward plus a loss needs nothing but this object.
    """

    def __init__(self, blocks: List[SubgraphBlock], x: np.ndarray,
                 y: Optional[np.ndarray], seed_nodes: np.ndarray):
        self.blocks = blocks
        self.x = x
        self.y = y
        self.seed_nodes = seed_nodes

    @property
    def input_nodes(self) -> np.ndarray:
        """Global ids whose features feed the first layer."""
        return self.blocks[0].src_nodes

    @property
    def num_seeds(self) -> int:
        return int(self.seed_nodes.shape[0])

    @property
    def num_layers(self) -> int:
        return len(self.blocks)

    def __repr__(self) -> str:
        return (f"BlockBatch(seeds={self.num_seeds}, layers={self.num_layers}, "
                f"input_nodes={self.input_nodes.shape[0]})")


def _normalize_fanouts(fanouts: Union[Fanout, Sequence[Fanout]],
                       num_layers: int) -> List[Fanout]:
    """Broadcast a scalar fanout and map non-positive values to unlimited."""
    if fanouts is None or isinstance(fanouts, (int, np.integer)):
        fanouts = [fanouts] * num_layers
    fanouts = [None if f is None or int(f) <= 0 else int(f) for f in fanouts]
    if len(fanouts) != num_layers:
        raise ValueError(f"expected {num_layers} fanouts, got {len(fanouts)}")
    return fanouts


class NeighborSampler:
    """Seeded k-hop neighbor sampler emitting :class:`BlockBatch` es.

    Parameters
    ----------
    graph:
        The full graph to sample from.
    fanouts:
        Per-layer neighbour caps, innermost layer first (one entry per GNN
        layer); an ``int`` broadcasts over ``num_layers``, ``None`` /
        non-positive means keep every neighbour.
    batch_size:
        Seeds per minibatch.
    num_layers:
        Layer count used to broadcast a scalar ``fanouts`` (ignored when a
        sequence is given).
    seed_nodes:
        Boolean mask or integer ids of the seeds to iterate (defaults to
        ``graph.train_mask``, else all nodes).
    shuffle:
        Reshuffle the seed order every epoch (deterministic given ``seed``).
    seed:
        Seed of the shuffle generator and of the counter-based edge-sampling
        hash.  Edge sampling consumes no sequential rng state: a node's
        sampled neighbourhood depends only on ``(seed, rng-epoch, hop,
        node)``, never on iteration order.
    cache:
        Optional :class:`~repro.cache.BlockCache` consulted before touching
        the adjacency.  The cache must be private to one sampler
        configuration (its keys carry no graph/seed identity).  Cached and
        uncached sampling are bit-identical.
    versions:
        Optional :class:`~repro.streaming.RegionVersions` tracker for
        streamed graphs.  When given, every cache key is stamped with the
        node's row version (row entries) or the seeds' region-version
        vector (batch entries), which is what scopes invalidation to the
        receptive fields an update actually touched.  Static graphs omit
        it (all versions stay 0).
    """

    def __init__(self, graph: Graph, fanouts: Union[Fanout, Sequence[Fanout]],
                 batch_size: int = 512, num_layers: Optional[int] = None,
                 seed_nodes: Optional[np.ndarray] = None,
                 shuffle: bool = True, seed: int = 0,
                 cache: Optional["BlockCache"] = None,
                 cache_batches: bool = True,
                 versions: Optional["RegionVersions"] = None):
        self.graph = graph
        if not isinstance(fanouts, (list, tuple)):
            fanouts = [fanouts] * (num_layers if num_layers is not None else 1)
        elif num_layers is not None and len(fanouts) != num_layers:
            raise ValueError(f"expected {num_layers} fanouts (one per layer), "
                             f"got {len(fanouts)}")
        self.fanouts = _normalize_fanouts(fanouts, len(fanouts))
        self.batch_size = int(batch_size)
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.shuffle = shuffle
        self.seed = int(seed)
        self._rng = np.random.default_rng(seed)
        #: Counter mixed into every edge-sampling key; advanced once per
        #: ``__iter__`` epoch so training resamples, left alone by the
        #: explicit :meth:`sample` / :meth:`iter_batches` serving path.
        self.rng_epoch = 0
        self.cache = cache
        #: Store whole BlockBatches (worth it for serving, where identical
        #: requests repeat; training batches never repeat within an epoch).
        self.cache_batches = cache_batches
        self.versions = versions

        if seed_nodes is None:
            seed_nodes = graph.train_mask if graph.train_mask is not None \
                else np.arange(graph.num_nodes, dtype=np.int64)
        seed_nodes = np.asarray(seed_nodes)
        if seed_nodes.dtype == bool:
            seed_nodes = np.flatnonzero(seed_nodes)
        self.seed_nodes = seed_nodes.astype(np.int64)

        adjacency = graph.adjacency(add_self_loops=False)
        self._adjacency = adjacency
        row_weight = adjacency.row_sum()
        self._row_weight = row_weight.astype(np.float32)
        gcn_degree = row_weight + 1.0  # self loop weight of D^{-1/2}(A+I)D^{-1/2}
        self._inv_sqrt = (1.0 / np.sqrt(gcn_degree)).astype(np.float32)
        # Reusable global->local renumbering table (reset after every hop),
        # thread-local so concurrent serving workers never share scratch.
        self._scratch = threading.local()

    # ------------------------------------------------------------------ #
    def _lookup_table(self) -> np.ndarray:
        table = getattr(self._scratch, "lookup", None)
        if table is None or table.shape[0] != self.graph.num_nodes:
            table = np.full(self.graph.num_nodes, -1, dtype=np.int64)
            self._scratch.lookup = table
        return table

    def _raw_rows(self, targets: np.ndarray
                  ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Flat (cols, weights, counts) of the targets' full adjacency rows."""
        sub = self._adjacency.index_select(0, targets).csr
        counts = np.diff(sub.indptr).astype(np.int64)
        return sub.indices.astype(np.int64), sub.data, counts

    def _cap_rows(self, node_ids: np.ndarray, cols: np.ndarray,
                  weights: np.ndarray, counts: np.ndarray, fanout: Fanout,
                  salt: np.uint64
                  ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Apply the fanout cap to flat row-major CSR data, row-wise.

        Random-key top-k per row: sort (row, hashed key) and keep the first
        ``fanout`` entries of every row — a uniform sample without
        replacement, all rows at once.  Keys hash ``(salt, node, position)``
        so each row's kept set is independent of the other rows, and the
        kept edges are re-sorted into their original row positions so the
        output is byte-identical however rows are grouped into calls.
        """
        if fanout is None or counts.size == 0 or int(counts.max(initial=0)) <= fanout:
            return cols, weights, counts
        rows_local = np.repeat(np.arange(counts.shape[0], dtype=np.int64), counts)
        starts = np.concatenate([[0], np.cumsum(counts)[:-1]])
        position = np.arange(cols.shape[0], dtype=np.int64) \
            - np.repeat(starts, counts)
        keys = _edge_keys(node_ids[rows_local], position, salt)
        order = np.lexsort((keys, rows_local))
        selected = np.sort(order[position < fanout])
        return cols[selected], weights[selected], np.minimum(counts, fanout)

    def _cached_rows(self, targets: np.ndarray, fanout: Fanout, hop: int,
                     salt: np.uint64
                     ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Like ``_raw_rows`` + ``_cap_rows`` but routed through the cache."""
        from repro.cache import ROW_FINAL, ROW_RAW

        cache = self.cache
        epoch = self.rng_epoch
        row_versions = None if self.versions is None \
            else self.versions.row_versions(targets)
        entries = cache.get_rows(targets, fanout, hop, epoch,
                                 versions=row_versions)

        missing = [i for i, entry in enumerate(entries) if entry is None]
        if missing:
            missing_arr = np.asarray(missing, dtype=np.int64)
            nodes = targets[missing_arr]
            cols, weights, counts = self._raw_rows(nodes)
            boundaries = np.cumsum(counts)[:-1]
            # Copy per-row slices: cached entries must own their memory, or
            # one surviving view would pin the whole extraction buffer.
            raw_rows = [(row_cols.copy(), row_weights.copy())
                        for row_cols, row_weights
                        in zip(np.split(cols, boundaries),
                               np.split(weights, boundaries))]
            cache.put_raw_rows(
                nodes, raw_rows,
                versions=None if row_versions is None
                else row_versions[missing_arr])
            for index, (row_cols, row_weights) in zip(missing, raw_rows):
                raw = fanout is not None and row_cols.shape[0] > fanout
                entries[index] = (ROW_RAW if raw else ROW_FINAL,
                                  row_cols, row_weights)

        # Cap every still-raw row in one vectorized pass (cache hits that
        # were stored as full rows plus freshly extracted over-fanout rows).
        raw_indices = [i for i, entry in enumerate(entries)
                       if entry[0] == ROW_RAW]
        if raw_indices:
            raw_indices_arr = np.asarray(raw_indices, dtype=np.int64)
            nodes = targets[raw_indices_arr]
            counts = np.asarray([entries[i][1].shape[0] for i in raw_indices],
                                dtype=np.int64)
            cols = np.concatenate([entries[i][1] for i in raw_indices])
            weights = np.concatenate([entries[i][2] for i in raw_indices])
            cols, weights, capped_counts = self._cap_rows(
                nodes, cols, weights, counts, fanout, salt)
            boundaries = np.cumsum(capped_counts)[:-1]
            capped = [(row_cols.copy(), row_weights.copy())
                      for row_cols, row_weights
                      in zip(np.split(cols, boundaries),
                             np.split(weights, boundaries))]
            cache.put_capped_rows(
                nodes, fanout, hop, epoch, capped,
                versions=None if row_versions is None
                else row_versions[raw_indices_arr])
            for index, (row_cols, row_weights) in zip(raw_indices, capped):
                entries[index] = (ROW_FINAL, row_cols, row_weights)

        counts = np.asarray([entry[1].shape[0] for entry in entries],
                            dtype=np.int64)
        cols = np.concatenate([entry[1] for entry in entries])
        weights = np.concatenate([entry[2] for entry in entries])
        return cols, weights, counts

    def _final_rows(self, targets: np.ndarray, fanout: Fanout, hop: int,
                    salt: np.uint64
                    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Final (fanout-capped) rows of ``targets``: flat (cols, weights,
        counts).

        A pure function of ``(graph, sampler seed, rng-epoch, hop, node,
        fanout)`` per row — independent of how targets are grouped into
        calls.  This is the seam the sharded serving tier overrides: a
        shard-local sampler answers its own rows from here and fetches
        non-owned rows from their owning worker, which computes the byte
        identical result through this very method.
        """
        if self.cache is not None and targets.shape[0] > 0:
            return self._cached_rows(targets, fanout, hop, salt)
        cols, weights, counts = self._raw_rows(targets)
        return self._cap_rows(targets, cols, weights, counts, fanout, salt)

    def _sample_hop(self, targets: np.ndarray, fanout: Fanout,
                    hop: int) -> SubgraphBlock:
        """Sample one bipartite block for ``targets`` (vectorized CSR ops)."""
        salt = _salt(self.seed, self.rng_epoch, hop)
        cols, weights, counts = self._final_rows(targets, fanout, hop, salt)
        rows_local = np.repeat(np.arange(targets.shape[0], dtype=np.int64),
                               counts)

        sampled_weight = np.zeros(targets.shape[0], dtype=np.float32)
        np.add.at(sampled_weight, rows_local, weights)
        full_weight = self._row_weight[targets]
        row_scale = np.ones(targets.shape[0], dtype=np.float32)
        positive = sampled_weight > 0
        row_scale[positive] = full_weight[positive] / sampled_weight[positive]

        # Renumber: targets occupy the local prefix, new neighbours follow.
        lookup = self._lookup_table()
        lookup[targets] = np.arange(targets.shape[0], dtype=np.int64)
        fresh = np.unique(cols[lookup[cols] < 0])
        lookup[fresh] = targets.shape[0] + np.arange(fresh.shape[0], dtype=np.int64)
        src_nodes = np.concatenate([targets, fresh])
        edge_cols = lookup[cols]
        lookup[src_nodes] = -1

        return SubgraphBlock(
            dst_nodes=targets, src_nodes=src_nodes,
            edge_rows=rows_local, edge_cols=edge_cols,
            edge_weight=weights.astype(np.float32),
            dst_inv_sqrt=self._inv_sqrt[targets],
            src_inv_sqrt=self._inv_sqrt[src_nodes],
            row_scale=row_scale)

    def sample(self, seeds: np.ndarray) -> BlockBatch:
        """Build the block stack for one batch of seed nodes.

        A pure function of ``(seeds, sampler seed, rng-epoch)``: calling it
        twice — or in any interleaving with other batches — returns
        identical samples.  With a cache attached, a byte-identical repeat
        call returns the previously built (immutable) batch outright.
        """
        seeds = np.asarray(seeds, dtype=np.int64)
        region_tag = b"" if self.versions is None \
            else self.versions.region_tag(seeds)
        if self.cache is not None and self.cache_batches:
            cached = self.cache.get_batch(seeds, self.fanouts, self.rng_epoch,
                                          region_tag=region_tag)
            if cached is not None:
                return cached
        blocks: List[SubgraphBlock] = []
        targets = seeds
        for hop, fanout in enumerate(reversed(self.fanouts)):
            block = self._sample_hop(targets, fanout, hop)
            blocks.append(block)
            targets = block.src_nodes
        blocks.reverse()
        x = self.graph.x[blocks[0].src_nodes]
        y = None if self.graph.y is None else self.graph.y[seeds]
        batch = BlockBatch(blocks, x, y, seeds)
        if self.cache is not None and self.cache_batches:
            self.cache.put_batch(seeds, self.fanouts, self.rng_epoch, batch,
                                 region_tag=region_tag)
        return batch

    def iter_batches(self, seeds: np.ndarray) -> Iterator[BlockBatch]:
        """Yield :class:`BlockBatch` es for an explicit seed list, in order.

        Unlike iteration over the sampler (which walks its configured
        ``seed_nodes``, shuffled per epoch), this serves an arbitrary
        request: the seeds are chunked into ``batch_size`` micro-batches
        without reordering, so concatenating the per-batch outputs lines up
        with the request.  Sampling shares the counter-based key stream of
        :meth:`sample`, so the produced blocks do not depend on how many
        batches (or epochs) were drawn before — seeded runs are reproducible
        regardless of iteration order.  Used by the serving engine's block
        backend.
        """
        seeds = np.asarray(seeds, dtype=np.int64).reshape(-1)
        for start in range(0, seeds.shape[0], self.batch_size):
            yield self.sample(seeds[start:start + self.batch_size])

    # ------------------------------------------------------------------ #
    def refresh_graph(self) -> None:
        """Re-derive adjacency state after the bound graph was mutated.

        Rebuilds exactly what ``__init__`` derives — the raw adjacency
        handle, per-row weights and GCN ``1/sqrt(degree)`` — so a sampler
        over a streamed graph is bit-identical to a fresh sampler built on
        the equivalent static graph.  Called by
        :meth:`~repro.serving.session.BlockSession.apply_update` right
        after :meth:`~repro.graphs.graph.Graph.apply_delta`.
        """
        adjacency = self.graph.adjacency(add_self_loops=False)
        self._adjacency = adjacency
        row_weight = adjacency.row_sum()
        self._row_weight = row_weight.astype(np.float32)
        gcn_degree = row_weight + 1.0
        self._inv_sqrt = (1.0 / np.sqrt(gcn_degree)).astype(np.float32)

    def advance_epoch(self) -> int:
        """Move to the next rng-epoch and invalidate stale cached samples.

        Called automatically at the start of every ``__iter__`` epoch.
        Cached *raw* rows survive (they carry no randomness — the
        low-degree/unlimited-fanout neighbourhoods the ROADMAP calls
        deterministic); cached sampled rows and batches of other epochs are
        explicitly evicted.
        """
        self.rng_epoch += 1
        if self.cache is not None:
            self.cache.invalidate_epochs(self.rng_epoch)
        return self.rng_epoch

    def __iter__(self) -> Iterator[BlockBatch]:
        self.advance_epoch()
        order = self.seed_nodes
        if self.shuffle:
            order = self._rng.permutation(order)
        for start in range(0, order.shape[0], self.batch_size):
            yield self.sample(order[start:start + self.batch_size])

    def __len__(self) -> int:
        return -(-self.seed_nodes.shape[0] // self.batch_size)
