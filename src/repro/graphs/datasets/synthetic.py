"""Synthetic attributed-graph generators.

The reproduction has no network access, so the public benchmark datasets the
paper evaluates on (Planetoid citation graphs, OGB, Reddit, IGB, TUDataset)
are replaced by seeded synthetic generators that preserve the properties the
quantization experiments are sensitive to:

* **community structure** — a stochastic block model with configurable
  intra/inter-class connection probabilities, so message passing carries
  label-relevant signal;
* **class-correlated features** — sparse bag-of-words-style features whose
  topic distribution depends on the class, so the FP32 model reaches
  non-trivial accuracy that quantization can then degrade;
* **skewed degree distributions** — an optional preferential-attachment hub
  overlay, because both Degree-Quant and A²Q key their behaviour off
  high-in-degree nodes.

See DESIGN.md ("Environment substitutions") for the per-dataset mapping.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.graph import Graph
from repro.graphs.splits import train_val_test_masks


@dataclass
class SBMConfig:
    """Configuration of the citation-style stochastic block model."""

    num_nodes: int = 600
    num_classes: int = 6
    num_features: int = 256
    average_degree: float = 4.0
    homophily: float = 0.85
    feature_signal: float = 0.9
    feature_sparsity: float = 0.05
    hub_fraction: float = 0.02
    hub_extra_edges: int = 20
    train_per_class: int = 20
    num_val: int = 120
    num_test: int = 240
    name: str = "sbm"


def _sample_block_edges(labels: np.ndarray, average_degree: float, homophily: float,
                        rng: np.random.Generator) -> np.ndarray:
    """Sample undirected SBM edges given node labels."""
    num_nodes = labels.size
    num_classes = int(labels.max()) + 1
    total_edges = int(average_degree * num_nodes / 2)
    intra_edges = int(total_edges * homophily)
    inter_edges = total_edges - intra_edges

    per_class = [np.flatnonzero(labels == c) for c in range(num_classes)]
    edges = set()

    def add_edge(u: int, v: int) -> None:
        if u == v:
            return
        edges.add((min(u, v), max(u, v)))

    # Intra-class edges.
    class_probability = np.asarray([members.size for members in per_class], dtype=np.float64)
    class_probability = class_probability / class_probability.sum()
    attempts = 0
    while len(edges) < intra_edges and attempts < 20 * intra_edges:
        attempts += 1
        cls = rng.choice(num_classes, p=class_probability)
        members = per_class[cls]
        if members.size < 2:
            continue
        u, v = rng.choice(members, size=2, replace=False)
        add_edge(int(u), int(v))

    # Inter-class edges.
    target = intra_edges + inter_edges
    attempts = 0
    while len(edges) < target and attempts < 20 * inter_edges + 100:
        attempts += 1
        u, v = rng.integers(0, num_nodes, size=2)
        if labels[u] == labels[v]:
            continue
        add_edge(int(u), int(v))

    if not edges:
        # Degenerate configuration: fall back to a ring so the graph is connected.
        ring = [(i, (i + 1) % num_nodes) for i in range(num_nodes)]
        edges = set(ring)
    edge_array = np.asarray(sorted(edges), dtype=np.int64).T
    return edge_array


def _add_hubs(edge_index: np.ndarray, num_nodes: int, hub_fraction: float,
              hub_extra_edges: int, rng: np.random.Generator) -> np.ndarray:
    """Attach extra edges to a few hub nodes to create a heavy degree tail."""
    num_hubs = max(int(hub_fraction * num_nodes), 0)
    if num_hubs == 0 or hub_extra_edges == 0:
        return edge_index
    hubs = rng.choice(num_nodes, size=num_hubs, replace=False)
    new_edges = []
    for hub in hubs:
        neighbours = rng.choice(num_nodes, size=hub_extra_edges, replace=False)
        for neighbour in neighbours:
            if neighbour != hub:
                new_edges.append((neighbour, hub))
    if not new_edges:
        return edge_index
    extra = np.asarray(new_edges, dtype=np.int64).T
    return np.concatenate([edge_index, extra], axis=1)


def _class_features(labels: np.ndarray, num_features: int, signal: float,
                    sparsity: float, rng: np.random.Generator) -> np.ndarray:
    """Sparse bag-of-words features with class-specific topic blocks."""
    num_nodes = labels.size
    num_classes = int(labels.max()) + 1
    block = max(num_features // num_classes, 1)
    features = np.zeros((num_nodes, num_features), dtype=np.float32)
    words_per_node = max(int(sparsity * num_features), 3)
    for node in range(num_nodes):
        cls = labels[node]
        on_topic = rng.random(words_per_node) < signal
        start = (cls * block) % num_features
        topic_words = start + rng.integers(0, block, size=words_per_node)
        random_words = rng.integers(0, num_features, size=words_per_node)
        chosen = np.where(on_topic, topic_words, random_words) % num_features
        features[node, chosen] = 1.0
    return features


def generate_sbm_graph(config: SBMConfig, seed: int = 0,
                       with_masks: bool = True) -> Graph:
    """Generate one citation-style graph from an :class:`SBMConfig`."""
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, config.num_classes, size=config.num_nodes)
    # Guarantee every class is present (small configs could otherwise miss one).
    labels[:config.num_classes] = np.arange(config.num_classes)

    undirected = _sample_block_edges(labels, config.average_degree, config.homophily, rng)
    undirected = _add_hubs(undirected, config.num_nodes, config.hub_fraction,
                           config.hub_extra_edges, rng)
    # Store both directions (the paper's datasets are undirected).
    edge_index = np.concatenate([undirected, undirected[::-1]], axis=1)

    features = _class_features(labels, config.num_features, config.feature_signal,
                               config.feature_sparsity, rng)
    graph = Graph(features, edge_index, y=labels, name=config.name)
    if with_masks:
        train_mask, val_mask, test_mask = train_val_test_masks(
            config.num_nodes, labels, train_per_class=config.train_per_class,
            num_val=config.num_val, num_test=config.num_test, rng=rng)
        graph.train_mask = train_mask
        graph.val_mask = val_mask
        graph.test_mask = test_mask
    return graph


def generate_community_graph(num_nodes: int, num_communities: int,
                             p_in: float, p_out: float,
                             rng: np.random.Generator) -> np.ndarray:
    """Dense-probability SBM edge sampler used by the TU-style generators.

    Returns an undirected ``(2, num_edges)`` edge index; suitable for the
    small graphs of graph-classification datasets where an O(n^2) Bernoulli
    sweep is affordable.
    """
    labels = rng.integers(0, num_communities, size=num_nodes)
    rows, cols = np.triu_indices(num_nodes, k=1)
    same = labels[rows] == labels[cols]
    probabilities = np.where(same, p_in, p_out)
    keep = rng.random(rows.size) < probabilities
    edge_index = np.vstack([rows[keep], cols[keep]]).astype(np.int64)
    if edge_index.shape[1] == 0:
        edge_index = np.asarray([[0], [min(1, num_nodes - 1)]], dtype=np.int64)
    return edge_index


def make_undirected(edge_index: np.ndarray) -> np.ndarray:
    """Duplicate edges in both directions."""
    return np.concatenate([edge_index, edge_index[::-1]], axis=1)


def erdos_renyi_edges(num_nodes: int, probability: float,
                      rng: np.random.Generator) -> np.ndarray:
    """Undirected Erdős–Rényi edge index (upper-triangular sampling)."""
    rows, cols = np.triu_indices(num_nodes, k=1)
    keep = rng.random(rows.size) < probability
    edge_index = np.vstack([rows[keep], cols[keep]]).astype(np.int64)
    if edge_index.shape[1] == 0:
        edge_index = np.asarray([[0], [min(1, num_nodes - 1)]], dtype=np.int64)
    return edge_index


def preferential_attachment_edges(num_nodes: int, edges_per_node: int,
                                  rng: np.random.Generator) -> np.ndarray:
    """Barabási–Albert-style preferential attachment (heavy degree tail)."""
    edges = []
    targets = list(range(min(edges_per_node, num_nodes)))
    repeated: list[int] = list(targets)
    for node in range(len(targets), num_nodes):
        if repeated:
            chosen = rng.choice(repeated, size=min(edges_per_node, len(repeated)),
                                replace=False)
        else:
            chosen = np.asarray([0])
        for target in np.unique(chosen):
            edges.append((node, int(target)))
            repeated.append(int(target))
        repeated.extend([node] * len(np.unique(chosen)))
    if not edges:
        edges = [(0, min(1, num_nodes - 1))]
    return np.asarray(edges, dtype=np.int64).T
