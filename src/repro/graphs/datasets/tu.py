"""Stand-ins for the TUDataset graph-classification benchmarks.

The paper's Table 8 evaluates a 5-layer GIN on IMDB-B, PROTEINS, D&D,
REDDIT-B and REDDIT-M.  Each stand-in generator produces a list of small
graphs whose *label is a function of generative structure* (density, number
of communities, hub structure), which is the property GIN-style models learn
on the real datasets:

* ``imdb_b`` — dense vs sparse ego-networks (2 classes);
* ``proteins`` — chain-like vs globular community graphs with 3 node labels;
* ``dd`` — larger versions of the same dichotomy (2 classes);
* ``reddit_b`` — star-dominated (discussion) vs more uniform threads (2 classes);
* ``reddit_m`` — five thread archetypes distinguished by hub count (5 classes).

Datasets without node features (IMDB, REDDIT) receive degree one-hot
features, exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

import numpy as np

from repro.graphs.datasets.synthetic import (
    erdos_renyi_edges,
    generate_community_graph,
    make_undirected,
    preferential_attachment_edges,
)
from repro.graphs.graph import Graph
from repro.graphs.transforms import degree_one_hot


@dataclass
class TUDatasetSpec:
    """Static description of one TU-style dataset stand-in."""

    name: str
    num_graphs: int
    num_classes: int
    has_node_features: bool
    average_nodes: float


TU_CHARACTERISTICS: Dict[str, TUDatasetSpec] = {
    "imdb-b": TUDatasetSpec("imdb-b", 1000, 2, False, 19.8),
    "proteins": TUDatasetSpec("proteins", 1113, 2, True, 39.1),
    "dd": TUDatasetSpec("dd", 1178, 2, True, 284.3),
    "reddit-b": TUDatasetSpec("reddit-b", 2000, 2, False, 429.6),
    "reddit-m": TUDatasetSpec("reddit-m", 4999, 5, False, 508.8),
}

#: Default number of graphs per dataset when generating the stand-ins; the
#: originals have 1000-5000 graphs which is unnecessary for shape-level
#: reproduction on CPU.
DEFAULT_NUM_GRAPHS = 120


def _imdb_like_graph(label: int, rng: np.random.Generator) -> Graph:
    """Ego-network: class 1 is much denser than class 0."""
    num_nodes = int(rng.integers(10, 26))
    probability = 0.25 if label == 0 else 0.6
    edge_index = make_undirected(erdos_renyi_edges(num_nodes, probability, rng))
    features = np.ones((num_nodes, 1), dtype=np.float32)
    return Graph(features, edge_index, y=np.asarray(label), name="imdb-b")


def _protein_like_graph(label: int, rng: np.random.Generator,
                        size_range: tuple = (20, 45)) -> Graph:
    """Chain-of-communities (class 0) vs single dense blob (class 1)."""
    num_nodes = int(rng.integers(*size_range))
    if label == 0:
        edge_index = generate_community_graph(num_nodes, num_communities=4,
                                               p_in=0.5, p_out=0.02, rng=rng)
        # String the communities together with a sparse backbone chain.
        chain = np.vstack([np.arange(num_nodes - 1), np.arange(1, num_nodes)])
        edge_index = np.concatenate([edge_index, chain[:, ::4]], axis=1)
    else:
        edge_index = erdos_renyi_edges(num_nodes, 0.35, rng)
    edge_index = make_undirected(edge_index)
    # Three structural node labels, analogous to PROTEINS' secondary-structure types.
    node_types = rng.integers(0, 3, size=num_nodes)
    features = np.zeros((num_nodes, 3), dtype=np.float32)
    features[np.arange(num_nodes), node_types] = 1.0
    return Graph(features, edge_index, y=np.asarray(label), name="proteins")


def _dd_like_graph(label: int, rng: np.random.Generator) -> Graph:
    """Same dichotomy as PROTEINS but with larger graphs (D&D scale)."""
    return _protein_like_graph(label, rng, size_range=(40, 90))


def _reddit_like_graph(label: int, num_hub_levels: int,
                       rng: np.random.Generator) -> Graph:
    """Discussion-thread graph whose class controls the number of hubs."""
    num_nodes = int(rng.integers(30, 80))
    hubs = 1 + label % num_hub_levels
    edge_index = preferential_attachment_edges(num_nodes, edges_per_node=1 + hubs, rng=rng)
    if label >= num_hub_levels // 2:
        extra = erdos_renyi_edges(num_nodes, 0.03, rng)
        edge_index = np.concatenate([edge_index, extra], axis=1)
    edge_index = make_undirected(edge_index)
    features = np.ones((num_nodes, 1), dtype=np.float32)
    return Graph(features, edge_index, y=np.asarray(label), name="reddit")


_GENERATORS: Dict[str, Callable[[int, np.random.Generator], Graph]] = {
    "imdb-b": _imdb_like_graph,
    "proteins": _protein_like_graph,
    "dd": _dd_like_graph,
    "reddit-b": lambda label, rng: _reddit_like_graph(label, 2, rng),
    "reddit-m": lambda label, rng: _reddit_like_graph(label, 5, rng),
}


def load_tu_dataset(name: str, num_graphs: int = DEFAULT_NUM_GRAPHS,
                    seed: int = 0, max_degree: int = 32) -> List[Graph]:
    """Generate a TU-style graph-classification dataset stand-in.

    Returns a list of :class:`Graph` objects with graph-level ``y`` labels.
    Datasets that lack node features in the original receive degree one-hot
    features (clipped at ``max_degree``) so every graph in the dataset has the
    same feature dimensionality.
    """
    key = name.lower()
    if key not in _GENERATORS:
        raise KeyError(f"unknown TU dataset {name!r}; options: {sorted(_GENERATORS)}")
    spec = TU_CHARACTERISTICS[key]
    rng = np.random.default_rng(seed)
    graphs: List[Graph] = []
    for index in range(num_graphs):
        label = index % spec.num_classes
        graph = _GENERATORS[key](label, rng)
        if not spec.has_node_features:
            graph = degree_one_hot(graph, max_degree=max_degree)
        graphs.append(graph)
    rng.shuffle(graphs)
    return graphs


def dataset_labels(graphs: List[Graph]) -> np.ndarray:
    """Graph-level label vector for a list of graphs."""
    return np.asarray([int(g.y) for g in graphs], dtype=np.int64)
