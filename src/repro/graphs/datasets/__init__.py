"""Dataset loaders and the dataset registry.

All datasets are deterministic functions of a ``seed`` (and a ``scale`` for
the node-classification graphs), so every experiment in ``benchmarks/`` is
reproducible bit-for-bit.  See DESIGN.md for the mapping from the paper's
public benchmark datasets to these synthetic stand-ins.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Union

from repro.graphs.datasets.citation import (
    PLANETOID_CHARACTERISTICS,
    load_citation,
    load_citeseer,
    load_cora,
    load_pubmed,
)
from repro.graphs.datasets.csl import circulant_skip_link_graph, load_csl
from repro.graphs.datasets.large import (
    LARGE_SCALE_CHARACTERISTICS,
    load_igb,
    load_large_scale,
    load_ogb_arxiv,
    load_ogb_products,
    load_ogb_proteins,
    load_reddit,
)
from repro.graphs.datasets.synthetic import SBMConfig, generate_sbm_graph
from repro.graphs.datasets.tu import (
    TU_CHARACTERISTICS,
    dataset_labels,
    load_tu_dataset,
)
from repro.graphs.graph import Graph

#: Registry of node-classification dataset loaders, keyed by paper name.
NODE_DATASETS: Dict[str, Callable[..., Graph]] = {
    "cora": load_cora,
    "citeseer": load_citeseer,
    "pubmed": load_pubmed,
    "ogb-arxiv": load_ogb_arxiv,
    "reddit": load_reddit,
    "ogb-products": load_ogb_products,
    "ogb-proteins": load_ogb_proteins,
    "igb": load_igb,
}

#: Registry of graph-classification dataset loaders, keyed by paper name.
GRAPH_DATASETS: Dict[str, Callable[..., List[Graph]]] = {
    "imdb-b": lambda **kw: load_tu_dataset("imdb-b", **kw),
    "proteins": lambda **kw: load_tu_dataset("proteins", **kw),
    "dd": lambda **kw: load_tu_dataset("dd", **kw),
    "reddit-b": lambda **kw: load_tu_dataset("reddit-b", **kw),
    "reddit-m": lambda **kw: load_tu_dataset("reddit-m", **kw),
    "csl": lambda **kw: load_csl(**kw),
}


def load_node_dataset(name: str, **kwargs) -> Graph:
    """Load a node-classification dataset stand-in by its paper name."""
    key = name.lower()
    if key not in NODE_DATASETS:
        raise KeyError(f"unknown node dataset {name!r}; options: {sorted(NODE_DATASETS)}")
    return NODE_DATASETS[key](**kwargs)


def load_graph_dataset(name: str, **kwargs) -> List[Graph]:
    """Load a graph-classification dataset stand-in by its paper name."""
    key = name.lower()
    if key not in GRAPH_DATASETS:
        raise KeyError(f"unknown graph dataset {name!r}; options: {sorted(GRAPH_DATASETS)}")
    return GRAPH_DATASETS[key](**kwargs)


def dataset_characteristics() -> Dict[str, Dict[str, Union[int, float, str]]]:
    """Return the paper's Table 2 characteristics for every referenced dataset."""
    table: Dict[str, Dict[str, Union[int, float, str]]] = {}
    for name, spec in PLANETOID_CHARACTERISTICS.items():
        table[name] = {"num_graphs": 1, **spec}
    for name, spec in LARGE_SCALE_CHARACTERISTICS.items():
        table[name] = {"num_graphs": 1, **{k: int(v) for k, v in spec.items()}}
    for name, spec in TU_CHARACTERISTICS.items():
        table[name] = {
            "num_graphs": spec.num_graphs,
            "num_nodes": spec.average_nodes,
            "num_classes": spec.num_classes,
            "has_node_features": spec.has_node_features,
        }
    table["csl"] = {"num_graphs": 150, "num_nodes": 41, "num_classes": 10,
                    "has_node_features": False}
    return table


__all__ = [
    "NODE_DATASETS",
    "GRAPH_DATASETS",
    "load_node_dataset",
    "load_graph_dataset",
    "dataset_characteristics",
    "load_cora",
    "load_citeseer",
    "load_pubmed",
    "load_citation",
    "load_ogb_arxiv",
    "load_reddit",
    "load_ogb_products",
    "load_ogb_proteins",
    "load_igb",
    "load_large_scale",
    "load_tu_dataset",
    "load_csl",
    "circulant_skip_link_graph",
    "dataset_labels",
    "generate_sbm_graph",
    "SBMConfig",
    "PLANETOID_CHARACTERISTICS",
    "LARGE_SCALE_CHARACTERISTICS",
    "TU_CHARACTERISTICS",
]
