"""Scaled-down stand-ins for the large-scale node-classification datasets.

The paper's scalability experiments (Table 3 OGB-Arxiv row, Table 7) use
OGB-Arxiv, Reddit, OGB-Proteins, OGB-Products and IGB — between 1.7 * 10^5
and 2.4 * 10^6 nodes.  Training anything of that size on a pure-Python CPU
substrate is infeasible, so the loaders here generate SBM graphs with the
same class counts, feature dimensionalities and *relative* sizes, shrunk by
``scale`` (default keeps the largest graph around a few thousand nodes).
OGB-Proteins is multi-label; its stand-in attaches a binary label matrix and
is evaluated with ROC-AUC like the paper.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.graphs.datasets.synthetic import SBMConfig, generate_sbm_graph
from repro.graphs.graph import Graph

#: Characteristics of the original datasets (paper Table 2).
LARGE_SCALE_CHARACTERISTICS: Dict[str, Dict[str, float]] = {
    "ogb-arxiv": {"num_nodes": 169_343, "num_edges": 1_166_243,
                  "num_features": 128, "num_classes": 40},
    "reddit": {"num_nodes": 232_965, "num_edges": 114_615_892,
               "num_features": 602, "num_classes": 41},
    "ogb-products": {"num_nodes": 2_449_029, "num_edges": 61_859_140,
                     "num_features": 100, "num_classes": 47},
    "ogb-proteins": {"num_nodes": 132_534, "num_edges": 39_561_252,
                     "num_features": 112, "num_classes": 112},
    "igb": {"num_nodes": 1_000_000, "num_edges": 12_070_502,
            "num_features": 1024, "num_classes": 19},
}

#: Node budget for the *largest* stand-in graph at ``scale=1.0``.
BASE_NODE_BUDGET = 3000


def _build_config(name: str, scale: float) -> SBMConfig:
    spec = LARGE_SCALE_CHARACTERISTICS[name]
    largest = max(entry["num_nodes"] for entry in LARGE_SCALE_CHARACTERISTICS.values())
    relative_size = spec["num_nodes"] / largest
    num_nodes = max(int(BASE_NODE_BUDGET * relative_size * scale),
                    10 * int(spec["num_classes"]))
    average_degree = min(spec["num_edges"] / spec["num_nodes"], 30.0)
    num_features = min(int(spec["num_features"]), 256)
    num_classes = int(spec["num_classes"])
    return SBMConfig(
        num_nodes=num_nodes,
        num_classes=num_classes,
        num_features=num_features,
        average_degree=average_degree,
        homophily=0.72,
        feature_signal=0.55,
        feature_sparsity=0.03,
        hub_fraction=0.03,
        hub_extra_edges=25,
        train_per_class=max(num_nodes // (4 * num_classes), 5),
        num_val=max(num_nodes // 10, 50),
        num_test=max(num_nodes // 5, 100),
        name=name,
    )


def load_large_scale(name: str, scale: float = 1.0, seed: int = 0) -> Graph:
    """Load a scaled-down stand-in for one of the large-scale datasets."""
    key = name.lower()
    if key not in LARGE_SCALE_CHARACTERISTICS:
        raise KeyError(f"unknown large-scale dataset {name!r}; "
                       f"options: {sorted(LARGE_SCALE_CHARACTERISTICS)}")
    config = _build_config(key, scale)
    graph = generate_sbm_graph(config, seed=seed)
    if key == "ogb-proteins":
        graph = _attach_multilabel_targets(graph, num_tasks=16, seed=seed)
    return graph


def _attach_multilabel_targets(graph: Graph, num_tasks: int, seed: int) -> Graph:
    """Convert class labels into a correlated multi-label binary matrix.

    OGB-Proteins predicts 112 binary protein functions; the stand-in keeps the
    evaluation path (sigmoid outputs + ROC-AUC) with a smaller task count.
    """
    rng = np.random.default_rng(seed + 17)
    classes = np.asarray(graph.y, dtype=np.int64)
    num_classes = int(classes.max()) + 1
    prototype = rng.random((num_classes, num_tasks)) < 0.35
    noise = rng.random((graph.num_nodes, num_tasks)) < 0.08
    labels = np.logical_xor(prototype[classes], noise).astype(np.float32)
    graph.y = labels
    return graph


def load_ogb_arxiv(scale: float = 1.0, seed: int = 0) -> Graph:
    return load_large_scale("ogb-arxiv", scale=scale, seed=seed)


def load_reddit(scale: float = 1.0, seed: int = 0) -> Graph:
    return load_large_scale("reddit", scale=scale, seed=seed)


def load_ogb_products(scale: float = 1.0, seed: int = 0) -> Graph:
    return load_large_scale("ogb-products", scale=scale, seed=seed)


def load_ogb_proteins(scale: float = 1.0, seed: int = 0) -> Graph:
    return load_large_scale("ogb-proteins", scale=scale, seed=seed)


def load_igb(scale: float = 1.0, seed: int = 0) -> Graph:
    return load_large_scale("igb", scale=scale, seed=seed)
