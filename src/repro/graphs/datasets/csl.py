"""The CSL (Circulant Skip Links) synthetic dataset.

CSL is synthetic in the original paper too (Murphy et al., 2019), so this is
a faithful construction rather than a stand-in: graph ``CSL(n, r)`` is a
cycle on ``n`` nodes plus skip links connecting every node ``i`` to
``(i + r) mod n``.  The classification task is to recover the skip length
``r``, which is impossible for 1-WL-bounded GNNs without positional
encodings — hence the Laplacian positional encodings used in Table 9.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.graphs.graph import Graph
from repro.graphs.transforms import (
    laplacian_positional_encoding,
    random_walk_positional_encoding,
)

#: Skip lengths used by the original dataset (10 classes, n = 41).
DEFAULT_SKIP_LENGTHS = (2, 3, 4, 5, 6, 9, 11, 12, 13, 16)
DEFAULT_NUM_NODES = 41


def circulant_skip_link_graph(num_nodes: int, skip: int, label: int) -> Graph:
    """Build one CSL graph: a cycle plus ``skip``-length chords."""
    if not 1 < skip < num_nodes - 1:
        raise ValueError("skip length must be in (1, num_nodes - 1)")
    nodes = np.arange(num_nodes)
    cycle = np.vstack([nodes, (nodes + 1) % num_nodes])
    chords = np.vstack([nodes, (nodes + skip) % num_nodes])
    edge_index = np.concatenate([cycle, chords], axis=1)
    edge_index = np.concatenate([edge_index, edge_index[::-1]], axis=1)
    # Remove duplicate edges that appear when skip relates to num_nodes.
    keys = edge_index[0] * num_nodes + edge_index[1]
    _, unique = np.unique(keys, return_index=True)
    edge_index = edge_index[:, np.sort(unique)]
    features = np.ones((num_nodes, 1), dtype=np.float32)
    return Graph(features, edge_index, y=np.asarray(label), name=f"csl_{skip}")


def load_csl(num_nodes: int = DEFAULT_NUM_NODES,
             skip_lengths: Sequence[int] = DEFAULT_SKIP_LENGTHS,
             copies_per_class: int = 15,
             positional_encoding_dim: int = 20,
             positional_encoding: str = "random_walk",
             seed: int = 0) -> List[Graph]:
    """Generate the CSL dataset with positional encodings.

    The original dataset has 150 graphs (15 isomorphic copies of each of the
    10 skip lengths) on 41 nodes with 50-dimensional positional encodings; all
    of these are parameters here.  Copies are node-relabelled permutations of
    the base graph so the encodings differ between copies.

    ``positional_encoding`` selects ``"laplacian"`` (the paper's choice) or
    ``"random_walk"`` return probabilities.  The default is random-walk: the
    eigenvectors of circulant matrices are the Fourier basis for every skip
    length, which leaves only a weak ordering signal for a small CPU-scale
    model, whereas random-walk return probabilities encode the skip length
    directly and reproduce the paper's phenomenon (FP32/INT4 learn the task,
    INT2 collapses) at this scale.  See DESIGN.md.
    """
    if positional_encoding not in {"laplacian", "random_walk"}:
        raise ValueError("positional_encoding must be 'laplacian' or 'random_walk'")
    rng = np.random.default_rng(seed)
    graphs: List[Graph] = []
    for label, skip in enumerate(skip_lengths):
        base = circulant_skip_link_graph(num_nodes, skip, label)
        for _ in range(copies_per_class):
            permutation = rng.permutation(num_nodes)
            relabelled_edges = permutation[base.edge_index]
            copy = Graph(base.x.copy(), relabelled_edges, y=np.asarray(label),
                         name=base.name)
            if positional_encoding == "laplacian":
                copy = laplacian_positional_encoding(
                    copy, dim=positional_encoding_dim, concatenate=False)
            else:
                copy = random_walk_positional_encoding(
                    copy, steps=positional_encoding_dim, concatenate=False)
            graphs.append(copy)
    rng.shuffle(graphs)
    return graphs
