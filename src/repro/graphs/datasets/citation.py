"""Stand-ins for the Planetoid citation datasets (Cora, CiteSeer, PubMed).

Each loader produces a seeded stochastic-block-model graph whose class
count, feature dimensionality and relative size mirror the original dataset
(Table 2 of the paper), scaled down by ``scale`` so that CPU-only training
finishes quickly.  ``scale=1.0`` approximates the original node counts.
"""

from __future__ import annotations

from typing import Dict

from repro.graphs.datasets.synthetic import SBMConfig, generate_sbm_graph
from repro.graphs.graph import Graph

#: Characteristics of the original datasets (paper Table 2) used to shape the
#: synthetic stand-ins and to regenerate the dataset-characteristics table.
PLANETOID_CHARACTERISTICS: Dict[str, Dict[str, int]] = {
    "cora": {"num_nodes": 2708, "num_edges": 10556, "num_features": 1433, "num_classes": 7},
    "citeseer": {"num_nodes": 3327, "num_edges": 9104, "num_features": 3703, "num_classes": 6},
    "pubmed": {"num_nodes": 19717, "num_edges": 88648, "num_features": 500, "num_classes": 3},
}

#: Default down-scaling factor so the full benchmark suite runs on a laptop CPU.
DEFAULT_SCALE = 0.25


def _build_config(name: str, scale: float) -> SBMConfig:
    spec = PLANETOID_CHARACTERISTICS[name]
    num_nodes = max(int(spec["num_nodes"] * scale), 8 * spec["num_classes"])
    average_degree = spec["num_edges"] / spec["num_nodes"]
    num_features = max(int(spec["num_features"] * scale), 32)
    return SBMConfig(
        num_nodes=num_nodes,
        num_classes=spec["num_classes"],
        num_features=num_features,
        average_degree=average_degree,
        homophily=0.70,
        feature_signal=0.50,
        feature_sparsity=0.02,
        hub_fraction=0.02,
        hub_extra_edges=15,
        train_per_class=20,
        num_val=max(num_nodes // 10, 20),
        num_test=max(num_nodes // 5, 40),
        name=name,
    )


def load_citation(name: str, scale: float = DEFAULT_SCALE, seed: int = 0) -> Graph:
    """Load a synthetic stand-in for one of Cora / CiteSeer / PubMed."""
    key = name.lower()
    if key not in PLANETOID_CHARACTERISTICS:
        raise KeyError(f"unknown citation dataset {name!r}; "
                       f"options: {sorted(PLANETOID_CHARACTERISTICS)}")
    config = _build_config(key, scale)
    return generate_sbm_graph(config, seed=seed)


def load_cora(scale: float = DEFAULT_SCALE, seed: int = 0) -> Graph:
    """Cora stand-in: 7 classes, bag-of-words features, ~3.9 average degree."""
    return load_citation("cora", scale=scale, seed=seed)


def load_citeseer(scale: float = DEFAULT_SCALE, seed: int = 0) -> Graph:
    """CiteSeer stand-in: 6 classes, high-dimensional sparse features."""
    return load_citation("citeseer", scale=scale, seed=seed)


def load_pubmed(scale: float = DEFAULT_SCALE, seed: int = 0) -> Graph:
    """PubMed stand-in: 3 classes, 500-dimensional features, larger graph."""
    return load_citation("pubmed", scale=scale, seed=seed)
