"""Train/validation/test splits and k-fold cross-validation indices."""

from __future__ import annotations

from typing import List, Tuple

import numpy as np


def train_val_test_masks(num_nodes: int, labels: np.ndarray,
                         train_per_class: int = 20, num_val: int = 500,
                         num_test: int = 1000,
                         rng: np.random.Generator | None = None
                         ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Planetoid-style split: ``train_per_class`` labelled nodes per class,
    then ``num_val`` validation and ``num_test`` test nodes from the rest."""
    if rng is None:
        rng = np.random.default_rng(0)
    labels = np.asarray(labels)
    train_mask = np.zeros(num_nodes, dtype=bool)
    for cls in np.unique(labels):
        candidates = np.flatnonzero(labels == cls)
        rng.shuffle(candidates)
        train_mask[candidates[:train_per_class]] = True

    remaining = np.flatnonzero(~train_mask)
    rng.shuffle(remaining)
    num_val = min(num_val, max(len(remaining) - 1, 0))
    val_mask = np.zeros(num_nodes, dtype=bool)
    val_mask[remaining[:num_val]] = True
    rest = remaining[num_val:]
    num_test = min(num_test, len(rest))
    test_mask = np.zeros(num_nodes, dtype=bool)
    test_mask[rest[:num_test]] = True
    return train_mask, val_mask, test_mask


def k_fold_indices(num_items: int, num_folds: int,
                   rng: np.random.Generator | None = None
                   ) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Return ``num_folds`` (train_indices, test_indices) pairs."""
    if num_folds < 2:
        raise ValueError("k-fold cross-validation needs at least 2 folds")
    if rng is None:
        rng = np.random.default_rng(0)
    order = np.arange(num_items)
    rng.shuffle(order)
    folds = np.array_split(order, num_folds)
    splits = []
    for index in range(num_folds):
        test_indices = folds[index]
        train_indices = np.concatenate([folds[j] for j in range(num_folds) if j != index])
        splits.append((train_indices, test_indices))
    return splits


def stratified_k_fold_indices(labels: np.ndarray, num_folds: int,
                              rng: np.random.Generator | None = None
                              ) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Class-stratified k-fold split (used for the TUDataset-style benchmarks)."""
    if rng is None:
        rng = np.random.default_rng(0)
    labels = np.asarray(labels)
    per_fold: List[List[int]] = [[] for _ in range(num_folds)]
    for cls in np.unique(labels):
        members = np.flatnonzero(labels == cls)
        rng.shuffle(members)
        for position, item in enumerate(members):
            per_fold[position % num_folds].append(int(item))
    splits = []
    for index in range(num_folds):
        test_indices = np.asarray(sorted(per_fold[index]))
        train_indices = np.asarray(sorted(
            item for j in range(num_folds) if j != index for item in per_fold[j]))
        splits.append((train_indices, test_indices))
    return splits
