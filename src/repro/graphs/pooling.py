"""Global pooling (readout) functions for graph-level tasks.

The paper uses global **max** pooling for its GIN graph-classification
experiments specifically because max pooling keeps quantized values inside
their quantization range (sum pooling can overflow, mean pooling produces
non-integer values); see Section 5.4.
"""

from __future__ import annotations

import numpy as np

from repro.tensor import functional as F
from repro.tensor.tensor import Tensor


def global_max_pool(x: Tensor, batch: np.ndarray, num_graphs: int) -> Tensor:
    """Per-graph maximum of node embeddings."""
    return F.segment_max(x, batch, num_graphs)


def global_mean_pool(x: Tensor, batch: np.ndarray, num_graphs: int) -> Tensor:
    """Per-graph mean of node embeddings."""
    return F.segment_mean(x, batch, num_graphs)


def global_sum_pool(x: Tensor, batch: np.ndarray, num_graphs: int) -> Tensor:
    """Per-graph sum of node embeddings."""
    return F.segment_sum(x, batch, num_graphs)


POOLING_FUNCTIONS = {
    "max": global_max_pool,
    "mean": global_mean_pool,
    "sum": global_sum_pool,
}


def get_pooling(name: str):
    """Look up a pooling function by name (``max`` / ``mean`` / ``sum``)."""
    if name not in POOLING_FUNCTIONS:
        raise KeyError(f"unknown pooling {name!r}; options: {sorted(POOLING_FUNCTIONS)}")
    return POOLING_FUNCTIONS[name]
