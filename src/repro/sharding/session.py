"""Drop-in sharded replacement of :class:`~repro.serving.BlockSession`.

:class:`ShardedBlockSession` exposes the same ``run`` / ``predict`` /
``cache_stats`` surface while executing on ``shards`` worker processes
behind a :class:`~repro.sharding.router.ShardRouter`.  Bitwise parity with
the single-process session follows from chunk-level routing: ``run``
splits seeds into the very same request-order ``batch_size`` micro-batches
the single-process session would form, and each whole chunk executes on
the shard owning the plurality of its seeds, with halo rows fetched for
the rest — identical batch composition, identical sampling keys, identical
float accumulation order.

The serving engines treat it exactly like a block session (it advertises
``request_invariant_cost = False``); close it explicitly — or use it as a
context manager — to stop the worker fleet.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence, Union

import numpy as np

from repro.cache import CacheStats
from repro.graphs.graph import Graph
from repro.graphs.partition import partition_graph
from repro.graphs.sampling import Fanout
from repro.quant.bitops import BitOpsCounter
from repro.serving.artifact import QuantizedArtifact
from repro.serving.session import InferenceSession, SessionRun
from repro.sharding.router import ShardRouter
from repro.sharding.worker import WorkerConfig, full_graph_degrees


class ShardedBlockSession(InferenceSession):
    """Block serving over ``shards`` worker processes.

    Parameters mirror :class:`~repro.serving.BlockSession` (``fanouts``,
    ``batch_size``, ``seed``, ``cache_size``/``cache_bytes`` — per shard —
    and ``backend``), plus:

    partition / partition_seed:
        Strategy and seed of :func:`repro.graphs.partition_graph`; the
        assignment is a pure function of ``(graph, shards, strategy,
        seed)``, so every process recomputes it identically.
    request_deadline_s:
        Per-chunk wall-clock budget enforced by the router; an overrun
        kills and restarts the worker and fails only that request.
    start_method:
        ``multiprocessing`` start method; default prefers ``fork``
        (workers inherit graph and artifact copy-on-write).
    """

    request_invariant_cost = False

    def __init__(self, artifact: QuantizedArtifact, graph: Graph,
                 shards: int = 2, partition: str = "hash",
                 partition_seed: int = 0,
                 fanouts: Union[Fanout, Sequence[Fanout]] = None,
                 batch_size: int = 1024, seed: int = 0, cache_size: int = 0,
                 cache_bytes: Optional[int] = None, backend: Optional[str] = None,
                 request_deadline_s: Optional[float] = None,
                 start_method: Optional[str] = None):
        super().__init__(artifact, graph, backend=backend)
        if shards < 1:
            raise ValueError("shards must be at least 1")
        self.shards = int(shards)
        self.partition_strategy = partition
        self.partition_seed = int(partition_seed)
        self.batch_size = int(batch_size)
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.assignment = partition_graph(graph, self.shards,
                                          strategy=partition,
                                          seed=partition_seed)
        row_weight, inv_sqrt = full_graph_degrees(graph)
        backend_name = None if backend is None else self.backend_name
        configs = [
            WorkerConfig(shard=shard, n_shards=self.shards,
                         assignment=self.assignment, artifact=artifact,
                         graph=graph, fanouts=fanouts,
                         batch_size=self.batch_size, seed=seed,
                         cache_size=cache_size, cache_bytes=cache_bytes,
                         backend=backend_name, row_weight=row_weight,
                         inv_sqrt=inv_sqrt)
            for shard in range(self.shards)]
        self.router = ShardRouter(configs,
                                  request_deadline_s=request_deadline_s,
                                  start_method=start_method)

    # ------------------------------------------------------------------ #
    def run(self, nodes: Optional[Sequence[int]] = None) -> SessionRun:
        start = time.perf_counter()
        seeds = np.arange(self.graph.num_nodes, dtype=np.int64) if nodes is None \
            else np.asarray(nodes, dtype=np.int64).reshape(-1)
        if seeds.shape[0] == 0:
            return SessionRun(
                logits=np.zeros((0, self.artifact.num_classes)),
                bit_operations=BitOpsCounter(), num_seeds=0, num_input_nodes=0,
                num_edges=0, seconds=time.perf_counter() - start)
        # The single-process chunking, verbatim: request order, batch_size
        # micro-batches.  Each whole chunk runs on one shard.
        handles = [self.router.submit_chunk(seeds[at:at + self.batch_size])
                   for at in range(0, seeds.shape[0], self.batch_size)]
        counter = BitOpsCounter()
        pieces = []
        input_nodes = 0
        edges = 0
        failure: Optional[BaseException] = None
        for handle in handles:
            try:
                logits, bitops, chunk_inputs, chunk_edges = \
                    self.router.wait_chunk(handle)
            except BaseException as error:  # noqa: BLE001 - re-raised below
                failure = failure or error
                continue
            pieces.append(logits)
            counter.extend(bitops)
            input_nodes += chunk_inputs
            edges += chunk_edges
        if failure is not None:
            raise failure
        logits = pieces[0] if len(pieces) == 1 else np.concatenate(pieces,
                                                                   axis=0)
        return SessionRun(logits=logits, bit_operations=counter,
                          num_seeds=int(seeds.shape[0]),
                          num_input_nodes=input_nodes, num_edges=edges,
                          seconds=time.perf_counter() - start)

    def cache_stats(self) -> Optional[CacheStats]:
        """Block-cache counters summed across shards (None when off)."""
        return self.router.cache_stats()

    def close(self) -> None:
        """Stop the worker fleet (idempotent)."""
        self.router.close()

    def __enter__(self) -> "ShardedBlockSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
