"""The per-shard worker process of the sharded serving tier.

One worker owns one shard of the graph: the adjacency **rows** of its
nodes.  It runs a :class:`~repro.serving.BlockSession` over a *restricted*
graph view — every non-owned adjacency row is genuinely absent, not just
unused — so any receptive field that crosses the shard boundary must go
through the halo protocol, and the tests that assert bitwise parity are
really exercising it.

Execution model (single thread, message-driven)::

    router ── cmd_q ──▶ worker ── out_q ──▶ router

* ``predict`` — run one seed chunk through the worker's block session.
  Chunks arrive exactly as the single-process :class:`BlockSession` would
  have formed them (request order, ``batch_size`` micro-batches), which is
  what makes sharded logits bit-identical: identical batch composition,
  identical sampling keys, identical float accumulation order.
* ``rows_query`` — serve the final (fanout-capped) adjacency rows of owned
  nodes to another shard.  Row content is a pure function of ``(sampler
  seed, rng-epoch, hop, node, fanout)`` through the counter-based SplitMix64
  keys, so the owner computes exactly the row the requester's
  single-process reference would have computed — and reuses its per-shard
  :class:`~repro.cache.BlockCache` while doing so.
* ``halo_reply`` — the answer to this worker's own outstanding halo
  request.  While waiting for one, the worker keeps draining its command
  queue: incoming ``rows_query`` messages are served inline (they only
  touch owned rows, so they can never recurse into another halo fetch) and
  anything else is deferred to a backlog.  Two workers that need each
  other's rows therefore make progress instead of deadlocking.
* ``fault`` — test hook: arm the next predict to die (``os._exit``) or
  hang, reproducing worker crashes and deadline overruns deterministically.

All cross-shard traffic is mediated by the router (workers never hold each
other's queues), which is what makes restarting a crashed worker safe: the
router swaps in fresh queues and no peer ever observes the stale ones.
"""

from __future__ import annotations

import itertools
import os
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.graphs.graph import Graph
from repro.graphs.sampling import Fanout, NeighborSampler, _salt
from repro.serving.artifact import QuantizedArtifact
from repro.serving.session import BlockSession

#: Flat row payload shipped between shards: (cols, weights, counts) of the
#: requested nodes, in request order.
RowPayload = Tuple[np.ndarray, np.ndarray, np.ndarray]


class ShardHaloError(RuntimeError):
    """A cross-shard halo fetch failed (owner crashed or errored)."""


def restricted_graph(graph: Graph, assignment: np.ndarray,
                     shard: int) -> Graph:
    """The shard's view: full features, only the owned adjacency rows.

    Features stay shared (fork gives copy-on-write pages; source features
    of halo rows are gathered from here), but edges whose *row* endpoint is
    not owned are dropped, so sampling a non-owned row locally yields an
    empty row — correctness of cross-shard receptive fields depends on the
    halo protocol, by construction.
    """
    owned = assignment[graph.edge_index[0]] == shard
    return Graph(graph.x, graph.edge_index[:, owned], y=graph.y,
                 edge_weight=graph.edge_weight[owned],
                 name=f"{graph.name}/shard{shard}")


def full_graph_degrees(graph: Graph) -> Tuple[np.ndarray, np.ndarray]:
    """``(_row_weight, _inv_sqrt)`` exactly as :class:`NeighborSampler`
    derives them over the *full* graph — same expressions, same dtype
    sequencing, so the float32 roundings are bit-identical."""
    row_weight = graph.adjacency(add_self_loops=False).row_sum()
    inv_sqrt = (1.0 / np.sqrt(row_weight + 1.0)).astype(np.float32)
    return row_weight.astype(np.float32), inv_sqrt


#: ``halo_fetch(plan, fanout, hop, epoch)`` with ``plan`` mapping owner
#: shard -> requested node ids; returns owner shard -> RowPayload.
HaloFetch = Callable[[Dict[int, np.ndarray], Fanout, int, int],
                     Dict[int, RowPayload]]


class ShardSampler(NeighborSampler):
    """A :class:`NeighborSampler` that resolves non-owned rows remotely.

    Owned targets flow through the inherited cache/cap pipeline; non-owned
    targets are grouped by owning shard and fetched through ``halo_fetch``.
    The reassembled flat rows are byte-identical to what a single-process
    sampler over the full graph produces, because every row — local or
    remote — is the same pure function of ``(seed, epoch, hop, node,
    fanout)``.
    """

    def __init__(self, graph: Graph, assignment: np.ndarray, shard: int,
                 halo_fetch: HaloFetch, row_weight: np.ndarray,
                 inv_sqrt: np.ndarray, **kwargs):
        super().__init__(graph, **kwargs)
        self.assignment = assignment
        self.shard = int(shard)
        self.halo_fetch = halo_fetch
        # The restricted adjacency yields wrong (partial) degrees; serve
        # with the full graph's vectors so row_scale / GCN normalisation
        # match the single-process sampler exactly.
        self._row_weight = row_weight.astype(np.float32)
        self._inv_sqrt = inv_sqrt.astype(np.float32)

    def _final_rows(self, targets: np.ndarray, fanout: Fanout, hop: int,
                    salt: np.uint64
                    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        owners = self.assignment[targets]
        local = owners == self.shard
        if local.all():
            return super()._final_rows(targets, fanout, hop, salt)

        per_target: List[Optional[Tuple[np.ndarray, np.ndarray]]] = \
            [None] * targets.shape[0]

        def scatter(indices: np.ndarray, payload: RowPayload) -> None:
            cols, weights, counts = payload
            boundaries = np.cumsum(counts)[:-1]
            for index, row_cols, row_weights in zip(
                    indices, np.split(cols, boundaries),
                    np.split(weights, boundaries)):
                per_target[index] = (row_cols, row_weights)

        local_indices = np.flatnonzero(local)
        if local_indices.size:
            scatter(local_indices,
                    super()._final_rows(targets[local_indices], fanout, hop,
                                        salt))
        fetch_indices = np.flatnonzero(~local)
        if self.cache is not None:
            fetch_indices = self._remote_cache_probe(
                targets, fetch_indices, fanout, hop, salt, per_target)
        plan: Dict[int, np.ndarray] = {}
        remote_indices: Dict[int, np.ndarray] = {}
        for owner in np.unique(owners[fetch_indices]):
            indices = fetch_indices[owners[fetch_indices] == owner]
            plan[int(owner)] = targets[indices]
            remote_indices[int(owner)] = indices
        if plan:
            replies = self.halo_fetch(plan, fanout, hop, self.rng_epoch)
            for owner, payload in replies.items():
                scatter(remote_indices[owner], payload)
                if self.cache is not None:
                    self._remote_cache_insert(targets[remote_indices[owner]],
                                              payload, fanout, hop)

        counts = np.asarray([entry[0].shape[0] for entry in per_target],
                            dtype=np.int64)
        cols = np.concatenate([entry[0] for entry in per_target]) \
            if per_target else np.empty(0, dtype=np.int64)
        weights = np.concatenate([entry[1] for entry in per_target]) \
            if per_target else np.empty(0, dtype=np.float32)
        return cols, weights, counts

    def _remote_cache_probe(self, targets: np.ndarray,
                            remote_indices: np.ndarray, fanout: Fanout,
                            hop: int, salt: np.uint64,
                            per_target: List) -> np.ndarray:
        """Resolve remote rows from the local cache; return the miss indices.

        Halo rows are cached under the very keys the owner would use (row
        content is a pure function of ``(seed, epoch, hop, node, fanout)``),
        so repeat traffic answers cross-shard rows without IPC.  A raw full
        row cached earlier is capped locally — the fanout cap is the same
        pure function on every shard.
        """
        from repro.cache import ROW_RAW

        entries = self.cache.get_rows(targets[remote_indices], fanout, hop,
                                      self.rng_epoch)
        misses: List[int] = []
        raw_hits: List[int] = []
        for index, entry in zip(remote_indices, entries):
            if entry is None:
                misses.append(int(index))
            elif entry[0] == ROW_RAW:
                raw_hits.append(int(index))
                per_target[index] = (entry[1], entry[2])
            else:
                per_target[index] = (entry[1], entry[2])
        if raw_hits:
            indices = np.asarray(raw_hits, dtype=np.int64)
            nodes = targets[indices]
            counts = np.asarray(
                [per_target[i][0].shape[0] for i in raw_hits], dtype=np.int64)
            cols = np.concatenate([per_target[i][0] for i in raw_hits])
            weights = np.concatenate([per_target[i][1] for i in raw_hits])
            cols, weights, capped = self._cap_rows(nodes, cols, weights,
                                                   counts, fanout, salt)
            boundaries = np.cumsum(capped)[:-1]
            rows = [(row_cols.copy(), row_weights.copy())
                    for row_cols, row_weights
                    in zip(np.split(cols, boundaries),
                           np.split(weights, boundaries))]
            self.cache.put_capped_rows(nodes, fanout, hop, self.rng_epoch,
                                       rows)
            for index, row in zip(raw_hits, rows):
                per_target[index] = row
        return np.asarray(misses, dtype=np.int64)

    def _remote_cache_insert(self, nodes: np.ndarray, payload: RowPayload,
                             fanout: Fanout, hop: int) -> None:
        """Cache fetched halo rows for the next request.

        A row shorter than the fanout is provably the owner's full row, so
        it is stored epoch/fanout/hop independent (maximally reusable); a
        row at exactly the fanout may have been capped and is stored under
        its ``(node, fanout, hop, epoch)`` key.
        """
        cols, weights, counts = payload
        boundaries = np.cumsum(counts)[:-1]
        rows = [(row_cols.copy(), row_weights.copy())
                for row_cols, row_weights
                in zip(np.split(cols, boundaries), np.split(weights, boundaries))]
        if fanout is None:
            self.cache.put_raw_rows(nodes, rows)
            return
        full = counts < fanout
        if full.any():
            self.cache.put_raw_rows(
                nodes[full], [rows[i] for i in np.flatnonzero(full)])
        capped = ~full
        if capped.any():
            self.cache.put_capped_rows(
                nodes[capped], fanout, hop, self.rng_epoch,
                [rows[i] for i in np.flatnonzero(capped)])


def serve_rows(sampler: NeighborSampler, nodes: np.ndarray, fanout: Fanout,
               hop: int, epoch: int) -> RowPayload:
    """Owner-side half of the halo protocol: final rows of owned nodes.

    Computes through the owner's cache pipeline when the requester is in
    the owner's current rng-epoch (serving never advances epochs, so this
    is the steady state); an epoch mismatch falls back to the pure
    cache-free path with the requester's salt.
    """
    nodes = np.asarray(nodes, dtype=np.int64)
    salt = _salt(sampler.seed, epoch, hop)
    if epoch == sampler.rng_epoch:
        return sampler._final_rows(nodes, fanout, hop, salt)
    cols, weights, counts = sampler._raw_rows(nodes)
    return sampler._cap_rows(nodes, cols, weights, counts, fanout, salt)


@dataclass
class WorkerConfig:
    """Everything a worker process needs to build its shard session.

    Plain data (arrays, strings, the artifact) so the worker entry point
    works under both ``fork`` (the fast path — large members are inherited
    copy-on-write) and ``spawn`` start methods.
    """

    shard: int
    n_shards: int
    assignment: np.ndarray
    artifact: QuantizedArtifact
    graph: Graph
    fanouts: Union[Fanout, Sequence[Fanout]]
    batch_size: int
    seed: int
    cache_size: int
    cache_bytes: Optional[int]
    backend: Optional[str]
    #: Full-graph degree vectors, computed once in the router process.
    row_weight: Optional[np.ndarray] = None
    inv_sqrt: Optional[np.ndarray] = None


class ShardWorkerSession(BlockSession):
    """A block session whose sampler resolves halo rows through a fetcher."""

    def __init__(self, config: WorkerConfig, halo_fetch: HaloFetch):
        shard_view = restricted_graph(config.graph, config.assignment,
                                      config.shard)
        super().__init__(config.artifact, shard_view, fanouts=config.fanouts,
                         batch_size=config.batch_size, seed=config.seed,
                         cache_size=config.cache_size,
                         cache_bytes=config.cache_bytes,
                         backend=config.backend)
        if config.row_weight is None or config.inv_sqrt is None:
            row_weight, inv_sqrt = full_graph_degrees(config.graph)
        else:
            row_weight, inv_sqrt = config.row_weight, config.inv_sqrt
        self.sampler = ShardSampler(
            shard_view, config.assignment, config.shard, halo_fetch,
            row_weight, inv_sqrt, fanouts=config.fanouts,
            batch_size=self.batch_size, num_layers=config.artifact.total_hops,
            seed_nodes=np.arange(shard_view.num_nodes, dtype=np.int64),
            shuffle=False, seed=config.seed, cache=self.cache)


def _rows_reply(session: ShardWorkerSession, message: tuple) -> tuple:
    _, query_id, nodes, fanout, hop, epoch = message
    try:
        payload = serve_rows(session.sampler, nodes, fanout, hop, epoch)
    except Exception as error:  # noqa: BLE001 - shipped to the requester
        return ("rows_reply", query_id, False, repr(error))
    return ("rows_reply", query_id, True, payload)


def worker_main(config: WorkerConfig, cmd_q, out_q) -> None:
    """Worker process entry point: one message loop until ``stop``.

    The loop is single-threaded; concurrency lives in the protocol.  While
    blocked on its own halo reply the worker keeps serving ``rows_query``
    messages (they only touch owned rows) and defers everything else to a
    backlog, so mutually dependent shards always make progress.
    """
    backlog: deque = deque()
    fault = {"die_next": False, "hang_next": 0.0}
    tokens = itertools.count()
    session_cell: List[ShardWorkerSession] = []

    def apply_fault(message: tuple) -> None:
        kind = message[1]
        if kind == "die_next":
            fault["die_next"] = True
        elif kind == "hang_next":
            fault["hang_next"] = float(message[2])

    def halo_fetch(plan: Dict[int, np.ndarray], fanout: Fanout, hop: int,
                   epoch: int) -> Dict[int, RowPayload]:
        session = session_cell[0]
        pending: Dict[tuple, int] = {}
        for owner, nodes in sorted(plan.items()):
            token = (config.shard, next(tokens))
            out_q.put(("halo_request", token, config.shard, owner, nodes,
                       fanout, hop, epoch))
            pending[token] = owner
        replies: Dict[int, RowPayload] = {}
        while pending:
            message = cmd_q.get()
            kind = message[0]
            if kind == "halo_reply" and message[1] in pending:
                _, token, ok, payload = message
                owner = pending.pop(token)
                if not ok:
                    raise ShardHaloError(
                        f"halo fetch from shard {owner} failed: {payload}")
                replies[owner] = payload
            elif kind == "rows_query":
                out_q.put(_rows_reply(session, message))
            elif kind == "fault":
                apply_fault(message)
            else:
                # New predicts (and stray stop/stats) wait their turn.
                backlog.append(message)
        return replies

    session_cell.append(ShardWorkerSession(config, halo_fetch))
    session = session_cell[0]

    while True:
        message = backlog.popleft() if backlog else cmd_q.get()
        kind = message[0]
        if kind == "stop":
            return
        if kind == "fault":
            apply_fault(message)
        elif kind == "rows_query":
            out_q.put(_rows_reply(session, message))
        elif kind == "stats":
            out_q.put(("stats_reply", message[1], session.cache_stats()))
        elif kind == "predict":
            _, chunk_id, seeds = message
            if fault["die_next"]:
                os._exit(17)  # crash mid-flight, no cleanup — the test hook
            if fault["hang_next"] > 0:
                delay, fault["hang_next"] = fault["hang_next"], 0.0
                time.sleep(delay)
            try:
                run = session.run(seeds)
            except BaseException as error:  # noqa: BLE001 - shipped to router
                out_q.put(("chunk_error", chunk_id, repr(error)))
            else:
                out_q.put(("result", chunk_id, run.logits,
                           run.bit_operations, run.num_input_nodes,
                           run.num_edges))
        # unknown / stale messages (e.g. a halo_reply for a predict that
        # already failed) are dropped
