"""Sharded multi-process serving: partitioned workers behind a router.

Public surface:

* :class:`ShardedBlockSession` — drop-in block session running on N worker
  processes, bit-identical to the single-process session.
* :class:`ShardRouter` — the process fleet: chunk dispatch, halo relay,
  deadline enforcement, crash detection and worker restart.
* The worker-side pieces (:class:`ShardWorkerSession`, :class:`ShardSampler`,
  :func:`restricted_graph`, :class:`WorkerConfig`) for tests and tools.

Partitioning itself lives in :mod:`repro.graphs.partition`.
"""

from repro.sharding.router import (ShardRouter, ShardTimeoutError,
                                   ShardWorkerDied, ShardWorkerError,
                                   pick_start_method)
from repro.sharding.session import ShardedBlockSession
from repro.sharding.worker import (ShardHaloError, ShardSampler,
                                   ShardWorkerSession, WorkerConfig,
                                   full_graph_degrees, restricted_graph,
                                   serve_rows, worker_main)

__all__ = [
    "ShardRouter",
    "ShardTimeoutError",
    "ShardWorkerDied",
    "ShardWorkerError",
    "ShardedBlockSession",
    "ShardHaloError",
    "ShardSampler",
    "ShardWorkerSession",
    "WorkerConfig",
    "full_graph_degrees",
    "pick_start_method",
    "restricted_graph",
    "serve_rows",
    "worker_main",
]
