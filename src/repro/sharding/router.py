"""The router front of the sharded serving tier.

:class:`ShardRouter` owns one worker process per shard plus a listener
thread per worker, and mediates **all** cross-shard traffic:

* **chunk dispatch** — a seed chunk goes to the shard owning the plurality
  of its seeds (deterministic tie-break to the lowest shard id); the owner
  executes the whole chunk, fetching halo rows for the minority seeds, so
  micro-batch composition is identical to a single-process session and the
  logits are bit-identical.
* **halo relay** — a worker's ``halo_request`` is forwarded to the owning
  worker as a ``rows_query``; the owner's ``rows_reply`` is routed back as
  a ``halo_reply``.  Workers never hold each other's queues, which keeps
  worker restarts race-free: the router swaps in fresh queues and no peer
  can observe the stale ones.
* **failure isolation** — a worker that dies mid-flight (listener notices
  the dead process) or exceeds the per-chunk deadline fails *only* the
  chunks assigned to it; pending halo queries targeting the dead worker
  are answered with an error so dependent chunks on other shards fail fast
  instead of hanging.  The worker is then restarted with a fresh pair of
  queues and the next request on that shard succeeds.

Locking: the router's mutable tables (chunks in flight, halo relays,
worker handles) are mutated from caller threads *and* listener threads;
every access is guarded by one ``self._lock`` (see the ``guarded-by``
annotations, machine-checked by reprolint RL03).  Queue operations happen
outside the lock — ``multiprocessing.Queue`` is internally synchronized —
so the lock is never held across IPC.
"""

from __future__ import annotations

import multiprocessing
import queue
import threading
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cache import CacheStats
from repro.quant.bitops import BitOpsCounter
from repro.sharding.worker import WorkerConfig, worker_main


class ShardWorkerError(RuntimeError):
    """Base class of router-detected shard failures."""


class ShardWorkerDied(ShardWorkerError):
    """The worker process executing the chunk died mid-flight."""


class ShardTimeoutError(ShardWorkerError):
    """The chunk exceeded the router's per-request deadline."""


#: Successful chunk payload: (logits, bitops, input_nodes, edges).
ChunkResult = Tuple[np.ndarray, BitOpsCounter, int, int]


class _Chunk:
    """One in-flight seed chunk: completion event plus its outcome."""

    __slots__ = ("chunk_id", "shard", "generation", "event", "result",
                 "error")

    def __init__(self, chunk_id: int, shard: int, generation: int):
        self.chunk_id = chunk_id
        self.shard = shard
        self.generation = generation
        self.event = threading.Event()
        self.result: Optional[ChunkResult] = None
        self.error: Optional[BaseException] = None


class _Worker:
    """Parent-side handle of one worker process (immutable per generation)."""

    __slots__ = ("shard", "generation", "process", "cmd_q", "out_q")

    def __init__(self, shard: int, generation: int, process, cmd_q, out_q):
        self.shard = shard
        self.generation = generation
        self.process = process
        self.cmd_q = cmd_q
        self.out_q = out_q


def pick_start_method(requested: Optional[str] = None) -> str:
    """``fork`` where available (Linux — workers inherit the graph and
    artifact copy-on-write), else the platform default."""
    methods = multiprocessing.get_all_start_methods()
    if requested is not None:
        if requested not in methods:
            raise ValueError(f"start method {requested!r} not available; "
                             f"choose from {methods}")
        return requested
    return "fork" if "fork" in methods else methods[0]


class ShardRouter:
    """Spawn, feed, monitor and restart the per-shard worker fleet."""

    #: Listener poll interval; bounds worker-death detection latency.
    _POLL_SECONDS = 0.05

    def __init__(self, configs: List[WorkerConfig],
                 request_deadline_s: Optional[float] = None,
                 start_method: Optional[str] = None):
        if not configs:
            raise ValueError("the router needs at least one worker config")
        self.n_shards = len(configs)
        self.assignment = configs[0].assignment
        self.request_deadline_s = request_deadline_s
        self._ctx = multiprocessing.get_context(pick_start_method(start_method))
        self._configs = configs
        self._lock = threading.Lock()
        self._closed = False  # guarded-by: self._lock
        self._next_chunk = 0  # guarded-by: self._lock
        self._next_query = 0  # guarded-by: self._lock
        self._workers: Dict[int, _Worker] = {}  # guarded-by: self._lock
        self._chunks: Dict[int, _Chunk] = {}  # guarded-by: self._lock
        #: halo token -> (requester shard, target shard, original token)
        self._halo: Dict[int, Tuple[int, int, object]] = {}  # guarded-by: self._lock
        self._restarts: Dict[int, int] = {}  # guarded-by: self._lock
        with self._lock:
            for shard in range(self.n_shards):
                self._spawn_locked(shard)

    # ------------------------------------------------------------------ #
    # worker lifecycle
    # ------------------------------------------------------------------ #
    def _spawn_locked(self, shard: int) -> _Worker:  # requires-lock: self._lock
        generation = self._workers[shard].generation + 1 \
            if shard in self._workers else 0
        cmd_q = self._ctx.Queue()
        out_q = self._ctx.Queue()
        process = self._ctx.Process(
            target=worker_main, args=(self._configs[shard], cmd_q, out_q),
            name=f"repro-shard-{shard}", daemon=True)
        process.start()
        worker = _Worker(shard, generation, process, cmd_q, out_q)
        self._workers[shard] = worker
        listener = threading.Thread(target=self._listen,
                                    args=(worker,),
                                    name=f"repro-shard-listen-{shard}",
                                    daemon=True)
        listener.start()
        return worker

    def _current_locked(self, shard: int) -> _Worker:  # requires-lock: self._lock
        return self._workers[shard]

    def _is_current_locked(self, worker: _Worker) -> bool:  # requires-lock: self._lock
        return self._workers.get(worker.shard) is worker

    def restart_worker(self, shard: int,
                       error: Optional[BaseException] = None) -> None:
        """Replace a worker with a fresh process + queues; fail everything
        that was in flight on the old generation.

        Idempotent per generation: concurrent detectors (listener, deadline
        waiters) race here and only the first one acts.
        """
        dead_error = error or ShardWorkerDied(
            f"shard {shard} worker died mid-flight")
        with self._lock:
            if self._closed:
                return
            old = self._workers.get(shard)
            if old is None:
                return
            failed_chunks = [chunk for chunk in self._chunks.values()
                             if chunk.shard == shard
                             and chunk.generation == old.generation]
            for chunk in failed_chunks:
                del self._chunks[chunk.chunk_id]
            # Halo queries *targeting* the dead shard must fail fast so the
            # requesters' chunks error out instead of waiting forever;
            # requests *from* the dead shard are simply dropped.
            failed_halo = [(relay_id, entry)
                           for relay_id, entry in self._halo.items()
                           if entry[1] == shard or entry[0] == shard]
            for relay_id, _entry in failed_halo:
                del self._halo[relay_id]
            requesters = [
                (self._workers[entry[0]], entry[2])
                for _relay_id, entry in failed_halo
                if entry[1] == shard and entry[0] in self._workers
                and entry[0] != shard]
            self._restarts[shard] = self._restarts.get(shard, 0) + 1
            self._spawn_locked(shard)
        # Outside the lock: queue puts and process teardown do IPC.
        for chunk in failed_chunks:
            chunk.error = dead_error
            chunk.event.set()
        for worker, token in requesters:
            worker.cmd_q.put(("halo_reply", token, False,
                              f"owner shard {shard} died"))
        self._reap(old)

    @staticmethod
    def _reap(worker: _Worker) -> None:
        """Tear down a superseded worker's process and queues."""
        if worker.process.is_alive():
            worker.process.terminate()
        worker.process.join(timeout=2.0)
        for q in (worker.cmd_q, worker.out_q):
            q.cancel_join_thread()
            q.close()

    def restarts(self, shard: int) -> int:
        """How many times the shard's worker has been restarted."""
        with self._lock:
            return self._restarts.get(shard, 0)

    # ------------------------------------------------------------------ #
    # listener: one thread per worker generation
    # ------------------------------------------------------------------ #
    def _listen(self, worker: _Worker) -> None:
        while True:
            try:
                message = worker.out_q.get(timeout=self._POLL_SECONDS)
            except queue.Empty:
                with self._lock:
                    if self._closed or not self._is_current_locked(worker):
                        return
                    alive = worker.process.is_alive()
                if not alive:
                    # Drain what the worker managed to send before dying.
                    while True:
                        try:
                            self._dispatch(worker, worker.out_q.get_nowait())
                        except queue.Empty:
                            break
                    self.restart_worker(worker.shard)
                    return
                continue
            except (EOFError, OSError):
                return  # queue torn down by close()/restart
            self._dispatch(worker, message)

    def _dispatch(self, worker: _Worker, message: tuple) -> None:
        kind = message[0]
        if kind == "result":
            _, chunk_id, logits, bitops, input_nodes, edges = message
            with self._lock:
                chunk = self._chunks.pop(chunk_id, None)
            if chunk is not None:
                chunk.result = (logits, bitops, input_nodes, edges)
                chunk.event.set()
        elif kind == "chunk_error":
            _, chunk_id, detail = message
            with self._lock:
                chunk = self._chunks.pop(chunk_id, None)
            if chunk is not None:
                chunk.error = ShardWorkerError(
                    f"shard {chunk.shard} failed a chunk: {detail}")
                chunk.event.set()
        elif kind == "halo_request":
            _, token, requester, target, nodes, fanout, hop, epoch = message
            with self._lock:
                if self._closed:
                    return
                relay_id = self._next_query
                self._next_query += 1
                self._halo[relay_id] = (requester, target, token)
                owner = self._workers.get(target)
            if owner is None:
                self._finish_halo(relay_id, False, f"unknown shard {target}")
            else:
                owner.cmd_q.put(("rows_query", relay_id, nodes, fanout, hop,
                                 epoch))
        elif kind == "rows_reply":
            _, relay_id, ok, payload = message
            self._finish_halo(relay_id, ok, payload)
        elif kind == "stats_reply":
            with self._lock:
                chunk = self._chunks.pop(message[1], None)
            if chunk is not None:
                chunk.result = message[2]
                chunk.event.set()

    def _finish_halo(self, relay_id: int, ok: bool, payload) -> None:
        with self._lock:
            entry = self._halo.pop(relay_id, None)
            requester = None if entry is None \
                else self._workers.get(entry[0])
        if entry is not None and requester is not None:
            requester.cmd_q.put(("halo_reply", entry[2], ok, payload))

    # ------------------------------------------------------------------ #
    # chunk dispatch
    # ------------------------------------------------------------------ #
    def owner_shard(self, seeds: np.ndarray) -> int:
        """Plurality owner of the chunk's seeds (ties -> lowest shard id)."""
        votes = np.bincount(self.assignment[seeds], minlength=self.n_shards)
        return int(votes.argmax())

    def submit_chunk(self, seeds: np.ndarray) -> _Chunk:
        """Queue one seed chunk on its owning worker; returns the handle."""
        shard = self.owner_shard(seeds)
        with self._lock:
            if self._closed:
                raise ShardWorkerError("router is closed")
            worker = self._current_locked(shard)
            chunk = _Chunk(self._next_chunk, shard, worker.generation)
            self._next_chunk += 1
            self._chunks[chunk.chunk_id] = chunk
        worker.cmd_q.put(("predict", chunk.chunk_id, seeds))
        return chunk

    def wait_chunk(self, chunk: _Chunk) -> ChunkResult:
        """Block until the chunk completes; enforce the per-request deadline.

        On deadline overrun the (presumed hung) worker is killed and
        restarted, and the chunk fails with :class:`ShardTimeoutError`;
        sibling chunks on other shards are unaffected.
        """
        deadline = None if self.request_deadline_s is None \
            else time.monotonic() + self.request_deadline_s
        while not chunk.event.wait(timeout=self._POLL_SECONDS):
            if deadline is not None and time.monotonic() > deadline:
                with self._lock:
                    pending = self._chunks.pop(chunk.chunk_id, None)
                if pending is not None:
                    pending.error = ShardTimeoutError(
                        f"shard {chunk.shard} chunk exceeded the "
                        f"{self.request_deadline_s:.3f}s deadline")
                    pending.event.set()
                    self.restart_worker(chunk.shard, error=ShardWorkerDied(
                        f"shard {chunk.shard} worker killed after deadline "
                        f"overrun"))
                break
        chunk.event.wait()
        if chunk.error is not None:
            raise chunk.error
        assert chunk.result is not None
        return chunk.result

    # ------------------------------------------------------------------ #
    # fleet-wide helpers
    # ------------------------------------------------------------------ #
    def inject_fault(self, shard: int, kind: str, value: float = 0.0) -> None:
        """Arm a deterministic fault on the shard's next predict
        (``die_next`` / ``hang_next``) — the fault-injection test hook."""
        if kind not in ("die_next", "hang_next"):
            raise ValueError(f"unknown fault kind {kind!r}")
        with self._lock:
            worker = self._current_locked(shard)
        worker.cmd_q.put(("fault", kind, value))

    def cache_stats(self, timeout: float = 5.0) -> Optional[CacheStats]:
        """Aggregate block-cache counters across live workers (None when
        caching is off or a worker did not answer in time)."""
        handles = []
        with self._lock:
            if self._closed:
                return None
            for shard in range(self.n_shards):
                worker = self._current_locked(shard)
                chunk = _Chunk(self._next_chunk, shard, worker.generation)
                self._next_chunk += 1
                self._chunks[chunk.chunk_id] = chunk
                handles.append((worker, chunk))
        for worker, chunk in handles:
            worker.cmd_q.put(("stats", chunk.chunk_id))
        totals = CacheStats()
        for _worker, chunk in handles:
            if not chunk.event.wait(timeout=timeout):
                with self._lock:
                    self._chunks.pop(chunk.chunk_id, None)
                return None
            stats = chunk.result
            if stats is None:
                return None
            totals = CacheStats(
                hits=totals.hits + stats.hits,
                misses=totals.misses + stats.misses,
                evictions=totals.evictions + stats.evictions,
                entries=totals.entries + stats.entries,
                bytes=totals.bytes + stats.bytes)
        return totals

    def close(self) -> None:
        """Stop every worker and listener (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            workers = list(self._workers.values())
            pending = list(self._chunks.values())
            self._chunks.clear()
            self._halo.clear()
        for chunk in pending:
            chunk.error = ShardWorkerError("router closed")
            chunk.event.set()
        for worker in workers:
            try:
                worker.cmd_q.put(("stop",))
            except (ValueError, OSError):
                pass
        deadline = time.monotonic() + 2.0
        for worker in workers:
            worker.process.join(timeout=max(0.0, deadline - time.monotonic()))
        for worker in workers:
            self._reap(worker)

    def __enter__(self) -> "ShardRouter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - best-effort cleanup
        try:
            self.close()
        except Exception:
            pass
