"""Inference sessions: integer execution of a :class:`QuantizedArtifact`.

Two backends share one layer executor:

* :class:`FullGraphSession` runs every layer over the whole graph — the
  classic Theorem-1 engine (previously ``repro.quant.IntegerGCNInference``,
  now generalized beyond GCN to GraphSAGE and GIN).
* :class:`BlockSession` routes the same integer message passing through
  seeded :class:`~repro.graphs.sampling.NeighborSampler` blocks, so a
  request for ``N`` seed nodes touches only their fanout-bounded receptive
  field and the full (normalised) adjacency is never materialised.  The
  *block* adjacency is quantized with the artifact's stored Theorem-1
  constants, which at unlimited fanout makes block serving numerically
  identical to the full-graph engine (the block operators are exact row
  slices of the full operators).

Both quantize activations onto the artifact's stored integer grids, run the
sparse aggregation as an int64 sparse-dense product plus the rank-one
corrections of Theorem 1 (:func:`~repro.quant.integer_mp.quantized_spmm`),
and return float logits plus per-run BitOPs.

Matrix layers (GCN / SAGE / GIN) aggregate with a pre-quantized operator;
attention layers (GAT / Transformer) instead execute a per-edge *score
plan*: scores and softmax run in full precision on the canonical edge list
(:func:`~repro.gnn.attention.attention_edges`), the resulting coefficients
are snapped onto the artifact's stored ``attention`` grid and the
aggregation runs as an integer edge-list accumulation
(:func:`~repro.quant.integer_mp.quantized_edge_spmm`).  TAG layers consume
``plan.hops`` graph views each (one per adjacency power), so samplers size
their block stacks by ``artifact.total_hops``.

The hot-path kernels — Theorem-1 aggregation, the attention score stages
and the dense layer transforms — are not executed inline but dispatched
through the session's kernel backend (:mod:`repro.kernels`), chosen at
session build time via ``backend=`` (default: the ``REPRO_KERNEL_BACKEND``
environment variable, else the bit-defining ``numpy`` reference).  Every
registered backend is certified bit-identical on the integer path, so the
knob trades latency, never numerics.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.cache import BlockCache, CacheStats
from repro.gnn.attention import AttentionEdges, attention_edges
from repro.kernels import BackendLike, resolve_backend
from repro.gnn.sage import mean_adjacency
from repro.graphs.graph import Graph
from repro.graphs.sampling import Fanout, NeighborSampler, SubgraphBlock
from repro.quant.bitops import (
    BitOpsCounter,
    attention_aggregate_operations,
    gat_score_operations,
    transformer_score_operations,
)
from repro.quant.quantizer import QuantizationParameters
from repro.serving.artifact import LayerPlan, QuantizedArtifact
from repro.tensor.sparse import SparseTensor

if TYPE_CHECKING:  # pragma: no cover - circular only for annotations
    from repro.streaming.delta import GraphDelta

GraphLike = Union[Graph, SubgraphBlock]


def _quantize_with(params: QuantizationParameters, values: np.ndarray) -> np.ndarray:
    scale, zero_point = params.as_scalars()
    return np.clip(np.rint(values / scale) + zero_point, params.qmin, params.qmax)


def _dequantize_with(params: QuantizationParameters, integers: np.ndarray) -> np.ndarray:
    scale, zero_point = params.as_scalars()
    return (integers - zero_point) * scale


def _fake_quantize(params: Optional[QuantizationParameters],
                   values: np.ndarray) -> np.ndarray:
    if params is None:
        return values
    return _dequantize_with(params, _quantize_with(params, values))


def _target_rows(x: np.ndarray, graph_like: GraphLike) -> np.ndarray:
    """Target-side activations: ``x[:num_dst]`` on a block, ``x`` on a graph."""
    if isinstance(graph_like, SubgraphBlock):
        return x[:graph_like.num_dst]
    return x


def _merge_heads(aggregated: np.ndarray, heads: int, head_dim: int,
                 head_merge: str) -> np.ndarray:
    """Merge per-head aggregations ``(N, H, D)`` into the layer output.

    Mirrors :func:`repro.gnn.gat.merge_heads` (``concat`` reshapes, ``mean``
    averages as ``sum * (1 / H)`` exactly like the QAT tensor path);
    ``heads=1`` always takes the reshape branch, the identity on values.
    """
    if head_merge == "mean" and heads > 1:
        return aggregated.sum(axis=1) * (1.0 / heads)
    return aggregated.reshape(aggregated.shape[0], heads * head_dim)


@dataclass
class SessionRun:
    """One serving pass: logits plus the work it took to produce them."""

    logits: np.ndarray
    bit_operations: BitOpsCounter
    num_seeds: int
    num_input_nodes: int
    num_edges: int
    seconds: float

    def giga_bit_operations(self) -> float:
        return self.bit_operations.giga_bit_operations()


class InferenceSession:
    """Protocol base of the serving backends.

    A session is bound to an artifact and a graph; :meth:`run` executes one
    request and reports logits, BitOPs and touched-work statistics, while
    :meth:`predict` / :meth:`predict_classes` are the plain-output
    conveniences.  Subclasses implement :meth:`run`.
    """

    #: True when one :meth:`run` costs the same regardless of the request
    #: size (a full-graph pass): the serving engine then serves a whole
    #: flush with a single run instead of splitting it into micro-batches.
    request_invariant_cost = False

    #: True when the session accepts streaming graph updates through
    #: :meth:`apply_update`.  The serving engines check this before
    #: accepting a delta, so unsupported backends (e.g. the sharded tier,
    #: whose workers each hold a private graph copy) reject updates at
    #: submission instead of silently serving stale shards.
    supports_updates = False

    def __init__(self, artifact: QuantizedArtifact, graph: Graph,
                 backend: BackendLike = None):
        if not artifact.layers:
            raise ValueError("the inference session needs at least one layer")
        self.artifact = artifact
        self.graph = graph
        # The kernel backend every hot-path stage dispatches through.  All
        # registered backends are bit-identical on the integer path, so
        # this choice affects latency only; instances are process-shared
        # and thread-safe (see repro.kernels).
        self.kernels = resolve_backend(backend)
        self.backend_name = self.kernels.name
        # Request-invariant operators of the bound graph, built once per
        # session: the layer's aggregation operator and its (fake-)quantized
        # variants.  Block operators are per-request and bypass these.  The
        # lock keeps the memoisation safe under the serving engine's worker
        # pool (sessions are otherwise stateless per request).
        self._cache_lock = threading.Lock()
        self._operator_cache: dict = {}  # guarded-by: self._cache_lock
        self._quantized_cache: dict = {}  # guarded-by: self._cache_lock

    # ------------------------------------------------------------------ #
    def run(self, nodes: Optional[Sequence[int]] = None) -> SessionRun:
        raise NotImplementedError

    def predict(self, nodes: Optional[Sequence[int]] = None) -> np.ndarray:
        """Float logits for the requested nodes (all nodes by default)."""
        return self.run(nodes).logits

    def predict_classes(self, nodes: Optional[Sequence[int]] = None) -> np.ndarray:
        """Arg-max class predictions for the requested nodes."""
        return self.predict(nodes).argmax(axis=1)

    def bit_operations(self, nodes: Optional[Sequence[int]] = None) -> BitOpsCounter:
        """BitOPs of one serving pass for the requested nodes."""
        return self.run(nodes).bit_operations

    def apply_update(self, delta: "GraphDelta") -> int:
        """Apply one :class:`~repro.streaming.GraphDelta` to the bound graph.

        Returns the new graph version.  Only meaningful between requests —
        the serving engines guarantee that by applying queued deltas at
        flush boundaries only.  Backends that cannot keep their derived
        state consistent leave ``supports_updates`` False and inherit this
        rejection.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support streaming updates")

    # ------------------------------------------------------------------ #
    # request-invariant operators
    # ------------------------------------------------------------------ #
    @staticmethod
    def _build_operator(conv_type: str, graph_like: GraphLike) -> SparseTensor:
        """The aggregation operator a conv family applies to a graph view."""
        if conv_type in ("gcn", "tag"):
            return graph_like.normalized_adjacency()
        if conv_type == "sage":
            return mean_adjacency(graph_like)
        return graph_like.adjacency(add_self_loops=False)

    def _layer_operator(self, conv_type: str, graph_like: GraphLike) -> SparseTensor:
        if isinstance(graph_like, SubgraphBlock):
            # SubgraphBlock.adjacency()/normalized_adjacency() memoise on the
            # block itself, so a cache-reused block skips the rebuild too.
            return self._build_operator(conv_type, graph_like)
        # full-graph views are always the session's bound graph -> memoise
        with self._cache_lock:
            if conv_type not in self._operator_cache:
                self._operator_cache[conv_type] = self._build_operator(
                    conv_type, graph_like)
            return self._operator_cache[conv_type]

    def _quantized_operator(self, adjacency: SparseTensor,
                            params: QuantizationParameters,
                            fake: bool) -> SparseTensor:
        """Adjacency on the artifact's stored grid (integer or fake-quantized).

        Cached per source-operator identity: the stored reference keeps the
        source alive so an ``id()`` key can never be reused by a different
        reallocated operator, and eviction keeps per-request block operators
        from accumulating.
        """
        key = (id(adjacency), id(params), fake)
        with self._cache_lock:
            entry = self._quantized_cache.get(key)
        if entry is None or entry[0] is not adjacency or entry[1] is not params:
            integers = _quantize_with(params, adjacency.values.astype(np.float64))
            values = _dequantize_with(params, integers) if fake else integers
            quantized = adjacency.with_values(values.astype(np.float32))
            entry = (adjacency, params, quantized)
            with self._cache_lock:
                self._quantized_cache[key] = entry
                while len(self._quantized_cache) > 16:
                    self._quantized_cache.pop(next(iter(self._quantized_cache)))
        return entry[2]

    # reprolint: integer-stage
    def _aggregate(self, adjacency: SparseTensor,
                   adjacency_params: Optional[QuantizationParameters],
                   x: np.ndarray, x_int: Optional[np.ndarray],
                   x_params: Optional[QuantizationParameters]) -> np.ndarray:
        """``A @ X`` through Theorem 1 when both operands carry integer grids.

        Falls back to a float sparse-dense product (with the adjacency still
        on its fake-quantized grid, matching the QAT model) when either side
        is kept in full precision.
        """
        if adjacency_params is not None and x_params is not None and x_int is not None:
            scale_a, _ = adjacency_params.as_scalars()
            scale_x, zero_x = x_params.as_scalars()
            return self.kernels.spmm(
                self._quantized_operator(adjacency, adjacency_params, fake=False),
                scale_a, x_int, scale_x, zero_x)
        if adjacency_params is not None:
            adjacency = self._quantized_operator(adjacency, adjacency_params,
                                                 fake=True)
        return np.asarray(adjacency.csr @ x, dtype=np.float64)

    # reprolint: integer-stage
    def _aggregate_edges(self, attention: np.ndarray,
                         attention_params: Optional[QuantizationParameters],
                         x: np.ndarray, x_int: Optional[np.ndarray],
                         x_params: Optional[QuantizationParameters],
                         edges: AttentionEdges, heads: int,
                         head_dim: int) -> np.ndarray:
        """Attention-weighted aggregation through the per-edge score plan.

        ``attention`` holds the float post-softmax coefficients, one column
        per head (``(E, heads)``); ``x`` / ``x_int`` the pre-merge features
        ``(N, heads * head_dim)``.  When both the coefficients and the
        gathered features carry integer grids the accumulation runs through
        Theorem 1's edge-list form
        (:func:`~repro.quant.integer_mp.quantized_edge_spmm`, head axis and
        all); otherwise it falls back to a float scatter-add with the
        coefficients still on their fake-quantized grid, matching the QAT
        model.  Returns the per-head aggregations ``(num_dst, heads,
        head_dim)`` — merging is the caller's job.
        """
        if attention_params is not None and x_params is not None and x_int is not None:
            attention_int = _quantize_with(attention_params, attention)
            scale_e, _ = attention_params.as_scalars()
            scale_x, zero_x = x_params.as_scalars()
            return self.kernels.edge_spmm(attention_int, scale_e,
                                          x_int.reshape(-1, heads, head_dim),
                                          scale_x, zero_x, edges.src,
                                          edges.dst, edges.num_dst)
        attention = _fake_quantize(attention_params, attention)
        per_head = x.reshape(-1, heads, head_dim)
        aggregated = np.zeros((edges.num_dst, heads, head_dim))
        np.add.at(aggregated, edges.dst,
                  attention[:, :, None] * per_head[edges.src])
        return aggregated

    # ------------------------------------------------------------------ #
    # BitOPs accounting (shared by execution and the arithmetic counters)
    # ------------------------------------------------------------------ #
    def _count_layer(self, plan: LayerPlan, index: int, n_src: int, n_dst: int,
                     nnz: Union[int, Sequence[int]], counter: BitOpsCounter,
                     incoming: Optional[QuantizationParameters]
                     ) -> Optional[QuantizationParameters]:
        """Append one layer's BitOPs records; returns its outgoing params.

        ``nnz`` is the edge count of the layer's aggregation: operator
        non-zeros for matrix layers, attention edges (self loops included)
        for GAT / Transformer, and one per-hop sequence for TAG.
        """
        if plan.conv_type == "gat":
            weight = plan.weights["weight"]
            width = plan.heads * plan.head_dim
            input_params = plan.params("input") if plan.params("input") is not None \
                else incoming
            input_bits = 32 if input_params is None else input_params.bits
            counter.add(f"layer{index}.transform",
                        2 * n_src * plan.in_features * width,
                        min(max(input_bits, weight.bits), 32))
            # Score projections + per-edge leaky-relu/softmax stay FP32.
            counter.add(f"layer{index}.score",
                        gat_score_operations(n_src, nnz, plan.heads,
                                             plan.head_dim), 32)
            counter.add(f"layer{index}.aggregate",
                        attention_aggregate_operations(nnz, plan.heads,
                                                       plan.head_dim),
                        min(max(plan.slot_bits("attention"),
                                plan.slot_bits("linear_out")), 32))
            return plan.params("aggregate_out")

        if plan.conv_type == "transformer":
            width = plan.heads * plan.head_dim
            input_params = plan.params("input") if plan.params("input") is not None \
                else incoming
            input_bits = 32 if input_params is None else input_params.bits
            transform_ops = 2 * n_src * plan.in_features * width
            for name in ("query", "key", "value"):
                counter.add(f"layer{index}.transform_{name}", transform_ops,
                            min(max(input_bits, plan.weights[name].bits), 32))
            counter.add(f"layer{index}.score",
                        transformer_score_operations(nnz, plan.heads,
                                                     plan.head_dim), 32)
            counter.add(f"layer{index}.aggregate",
                        attention_aggregate_operations(nnz, plan.heads,
                                                       plan.head_dim),
                        min(max(plan.slot_bits("attention"),
                                plan.slot_bits("value_out")), 32))
            return plan.params("aggregate_out")

        if plan.conv_type == "tag":
            per_hop_nnz = [int(nnz)] * plan.hops if np.isscalar(nnz) \
                else [int(v) for v in nnz]
            input_params = plan.params("input") if plan.params("input") is not None \
                else incoming
            x_bits = 32 if input_params is None else input_params.bits
            hop_bits = plan.slot_bits("hop_out")
            adjacency_bits = plan.slot_bits("adjacency")
            transform_ops = 2 * n_dst * plan.in_features * plan.out_features
            counter.add(f"layer{index}.transform_hop0", transform_ops,
                        min(max(x_bits, plan.weights["hop0"].bits), 32))
            for hop in range(1, plan.hops + 1):
                counter.add(f"layer{index}.aggregate_hop{hop}",
                            2 * per_hop_nnz[hop - 1] * plan.in_features,
                            min(max(adjacency_bits, x_bits), 32))
                counter.add(f"layer{index}.transform_hop{hop}", transform_ops,
                            min(max(hop_bits, plan.weights[f"hop{hop}"].bits), 32))
                x_bits = hop_bits
            return plan.params("output")

        if plan.conv_type == "gcn":
            weight = plan.weights["weight"]
            counter.add(f"layer{index}.transform",
                        2 * n_src * plan.in_features * plan.out_features,
                        weight.bits)
            linear_out = plan.params("linear_out")
            aggregate_bits = plan.slot_bits("adjacency") if linear_out is None \
                else max(plan.slot_bits("adjacency"), linear_out.bits)
            counter.add(f"layer{index}.aggregate",
                        2 * nnz * plan.out_features, min(aggregate_bits, 32))
            return plan.params("aggregate_out")

        params_x = plan.params("input") if plan.params("input") is not None \
            else incoming
        x_bits = 32 if params_x is None else params_x.bits
        aggregate_bits = min(max(plan.slot_bits("adjacency"), x_bits), 32)
        if plan.conv_type == "sage":
            root = plan.weights["root"]
            neighbour = plan.weights["neighbour"]
            counter.add(f"layer{index}.aggregate",
                        2 * nnz * plan.in_features, aggregate_bits)
            counter.add(f"layer{index}.transform_root",
                        2 * n_dst * plan.in_features * plan.out_features,
                        min(max(x_bits, root.bits), 32))
            counter.add(f"layer{index}.transform_neighbour",
                        2 * n_dst * plan.in_features * plan.out_features,
                        min(max(plan.slot_bits("aggregate_out"), neighbour.bits),
                            32))
            return plan.params("output")

        mlp0 = plan.weights["mlp0"]
        mlp1 = plan.weights["mlp1"]
        hidden_features = mlp0.integers.shape[1]
        counter.add(f"layer{index}.aggregate",
                    2 * nnz * plan.in_features, aggregate_bits)
        counter.add(f"layer{index}.combine",
                    2 * n_dst * plan.in_features, aggregate_bits)
        counter.add(f"layer{index}.mlp0",
                    2 * n_dst * plan.in_features * hidden_features,
                    min(max(plan.slot_bits("aggregate_out"), mlp0.bits), 32))
        counter.add(f"layer{index}.mlp1",
                    2 * n_dst * hidden_features * plan.out_features,
                    min(max(plan.slot_bits("mlp0_out"), mlp1.bits), 32))
        return plan.params("mlp1_out")

    # ------------------------------------------------------------------ #
    def _forward(self, layer_graphs: Sequence[GraphLike], x: np.ndarray,
                 counter: BitOpsCounter) -> Tuple[np.ndarray, int]:
        """Run the artifact's layer stack over per-hop graph views.

        ``layer_graphs`` carries one view per *hop* (``artifact.total_hops``
        in total): single-hop layers consume one view, TAG layers a run of
        ``plan.hops`` consecutive views.  Returns the logits of the target
        side of the last layer and the total number of edges (messages)
        touched.
        """
        plans = self.artifact.layers
        total_hops = self.artifact.total_hops
        if len(layer_graphs) != total_hops:
            raise ValueError(f"artifact needs {total_hops} graph views (one "
                             f"per hop) but {len(layer_graphs)} were given")
        incoming: Optional[QuantizationParameters] = None
        edges = 0
        last = len(plans) - 1
        cursor = 0
        for index, plan in enumerate(plans):
            views = list(layer_graphs[cursor:cursor + plan.hops])
            cursor += plan.hops
            x, incoming, layer_edges = self._run_layer(plan, views, x,
                                                       incoming, counter, index)
            edges += layer_edges
            if index != last:
                x = np.maximum(x, 0.0)  # ReLU between layers
        return x, edges

    def _run_layer(self, plan: LayerPlan, views: List[GraphLike], x: np.ndarray,
                   incoming: Optional[QuantizationParameters],
                   counter: BitOpsCounter, index: int
                   ) -> Tuple[np.ndarray, Optional[QuantizationParameters], int]:
        if plan.conv_type == "tag":
            return self._run_tag(plan, views, x, incoming, counter, index)
        if plan.conv_type == "gcn":
            runner = self._run_gcn
        elif plan.conv_type == "sage":
            runner = self._run_sage
        elif plan.conv_type == "gin":
            runner = self._run_gin
        elif plan.conv_type == "gat":
            runner = self._run_gat
        elif plan.conv_type == "transformer":
            runner = self._run_transformer
        else:
            raise ValueError(f"unknown conv type {plan.conv_type!r}")
        return runner(plan, views[0], x, incoming, counter, index)

    # ------------------------------------------------------------------ #
    def _run_gcn(self, plan: LayerPlan, graph_like: GraphLike, x: np.ndarray,
                 incoming: Optional[QuantizationParameters],
                 counter: BitOpsCounter, index: int):
        x = _fake_quantize(plan.params("input"), x)
        linear_out = plan.params("linear_out")
        transformed, transformed_int = self.kernels.linear_requant(
            x, plan.weights["weight"], linear_out)

        adjacency = self._layer_operator("gcn", graph_like)
        aggregated = self._aggregate(adjacency, plan.params("adjacency"),
                                     transformed, transformed_int, linear_out)
        aggregate_out = plan.params("aggregate_out")
        aggregated = _fake_quantize(aggregate_out, aggregated)

        self._count_layer(plan, index, x.shape[0], aggregated.shape[0],
                          adjacency.nnz, counter, incoming)
        return aggregated, aggregate_out, adjacency.nnz

    def _run_sage(self, plan: LayerPlan, graph_like: GraphLike, x: np.ndarray,
                  incoming: Optional[QuantizationParameters],
                  counter: BitOpsCounter, index: int):
        params_x = plan.params("input") if plan.params("input") is not None \
            else incoming
        x_int = None
        if params_x is not None:
            x_int = _quantize_with(params_x, x)
            x = _dequantize_with(params_x, x_int)

        adjacency = self._layer_operator("sage", graph_like)
        aggregated = self._aggregate(adjacency, plan.params("adjacency"),
                                     x, x_int, params_x)
        aggregated = _fake_quantize(plan.params("aggregate_out"), aggregated)

        out, _ = self.kernels.linear_requant(_target_rows(x, graph_like),
                                             plan.weights["root"], None)
        out = out + aggregated @ self.kernels.weight_matrix(
            plan.weights["neighbour"])
        output = plan.params("output")
        out = _fake_quantize(output, out)

        self._count_layer(plan, index, x.shape[0], aggregated.shape[0],
                          adjacency.nnz, counter, incoming)
        return out, output, adjacency.nnz

    def _run_gin(self, plan: LayerPlan, graph_like: GraphLike, x: np.ndarray,
                 incoming: Optional[QuantizationParameters],
                 counter: BitOpsCounter, index: int):
        params_x = plan.params("input") if plan.params("input") is not None \
            else incoming
        x_int = None
        if params_x is not None:
            x_int = _quantize_with(params_x, x)
            x = _dequantize_with(params_x, x_int)

        adjacency = self._layer_operator("gin", graph_like)
        aggregated = self._aggregate(adjacency, plan.params("adjacency"),
                                     x, x_int, params_x)
        combined = _target_rows(x, graph_like) * (1.0 + plan.eps) + aggregated
        combined = _fake_quantize(plan.params("aggregate_out"), combined)

        hidden, _ = self.kernels.linear_requant(combined, plan.weights["mlp0"],
                                                plan.params("mlp0_out"))
        hidden = np.maximum(hidden, 0.0)  # the MLP's internal ReLU

        mlp1_out = plan.params("mlp1_out")
        out, _ = self.kernels.linear_requant(hidden, plan.weights["mlp1"],
                                             mlp1_out)

        self._count_layer(plan, index, x.shape[0], combined.shape[0],
                          adjacency.nnz, counter, incoming)
        return out, mlp1_out, adjacency.nnz

    # ------------------------------------------------------------------ #
    # attention score plans
    # ------------------------------------------------------------------ #
    def _run_gat(self, plan: LayerPlan, graph_like: GraphLike, x: np.ndarray,
                 incoming: Optional[QuantizationParameters],
                 counter: BitOpsCounter, index: int):
        x = _fake_quantize(plan.params("input"), x)
        weight = plan.weights["weight"]
        linear_out = plan.params("linear_out")
        # The GAT bias applies post-merge, so the transform runs bias-free.
        transformed, transformed_int = self.kernels.linear_requant(
            x, weight, linear_out, add_bias=False)

        heads, head_dim = plan.heads, plan.head_dim
        edges = attention_edges(graph_like)
        attention_src = plan.weights["attention_src"].dequantized() \
            .reshape(head_dim, heads)
        attention_dst = plan.weights["attention_dst"].dequantized() \
            .reshape(head_dim, heads)
        scores = self.kernels.gat_scores(transformed, attention_src,
                                         attention_dst, edges.src, edges.dst,
                                         heads, head_dim)
        scores = np.where(scores > 0, scores, plan.negative_slope * scores)
        attention = self.kernels.edge_softmax(scores, edges.dst, edges.num_dst)

        aggregated = self._aggregate_edges(attention, plan.params("attention"),
                                           transformed, transformed_int,
                                           linear_out, edges, heads, head_dim)
        merged = _merge_heads(aggregated, heads, head_dim, plan.head_merge)
        if weight.bias is not None:
            # The GAT bias applies after the attention-weighted aggregation.
            merged = merged + weight.bias
        aggregate_out = plan.params("aggregate_out")
        merged = _fake_quantize(aggregate_out, merged)

        self._count_layer(plan, index, x.shape[0], merged.shape[0],
                          edges.num_edges, counter, incoming)
        return merged, aggregate_out, edges.num_edges

    def _run_transformer(self, plan: LayerPlan, graph_like: GraphLike,
                         x: np.ndarray,
                         incoming: Optional[QuantizationParameters],
                         counter: BitOpsCounter, index: int):
        x = _fake_quantize(plan.params("input"), x)
        heads, head_dim = plan.heads, plan.head_dim
        queries = (x @ self.kernels.weight_matrix(plan.weights["query"])) \
            .reshape(-1, heads, head_dim)
        keys = (x @ self.kernels.weight_matrix(plan.weights["key"])) \
            .reshape(-1, heads, head_dim)
        value_out = plan.params("value_out")
        values, values_int = self.kernels.linear_requant(
            x, plan.weights["value"], value_out)

        edges = attention_edges(graph_like)
        scale = 1.0 / np.sqrt(head_dim)
        scores = (queries[edges.dst] * keys[edges.src]).sum(axis=-1) * scale
        attention = self.kernels.edge_softmax(scores, edges.dst, edges.num_dst)

        aggregated = self._aggregate_edges(attention, plan.params("attention"),
                                           values, values_int, value_out,
                                           edges, heads, head_dim)
        merged = _merge_heads(aggregated, heads, head_dim, plan.head_merge)
        aggregate_out = plan.params("aggregate_out")
        merged = _fake_quantize(aggregate_out, merged)

        self._count_layer(plan, index, x.shape[0], merged.shape[0],
                          edges.num_edges, counter, incoming)
        return merged, aggregate_out, edges.num_edges

    def _run_tag(self, plan: LayerPlan, views: List[GraphLike], x: np.ndarray,
                 incoming: Optional[QuantizationParameters],
                 counter: BitOpsCounter, index: int):
        params_x = plan.params("input") if plan.params("input") is not None \
            else incoming
        x_int = None
        if params_x is not None:
            x_int = _quantize_with(params_x, x)
            x = _dequantize_with(params_x, x_int)

        last = views[-1]
        num_final = last.num_dst if isinstance(last, SubgraphBlock) else x.shape[0]

        out, _ = self.kernels.linear_requant(x[:num_final],
                                             plan.weights["hop0"], None)

        hop_out = plan.params("hop_out")
        propagated, propagated_int, params_p = x, x_int, params_x
        per_hop_nnz: List[int] = []
        for hop, view in enumerate(views, start=1):
            adjacency = self._layer_operator("tag", view)
            per_hop_nnz.append(adjacency.nnz)
            propagated = self._aggregate(adjacency, plan.params("adjacency"),
                                         propagated, propagated_int, params_p)
            propagated_int = None
            if hop_out is not None:
                propagated_int = _quantize_with(hop_out, propagated)
                propagated = _dequantize_with(hop_out, propagated_int)
            params_p = hop_out
            out = out + propagated[:num_final] @ self.kernels.weight_matrix(
                plan.weights[f"hop{hop}"])

        output = plan.params("output")
        out = _fake_quantize(output, out)

        self._count_layer(plan, index, x.shape[0], num_final, per_hop_nnz,
                          counter, incoming)
        return out, output, int(sum(per_hop_nnz))


class FullGraphSession(InferenceSession):
    """Integer inference over the whole graph (every layer, every node)."""

    request_invariant_cost = True
    supports_updates = True

    def apply_update(self, delta: "GraphDelta") -> int:
        """Apply a delta and drop the memoised full-graph operators.

        The full-graph path holds no sampled state, so consistency needs
        nothing beyond rebuilding the (lazily re-derived) aggregation
        operators on next use.
        """
        self.graph.apply_delta(delta)
        with self._cache_lock:
            self._operator_cache.clear()
            self._quantized_cache.clear()
        return self.graph.version

    def run(self, nodes: Optional[Sequence[int]] = None) -> SessionRun:
        start = time.perf_counter()
        counter = BitOpsCounter()
        x = self.graph.x.astype(np.float64)
        logits, edges = self._forward([self.graph] * self.artifact.total_hops,
                                      x, counter)
        if nodes is not None:
            nodes = np.asarray(nodes, dtype=np.int64)
            logits = logits[nodes]
            num_seeds = int(nodes.shape[0])
        else:
            num_seeds = self.graph.num_nodes
        return SessionRun(logits=logits, bit_operations=counter,
                          num_seeds=num_seeds,
                          num_input_nodes=self.graph.num_nodes,
                          num_edges=edges,
                          seconds=time.perf_counter() - start)

    def bit_operations(self, nodes: Optional[Sequence[int]] = None) -> BitOpsCounter:
        """BitOPs of one full-graph pass, derived from the layer plans and the
        graph structure without executing any layer.

        A full-graph pass always computes every node, so its cost does not
        depend on ``nodes`` (accepted for interface compatibility).
        """
        counter = BitOpsCounter()
        num_nodes = self.graph.num_nodes
        incoming: Optional[QuantizationParameters] = None
        for index, plan in enumerate(self.artifact.layers):
            nnz: Union[int, List[int]]
            if plan.conv_type in ("gat", "transformer"):
                # Attention runs over the explicit edge list plus self loops.
                nnz = self.graph.adjacency(add_self_loops=False).nnz + num_nodes
            elif plan.conv_type == "tag":
                nnz = [self.graph.adjacency(add_self_loops=True).nnz] * plan.hops
            else:
                add_self_loops = plan.conv_type == "gcn"
                nnz = self.graph.adjacency(add_self_loops=add_self_loops).nnz
            incoming = self._count_layer(plan, index, num_nodes, num_nodes,
                                         nnz, counter, incoming)
        return counter


class BlockSession(InferenceSession):
    """Integer inference over sampled receptive-field blocks.

    Parameters
    ----------
    artifact / graph:
        The deployment artifact and the graph to serve requests against.
    fanouts:
        Per-hop neighbour caps (innermost first); an ``int`` broadcasts
        over the artifact's ``total_hops`` (TAG layers consume one block
        per adjacency power), ``None`` / non-positive keeps every
        neighbour — with unlimited fanout block serving matches the
        full-graph engine to float round-off.
    batch_size:
        Seed nodes per sampled micro-batch inside one :meth:`run`.
    seed:
        Seed of the sampler's counter-based edge-sampling hash (seed order
        is never shuffled, so logits line up with the request; sampling is
        a pure function of the request, so repeat requests are identical).
    cache_size / cache_bytes:
        When ``cache_size`` is positive, attach a
        :class:`~repro.cache.BlockCache` of that many entries (optionally
        byte-bounded): repeat requests reuse whole sampled batches — and
        their already-quantized block operators — while overlapping
        requests reuse per-seed rows.  Cached serving is bit-identical to
        uncached serving.
    backend:
        Kernel backend name or instance (see :mod:`repro.kernels`); all
        registered backends serve bit-identical logits, so this selects
        latency only.  ``None`` resolves ``REPRO_KERNEL_BACKEND``, then
        the ``numpy`` reference.
    """

    supports_updates = True

    def __init__(self, artifact: QuantizedArtifact, graph: Graph,
                 fanouts: Union[Fanout, Sequence[Fanout]] = None,
                 batch_size: int = 1024, seed: int = 0, cache_size: int = 0,
                 cache_bytes: Optional[int] = None,
                 backend: BackendLike = None):
        super().__init__(artifact, graph, backend=backend)
        from repro.streaming import RegionVersions

        self.batch_size = int(batch_size)
        self.cache = BlockCache(max_entries=cache_size, max_bytes=cache_bytes) \
            if cache_size > 0 else None
        #: Row/region version counters streamed updates advance; stamped
        #: into every cache key so invalidation scopes to receptive fields.
        self.versions = RegionVersions(graph.num_nodes)
        self.sampler = NeighborSampler(
            graph, fanouts, batch_size=self.batch_size,
            num_layers=artifact.total_hops,
            seed_nodes=np.arange(graph.num_nodes, dtype=np.int64),
            shuffle=False, seed=seed, cache=self.cache,
            versions=self.versions)

    def cache_stats(self) -> Optional[CacheStats]:
        """Hit/miss/eviction counters of the block cache (None when off)."""
        return None if self.cache is None else self.cache.stats()

    def apply_update(self, delta: "GraphDelta") -> int:
        """Apply a delta with invalidation scoped to its receptive fields.

        Ordering matters and is pinned here: the graph mutates first, the
        affected region is computed on the *post-update* adjacency (sound
        for pre-update entries too — see
        :func:`~repro.streaming.affected_region`), row versions advance for
        changed adjacency rows and region versions for every node within
        ``total_hops`` of the delta, the sampler re-derives its degree
        state, and only then are the now-unreachable cache entries evicted.
        Everything outside the affected region keeps its warm entries,
        which is the whole point of scoped invalidation.
        """
        from repro.streaming import affected_region

        applied = self.graph.apply_delta(delta)
        region = affected_region(self.graph, applied.touched_nodes(),
                                 self.artifact.total_hops)
        self.versions.bump(applied.changed_rows(), region)
        self.sampler.refresh_graph()
        if self.cache is not None:
            self.cache.invalidate_nodes(region)
        with self._cache_lock:
            self._operator_cache.clear()
            self._quantized_cache.clear()
        return self.graph.version

    def run(self, nodes: Optional[Sequence[int]] = None) -> SessionRun:
        start = time.perf_counter()
        seeds = np.arange(self.graph.num_nodes, dtype=np.int64) if nodes is None \
            else np.asarray(nodes, dtype=np.int64).reshape(-1)
        if seeds.shape[0] == 0:
            return SessionRun(
                logits=np.zeros((0, self.artifact.num_classes)),
                bit_operations=BitOpsCounter(), num_seeds=0, num_input_nodes=0,
                num_edges=0, seconds=time.perf_counter() - start)
        counter = BitOpsCounter()
        pieces: List[np.ndarray] = []
        input_nodes = 0
        edges = 0
        for batch in self.sampler.iter_batches(seeds):
            logits, batch_edges = self._forward(batch.blocks,
                                                batch.x.astype(np.float64), counter)
            pieces.append(logits)
            input_nodes += int(batch.input_nodes.shape[0])
            edges += batch_edges
        logits = pieces[0] if len(pieces) == 1 else np.concatenate(pieces, axis=0)
        return SessionRun(logits=logits, bit_operations=counter,
                          num_seeds=int(seeds.shape[0]),
                          num_input_nodes=input_nodes, num_edges=edges,
                          seconds=time.perf_counter() - start)
