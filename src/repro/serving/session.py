"""Inference sessions: integer execution of a :class:`QuantizedArtifact`.

Two backends share one layer executor:

* :class:`FullGraphSession` runs every layer over the whole graph — the
  classic Theorem-1 engine (previously ``repro.quant.IntegerGCNInference``,
  now generalized beyond GCN to GraphSAGE and GIN).
* :class:`BlockSession` routes the same integer message passing through
  seeded :class:`~repro.graphs.sampling.NeighborSampler` blocks, so a
  request for ``N`` seed nodes touches only their fanout-bounded receptive
  field and the full (normalised) adjacency is never materialised.  The
  *block* adjacency is quantized with the artifact's stored Theorem-1
  constants, which at unlimited fanout makes block serving numerically
  identical to the full-graph engine (the block operators are exact row
  slices of the full operators).

Both quantize activations onto the artifact's stored integer grids, run the
sparse aggregation as an int64 sparse-dense product plus the rank-one
corrections of Theorem 1 (:func:`~repro.quant.integer_mp.quantized_spmm`),
and return float logits plus per-run BitOPs.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.cache import BlockCache, CacheStats
from repro.gnn.sage import mean_adjacency
from repro.graphs.graph import Graph
from repro.graphs.sampling import Fanout, NeighborSampler, SubgraphBlock
from repro.quant.bitops import BitOpsCounter
from repro.quant.integer_mp import quantized_spmm
from repro.quant.quantizer import QuantizationParameters
from repro.serving.artifact import LayerPlan, QuantizedArtifact
from repro.tensor.sparse import SparseTensor

GraphLike = Union[Graph, SubgraphBlock]


def _quantize_with(params: QuantizationParameters, values: np.ndarray) -> np.ndarray:
    scale, zero_point = params.as_scalars()
    return np.clip(np.rint(values / scale) + zero_point, params.qmin, params.qmax)


def _dequantize_with(params: QuantizationParameters, integers: np.ndarray) -> np.ndarray:
    scale, zero_point = params.as_scalars()
    return (integers - zero_point) * scale


def _fake_quantize(params: Optional[QuantizationParameters],
                   values: np.ndarray) -> np.ndarray:
    if params is None:
        return values
    return _dequantize_with(params, _quantize_with(params, values))


def _target_rows(x: np.ndarray, graph_like: GraphLike) -> np.ndarray:
    """Target-side activations: ``x[:num_dst]`` on a block, ``x`` on a graph."""
    if isinstance(graph_like, SubgraphBlock):
        return x[:graph_like.num_dst]
    return x


@dataclass
class SessionRun:
    """One serving pass: logits plus the work it took to produce them."""

    logits: np.ndarray
    bit_operations: BitOpsCounter
    num_seeds: int
    num_input_nodes: int
    num_edges: int
    seconds: float

    def giga_bit_operations(self) -> float:
        return self.bit_operations.giga_bit_operations()


class InferenceSession:
    """Protocol base of the serving backends.

    A session is bound to an artifact and a graph; :meth:`run` executes one
    request and reports logits, BitOPs and touched-work statistics, while
    :meth:`predict` / :meth:`predict_classes` are the plain-output
    conveniences.  Subclasses implement :meth:`run`.
    """

    #: True when one :meth:`run` costs the same regardless of the request
    #: size (a full-graph pass): the serving engine then serves a whole
    #: flush with a single run instead of splitting it into micro-batches.
    request_invariant_cost = False

    def __init__(self, artifact: QuantizedArtifact, graph: Graph):
        if not artifact.layers:
            raise ValueError("the inference session needs at least one layer")
        self.artifact = artifact
        self.graph = graph
        # Request-invariant operators of the bound graph, built once per
        # session: the layer's aggregation operator and its (fake-)quantized
        # variants.  Block operators are per-request and bypass these.  The
        # lock keeps the memoisation safe under the serving engine's worker
        # pool (sessions are otherwise stateless per request).
        self._operator_cache: dict = {}
        self._quantized_cache: dict = {}
        self._cache_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    def run(self, nodes: Optional[Sequence[int]] = None) -> SessionRun:
        raise NotImplementedError

    def predict(self, nodes: Optional[Sequence[int]] = None) -> np.ndarray:
        """Float logits for the requested nodes (all nodes by default)."""
        return self.run(nodes).logits

    def predict_classes(self, nodes: Optional[Sequence[int]] = None) -> np.ndarray:
        """Arg-max class predictions for the requested nodes."""
        return self.predict(nodes).argmax(axis=1)

    def bit_operations(self, nodes: Optional[Sequence[int]] = None) -> BitOpsCounter:
        """BitOPs of one serving pass for the requested nodes."""
        return self.run(nodes).bit_operations

    # ------------------------------------------------------------------ #
    # request-invariant operators
    # ------------------------------------------------------------------ #
    @staticmethod
    def _build_operator(conv_type: str, graph_like: GraphLike) -> SparseTensor:
        """The aggregation operator a conv family applies to a graph view."""
        if conv_type == "gcn":
            return graph_like.normalized_adjacency()
        if conv_type == "sage":
            return mean_adjacency(graph_like)
        return graph_like.adjacency(add_self_loops=False)

    def _layer_operator(self, conv_type: str, graph_like: GraphLike) -> SparseTensor:
        if isinstance(graph_like, SubgraphBlock):
            # SubgraphBlock.adjacency()/normalized_adjacency() memoise on the
            # block itself, so a cache-reused block skips the rebuild too.
            return self._build_operator(conv_type, graph_like)
        # full-graph views are always the session's bound graph -> memoise
        with self._cache_lock:
            if conv_type not in self._operator_cache:
                self._operator_cache[conv_type] = self._build_operator(
                    conv_type, graph_like)
            return self._operator_cache[conv_type]

    def _quantized_operator(self, adjacency: SparseTensor,
                            params: QuantizationParameters,
                            fake: bool) -> SparseTensor:
        """Adjacency on the artifact's stored grid (integer or fake-quantized).

        Cached per source-operator identity: the stored reference keeps the
        source alive so an ``id()`` key can never be reused by a different
        reallocated operator, and eviction keeps per-request block operators
        from accumulating.
        """
        key = (id(adjacency), id(params), fake)
        with self._cache_lock:
            entry = self._quantized_cache.get(key)
        if entry is None or entry[0] is not adjacency or entry[1] is not params:
            integers = _quantize_with(params, adjacency.values.astype(np.float64))
            values = _dequantize_with(params, integers) if fake else integers
            quantized = adjacency.with_values(values.astype(np.float32))
            entry = (adjacency, params, quantized)
            with self._cache_lock:
                self._quantized_cache[key] = entry
                while len(self._quantized_cache) > 16:
                    self._quantized_cache.pop(next(iter(self._quantized_cache)))
        return entry[2]

    def _aggregate(self, adjacency: SparseTensor,
                   adjacency_params: Optional[QuantizationParameters],
                   x: np.ndarray, x_int: Optional[np.ndarray],
                   x_params: Optional[QuantizationParameters]) -> np.ndarray:
        """``A @ X`` through Theorem 1 when both operands carry integer grids.

        Falls back to a float sparse-dense product (with the adjacency still
        on its fake-quantized grid, matching the QAT model) when either side
        is kept in full precision.
        """
        if adjacency_params is not None and x_params is not None and x_int is not None:
            scale_a, _ = adjacency_params.as_scalars()
            scale_x, zero_x = x_params.as_scalars()
            return quantized_spmm(
                self._quantized_operator(adjacency, adjacency_params, fake=False),
                scale_a, x_int, scale_x, zero_x)
        if adjacency_params is not None:
            adjacency = self._quantized_operator(adjacency, adjacency_params,
                                                 fake=True)
        return np.asarray(adjacency.csr @ x, dtype=np.float64)

    # ------------------------------------------------------------------ #
    # BitOPs accounting (shared by execution and the arithmetic counters)
    # ------------------------------------------------------------------ #
    def _count_layer(self, plan: LayerPlan, index: int, n_src: int, n_dst: int,
                     nnz: int, counter: BitOpsCounter,
                     incoming: Optional[QuantizationParameters]
                     ) -> Optional[QuantizationParameters]:
        """Append one layer's BitOPs records; returns its outgoing params."""
        if plan.conv_type == "gcn":
            weight = plan.weights["weight"]
            counter.add(f"layer{index}.transform",
                        2 * n_src * plan.in_features * plan.out_features,
                        weight.bits)
            linear_out = plan.params("linear_out")
            aggregate_bits = plan.slot_bits("adjacency") if linear_out is None \
                else max(plan.slot_bits("adjacency"), linear_out.bits)
            counter.add(f"layer{index}.aggregate",
                        2 * nnz * plan.out_features, min(aggregate_bits, 32))
            return plan.params("aggregate_out")

        params_x = plan.params("input") if plan.params("input") is not None \
            else incoming
        x_bits = 32 if params_x is None else params_x.bits
        aggregate_bits = min(max(plan.slot_bits("adjacency"), x_bits), 32)
        if plan.conv_type == "sage":
            root = plan.weights["root"]
            neighbour = plan.weights["neighbour"]
            counter.add(f"layer{index}.aggregate",
                        2 * nnz * plan.in_features, aggregate_bits)
            counter.add(f"layer{index}.transform_root",
                        2 * n_dst * plan.in_features * plan.out_features,
                        min(max(x_bits, root.bits), 32))
            counter.add(f"layer{index}.transform_neighbour",
                        2 * n_dst * plan.in_features * plan.out_features,
                        min(max(plan.slot_bits("aggregate_out"), neighbour.bits),
                            32))
            return plan.params("output")

        mlp0 = plan.weights["mlp0"]
        mlp1 = plan.weights["mlp1"]
        hidden_features = mlp0.integers.shape[1]
        counter.add(f"layer{index}.aggregate",
                    2 * nnz * plan.in_features, aggregate_bits)
        counter.add(f"layer{index}.combine",
                    2 * n_dst * plan.in_features, aggregate_bits)
        counter.add(f"layer{index}.mlp0",
                    2 * n_dst * plan.in_features * hidden_features,
                    min(max(plan.slot_bits("aggregate_out"), mlp0.bits), 32))
        counter.add(f"layer{index}.mlp1",
                    2 * n_dst * hidden_features * plan.out_features,
                    min(max(plan.slot_bits("mlp0_out"), mlp1.bits), 32))
        return plan.params("mlp1_out")

    # ------------------------------------------------------------------ #
    def _forward(self, layer_graphs: Sequence[GraphLike], x: np.ndarray,
                 counter: BitOpsCounter) -> Tuple[np.ndarray, int]:
        """Run the artifact's layer stack over per-layer graph views.

        Returns the logits of the target side of the last layer and the
        total number of edges (messages) touched.
        """
        plans = self.artifact.layers
        if len(layer_graphs) != len(plans):
            raise ValueError(f"artifact has {len(plans)} layers but "
                             f"{len(layer_graphs)} graph views were given")
        incoming: Optional[QuantizationParameters] = None
        edges = 0
        last = len(plans) - 1
        for index, (plan, graph_like) in enumerate(zip(plans, layer_graphs)):
            x, incoming, layer_edges = self._run_layer(plan, graph_like, x,
                                                       incoming, counter, index)
            edges += layer_edges
            if index != last:
                x = np.maximum(x, 0.0)  # ReLU between layers
        return x, edges

    def _run_layer(self, plan: LayerPlan, graph_like: GraphLike, x: np.ndarray,
                   incoming: Optional[QuantizationParameters],
                   counter: BitOpsCounter, index: int
                   ) -> Tuple[np.ndarray, Optional[QuantizationParameters], int]:
        if plan.conv_type == "gcn":
            runner = self._run_gcn
        elif plan.conv_type == "sage":
            runner = self._run_sage
        elif plan.conv_type == "gin":
            runner = self._run_gin
        else:
            raise ValueError(f"unknown conv type {plan.conv_type!r}")
        return runner(plan, graph_like, x, incoming, counter, index)

    # ------------------------------------------------------------------ #
    def _run_gcn(self, plan: LayerPlan, graph_like: GraphLike, x: np.ndarray,
                 incoming: Optional[QuantizationParameters],
                 counter: BitOpsCounter, index: int):
        x = _fake_quantize(plan.params("input"), x)
        weight = plan.weights["weight"]
        transformed = x @ weight.dequantized()
        if weight.bias is not None:
            transformed = transformed + weight.bias

        linear_out = plan.params("linear_out")
        transformed_int = None
        if linear_out is not None:
            transformed_int = _quantize_with(linear_out, transformed)
            transformed = _dequantize_with(linear_out, transformed_int)

        adjacency = self._layer_operator("gcn", graph_like)
        aggregated = self._aggregate(adjacency, plan.params("adjacency"),
                                     transformed, transformed_int, linear_out)
        aggregate_out = plan.params("aggregate_out")
        aggregated = _fake_quantize(aggregate_out, aggregated)

        self._count_layer(plan, index, x.shape[0], aggregated.shape[0],
                          adjacency.nnz, counter, incoming)
        return aggregated, aggregate_out, adjacency.nnz

    def _run_sage(self, plan: LayerPlan, graph_like: GraphLike, x: np.ndarray,
                  incoming: Optional[QuantizationParameters],
                  counter: BitOpsCounter, index: int):
        params_x = plan.params("input") if plan.params("input") is not None \
            else incoming
        x_int = None
        if params_x is not None:
            x_int = _quantize_with(params_x, x)
            x = _dequantize_with(params_x, x_int)

        adjacency = self._layer_operator("sage", graph_like)
        aggregated = self._aggregate(adjacency, plan.params("adjacency"),
                                     x, x_int, params_x)
        aggregated = _fake_quantize(plan.params("aggregate_out"), aggregated)

        root = plan.weights["root"]
        out = _target_rows(x, graph_like) @ root.dequantized()
        if root.bias is not None:
            out = out + root.bias
        out = out + aggregated @ plan.weights["neighbour"].dequantized()
        output = plan.params("output")
        out = _fake_quantize(output, out)

        self._count_layer(plan, index, x.shape[0], aggregated.shape[0],
                          adjacency.nnz, counter, incoming)
        return out, output, adjacency.nnz

    def _run_gin(self, plan: LayerPlan, graph_like: GraphLike, x: np.ndarray,
                 incoming: Optional[QuantizationParameters],
                 counter: BitOpsCounter, index: int):
        params_x = plan.params("input") if plan.params("input") is not None \
            else incoming
        x_int = None
        if params_x is not None:
            x_int = _quantize_with(params_x, x)
            x = _dequantize_with(params_x, x_int)

        adjacency = self._layer_operator("gin", graph_like)
        aggregated = self._aggregate(adjacency, plan.params("adjacency"),
                                     x, x_int, params_x)
        combined = _target_rows(x, graph_like) * (1.0 + plan.eps) + aggregated
        combined = _fake_quantize(plan.params("aggregate_out"), combined)

        mlp0 = plan.weights["mlp0"]
        hidden = combined @ mlp0.dequantized()
        if mlp0.bias is not None:
            hidden = hidden + mlp0.bias
        hidden = _fake_quantize(plan.params("mlp0_out"), hidden)
        hidden = np.maximum(hidden, 0.0)  # the MLP's internal ReLU

        mlp1 = plan.weights["mlp1"]
        out = hidden @ mlp1.dequantized()
        if mlp1.bias is not None:
            out = out + mlp1.bias
        mlp1_out = plan.params("mlp1_out")
        out = _fake_quantize(mlp1_out, out)

        self._count_layer(plan, index, x.shape[0], combined.shape[0],
                          adjacency.nnz, counter, incoming)
        return out, mlp1_out, adjacency.nnz


class FullGraphSession(InferenceSession):
    """Integer inference over the whole graph (every layer, every node)."""

    request_invariant_cost = True

    def run(self, nodes: Optional[Sequence[int]] = None) -> SessionRun:
        start = time.perf_counter()
        counter = BitOpsCounter()
        x = self.graph.x.astype(np.float64)
        logits, edges = self._forward([self.graph] * self.artifact.num_layers,
                                      x, counter)
        if nodes is not None:
            nodes = np.asarray(nodes, dtype=np.int64)
            logits = logits[nodes]
            num_seeds = int(nodes.shape[0])
        else:
            num_seeds = self.graph.num_nodes
        return SessionRun(logits=logits, bit_operations=counter,
                          num_seeds=num_seeds,
                          num_input_nodes=self.graph.num_nodes,
                          num_edges=edges,
                          seconds=time.perf_counter() - start)

    def bit_operations(self, nodes: Optional[Sequence[int]] = None) -> BitOpsCounter:
        """BitOPs of one full-graph pass, derived from the layer plans and the
        graph structure without executing any layer.

        A full-graph pass always computes every node, so its cost does not
        depend on ``nodes`` (accepted for interface compatibility).
        """
        counter = BitOpsCounter()
        num_nodes = self.graph.num_nodes
        incoming: Optional[QuantizationParameters] = None
        for index, plan in enumerate(self.artifact.layers):
            add_self_loops = plan.conv_type == "gcn"
            nnz = self.graph.adjacency(add_self_loops=add_self_loops).nnz
            incoming = self._count_layer(plan, index, num_nodes, num_nodes,
                                         nnz, counter, incoming)
        return counter


class BlockSession(InferenceSession):
    """Integer inference over sampled receptive-field blocks.

    Parameters
    ----------
    artifact / graph:
        The deployment artifact and the graph to serve requests against.
    fanouts:
        Per-layer neighbour caps (innermost first); an ``int`` broadcasts
        over the artifact's layers, ``None`` / non-positive keeps every
        neighbour — with unlimited fanout block serving matches the
        full-graph engine to float round-off.
    batch_size:
        Seed nodes per sampled micro-batch inside one :meth:`run`.
    seed:
        Seed of the sampler's counter-based edge-sampling hash (seed order
        is never shuffled, so logits line up with the request; sampling is
        a pure function of the request, so repeat requests are identical).
    cache_size / cache_bytes:
        When ``cache_size`` is positive, attach a
        :class:`~repro.cache.BlockCache` of that many entries (optionally
        byte-bounded): repeat requests reuse whole sampled batches — and
        their already-quantized block operators — while overlapping
        requests reuse per-seed rows.  Cached serving is bit-identical to
        uncached serving.
    """

    def __init__(self, artifact: QuantizedArtifact, graph: Graph,
                 fanouts: Union[Fanout, Sequence[Fanout]] = None,
                 batch_size: int = 1024, seed: int = 0, cache_size: int = 0,
                 cache_bytes: Optional[int] = None):
        super().__init__(artifact, graph)
        self.batch_size = int(batch_size)
        self.cache = BlockCache(max_entries=cache_size, max_bytes=cache_bytes) \
            if cache_size > 0 else None
        self.sampler = NeighborSampler(
            graph, fanouts, batch_size=self.batch_size,
            num_layers=artifact.num_layers,
            seed_nodes=np.arange(graph.num_nodes, dtype=np.int64),
            shuffle=False, seed=seed, cache=self.cache)

    def cache_stats(self) -> Optional[CacheStats]:
        """Hit/miss/eviction counters of the block cache (None when off)."""
        return None if self.cache is None else self.cache.stats()

    def run(self, nodes: Optional[Sequence[int]] = None) -> SessionRun:
        start = time.perf_counter()
        seeds = np.arange(self.graph.num_nodes, dtype=np.int64) if nodes is None \
            else np.asarray(nodes, dtype=np.int64).reshape(-1)
        if seeds.shape[0] == 0:
            return SessionRun(
                logits=np.zeros((0, self.artifact.num_classes)),
                bit_operations=BitOpsCounter(), num_seeds=0, num_input_nodes=0,
                num_edges=0, seconds=time.perf_counter() - start)
        counter = BitOpsCounter()
        pieces: List[np.ndarray] = []
        input_nodes = 0
        edges = 0
        for batch in self.sampler.iter_batches(seeds):
            logits, batch_edges = self._forward(batch.blocks,
                                                batch.x.astype(np.float64), counter)
            pieces.append(logits)
            input_nodes += int(batch.input_nodes.shape[0])
            edges += batch_edges
        logits = pieces[0] if len(pieces) == 1 else np.concatenate(pieces, axis=0)
        return SessionRun(logits=logits, bit_operations=counter,
                          num_seeds=int(seeds.shape[0]),
                          num_input_nodes=input_nodes, num_edges=edges,
                          seconds=time.perf_counter() - start)
