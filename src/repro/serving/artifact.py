"""Serializable deployment artifact for quantized GNN serving.

:class:`QuantizedArtifact` captures everything the integer serving path
(Figure 7, stage 5 / Theorem 1) needs and nothing it doesn't: integer weight
matrices with their symmetric scales, the per-tensor quantization parameters
of every activation and adjacency component observed during QAT, the
bit-width assignment, the conv family and the layer topology.  Once
exported, serving never touches the training stack — an artifact
``save()``-d on one machine can be ``load()``-ed and served on another that
only has the :mod:`repro.serving` package and the graph data.

The on-disk format is an ``.npz`` holding the arrays (integer weights,
biases) plus a human-readable ``.json`` sidecar with the scalar metadata
(scales, zero-points, bit-widths, topology).  Integer weights are stored as
float64 integer values, which round-trips bit-exactly for every bit-width up
to (and including) the FP32 passthrough of unquantized components.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.quant.qmodules import (
    QuantGATConv,
    QuantGCNConv,
    QuantGINConv,
    QuantSAGEConv,
    QuantTAGConv,
    QuantTransformerConv,
)
from repro.quant.quantizer import AffineQuantizer, IdentityQuantizer, QuantizationParameters

PathLike = Union[str, Path]

FORMAT_NAME = "repro.serving.artifact"
#: v2 added the attention score plans (gat / tag / transformer conv
#: families, per-layer ``hops`` and ``negative_slope``); v3 added the head
#: axis (per-layer ``heads`` and ``head_merge``, per-head FP32 attention
#: vectors stored column-per-head).  v1 and v2 artifacts load unchanged —
#: missing head fields default to the single-head layout.
FORMAT_VERSION = 3


def tag_weight_slots(hops: int) -> Tuple[str, ...]:
    """Weight slots of one TAG layer: one matrix per adjacency power."""
    return tuple(f"hop{k}" for k in range(hops + 1))


#: Ordered weight slots of each supported conv family.  TAG slots depend on
#: the layer's hop count — the table lists the default (``hops=3``); use
#: :func:`tag_weight_slots` for other depths.
WEIGHT_SLOTS: Dict[str, Tuple[str, ...]] = {
    "gcn": ("weight",),
    "sage": ("root", "neighbour"),
    "gin": ("mlp0", "mlp1"),
    "gat": ("weight", "attention_src", "attention_dst"),
    "transformer": ("query", "key", "value"),
    "tag": tag_weight_slots(3),
}

#: Activation / adjacency quantizer slots of each supported conv family.
#: For the attention families the ``attention`` slot quantizes the
#: post-softmax coefficient matrix — the per-edge *score plan* the integer
#: executor aggregates with.
QUANTIZER_SLOTS: Dict[str, Tuple[str, ...]] = {
    "gcn": ("input", "linear_out", "adjacency", "aggregate_out"),
    "sage": ("input", "adjacency", "aggregate_out", "output"),
    "gin": ("input", "adjacency", "aggregate_out", "mlp0_out", "mlp1_out"),
    "gat": ("input", "linear_out", "attention", "aggregate_out"),
    "transformer": ("input", "value_out", "attention", "aggregate_out"),
    "tag": ("input", "adjacency", "hop_out", "output"),
}


@dataclass
class WeightPlan:
    """One integer weight matrix with its symmetric scale and optional bias."""

    integers: np.ndarray
    scale: float
    bits: int
    bias: Optional[np.ndarray] = None

    def dequantized(self) -> np.ndarray:
        """Float view ``W_int * S_w`` (weights are symmetric, zero-point 0)."""
        return self.integers * self.scale


@dataclass
class LayerPlan:
    """Pre-extracted integer execution plan for one convolution layer.

    ``hops`` is the number of propagation steps the layer consumes (1 for
    every family except TAG), so a block-serving sampler sizes its stacks by
    ``sum(plan.hops)``; ``negative_slope`` is the GAT leaky-relu slope of
    the score stage.  ``heads`` / ``head_merge`` describe the attention
    head axis (format v3): scores run per head over ``(E, heads)`` columns
    and the per-head aggregations merge by ``concat`` (slices of
    ``out_features // heads``) or ``mean`` (full-width heads, averaged).
    """

    conv_type: str
    in_features: int
    out_features: int
    weights: Dict[str, WeightPlan]
    quantizers: Dict[str, Optional[QuantizationParameters]]
    eps: float = 0.0
    hops: int = 1
    negative_slope: float = 0.2
    heads: int = 1
    head_merge: str = "concat"

    def params(self, slot: str) -> Optional[QuantizationParameters]:
        """Quantization parameters of a named slot (None for FP32 components)."""
        return self.quantizers.get(slot)

    def slot_bits(self, slot: str) -> int:
        parameters = self.quantizers.get(slot)
        return 32 if parameters is None else int(parameters.bits)

    @property
    def head_dim(self) -> int:
        """Per-head feature width (``out_features`` for single-head layers)."""
        if self.head_merge == "mean":
            return self.out_features
        return self.out_features // self.heads


def _parameters_of(quantizer) -> Optional[QuantizationParameters]:
    """Parameters of an :class:`AffineQuantizer`, None for identity/unknown."""
    if isinstance(quantizer, IdentityQuantizer) or not isinstance(quantizer, AffineQuantizer):
        return None
    return quantizer.quantization_parameters()


def _weight_plan(weight: np.ndarray, quantizer,
                 bias: Optional[np.ndarray]) -> WeightPlan:
    """Quantize one weight matrix with its trained (frozen) quantizer."""
    weight = np.asarray(weight, dtype=np.float64)
    bias = None if bias is None else np.asarray(bias, dtype=np.float64).copy()
    if isinstance(quantizer, AffineQuantizer):
        integers, params = quantizer.quantize_array(weight, update_range=False)
        scale, _ = params.as_scalars()
        return WeightPlan(np.asarray(integers, dtype=np.float64), float(scale),
                          int(params.bits), bias)
    return WeightPlan(weight, 1.0, 32, bias)


def _export_gcn(conv: QuantGCNConv) -> LayerPlan:
    bias = None if conv.linear.bias is None else conv.linear.bias.data
    return LayerPlan(
        conv_type="gcn",
        in_features=conv.in_features,
        out_features=conv.out_features,
        weights={"weight": _weight_plan(conv.linear.weight.data,
                                        conv.weight_quantizer, bias)},
        quantizers={
            "input": _parameters_of(conv.input_quantizer),
            "linear_out": _parameters_of(conv.linear_out_quantizer),
            "adjacency": _parameters_of(conv.adjacency_quantizer),
            "aggregate_out": _parameters_of(conv.aggregate_out_quantizer),
        })


def _export_sage(conv: QuantSAGEConv) -> LayerPlan:
    root_bias = None if conv.linear_root.bias is None else conv.linear_root.bias.data
    return LayerPlan(
        conv_type="sage",
        in_features=conv.in_features,
        out_features=conv.out_features,
        weights={
            "root": _weight_plan(conv.linear_root.weight.data,
                                 conv.weight_root_quantizer, root_bias),
            "neighbour": _weight_plan(conv.linear_neighbour.weight.data,
                                      conv.weight_neighbour_quantizer, None),
        },
        quantizers={
            "input": _parameters_of(conv.input_quantizer),
            "adjacency": _parameters_of(conv.adjacency_quantizer),
            "aggregate_out": _parameters_of(conv.aggregate_out_quantizer),
            "output": _parameters_of(conv.output_quantizer),
        })


def _export_gin(conv: QuantGINConv) -> LayerPlan:
    first, second = conv.mlp_first, conv.mlp_second
    first_bias = None if first.linear.bias is None else first.linear.bias.data
    second_bias = None if second.linear.bias is None else second.linear.bias.data
    return LayerPlan(
        conv_type="gin",
        in_features=conv.in_features,
        out_features=conv.out_features,
        weights={
            "mlp0": _weight_plan(first.linear.weight.data,
                                 first.weight_quantizer, first_bias),
            "mlp1": _weight_plan(second.linear.weight.data,
                                 second.weight_quantizer, second_bias),
        },
        quantizers={
            "input": _parameters_of(conv.input_quantizer),
            "adjacency": _parameters_of(conv.adjacency_quantizer),
            "aggregate_out": _parameters_of(conv.aggregate_out_quantizer),
            "mlp0_out": _parameters_of(first.output_quantizer),
            "mlp1_out": _parameters_of(second.output_quantizer),
        },
        eps=float(conv.eps))


def _export_gat(conv: QuantGATConv) -> LayerPlan:
    # The GAT bias is added *after* the attention-weighted aggregation, so
    # the executor applies the ``weight`` plan's bias post-aggregate.  The
    # per-head FP32 attention vectors are stored column-per-head
    # (``(head_dim, heads)``), matching the QAT parameter layout.
    return LayerPlan(
        conv_type="gat",
        in_features=conv.in_features,
        out_features=conv.out_features,
        weights={
            "weight": _weight_plan(conv.linear.weight.data,
                                   conv.weight_quantizer, conv.bias.data),
            "attention_src": _weight_plan(conv.attention_src.data, None, None),
            "attention_dst": _weight_plan(conv.attention_dst.data, None, None),
        },
        quantizers={
            "input": _parameters_of(conv.input_quantizer),
            "linear_out": _parameters_of(conv.linear_out_quantizer),
            "attention": _parameters_of(conv.attention_quantizer),
            "aggregate_out": _parameters_of(conv.aggregate_out_quantizer),
        },
        negative_slope=float(conv.negative_slope),
        heads=int(conv.heads), head_merge=str(conv.head_merge))


def _export_transformer(conv: QuantTransformerConv) -> LayerPlan:
    value_bias = None if conv.value.bias is None else conv.value.bias.data
    return LayerPlan(
        conv_type="transformer",
        in_features=conv.in_features,
        out_features=conv.out_features,
        weights={
            "query": _weight_plan(conv.query.weight.data,
                                  conv.weight_query_quantizer, None),
            "key": _weight_plan(conv.key.weight.data,
                                conv.weight_key_quantizer, None),
            "value": _weight_plan(conv.value.weight.data,
                                  conv.weight_value_quantizer, value_bias),
        },
        quantizers={
            "input": _parameters_of(conv.input_quantizer),
            "value_out": _parameters_of(conv.value_out_quantizer),
            "attention": _parameters_of(conv.attention_quantizer),
            "aggregate_out": _parameters_of(conv.aggregate_out_quantizer),
        },
        heads=int(conv.heads), head_merge=str(conv.head_merge))


def _export_tag(conv: QuantTAGConv) -> LayerPlan:
    weights: Dict[str, WeightPlan] = {}
    for k, (linear, quantizer) in enumerate(zip(conv.linears,
                                                conv.weight_quantizers)):
        bias = None if linear.bias is None else linear.bias.data
        weights[f"hop{k}"] = _weight_plan(linear.weight.data, quantizer, bias)
    return LayerPlan(
        conv_type="tag",
        in_features=conv.in_features,
        out_features=conv.out_features,
        weights=weights,
        quantizers={
            "input": _parameters_of(conv.input_quantizer),
            "adjacency": _parameters_of(conv.adjacency_quantizer),
            "hop_out": _parameters_of(conv.hop_out_quantizer),
            "output": _parameters_of(conv.output_quantizer),
        },
        hops=int(conv.hops))


_EXPORTERS = {QuantGCNConv: _export_gcn, QuantSAGEConv: _export_sage,
              QuantGINConv: _export_gin, QuantGATConv: _export_gat,
              QuantTransformerConv: _export_transformer,
              QuantTAGConv: _export_tag}


def _params_to_json(params: Optional[QuantizationParameters]):
    if params is None:
        return None
    scale, zero_point = params.as_scalars()
    return {"scale": scale, "zero_point": zero_point,
            "qmin": int(params.qmin), "qmax": int(params.qmax),
            "bits": int(params.bits)}


def _params_from_json(payload) -> Optional[QuantizationParameters]:
    if payload is None:
        return None
    return QuantizationParameters(
        scale=np.asarray(float(payload["scale"]), dtype=np.float64),
        zero_point=np.asarray(float(payload["zero_point"]), dtype=np.float64),
        qmin=int(payload["qmin"]), qmax=int(payload["qmax"]),
        bits=int(payload["bits"]))


def artifact_paths(path: PathLike) -> Tuple[Path, Path]:
    """The ``(npz, json)`` file pair an artifact path refers to.

    ``path`` may carry the ``.npz`` or ``.json`` suffix (or neither); the
    sidecar always sits next to the array file with the other suffix.  Any
    other dotted name segment (``model.v2``) is kept as part of the base.
    """
    base = Path(path)
    if base.suffix in {".npz", ".json"}:
        base = base.with_suffix("")
    return base.parent / (base.name + ".npz"), base.parent / (base.name + ".json")


@dataclass
class QuantizedArtifact:
    """A self-contained, serializable quantized-model deployment artifact."""

    conv_type: str
    layers: List[LayerPlan]
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self):
        if not self.layers:
            raise ValueError("a quantized artifact needs at least one layer")
        if self.conv_type not in WEIGHT_SLOTS:
            raise ValueError(f"unknown conv type {self.conv_type!r}; "
                             f"options: {sorted(WEIGHT_SLOTS)}")

    # ------------------------------------------------------------------ #
    @property
    def num_layers(self) -> int:
        return len(self.layers)

    @property
    def total_hops(self) -> int:
        """Propagation steps of one forward pass — the number of bipartite
        blocks a block-serving sampler must emit per batch (TAG layers
        consume ``hops`` blocks each)."""
        return sum(plan.hops for plan in self.layers)

    @property
    def layer_dims(self) -> List[Tuple[int, int]]:
        return [(plan.in_features, plan.out_features) for plan in self.layers]

    @property
    def num_classes(self) -> int:
        return self.layers[-1].out_features

    @property
    def num_features(self) -> int:
        return self.layers[0].in_features

    def summary(self) -> str:
        bits = sorted({w.bits for plan in self.layers for w in plan.weights.values()})
        dims = " -> ".join([str(self.num_features),
                            *(str(out) for _, out in self.layer_dims)])
        return (f"QuantizedArtifact({self.conv_type}, layers={self.num_layers}, "
                f"dims={dims}, weight_bits={bits})")

    # ------------------------------------------------------------------ #
    @classmethod
    def from_model(cls, model, metadata: Optional[Dict[str, object]] = None
                   ) -> "QuantizedArtifact":
        """Export a trained quantized classifier into a deployment artifact.

        Accepts a :class:`~repro.quant.qmodules.QuantNodeClassifier` (or any
        conv-stack of ``Quant*Conv`` layers) and, for convenience, a
        :class:`~repro.core.mixq.MixQNodeClassifier` whose ``fit()`` /
        ``finalize()`` already produced a ``quantized_model``.  The model
        should be trained (observers initialised) and in eval mode.
        """
        convs = getattr(model, "convs", None)
        if convs is None:
            quantized = getattr(model, "quantized_model", None)
            if quantized is None:
                raise TypeError(
                    "from_model expects a quantized conv-stack classifier or a "
                    "MixQNodeClassifier with a finalized quantized_model")
            return cls.from_model(quantized, metadata=metadata)

        plans: List[LayerPlan] = []
        for conv in convs:
            exporter = _EXPORTERS.get(type(conv))
            if exporter is None:
                for conv_class, candidate in _EXPORTERS.items():
                    if isinstance(conv, conv_class):
                        exporter = candidate
                        break
            if exporter is None:
                raise TypeError(f"unsupported layer {type(conv).__name__}; serving "
                                f"handles QuantGCNConv / QuantSAGEConv / QuantGINConv")
            plans.append(exporter(conv))
        conv_types = {plan.conv_type for plan in plans}
        if len(conv_types) != 1:
            raise TypeError(f"mixed conv families {sorted(conv_types)} cannot share "
                            f"one artifact")

        merged: Dict[str, object] = {
            "num_layers": len(plans),
            "layer_dims": [[fan_in, fan_out]
                           for fan_in, fan_out in ((p.in_features, p.out_features)
                                                   for p in plans)],
        }
        component_bits = getattr(model, "component_bits", None)
        if callable(component_bits):
            merged["component_bits"] = {key: int(value)
                                        for key, value in component_bits().items()}
        average_bits = getattr(model, "average_bits", None)
        if callable(average_bits):
            merged["average_bits"] = float(average_bits())
        if metadata:
            merged.update(metadata)
        return cls(conv_type=plans[0].conv_type, layers=plans, metadata=merged)

    # ------------------------------------------------------------------ #
    def save(self, path: PathLike) -> Tuple[Path, Path]:
        """Write the artifact to ``<path>.npz`` plus a ``<path>.json`` sidecar."""
        npz_path, json_path = artifact_paths(path)
        arrays: Dict[str, np.ndarray] = {}
        layers_payload = []
        for index, plan in enumerate(self.layers):
            weights_payload = {}
            for name, weight in plan.weights.items():
                arrays[f"layer{index}.{name}.int"] = weight.integers.astype(np.float64)
                if weight.bias is not None:
                    arrays[f"layer{index}.{name}.bias"] = weight.bias.astype(np.float64)
                weights_payload[name] = {"scale": float(weight.scale),
                                         "bits": int(weight.bits),
                                         "has_bias": weight.bias is not None}
            layers_payload.append({
                "conv_type": plan.conv_type,
                "in_features": int(plan.in_features),
                "out_features": int(plan.out_features),
                "eps": float(plan.eps),
                "hops": int(plan.hops),
                "negative_slope": float(plan.negative_slope),
                "heads": int(plan.heads),
                "head_merge": str(plan.head_merge),
                "weights": weights_payload,
                "quantizers": {name: _params_to_json(params)
                               for name, params in plan.quantizers.items()},
            })
        payload = {"format": FORMAT_NAME, "format_version": FORMAT_VERSION,
                   "conv_type": self.conv_type, "metadata": self.metadata,
                   "layers": layers_payload}
        np.savez_compressed(npz_path, **arrays)
        json_path.write_text(json.dumps(payload, indent=2, sort_keys=True))
        return npz_path, json_path

    @classmethod
    def load(cls, path: PathLike) -> "QuantizedArtifact":
        """Read an artifact written by :meth:`save` (either file of the pair)."""
        npz_path, json_path = artifact_paths(path)
        if not json_path.exists():
            raise FileNotFoundError(f"artifact sidecar {json_path} not found")
        payload = json.loads(json_path.read_text())
        if payload.get("format") != FORMAT_NAME:
            raise ValueError(f"{json_path} is not a {FORMAT_NAME} file")
        if int(payload.get("format_version", -1)) > FORMAT_VERSION:
            raise ValueError(f"artifact format v{payload['format_version']} is newer "
                             f"than this reader (v{FORMAT_VERSION})")
        with np.load(npz_path) as arrays:
            plans: List[LayerPlan] = []
            for index, layer in enumerate(payload["layers"]):
                weights: Dict[str, WeightPlan] = {}
                for name, meta in layer["weights"].items():
                    bias = arrays[f"layer{index}.{name}.bias"] if meta["has_bias"] \
                        else None
                    weights[name] = WeightPlan(
                        integers=np.asarray(arrays[f"layer{index}.{name}.int"],
                                            dtype=np.float64),
                        scale=float(meta["scale"]), bits=int(meta["bits"]),
                        bias=None if bias is None else np.asarray(bias,
                                                                  dtype=np.float64))
                plans.append(LayerPlan(
                    conv_type=layer["conv_type"],
                    in_features=int(layer["in_features"]),
                    out_features=int(layer["out_features"]),
                    weights=weights,
                    quantizers={name: _params_from_json(params)
                                for name, params in layer["quantizers"].items()},
                    eps=float(layer.get("eps", 0.0)),
                    hops=int(layer.get("hops", 1)),
                    negative_slope=float(layer.get("negative_slope", 0.2)),
                    # v1/v2 payloads predate the head axis: single head,
                    # concat merge reproduces their execution exactly.
                    heads=int(layer.get("heads", 1)),
                    head_merge=str(layer.get("head_merge", "concat"))))
        return cls(conv_type=payload["conv_type"], layers=plans,
                   metadata=dict(payload.get("metadata", {})))
