"""Request-level serving on top of an :class:`InferenceSession`.

:class:`ServingEngine` is the front door of the serving subsystem: callers
``submit()`` seed-node requests, the engine coalesces everything pending
into micro-batches of at most ``max_batch_size`` seeds, runs them through
the session, and hands back one :class:`RequestResult` per request with its
logits, latency and attributed BitOPs.  Coalescing is what makes many small
requests cheap: two one-node requests share a sampled receptive field and a
single integer forward instead of paying for two — and with the default
``dedup_seeds`` a seed requested by several callers in the same flush is
sampled and executed exactly once, its logits scattered back per request.

With ``workers > 1`` a flush executes its micro-batches on a thread pool:
sessions are stateless per request (their memoisation is locked, the
sampler's scratch is thread-local, the block cache is thread-safe), so
micro-batches are independent and the pool hides the per-batch sampling and
quantization latency.  Results are written into per-chunk slices of one
output buffer, so worker scheduling can never change any request's logits.

BitOPs are attributed to requests proportionally to their seed share of
each micro-batch; latency is the time from ``flush()`` start until the last
micro-batch containing one of the request's seeds completed.

Failures are isolated per micro-batch: when ``session.run`` raises, only
the requests with a seed in that micro-batch carry the error (as
:attr:`RequestResult.error`) — sibling requests in the same flush still
complete, and :class:`EngineStats` counts the whole flush consistently
(every request and micro-batch counted, ``failures`` incremented, BitOPs
attributed for the work that actually ran).

For an *online* front — callers submitting from many threads, flushes
triggered by a latency deadline instead of an explicit call — wrap the
session in :class:`~repro.serving.async_engine.AsyncServingEngine`.
"""

from __future__ import annotations

import copy
import time
from concurrent.futures import ThreadPoolExecutor, as_completed
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, List, Optional, Sequence

import numpy as np

from repro.serving.session import InferenceSession

if TYPE_CHECKING:  # pragma: no cover - circular only for annotations
    from repro.streaming.delta import GraphDelta


def per_request_error(error: BaseException) -> BaseException:
    """A per-request copy of a shared failure.

    One failed micro-batch (or one failed flush) affects several requests,
    but handing every one of them the *same* exception instance is a trap:
    the first consumer to re-raise it starts growing a traceback and
    ``__context__`` chain on an object other consumers still hold.  Each
    request gets its own shallow copy — same type, same ``args``, so
    ``isinstance``/message checks behave identically — chained to the
    original via ``__cause__``.  Exceptions that refuse copying fall back
    to the shared instance rather than masking the real failure.
    """
    try:
        clone = copy.copy(error)
    except Exception:
        return error
    if clone is error or type(clone) is not type(error):
        return error
    clone.__cause__ = error
    return clone


@dataclass
class RequestResult:
    """Outcome of one serving request.

    A failed request (a micro-batch holding one of its seeds raised)
    carries the exception in :attr:`error` and empty ``logits``; check
    :attr:`ok` before consuming outputs.  ``giga_bit_operations`` still
    reports the work its *successful* micro-batches spent.
    """

    request_id: int
    nodes: np.ndarray
    logits: np.ndarray
    latency_seconds: float
    giga_bit_operations: float
    #: The exception that failed one of this request's micro-batches
    #: (None = served completely).
    error: Optional[BaseException] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def classes(self) -> np.ndarray:
        return self.logits.argmax(axis=1)

    def __repr__(self) -> str:
        status = "" if self.error is None \
            else f", error={type(self.error).__name__}"
        return (f"RequestResult(id={self.request_id}, nodes={self.nodes.shape[0]}, "
                f"latency={self.latency_seconds * 1e3:.2f}ms, "
                f"GBitOPs={self.giga_bit_operations:.4f}{status})")


@dataclass
class EngineStats:
    """Cumulative counters over an engine's lifetime.

    ``requests`` / ``nodes`` / ``micro_batches`` count everything the
    engine *attempted* (failed micro-batches included — they consumed
    queue and wall-clock); ``failures`` counts the requests that carried
    an error out of a flush, so ``requests - failures`` is the number
    served completely.  ``updates`` counts applied graph deltas.
    """

    requests: int = 0
    nodes: int = 0
    micro_batches: int = 0
    failures: int = 0
    updates: int = 0
    seconds: float = 0.0
    giga_bit_operations: float = 0.0

    def throughput(self) -> float:
        """Seed nodes served per second (0 before anything ran)."""
        return self.nodes / self.seconds if self.seconds > 0 else 0.0

    def reset(self) -> None:
        """Zero every counter — the start of a new measurement window."""
        self.requests = 0
        self.nodes = 0
        self.micro_batches = 0
        self.failures = 0
        self.updates = 0
        self.seconds = 0.0
        self.giga_bit_operations = 0.0


@dataclass
class _PendingRequest:
    request_id: int
    nodes: np.ndarray


def validate_request_nodes(session: InferenceSession,
                           nodes: Sequence[int]) -> np.ndarray:
    """Normalise and bounds-check one request's seed nodes.

    Shared by the synchronous and asynchronous fronts so a malformed
    request is rejected at submission — with identical semantics — instead
    of failing a whole coalesced flush.
    """
    nodes = np.asarray(nodes, dtype=np.int64).reshape(-1)
    if nodes.size == 0:
        raise ValueError("a request needs at least one seed node")
    num_nodes = session.graph.num_nodes
    if nodes.min() < 0 or nodes.max() >= num_nodes:
        raise ValueError(f"seed node ids must lie in [0, {num_nodes}); "
                         f"got range [{nodes.min()}, {nodes.max()}]")
    return nodes


@dataclass
class ServingEngine:
    """Coalescing micro-batch server over an inference session.

    ``workers`` bounds the thread pool one flush may fan its micro-batches
    over; 1 (the default) keeps the classic synchronous behaviour.
    """

    session: InferenceSession
    max_batch_size: int = 256
    workers: int = 1
    #: Sample each distinct seed once per flush and scatter its logits back
    #: to every request that asked for it.  Keeps first-occurrence order, so
    #: non-overlapping traffic executes exactly as without dedup; sampling
    #: purity (a row is a function of the seed, never of its neighbours in
    #: the batch) keeps integer logits bitwise identical either way.
    dedup_seeds: bool = True
    _queue: List[_PendingRequest] = field(default_factory=list)
    _pending_updates: List["GraphDelta"] = field(default_factory=list,
                                                 repr=False)
    _next_id: int = 0
    stats: EngineStats = field(default_factory=EngineStats)
    _pool: Optional[ThreadPoolExecutor] = field(default=None, repr=False)

    def __post_init__(self):
        if self.max_batch_size <= 0:
            raise ValueError("max_batch_size must be positive")
        if self.workers <= 0:
            raise ValueError("workers must be positive")

    def _worker_pool(self) -> ThreadPoolExecutor:
        """The engine's persistent pool (lazily created, reused per flush).

        Keeping the threads alive keeps their thread-local sampler scratch
        (one O(num_nodes) renumbering table per thread) alive with them —
        tearing the pool down per flush would reallocate it every time.
        """
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix="repro-serving-worker")
        return self._pool

    def close(self) -> None:
        """Shut down the worker pool (idempotent; pool is recreated on use)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    # ------------------------------------------------------------------ #
    @property
    def pending(self) -> int:
        """Number of requests waiting for the next :meth:`flush`."""
        return len(self._queue)

    def reset_stats(self) -> EngineStats:
        """Start a fresh measurement window; returns the closed window's
        counters.

        Counters only move inside :meth:`flush`, so calling this between
        flushes (e.g. after a load harness's warm-up phase has drained)
        cleanly separates windows; pending unflushed requests are
        unaffected and will be counted in the new window.
        """
        snapshot = replace(self.stats)
        self.stats = EngineStats()
        return snapshot

    def submit(self, nodes: Sequence[int]) -> int:
        """Queue a request for the given seed nodes; returns its request id.

        Node ids are validated here so one malformed request is rejected at
        submission instead of failing a whole coalesced flush.
        """
        nodes = validate_request_nodes(self.session, nodes)
        request_id = self._next_id
        self._next_id += 1
        self._queue.append(_PendingRequest(request_id, nodes))
        return request_id

    def submit_update(self, delta: "GraphDelta") -> None:
        """Queue a graph delta for the next :meth:`flush`.

        Updates are the flush boundary's business: every request of one
        flush is served at one graph version, so a queued delta waits
        until the current queue (plus anything submitted before the next
        flush) has drained.  Raises :class:`TypeError` immediately when
        the bound session cannot apply updates.
        """
        if not self.session.supports_updates:
            raise TypeError(f"{type(self.session).__name__} does not support "
                            f"streaming updates")
        self._pending_updates.append(delta)

    def apply_update(self, delta: "GraphDelta") -> int:
        """Apply a delta right now (between flushes); returns new version.

        Callers must guarantee no flush is executing — the synchronous
        engine is single-threaded at the request front, the async engine
        calls this from its dispatcher only.
        """
        if not self.session.supports_updates:
            raise TypeError(f"{type(self.session).__name__} does not support "
                            f"streaming updates")
        version = self.session.apply_update(delta)
        self.stats.updates += 1
        return version

    def _apply_pending_updates(self) -> None:
        if not self._pending_updates:
            return
        pending, self._pending_updates = self._pending_updates, []
        for delta in pending:
            self.apply_update(delta)

    def flush(self) -> List[RequestResult]:
        """Serve every pending request in coalesced micro-batches.

        Queued graph updates apply first — even when no requests are
        pending — so every request of this flush is served at one graph
        version and a delta can never land between two micro-batches of
        the same flush.
        """
        self._apply_pending_updates()
        if not self._queue:
            return []
        requests, self._queue = self._queue, []
        seeds = np.concatenate([request.nodes for request in requests])
        owners = np.concatenate([np.full(request.nodes.shape[0], position,
                                         dtype=np.int64)
                                 for position, request in enumerate(requests)])
        if self.dedup_seeds:
            # Execute each distinct seed once, in first-occurrence order
            # (np.unique sorts, which would reorder micro-batches even for
            # disjoint traffic); ``inverse`` maps every requested occurrence
            # to its row in the executed batch.
            unique_seeds, first_at, inverse = np.unique(
                seeds, return_index=True, return_inverse=True)
            order = np.argsort(first_at)
            rank = np.empty_like(order)
            rank[order] = np.arange(order.shape[0])
            work_seeds = unique_seeds[order]
            inverse = rank[inverse]
        else:
            work_seeds = seeds
            inverse = np.arange(seeds.shape[0])

        start = time.perf_counter()
        logits_buffer: Optional[np.ndarray] = None
        attributed_ops = np.zeros(len(requests))
        done_at = np.zeros(len(requests))
        # A full-graph session computes every node per run anyway — serve
        # the whole flush with one run instead of re-running per chunk.
        batch_size = work_seeds.shape[0] if self.session.request_invariant_cost \
            else self.max_batch_size
        chunks = [slice(begin, begin + batch_size)
                  for begin in range(0, work_seeds.shape[0], batch_size)]

        errors: List[Optional[BaseException]] = [None] * len(requests)

        def chunk_occurrences(chunk: slice) -> np.ndarray:
            """Request-space positions whose seed executed in ``chunk``."""
            return (inverse >= chunk.start) & (inverse < chunk.stop)

        def account(chunk: slice, run) -> None:
            # Single-threaded by construction (sequential loop or the
            # as_completed consumer below), so no locking is needed here.
            nonlocal logits_buffer, attributed_ops
            if logits_buffer is None:
                logits_buffer = np.empty(
                    (work_seeds.shape[0], run.logits.shape[1]),
                    dtype=run.logits.dtype)
            logits_buffer[chunk] = run.logits
            # A deduplicated chunk's work is attributed across every request
            # that asked for one of its seeds, by occurrence share — the
            # requests that made the work necessary split its cost.
            chunk_owners = owners[chunk_occurrences(chunk)]
            counts = np.bincount(chunk_owners, minlength=len(requests))
            attributed_ops += run.giga_bit_operations() \
                * counts / chunk_owners.shape[0]
            done_at[np.unique(chunk_owners)] = time.perf_counter() - start

        def fail(chunk: slice, error: BaseException) -> None:
            # Only the requests with a seed in the failed micro-batch carry
            # the error; their logits are incomplete either way, so the
            # whole request is marked failed even if its other chunks ran.
            # Each affected request gets its own exception copy — consumers
            # re-raise these independently (see ``per_request_error``).
            affected = np.unique(owners[chunk_occurrences(chunk)])
            for position in affected:
                if errors[position] is None:
                    errors[position] = per_request_error(error)
            done_at[affected] = time.perf_counter() - start

        micro_batches = len(chunks)
        if self.workers > 1 and len(chunks) > 1:
            pool = self._worker_pool()
            futures = {pool.submit(self.session.run, work_seeds[chunk]): chunk
                       for chunk in chunks}
            for future in as_completed(futures):
                chunk = futures[future]
                try:
                    run = future.result()
                except Exception as error:
                    fail(chunk, error)
                else:
                    account(chunk, run)
        else:
            for chunk in chunks:
                try:
                    run = self.session.run(work_seeds[chunk])
                except Exception as error:
                    fail(chunk, error)
                else:
                    account(chunk, run)
        elapsed = time.perf_counter() - start

        width = 0 if logits_buffer is None else logits_buffer.shape[1]
        results = []
        failures = 0
        for position, request in enumerate(requests):
            error = errors[position]
            if error is None:
                # Every chunk holding this request's seeds succeeded, so
                # the buffer exists and its rows are fully written; the
                # inverse map scatters deduplicated rows back to every
                # occurrence, duplicates within the request included.
                logits = logits_buffer[inverse[owners == position]]
            else:
                failures += 1
                logits = np.empty((0, width))
            results.append(RequestResult(
                request_id=request.request_id, nodes=request.nodes,
                logits=logits,
                latency_seconds=float(done_at[position]),
                giga_bit_operations=float(attributed_ops[position]),
                error=error))

        self.stats.requests += len(requests)
        self.stats.nodes += int(seeds.shape[0])
        self.stats.micro_batches += micro_batches
        self.stats.failures += failures
        self.stats.seconds += elapsed
        self.stats.giga_bit_operations += float(attributed_ops.sum())
        return results

    # ------------------------------------------------------------------ #
    def predict(self, nodes: Sequence[int]) -> np.ndarray:
        """One-shot convenience: serve a single request immediately.

        Requests already queued by :meth:`submit` are left pending for the
        next :meth:`flush`.
        """
        backlog, self._queue = self._queue, []
        try:
            self.submit(nodes)
            result = self.flush()[0]
            if result.error is not None:
                raise result.error
            return result.logits
        finally:
            self._queue = backlog + self._queue
