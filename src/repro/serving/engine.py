"""Request-level serving on top of an :class:`InferenceSession`.

:class:`ServingEngine` is the front door of the serving subsystem: callers
``submit()`` seed-node requests, the engine coalesces everything pending
into micro-batches of at most ``max_batch_size`` seeds, runs them through
the session, and hands back one :class:`RequestResult` per request with its
logits, latency and attributed BitOPs.  Coalescing is what makes many small
requests cheap: two one-node requests share a sampled receptive field and a
single integer forward instead of paying for two.

BitOPs are attributed to requests proportionally to their seed share of
each micro-batch; latency is the time from ``flush()`` start until the last
micro-batch containing one of the request's seeds completed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.serving.session import InferenceSession


@dataclass
class RequestResult:
    """Outcome of one serving request."""

    request_id: int
    nodes: np.ndarray
    logits: np.ndarray
    latency_seconds: float
    giga_bit_operations: float

    @property
    def classes(self) -> np.ndarray:
        return self.logits.argmax(axis=1)

    def __repr__(self) -> str:
        return (f"RequestResult(id={self.request_id}, nodes={self.nodes.shape[0]}, "
                f"latency={self.latency_seconds * 1e3:.2f}ms, "
                f"GBitOPs={self.giga_bit_operations:.4f})")


@dataclass
class EngineStats:
    """Cumulative counters over an engine's lifetime."""

    requests: int = 0
    nodes: int = 0
    micro_batches: int = 0
    seconds: float = 0.0
    giga_bit_operations: float = 0.0

    def throughput(self) -> float:
        """Seed nodes served per second (0 before anything ran)."""
        return self.nodes / self.seconds if self.seconds > 0 else 0.0


@dataclass
class _PendingRequest:
    request_id: int
    nodes: np.ndarray


@dataclass
class ServingEngine:
    """Coalescing micro-batch server over an inference session."""

    session: InferenceSession
    max_batch_size: int = 256
    _queue: List[_PendingRequest] = field(default_factory=list)
    _next_id: int = 0
    stats: EngineStats = field(default_factory=EngineStats)

    def __post_init__(self):
        if self.max_batch_size <= 0:
            raise ValueError("max_batch_size must be positive")

    # ------------------------------------------------------------------ #
    @property
    def pending(self) -> int:
        """Number of requests waiting for the next :meth:`flush`."""
        return len(self._queue)

    def submit(self, nodes: Sequence[int]) -> int:
        """Queue a request for the given seed nodes; returns its request id.

        Node ids are validated here so one malformed request is rejected at
        submission instead of failing a whole coalesced flush.
        """
        nodes = np.asarray(nodes, dtype=np.int64).reshape(-1)
        if nodes.size == 0:
            raise ValueError("a request needs at least one seed node")
        num_nodes = self.session.graph.num_nodes
        if nodes.min() < 0 or nodes.max() >= num_nodes:
            raise ValueError(f"seed node ids must lie in [0, {num_nodes}); "
                             f"got range [{nodes.min()}, {nodes.max()}]")
        request_id = self._next_id
        self._next_id += 1
        self._queue.append(_PendingRequest(request_id, nodes))
        return request_id

    def flush(self) -> List[RequestResult]:
        """Serve every pending request in coalesced micro-batches."""
        if not self._queue:
            return []
        requests, self._queue = self._queue, []
        seeds = np.concatenate([request.nodes for request in requests])
        owners = np.concatenate([np.full(request.nodes.shape[0], position,
                                         dtype=np.int64)
                                 for position, request in enumerate(requests)])

        start = time.perf_counter()
        logits_buffer: Optional[np.ndarray] = None
        attributed_ops = np.zeros(len(requests))
        done_at = np.zeros(len(requests))
        micro_batches = 0
        # A full-graph session computes every node per run anyway — serve
        # the whole flush with one run instead of re-running per chunk.
        batch_size = seeds.shape[0] if self.session.request_invariant_cost \
            else self.max_batch_size
        for begin in range(0, seeds.shape[0], batch_size):
            chunk = slice(begin, begin + batch_size)
            run = self.session.run(seeds[chunk])
            micro_batches += 1
            if logits_buffer is None:
                logits_buffer = np.empty((seeds.shape[0], run.logits.shape[1]),
                                         dtype=run.logits.dtype)
            logits_buffer[chunk] = run.logits
            chunk_owners = owners[chunk]
            counts = np.bincount(chunk_owners, minlength=len(requests))
            attributed_ops += run.giga_bit_operations() \
                * counts / chunk_owners.shape[0]
            done_at[np.unique(chunk_owners)] = time.perf_counter() - start
        elapsed = time.perf_counter() - start

        results = []
        for position, request in enumerate(requests):
            mask = owners == position
            results.append(RequestResult(
                request_id=request.request_id, nodes=request.nodes,
                logits=logits_buffer[mask],
                latency_seconds=float(done_at[position]),
                giga_bit_operations=float(attributed_ops[position])))

        self.stats.requests += len(requests)
        self.stats.nodes += int(seeds.shape[0])
        self.stats.micro_batches += micro_batches
        self.stats.seconds += elapsed
        self.stats.giga_bit_operations += float(attributed_ops.sum())
        return results

    # ------------------------------------------------------------------ #
    def predict(self, nodes: Sequence[int]) -> np.ndarray:
        """One-shot convenience: serve a single request immediately.

        Requests already queued by :meth:`submit` are left pending for the
        next :meth:`flush`.
        """
        backlog, self._queue = self._queue, []
        try:
            self.submit(nodes)
            return self.flush()[0].logits
        finally:
            self._queue = backlog + self._queue
