"""Unified export + inference-session API for quantized serving.

The deployment story of the paper (Figure 7, stage 5 / Theorem 1) as a
subsystem decoupled from training:

* :class:`QuantizedArtifact` — a self-contained, serializable deployment
  artifact exported from a trained quantized classifier (``save()`` /
  ``load()`` as npz + json sidecar).
* :class:`FullGraphSession` / :class:`BlockSession` — integer inference
  backends sharing one layer executor; the block backend serves per-request
  through fanout-bounded :class:`~repro.graphs.sampling.NeighborSampler`
  blocks and never materialises the full adjacency.  Matrix layers (GCN /
  SAGE / GIN) aggregate with pre-quantized operators; attention layers
  (GAT / TAG / Transformer) execute per-edge *score plans* — float scores
  and softmax on the canonical edge list, integer Theorem-1 aggregation of
  the quantized coefficients.
* :class:`ServingEngine` — request coalescing, micro-batching and
  per-request BitOPs / latency accounting, optionally fanning micro-batches
  over a worker pool (``workers``).
* :class:`AsyncServingEngine` — thread-safe online front: futures-based
  ``submit()`` from any number of threads, flushes triggered by a
  ``max_batch`` / ``max_wait_ms`` latency-deadline batching policy.

Repeat/overlapping block-serving traffic is accelerated by the shared
:class:`~repro.cache.BlockCache` (``BlockSession(cache_size=...)``), with
bit-identical outputs.  The CLI front ends are ``repro export`` and
``repro predict`` (``--cache-size``, ``--workers``).
"""

from repro.serving.artifact import (
    LayerPlan,
    QUANTIZER_SLOTS,
    QuantizedArtifact,
    WEIGHT_SLOTS,
    WeightPlan,
    artifact_paths,
    tag_weight_slots,
)
from repro.serving.async_engine import AsyncServingEngine
from repro.serving.engine import EngineStats, RequestResult, ServingEngine
from repro.serving.session import (
    BlockSession,
    FullGraphSession,
    InferenceSession,
    SessionRun,
)

__all__ = [
    "QuantizedArtifact",
    "LayerPlan",
    "WeightPlan",
    "WEIGHT_SLOTS",
    "QUANTIZER_SLOTS",
    "artifact_paths",
    "tag_weight_slots",
    "InferenceSession",
    "FullGraphSession",
    "BlockSession",
    "SessionRun",
    "ServingEngine",
    "AsyncServingEngine",
    "RequestResult",
    "EngineStats",
]
