"""Asynchronous, deadline-batched serving on top of :class:`ServingEngine`.

:class:`AsyncServingEngine` turns the synchronous coalescing engine into an
online server: callers (any number of threads) ``submit()`` seed-node
requests and immediately receive a :class:`concurrent.futures.Future`; a
background dispatcher thread coalesces the pending queue and flushes it
through the wrapped :class:`~repro.serving.engine.ServingEngine` whenever

* the queue holds at least ``max_batch`` seeds (work-triggered flush), or
* the oldest pending request has waited ``max_wait_ms`` (latency-deadline
  flush) — so a lone request is never stuck behind an empty queue.

Inside one flush the engine may fan micro-batches over ``workers`` threads.
Because every flush runs on the single dispatcher thread, the engine's
stats counters are mutated by exactly one thread and are therefore
race-free however many producers submit concurrently; results are identical
to the synchronous engine because micro-batch outputs are written into
per-chunk slices of one buffer (scheduling can reorder completion, never
content).

Typical use::

    with AsyncServingEngine(session, max_batch=256, max_wait_ms=5.0,
                            workers=4) as engine:
        futures = [engine.submit(nodes) for nodes in traffic]
        results = [future.result() for future in futures]
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

import numpy as np

from repro.serving.engine import (
    EngineStats,
    RequestResult,
    ServingEngine,
    per_request_error,
    validate_request_nodes,
)
from repro.serving.session import InferenceSession

if TYPE_CHECKING:  # pragma: no cover - circular only for annotations
    from repro.streaming.delta import GraphDelta


class AsyncServingEngine:
    """Thread-safe, deadline-batched front over a coalescing engine.

    Parameters
    ----------
    session:
        The inference backend requests are served against.
    max_batch:
        Flush as soon as this many seed nodes are pending (also the
        micro-batch size of the wrapped engine).
    max_wait_ms:
        Upper bound on how long a pending request may wait for company
        before its flush starts.
    workers:
        Thread-pool width for micro-batches inside one flush.
    dedup_seeds:
        Forwarded to the wrapped engine: sample each distinct seed once
        per flush and scatter its logits to every requester.
    """

    def __init__(self, session: InferenceSession, max_batch: int = 256,
                 max_wait_ms: float = 5.0, workers: int = 1,
                 dedup_seeds: bool = True):
        if max_batch <= 0:
            raise ValueError("max_batch must be positive")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be non-negative")
        self.max_batch = int(max_batch)
        self.max_wait_ms = float(max_wait_ms)
        self.engine = ServingEngine(session, max_batch_size=self.max_batch,
                                    workers=workers, dedup_seeds=dedup_seeds)
        self._lock = threading.Lock()
        self._pending: List[Tuple[Future, np.ndarray, float]] = []  # guarded-by: self._lock
        self._pending_updates: List[Tuple[Future, "GraphDelta"]] = []  # guarded-by: self._lock
        self._pending_seeds = 0  # guarded-by: self._lock
        self._force_flush = False  # guarded-by: self._lock
        self._wakeup = threading.Condition(self._lock)
        self._closed = False  # guarded-by: self._lock
        self._dispatcher = threading.Thread(target=self._dispatch_loop,
                                            name="repro-serving-dispatcher",
                                            daemon=True)
        self._dispatcher.start()

    # ------------------------------------------------------------------ #
    @property
    def session(self) -> InferenceSession:
        return self.engine.session

    @property
    def stats(self) -> EngineStats:
        """Engine counters; only the dispatcher thread ever mutates them."""
        return self.engine.stats

    def reset_stats(self) -> EngineStats:
        """Start a fresh measurement window; returns the closed window's
        counters.

        The wrapped engine's counters are committed before any of a
        flush's futures resolve, so once every outstanding future has been
        waited on (a load harness's warm-up boundary) the reset cannot
        race the dispatcher.
        """
        return self.engine.reset_stats()

    @property
    def pending(self) -> int:
        with self._lock:
            return len(self._pending)

    # ------------------------------------------------------------------ #
    def submit(self, nodes: Sequence[int]) -> "Future[RequestResult]":
        """Queue a request; returns a future resolving to its result.

        Validation happens here (on the caller's thread) so a malformed
        request raises immediately instead of failing a coalesced flush.
        """
        nodes = validate_request_nodes(self.session, nodes)
        future: "Future[RequestResult]" = Future()
        with self._lock:
            if self._closed:
                raise RuntimeError("engine is closed")
            self._pending.append((future, nodes, time.perf_counter()))
            self._pending_seeds += int(nodes.size)
            self._wakeup.notify()
        return future

    def predict(self, nodes: Sequence[int]) -> np.ndarray:
        """Blocking one-shot convenience: submit and wait for the logits."""
        return self.submit(nodes).result().logits

    def submit_update(self, delta: "GraphDelta") -> "Future[int]":
        """Queue a graph delta; returns a future resolving to the version.

        The dispatcher applies queued deltas at the next flush boundary —
        before serving the batch it takes in the same round — so a flush
        always runs entirely at one graph version and an in-flight
        micro-batch is never torn by an update.  Raises
        :class:`TypeError` on the caller's thread when the bound session
        cannot apply updates.
        """
        if not self.session.supports_updates:
            raise TypeError(f"{type(self.session).__name__} does not support "
                            f"streaming updates")
        future: "Future[int]" = Future()
        with self._lock:
            if self._closed:
                raise RuntimeError("engine is closed")
            self._pending_updates.append((future, delta))
            self._wakeup.notify()
        return future

    # ------------------------------------------------------------------ #
    def _take_batch_locked(  # requires-lock: self._lock
            self) -> List[Tuple[Future, np.ndarray, float]]:
        batch, self._pending = self._pending, []
        self._pending_seeds = 0
        self._force_flush = False
        return batch

    def _due(self, now: float) -> bool:  # requires-lock: self._lock
        """Flush condition (lock held): pending updates, full batch,
        expired deadline, or an explicit :meth:`flush_now`."""
        if self._pending_updates:
            return True
        if not self._pending:
            return False
        if self._force_flush or self._pending_seeds >= self.max_batch:
            return True
        oldest = self._pending[0][2]
        return (now - oldest) * 1e3 >= self.max_wait_ms

    def _dispatch_loop(self) -> None:
        while True:
            with self._lock:
                while not self._due(time.perf_counter()) and not self._closed:
                    if self._pending:
                        oldest = self._pending[0][2]
                        deadline = oldest + self.max_wait_ms / 1e3
                        timeout = max(deadline - time.perf_counter(), 0.0)
                        self._wakeup.wait(timeout=max(timeout, 1e-4))
                    else:
                        self._wakeup.wait()
                if self._closed and not self._pending \
                        and not self._pending_updates:
                    return
                # Updates and batch leave the lock together: everything
                # taken this round is served at the post-update version.
                updates, self._pending_updates = self._pending_updates, []
                batch = self._take_batch_locked()
            if updates:
                self._apply_updates(updates)
            if batch:
                self._flush_batch(batch)

    def _apply_updates(self,
                       updates: List[Tuple[Future, "GraphDelta"]]) -> None:
        """Apply queued deltas on the dispatcher thread (flush boundary)."""
        for future, delta in updates:
            if not future.set_running_or_notify_cancel():
                continue  # caller cancelled while pending
            try:
                version = self.engine.apply_update(delta)
            except Exception as error:
                future.set_exception(error)
            else:
                future.set_result(version)

    def _flush_batch(self,
                     batch: List[Tuple[Future, np.ndarray, float]]) -> None:
        """Serve one coalesced batch on the dispatcher thread."""
        admitted: List[Tuple[Future, float]] = []
        for future, nodes, enqueued in batch:
            if not future.set_running_or_notify_cancel():
                continue  # caller cancelled while pending
            self.engine.submit(nodes)
            admitted.append((future, enqueued))
        if not admitted:
            return
        try:
            results = self.engine.flush()
        except Exception as error:  # pragma: no cover - engine-level failure
            for future, _ in admitted:
                future.set_exception(per_request_error(error))
            return
        now = time.perf_counter()
        for (future, enqueued), result in zip(admitted, results):
            if result.error is not None:
                # Micro-batch failures are isolated per request by the
                # engine — only the affected futures see the exception.
                future.set_exception(result.error)
                continue
            # Latency as the caller saw it: queueing wait + serving time.
            result.latency_seconds = now - enqueued
            future.set_result(result)

    # ------------------------------------------------------------------ #
    def flush_now(self) -> None:
        """Force the dispatcher to serve whatever is pending right away."""
        with self._lock:
            self._force_flush = bool(self._pending)
            self._wakeup.notify()

    def close(self, timeout: Optional[float] = None) -> None:
        """Drain the queue and stop the dispatcher (idempotent)."""
        with self._lock:
            self._closed = True
            self._wakeup.notify()
        self._dispatcher.join(timeout=timeout)
        self.engine.close()

    def __enter__(self) -> "AsyncServingEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
